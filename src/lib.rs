#![warn(missing_docs)]
//! Projected frequency estimation over column subspaces — a from-scratch
//! Rust reproduction of Cormode, Dickens & Woodruff, *Subspace
//! Exploration: Bounds on Projected Frequency Estimation* (PODS 2021,
//! arXiv:2101.07546).
//!
//! This facade re-exports the workspace crates:
//!
//! - [`hash`] — deterministic PRNGs, k-wise independent and tabulation
//!   hashing, seeded `BuildHasher`;
//! - [`codes`] — constant-weight codes `B(d,k)`, Lemma 3.2 random codes,
//!   greedy codes, the `star_Q` operator, binomials and entropy;
//! - [`row`] — column sets, packed binary and Q-ary matrices, pattern
//!   keys, exact frequency vectors;
//! - [`sketch`] — KMV/HLL/LinearCounting/BJKST distinct counters,
//!   CountMin/CountSketch, Misra–Gries/SpaceSaving, AMS F2, p-stable Fp,
//!   reservoirs, windowed KMV, ℓ₀-sampler;
//! - [`stream`] — workload generators and the paper's adversarial
//!   lower-bound instances;
//! - [`core`] — the paper's summaries: exact baseline, Theorem 5.1
//!   uniform sampling, the Section 6 α-net family, related-work baselines;
//! - [`lowerbounds`] — executable Index reductions for Theorems 4.1,
//!   5.3, 5.4, 5.5 and the related-work contrast models;
//! - [`query`] — the canonical typed query surface: the fluent `Query`
//!   builder over all four paper statistics, the guarantee-carrying
//!   `Answer`, and the canonical cache/planner `QueryKey`;
//! - [`engine`] — sharded parallel ingest and concurrent query serving
//!   over the mergeable summaries (shard → merge → snapshot → cache),
//!   with a mask-sharing batch planner, durable checkpoint/resume, and
//!   cross-process snapshot union;
//! - [`window`] — sliding-window analytics: a tiered ring of sealed
//!   mergeable buckets (exponential histogram) serving `last_n`-row
//!   queries by merging the minimal covering set, with fingerprint-keyed
//!   caching and durable checkpoint/resume of the whole ring;
//! - [`server`] — concurrent network serving: the line-delimited JSON
//!   protocol over TCP with a bounded worker pool, typed saturation
//!   rejection, graceful checkpoint-on-shutdown, and a small client
//!   library (one protocol dispatcher shared by pipe mode, TCP sessions,
//!   and tests);
//! - [`persist`] — the zero-dependency versioned binary codec (magic +
//!   version + CRC-32 framing) behind the durable snapshots;
//! - [`ingest`] — columnar CSV/TSV bulk loading: chunk-read, byte-level
//!   parsed with no per-row allocation, typed line/column errors, feeding
//!   the engines' batch surfaces (the `pfe` binary's file path).
//!
//! See `README.md` for a tour and `ARCHITECTURE.md` for the data-flow
//! diagram, crate graph, and the theorem → module map.
pub use pfe_codes as codes;
pub use pfe_core as core;
pub use pfe_engine as engine;
pub use pfe_hash as hash;
pub use pfe_ingest as ingest;
pub use pfe_lowerbounds as lowerbounds;
pub use pfe_persist as persist;
pub use pfe_query as query;
pub use pfe_row as row;
pub use pfe_server as server;
pub use pfe_sketch as sketch;
pub use pfe_stream as stream;
pub use pfe_window as window;
