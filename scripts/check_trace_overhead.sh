#!/usr/bin/env bash
# Machine-check the tracing overhead budget against a bench-report JSON
# (scripts/bench_json.sh output): the tracing-on server benchmark
# (`server_traced_vs_untraced/on`) must be within MAX_PCT (default 5%)
# of tracing-off (`.../off`). Run the `server` bench target first:
#
#   scripts/bench_json.sh server
#   scripts/check_trace_overhead.sh BENCH_<date>.json
set -euo pipefail

FILE="${1:?usage: check_trace_overhead.sh BENCH_JSON [MAX_PCT]}"
MAX_PCT="${2:-5}"

python3 - "$FILE" "$MAX_PCT" <<'EOF'
import json
import sys

path, max_pct = sys.argv[1], float(sys.argv[2])
bench = json.load(open(path))["benchmarks"]
try:
    on = bench["server_traced_vs_untraced/on"]
    off = bench["server_traced_vs_untraced/off"]
except KeyError as missing:
    sys.exit(f"FAIL: {path} lacks benchmark id {missing} "
             "(run scripts/bench_json.sh server first)")
overhead = (on - off) / off * 100.0
print(f"tracing on {on:.0f} ns/iter, off {off:.0f} ns/iter: "
      f"{overhead:+.2f}% (budget {max_pct:.0f}%)")
if overhead > max_pct:
    sys.exit(f"FAIL: tracing overhead {overhead:.2f}% exceeds the "
             f"{max_pct:.0f}% budget")
print("OK: tracing overhead within budget")
EOF
