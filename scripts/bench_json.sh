#!/usr/bin/env bash
# Run workspace benchmarks and emit a machine-readable BENCH_<date>.json:
# every benchmark id mapped to its median ns/iter estimate, plus the core
# count of the machine that produced the numbers (throughput benchmarks
# are meaningless without it).
#
# Usage:
#   scripts/bench_json.sh                 # all benches -> BENCH_<date>.json
#   scripts/bench_json.sh server query    # only these bench targets
#   BENCH_JSON_OUT=out.json scripts/bench_json.sh
#
# The numbers come from the vendored criterion shim: setting
# BENCH_JSON_PATH makes it append one JSON line per benchmark, which this
# script assembles into a single object. CI runs a small subset and
# validates the output parses.
set -euo pipefail
cd "$(dirname "$0")/.."

DATE="$(date -u +%Y-%m-%d)"
OUT="${BENCH_JSON_OUT:-BENCH_${DATE}.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

BENCH_ARGS=()
for target in "$@"; do
    BENCH_ARGS+=(--bench "$target")
done

BENCH_JSON_PATH="$RAW" cargo bench -p pfe-bench "${BENCH_ARGS[@]+"${BENCH_ARGS[@]}"}" 1>&2

CORES="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)"

{
    printf '{\n  "date": "%s",\n  "cores": %s,\n  "benchmarks": {\n' "$DATE" "$CORES"
    first=1
    while IFS= read -r line; do
        id="$(printf '%s' "$line" | sed -E 's/.*"id":"((\\.|[^"\\])*)".*/\1/')"
        ns="$(printf '%s' "$line" | sed -E 's/.*"estimate_ns":([0-9.]+).*/\1/')"
        [ "$first" -eq 1 ] || printf ',\n'
        first=0
        printf '    "%s": %s' "$id" "$ns"
    done < "$RAW"
    printf '\n  }'
    # Byte-throughput benchmarks (file ingest) also report MB/s.
    if grep -q '"bytes_per_sec"' "$RAW"; then
        printf ',\n  "throughput_mb_s": {\n'
        first=1
        while IFS= read -r line; do
            case "$line" in *'"bytes_per_sec"'*) ;; *) continue ;; esac
            id="$(printf '%s' "$line" | sed -E 's/.*"id":"((\\.|[^"\\])*)".*/\1/')"
            bps="$(printf '%s' "$line" | sed -E 's/.*"bytes_per_sec":([0-9.]+).*/\1/')"
            mbs="$(awk "BEGIN {printf \"%.2f\", $bps / 1048576}")"
            [ "$first" -eq 1 ] || printf ',\n'
            first=0
            printf '    "%s": %s' "$id" "$mbs"
        done < "$RAW"
        printf '\n  }'
    fi
    printf '\n}\n'
} > "$OUT"

count="$(wc -l < "$RAW" | tr -d ' ')"
echo "wrote $OUT ($count benchmarks, $CORES cores)" 1>&2
