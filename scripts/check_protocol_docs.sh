#!/usr/bin/env bash
# Docs-consistency check: every op the dispatcher registers must be
# documented in docs/PROTOCOL.md, and every documented op must be
# registered. The registry is the OPS constant in
# crates/server/src/proto.rs (between the OPS_START/OPS_END markers);
# the proto unit tests pin that list to the dispatch match arms.
set -euo pipefail
cd "$(dirname "$0")/.."

proto=crates/server/src/proto.rs
docs=docs/PROTOCOL.md

registered=$(sed -n '/OPS_START/,/OPS_END/p' "$proto" | grep -o '"[a-z_0-9]*"' | tr -d '"' | sort)
[ -n "$registered" ] || { echo "FAIL: no ops found between OPS_START/OPS_END in $proto"; exit 1; }

# Ops the document describes: the `"op":"name"` strings in its examples.
documented=$(grep -oE '"op":"[a-z_0-9]+"' "$docs" | sed 's/.*:"\([a-z_0-9]*\)"/\1/' | sort -u)

fail=0
for op in $registered; do
    if ! grep -q "\"$op\"" "$docs"; then
        echo "FAIL: dispatcher op '$op' is not documented in $docs"
        fail=1
    fi
done
for op in $documented; do
    if ! printf '%s\n' $registered | grep -qx "$op"; then
        # Statistic ops appearing only inside batch examples are still
        # registered ops, so anything here is genuine drift.
        echo "FAIL: $docs documents op '$op' which the dispatcher does not register"
        fail=1
    fi
done

if [ "$fail" -eq 0 ]; then
    echo "OK: $(printf '%s\n' $registered | wc -l) dispatcher ops all documented, no stale docs"
fi
exit "$fail"
