#!/usr/bin/env bash
# Smoke-run the docs/GUIDE.md quickstart: build the examples, run the
# scripted pipe-mode sessions, then a real TCP server + client round
# trip ending in a wire shutdown with a durable checkpoint. Fails if any
# response is an error or the checkpoint is missing.
set -euo pipefail
cd "$(dirname "$0")/.."

tmpdir=$(mktemp -d)
trap 'kill $server_pid 2>/dev/null || true; rm -rf "$tmpdir"' EXIT

echo "== build (guide §1)"
cargo build --release --example serve --example client

echo "== pipe-mode demos (guide §5)"
out=$(cargo run --release --example serve -- --demo 2>/dev/null)
echo "$out" | grep -q '"bye":true' || { echo "FAIL: demo session did not finish"; exit 1; }
echo "$out" | grep -q '"ok":false' && { echo "FAIL: demo session had an error response"; exit 1; }
out=$(cargo run --release --example serve -- --demo-window 2>/dev/null)
echo "$out" | grep -q '"bye":true' || { echo "FAIL: windowed demo did not finish"; exit 1; }
echo "$out" | grep -q '"ok":false' && { echo "FAIL: windowed demo had an error response"; exit 1; }

echo "== TCP server + client round trip (guide §5)"
ckpt="$tmpdir/smoke.pfes"
cargo run --release --example serve -- \
    --listen 127.0.0.1:0 --workers 2 --queue 4 --checkpoint "$ckpt" \
    2>"$tmpdir/serve.err" &
server_pid=$!

addr=""
for _ in $(seq 1 100); do
    addr=$(grep -o 'listening on [0-9.:]*' "$tmpdir/serve.err" 2>/dev/null | awk '{print $3}' || true)
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "FAIL: server never reported its address"; cat "$tmpdir/serve.err"; exit 1; }
echo "   server at $addr"

out=$(cargo run --release --example client -- "$addr" --demo 2>/dev/null)
echo "$out" | grep -q '"bye":true' || { echo "FAIL: client demo did not finish"; exit 1; }
echo "$out" | grep -q '"ok":false' && { echo "FAIL: client demo had an error response"; exit 1; }
echo "$out" | grep -q '"estimate"' || { echo "FAIL: no statistic answer in client demo"; exit 1; }

echo "== wire shutdown + durable checkpoint (guide §5)"
out=$(cargo run --release --example client -- "$addr" --shutdown 2>/dev/null)
echo "$out" | grep -q '"shutdown":true' || { echo "FAIL: shutdown not acknowledged"; exit 1; }
for _ in $(seq 1 100); do
    kill -0 "$server_pid" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$server_pid" 2>/dev/null && { echo "FAIL: server still running after shutdown"; exit 1; }
wait "$server_pid" 2>/dev/null || true
[ -s "$ckpt" ] || { echo "FAIL: shutdown checkpoint missing or empty"; exit 1; }

echo "OK: guide quickstart runs end to end (checkpoint: $(wc -c <"$ckpt") bytes)"
