#!/usr/bin/env bash
# Smoke-run the docs/GUIDE.md quickstart: build the examples, run the
# scripted pipe-mode sessions, then a real TCP server + client round
# trip ending in a wire shutdown with a durable checkpoint. Fails if any
# response is an error or the checkpoint is missing.
set -euo pipefail
cd "$(dirname "$0")/.."

tmpdir=$(mktemp -d)
trap 'kill ${server_pid:-} ${writer_pid:-} ${replica_pid:-} 2>/dev/null || true; rm -rf "$tmpdir"' EXIT

echo "== build (guide §1)"
cargo build --release --example serve --example client

echo "== pipe-mode demos (guide §5)"
out=$(cargo run --release --example serve -- --demo 2>/dev/null)
echo "$out" | grep -q '"bye":true' || { echo "FAIL: demo session did not finish"; exit 1; }
echo "$out" | grep -q '"ok":false' && { echo "FAIL: demo session had an error response"; exit 1; }
out=$(cargo run --release --example serve -- --demo-window 2>/dev/null)
echo "$out" | grep -q '"bye":true' || { echo "FAIL: windowed demo did not finish"; exit 1; }
echo "$out" | grep -q '"ok":false' && { echo "FAIL: windowed demo had an error response"; exit 1; }

echo "== TCP server + client round trip (guide §5)"
ckpt="$tmpdir/smoke.pfes"
cargo run --release --example serve -- \
    --listen 127.0.0.1:0 --workers 2 --queue 4 --checkpoint "$ckpt" \
    --metrics 127.0.0.1:0 --slow-ms 50 \
    2>"$tmpdir/serve.err" &
server_pid=$!

addr=""
for _ in $(seq 1 100); do
    addr=$(grep -o 'listening on [0-9.:]*' "$tmpdir/serve.err" 2>/dev/null | awk '{print $3}' || true)
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "FAIL: server never reported its address"; cat "$tmpdir/serve.err"; exit 1; }
maddr=$(grep -o 'metrics on [0-9.:]*' "$tmpdir/serve.err" | awk '{print $3}')
[ -n "$maddr" ] || { echo "FAIL: server never reported its metrics address"; cat "$tmpdir/serve.err"; exit 1; }
echo "   server at $addr, metrics at $maddr"

out=$(cargo run --release --example client -- "$addr" --demo 2>/dev/null)
echo "$out" | grep -q '"bye":true' || { echo "FAIL: client demo did not finish"; exit 1; }
echo "$out" | grep -q '"ok":false' && { echo "FAIL: client demo had an error response"; exit 1; }
echo "$out" | grep -q '"estimate"' || { echo "FAIL: no statistic answer in client demo"; exit 1; }
# The demo includes F_p moment queries over the live TCP server; any
# error reply would have tripped the ok:false check above.
echo "$out" | grep -q '"op":"fp"' || { echo "FAIL: demo sent no fp query"; exit 1; }

echo "== Prometheus scrape endpoint (guide §7)"
# Scrape with bash's /dev/tcp so the check needs no curl/netcat.
mhost=${maddr%:*}; mport=${maddr##*:}
scrape="$tmpdir/metrics.txt"
exec 3<>"/dev/tcp/$mhost/$mport"
printf 'GET /metrics HTTP/1.1\r\nHost: %s\r\n\r\n' "$maddr" >&3
cat <&3 >"$scrape"
exec 3<&- 3>&-
grep -q '^HTTP/1.1 200 OK' "$scrape" || { echo "FAIL: metrics endpoint did not answer 200"; exit 1; }
grep -q 'text/plain; version=0.0.4' "$scrape" || { echo "FAIL: wrong exposition content type"; exit 1; }
# Strip the HTTP head, then validate the exposition-format line grammar:
# every line is "# TYPE name kind", or "name[{labels}] value".
body="$tmpdir/metrics.body"
sed '1,/^\r*$/d' "$scrape" | tr -d '\r' >"$body"
grep -q '# TYPE pfe_server_requests_handled_total counter' "$body" \
    || { echo "FAIL: expected server counter missing from scrape"; exit 1; }
grep -q '# TYPE pfe_server_op_latency_ns_server_stats histogram' "$body" \
    || { echo "FAIL: expected latency histogram missing from scrape"; exit 1; }
bad=$(grep -vE '^$|^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$|^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$' "$body" || true)
[ -z "$bad" ] || { echo "FAIL: lines violate the exposition grammar:"; echo "$bad"; exit 1; }
lines=$(grep -c '^pfe_' "$body")
echo "   scrape OK ($lines metric lines, grammar clean)"

echo "== request tracing (guide §7)"
cargo build --release -p pfe-cli
pfe=target/release/pfe
host=${addr%:*}; port=${addr##*:}
tid="00000000000000000000000000abc123"
# A traced query over the live TCP socket: the client-supplied id must
# come back on the answer.
exec 4<>"/dev/tcp/$host/$port"
# Columns the earlier demo queries never touched, so the traced
# request misses the answer cache and records a full compute stage.
printf '{"op":"f0","cols":[7,8,9],"trace":"%s"}\n' "$tid" >&4
IFS= read -r reply <&4
exec 4<&- 4>&-
echo "$reply" | grep -q '"ok":true' || { echo "FAIL: traced query failed: $reply"; exit 1; }
echo "$reply" | grep -q "\"trace_id\":\"$tid\"" \
    || { echo "FAIL: traced query did not echo the client trace id: $reply"; exit 1; }
# Fetch the span tree back over the trace op (via the pfe CLI client).
out=$("$pfe" trace "$addr" --id "$tid")
echo "$out" | grep -q "\"trace_id\":\"$tid\"" || { echo "FAIL: trace op did not return the trace: $out"; exit 1; }
for span in session dispatch plan compute; do
    echo "$out" | grep -q "\"name\":\"$span\"" \
        || { echo "FAIL: span '$span' missing from fetched trace: $out"; exit 1; }
done
# Chrome trace-event export: must be valid JSON (python3 -m json.tool)
# with complete-event markers, ready for chrome://tracing / Perfetto.
chrome="$tmpdir/trace.json"
out=$("$pfe" trace "$addr" --last 16 --chrome "$chrome")
echo "$out" | grep -q '"ok":true' || { echo "FAIL: chrome export failed: $out"; exit 1; }
python3 -m json.tool "$chrome" >/dev/null || { echo "FAIL: chrome export is not valid JSON"; exit 1; }
grep -q '"ph":"X"' "$chrome" || { echo "FAIL: chrome export has no complete events"; exit 1; }
grep -q '"cat":"pfe"' "$chrome" || { echo "FAIL: chrome export missing the pfe category"; exit 1; }
echo "   tracing OK (echo, span tree, chrome export valid)"

echo "== wire shutdown + durable checkpoint (guide §5)"
out=$(cargo run --release --example client -- "$addr" --shutdown 2>/dev/null)
echo "$out" | grep -q '"shutdown":true' || { echo "FAIL: shutdown not acknowledged"; exit 1; }
for _ in $(seq 1 100); do
    kill -0 "$server_pid" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$server_pid" 2>/dev/null && { echo "FAIL: server still running after shutdown"; exit 1; }
wait "$server_pid" 2>/dev/null || true
[ -s "$ckpt" ] || { echo "FAIL: shutdown checkpoint missing or empty"; exit 1; }

echo "== pfe bulk-data CLI (guide §8)"
cargo build --release -p pfe-cli
pfe=target/release/pfe
csv="$tmpdir/rows.csv"
# Deterministic 12-column binary CSV (awk LCG, header + 500 rows).
awk 'BEGIN {
    d = 12
    h = "c0"; for (i = 1; i < d; i++) h = h ",c" i
    print h
    s = 12345
    for (r = 0; r < 500; r++) {
        line = ""
        for (i = 0; i < d; i++) {
            s = (s * 1103515245 + 12345) % 2147483648
            line = line (i ? "," : "") (int(s / 65536) % 2)
        }
        print line
    }
}' > "$csv"

snap="$tmpdir/rows.pfes"
out=$("$pfe" ingest "$csv" --out "$snap" --quiet)
echo "$out" | grep -q '"ok":true' || { echo "FAIL: pfe ingest did not report ok"; exit 1; }
echo "$out" | grep -q '"rows":500' || { echo "FAIL: pfe ingest row count wrong: $out"; exit 1; }
[ -s "$snap" ] || { echo "FAIL: pfe ingest wrote no checkpoint"; exit 1; }

out=$("$pfe" query "$snap" --op f0 --cols 0,1,2)
echo "$out" | grep -q '"ok":true' || { echo "FAIL: pfe query failed: $out"; exit 1; }
echo "$out" | grep -q '"estimate"' || { echo "FAIL: pfe query returned no estimate"; exit 1; }

out=$("$pfe" stats "$snap")
echo "$out" | grep -q '"snapshot_rows":500' || { echo "FAIL: pfe stats rows wrong: $out"; exit 1; }

# The acceptance check in executable form: the file path and the Rust
# batch API must answer every statistic bit-identically on this file.
out=$("$pfe" verify "$csv")
echo "$out" | grep -q '"ok":true' || { echo "FAIL: pfe verify found a divergence: $out"; exit 1; }
echo "   pfe ingest/query/stats/verify OK"

echo "== replication: writer -> replica -> query (guide §9)"
wait_addr() { # logfile -> prints "listening on" address
    local a=""
    for _ in $(seq 1 100); do
        a=$(grep -o 'listening on [0-9.:]*' "$1" 2>/dev/null | awk '{print $3}' || true)
        [ -n "$a" ] && break
        sleep 0.1
    done
    [ -n "$a" ] || { echo "FAIL: server never reported its address" >&2; cat "$1" >&2; exit 1; }
    echo "$a"
}
ask() { # addr request -> prints one reply line
    local host=${1%:*} port=${1##*:} reply
    exec 6<>"/dev/tcp/$host/$port"
    printf '%s\n' "$2" >&6
    IFS= read -r reply <&6
    exec 6<&- 6>&-
    echo "$reply"
}
shipdir="$tmpdir/ship"
mkdir -p "$shipdir"
"$pfe" serve --listen 127.0.0.1:0 --workers 2 --queue 8 \
    --ship "$shipdir" --ship-ms 200 2>"$tmpdir/writer.err" &
writer_pid=$!
waddr=$(wait_addr "$tmpdir/writer.err")
"$pfe" serve --listen 127.0.0.1:0 --workers 2 --queue 8 \
    --replica-of "$shipdir" --replica-poll-ms 100 2>"$tmpdir/replica.err" &
replica_pid=$!
raddr=$(wait_addr "$tmpdir/replica.err")
echo "   writer at $waddr, replica at $raddr"
out=$(ask "$waddr" '{"op":"start","d":6,"q":2}')
echo "$out" | grep -q '"ok":true' || { echo "FAIL: writer start failed: $out"; exit 1; }
out=$(ask "$waddr" '{"op":"ingest","rows":[[0,1,0,1,0,1],[1,1,0,0,1,0],[0,0,1,1,0,1],[1,0,1,0,1,1],[0,1,1,0,0,0],[1,1,1,1,0,1],[0,0,0,1,1,0],[1,0,0,1,0,0]]}')
echo "$out" | grep -q '"ok":true' || { echo "FAIL: writer ingest failed: $out"; exit 1; }
# The shipper checkpoints on its own clock; the replica applies on its
# own poll. Wait for the replica to report an applied epoch...
applied=""
for _ in $(seq 1 100); do
    stats=$("$pfe" replica "$raddr" 2>/dev/null || true)
    if echo "$stats" | grep -q '"epoch":[0-9]'; then applied=1; break; fi
    sleep 0.2
done
[ -n "$applied" ] || { echo "FAIL: replica never applied a snapshot"; cat "$tmpdir/replica.err"; exit 1; }
echo "$stats" | grep -q '"replica":true' || { echo "FAIL: replica_stats missing role: $stats"; exit 1; }
# ...then the same query must answer byte-identically on both ends
# (same epoch, same snapshot — retried briefly in case a ship is
# mid-flight between the two asks).
req='{"op":"f0","cols":[0,1,2]}'
match=""
for _ in $(seq 1 50); do
    w=$(ask "$waddr" "$req")
    r=$(ask "$raddr" "$req")
    [ "$w" = "$r" ] && { match=1; break; }
    sleep 0.2
done
[ -n "$match" ] || { echo "FAIL: replica answer diverges: writer=$w replica=$r"; exit 1; }
echo "$w" | grep -q '"ok":true' || { echo "FAIL: replicated query failed: $w"; exit 1; }
# Writes against the replica are the typed read-only rejection.
out=$(ask "$raddr" '{"op":"ingest","rows":[[0,0,0,0,0,0]]}')
echo "$out" | grep -q '"code":"read_only"' || { echo "FAIL: replica accepted a write: $out"; exit 1; }
kill "$writer_pid" "$replica_pid" 2>/dev/null || true
wait "$writer_pid" "$replica_pid" 2>/dev/null || true
echo "   replication OK (writer -> snapshot dir -> replica, byte-identical answer)"

echo "OK: guide quickstart runs end to end (checkpoint: $(wc -c <"$ckpt") bytes)"
