#!/usr/bin/env bash
# Multi-process connection-scale load harness: a release `pfe serve`
# writer (shipping snapshots), a read replica watching them, and the
# `load_gen` generator holding a crowd of idle connections while active
# clients run live traffic. Sweeps the crowd size and merges per-point
# latency percentiles + replication lag into the day's BENCH_<date>.json
# under a "load_test" key.
#
# Usage:
#   scripts/load_test.sh                       # crowd sizes 100 1000 10000
#   LOAD_TEST_CONNS="100 1000" scripts/load_test.sh
#   LOAD_TEST_OUT=out.json scripts/load_test.sh
#
# Server and generator are separate processes, so each 10k-connection
# point costs 10k descriptors per process (not 20k in one): that is what
# lets the sweep reach 10k under a 20k RLIMIT_NOFILE, where the
# in-process criterion bench (benches/connections.rs) stops at 5k.
# On a 1-core box the absolute latencies compress — the server, the
# crowd, and the clients all share the core; the signal is that p50/p99
# stay flat as the idle crowd grows 100x.
set -euo pipefail
cd "$(dirname "$0")/.."

CONNS="${LOAD_TEST_CONNS:-100 1000 10000}"
ROWS="${LOAD_TEST_ROWS:-20000}"
REQUESTS="${LOAD_TEST_REQUESTS:-2000}"
DATE="$(date -u +%Y-%m-%d)"
OUT="${LOAD_TEST_OUT:-BENCH_${DATE}.json}"

# One descriptor per held connection: raise the soft fd limit to the
# hard one so the 10k point has headroom in both processes.
ulimit -n "$(ulimit -Hn)" 2>/dev/null || true

maxc=0
for c in $CONNS; do [ "$c" -gt "$maxc" ] && maxc=$c; done

echo "== build (release)"
cargo build --release -p pfe-cli -p pfe-bench 1>&2
pfe=target/release/pfe
gen=target/release/load_gen

tmpdir=$(mktemp -d)
writer_pid=""; replica_pid=""
cleanup() {
    [ -n "$writer_pid" ] && kill "$writer_pid" 2>/dev/null || true
    [ -n "$replica_pid" ] && kill "$replica_pid" 2>/dev/null || true
    rm -rf "$tmpdir"
}
trap cleanup EXIT

wait_addr() { # logfile -> prints addr
    local addr=""
    for _ in $(seq 1 100); do
        addr=$(grep -o 'listening on [0-9.:]*' "$1" 2>/dev/null | awk '{print $3}' || true)
        [ -n "$addr" ] && break
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "FAIL: server never reported its address" >&2; cat "$1" >&2; exit 1; }
    echo "$addr"
}

echo "== writer (ships snapshots) + replica"
shipdir="$tmpdir/ship"
mkdir -p "$shipdir"
"$pfe" serve --listen 127.0.0.1:0 --workers 2 --queue $((maxc + 64)) \
    --ship "$shipdir" --ship-ms 500 2>"$tmpdir/writer.err" &
writer_pid=$!
addr=$(wait_addr "$tmpdir/writer.err")
"$pfe" serve --listen 127.0.0.1:0 --workers 2 --queue 64 \
    --replica-of "$shipdir" --replica-poll-ms 200 2>"$tmpdir/replica.err" &
replica_pid=$!
raddr=$(wait_addr "$tmpdir/replica.err")
echo "   writer at $addr, replica at $raddr"

echo "== feed $ROWS rows"
"$gen" "$addr" --feed "$ROWS" >/dev/null

echo "== wait for replica catch-up"
caught=""
for _ in $(seq 1 100); do
    stats=$("$pfe" replica "$raddr" 2>/dev/null || true)
    if echo "$stats" | grep -q '"epoch":[0-9]'; then caught=1; break; fi
    sleep 0.2
done
[ -n "$caught" ] || { echo "FAIL: replica never applied a snapshot"; cat "$tmpdir/replica.err"; exit 1; }

echo "== sweep: crowd sizes [$CONNS], $REQUESTS live requests each"
points="$tmpdir/points.jsonl"
: >"$points"
for c in $CONNS; do
    out=$("$gen" "$addr" --conns "$c" --requests "$REQUESTS" --replica "$raddr")
    echo "   $out"
    echo "$out" >>"$points"
    echo "$out" | grep -q '"failures":0,' \
        || { echo "FAIL: live requests failed at crowd size $c"; exit 1; }
    # The server must actually be holding the crowd while traffic flows.
    reported=$(echo "$out" | sed -E 's/.*"open_reported":([0-9]+).*/\1/')
    [ "$reported" -ge "$c" ] \
        || { echo "FAIL: server reports $reported open connections, expected >= $c"; exit 1; }
    sleep 1 # let the closed crowd drain before the next point
done

echo "== merge into $OUT"
CORES="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)"
python3 - "$OUT" "$DATE" "$CORES" <"$points" <<'PY'
import json, sys
path, date, cores = sys.argv[1], sys.argv[2], int(sys.argv[3])
points = [json.loads(line) for line in sys.stdin if line.strip()]
try:
    with open(path) as f:
        doc = json.load(f)
except (FileNotFoundError, ValueError):
    doc = {"date": date, "cores": cores, "benchmarks": {}}
doc["load_test"] = points
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
PY
echo "OK: $(wc -l <"$points" | tr -d ' ') sweep points merged into $OUT"
