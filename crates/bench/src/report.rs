//! Report formatting for the experiment binaries: aligned console tables,
//! TSV files under `results/`, and byte/number formatting.

use std::io::Write;
use std::path::{Path, PathBuf};

/// A simple column-aligned table that prints to stdout and can be saved as
/// TSV.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n## {}\n\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("| ");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{c:<w$} | ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}-|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        lock.write_all(self.render().as_bytes())
            .expect("stdout write");
    }

    /// Write as TSV under `results/<file>`.
    ///
    /// # Panics
    /// Panics on I/O errors (experiment binaries want loud failures).
    pub fn save_tsv(&self, file: &str) -> PathBuf {
        let dir = results_dir();
        std::fs::create_dir_all(&dir).expect("create results dir");
        let path = dir.join(file);
        let mut out = String::new();
        out.push_str(&self.headers.join("\t"));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        std::fs::write(&path, out).expect("write TSV");
        path
    }
}

/// The results directory: `$PFE_RESULTS_DIR` or `./results`.
pub fn results_dir() -> PathBuf {
    std::env::var_os("PFE_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new("results").to_path_buf())
}

/// Format a byte count with binary units.
pub fn fmt_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.2} {}", UNITS[unit])
    }
}

/// Format a float compactly (3 significant-ish digits, scientific for
/// extremes).
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if !(1e-3..1e6).contains(&a) {
        format!("{v:.3e}")
    } else if a >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.4}")
    }
}

/// Print a section banner.
pub fn banner(text: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{text}");
    println!("{}", "=".repeat(72));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["333".into(), "4".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.contains("| a   | long-header |"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_ragged_rows() {
        Table::new("x", &["a", "b"]).row(&["1".into()]);
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00 MiB");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1.5), "1.5000");
        assert_eq!(fmt_f64(123.456), "123.5");
        assert!(fmt_f64(1e9).contains('e'));
        assert!(fmt_f64(1e-9).contains('e'));
    }

    #[test]
    fn tsv_roundtrip() {
        let tmp = std::env::temp_dir().join(format!("pfe-test-{}", std::process::id()));
        std::env::set_var("PFE_RESULTS_DIR", &tmp);
        let mut t = Table::new("t", &["x", "y"]);
        t.row(&["1".into(), "2".into()]);
        let path = t.save_tsv("demo.tsv");
        let content = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(content, "x\ty\n1\t2\n");
        std::fs::remove_dir_all(&tmp).ok();
        std::env::remove_var("PFE_RESULTS_DIR");
    }
}
