//! Multi-process connection-scale load generator for `pfe-server`.
//!
//! One process holds a large crowd of mostly-idle connections against a
//! live server while a handful of active clients run real query traffic
//! through it, then reports request latency percentiles, throughput,
//! and (optionally) replication lag as one JSON object on stdout —
//! `scripts/load_test.sh` sweeps the crowd size and merges the objects
//! into the day's `BENCH_<date>.json`.
//!
//! ```text
//! load_gen ADDR --feed 20000                  # start + ingest + snapshot
//! load_gen ADDR --conns 10000 --requests 2000 [--replica RADDR]
//! ```
//!
//! The crowd and the server each burn one file descriptor per
//! connection in their own process, which is why the 10k point runs
//! here and not in the in-process criterion bench (which pays two fds
//! per connection from a single budget).

use std::net::TcpStream;
use std::time::Instant;

use pfe_engine::Json;
use pfe_server::Client;

const USAGE: &str = "usage: load_gen ADDR [--conns C] [--active A] [--requests N] \
                     [--feed ROWS] [--replica ADDR]";

const D: u32 = 12;

fn query_lines() -> Vec<String> {
    vec![
        r#"{"op":"f0","cols":[0,1,2,3,4,5]}"#.to_string(),
        r#"{"op":"f0","cols":[0,1,2,3,4,5,6]}"#.to_string(),
        r#"{"op":"heavy_hitters","cols":[0,1,2],"phi":0.05}"#.to_string(),
        r#"{"op":"frequency","cols":[0,1],"pattern":[1,1]}"#.to_string(),
    ]
}

/// `--feed ROWS`: start the engine over the wire and ingest the
/// deterministic test stream, so every sweep point queries identical
/// state. Defaults match `pfe serve --replica-of` with no engine flags.
fn feed(addr: &str, rows: usize) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let r = client
        .request_line(&format!(r#"{{"op":"start","d":{D},"q":2}}"#))
        .map_err(|e| e.to_string())?;
    if r.get("ok") != Some(&Json::Bool(true)) {
        return Err(format!("start rejected: {r}"));
    }
    let packed = match pfe_stream::gen::uniform_binary(D, rows, 1) {
        pfe_row::Dataset::Binary(m) => m.rows().to_vec(),
        pfe_row::Dataset::Qary(_) => unreachable!("generator yields binary data"),
    };
    for chunk in packed.chunks(2000) {
        let body: Vec<String> = chunk
            .iter()
            .map(|row| {
                let bits: Vec<String> = (0..D).map(|i| ((row >> i) & 1).to_string()).collect();
                format!("[{}]", bits.join(","))
            })
            .collect();
        let r = client
            .request_line(&format!(r#"{{"op":"ingest","rows":[{}]}}"#, body.join(",")))
            .map_err(|e| e.to_string())?;
        if r.get("ok") != Some(&Json::Bool(true)) {
            return Err(format!("ingest rejected: {r}"));
        }
    }
    client
        .request_line(r#"{"op":"snapshot"}"#)
        .map_err(|e| e.to_string())?;
    let _ = client.request_line(r#"{"op":"quit"}"#);
    println!(r#"{{"fed":{rows}}}"#);
    Ok(())
}

fn percentile(sorted_us: &[u64], p: usize) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    sorted_us[(sorted_us.len() * p / 100).min(sorted_us.len() - 1)]
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("{name}: bad value {v:?}")),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(addr) = args.first().filter(|a| !a.starts_with('-')).cloned() else {
        return Err(USAGE.to_string());
    };
    if let Some(rows) = flag(&args, "--feed") {
        let rows: usize = rows.parse().map_err(|_| "--feed: bad row count")?;
        return feed(&addr, rows);
    }
    let conns: usize = parse_flag(&args, "--conns", 1000)?;
    let active: usize = parse_flag(&args, "--active", 8.min(conns.max(1)))?;
    let requests: usize = parse_flag(&args, "--requests", 2000)?;
    let replica = flag(&args, "--replica");

    // The idle crowd: opened and then deliberately never written to.
    // Every one must be admitted — a rejection here means the server's
    // session capacity is the bottleneck, not the event loop.
    let mut crowd = Vec::with_capacity(conns);
    let crowd_t0 = Instant::now();
    for i in 0..conns {
        let stream = TcpStream::connect(&addr).map_err(|e| format!("conn {i}/{conns}: {e}"))?;
        crowd.push(stream);
    }
    let crowd_secs = crowd_t0.elapsed().as_secs_f64();

    // What the server itself thinks it is holding (crowd + actives + us).
    let mut probe = Client::connect(&addr).map_err(|e| format!("probe: {e}"))?;
    let open_reported = probe
        .request_line(r#"{"op":"server_stats"}"#)
        .map_err(|e| e.to_string())?
        .get("connections_open")
        .and_then(Json::as_f64)
        .unwrap_or(-1.0);

    // Live traffic through the crowd: `active` clients, each with its
    // own connection, splitting `requests` between them.
    let queries = query_lines();
    let load_t0 = Instant::now();
    let workers: Vec<_> = (0..active)
        .map(|t| {
            let addr = addr.clone();
            let queries = queries.clone();
            let quota = requests / active + usize::from(t < requests % active);
            std::thread::spawn(move || -> (Vec<u64>, u64) {
                let mut latencies = Vec::with_capacity(quota);
                let mut failures = 0u64;
                let Ok(mut client) = Client::connect(&addr) else {
                    return (latencies, quota as u64);
                };
                for i in 0..quota {
                    let line = &queries[(i + t) % queries.len()];
                    let t0 = Instant::now();
                    match client.request_line(line) {
                        Ok(resp) if resp.get("ok") == Some(&Json::Bool(true)) => {
                            latencies.push(t0.elapsed().as_micros() as u64);
                        }
                        _ => failures += 1,
                    }
                }
                (latencies, failures)
            })
        })
        .collect();
    let mut latencies = Vec::with_capacity(requests);
    let mut failures = 0u64;
    for w in workers {
        let (l, f) = w.join().map_err(|_| "load thread panicked")?;
        latencies.extend(l);
        failures += f;
    }
    let wall = load_t0.elapsed().as_secs_f64();
    latencies.sort_unstable();

    // Replication lag, measured while the crowd is still attached.
    let replica_lag = match &replica {
        None => "null".to_string(),
        Some(raddr) => {
            let mut rc = Client::connect(raddr).map_err(|e| format!("replica {raddr}: {e}"))?;
            let stats = rc
                .request_line(r#"{"op":"replica_stats"}"#)
                .map_err(|e| e.to_string())?;
            stats
                .get("lag_ms")
                .map(Json::to_string)
                .unwrap_or_else(|| "null".to_string())
        }
    };

    println!(
        concat!(
            r#"{{"connections":{},"open_reported":{},"connect_secs":{:.3},"#,
            r#""active":{},"requests":{},"failures":{},"qps":{:.1},"#,
            r#""p50_us":{},"p99_us":{},"max_us":{},"replica_lag_ms":{}}}"#
        ),
        conns,
        open_reported,
        crowd_secs,
        active,
        latencies.len(),
        failures,
        latencies.len() as f64 / wall.max(1e-9),
        percentile(&latencies, 50),
        percentile(&latencies, 99),
        latencies.last().copied().unwrap_or(0),
        replica_lag,
    );
    drop(crowd);
    Ok(())
}

fn main() {
    if let Err(msg) = run() {
        eprintln!("load_gen: {msg}");
        std::process::exit(if msg.starts_with("usage:") { 2 } else { 1 });
    }
}
