//! Section 5 dichotomy experiments (E-D1): the problems that are *easy*
//! for `p ≤ 1` and *hard* otherwise.
//!
//! 1. Heavy hitters, `0 < p ≤ 1`: the Theorem 5.1 uniform sample finds all
//!    of them in constant space (recall 1.0 on Zipf data).
//! 2. Heavy hitters, `p > 1`: on the Theorem 5.3 instance, the same
//!    summary's Index accuracy collapses toward 0.5 while the exact oracle
//!    stays at 1.0 — the `2^{Ω(d)}` bound.
//! 3. `F_p` gap (Theorem 5.4): measured yes/no `F_p` for `p ∈ {0.25, 0.5}`
//!    (small-p branch) and `p = 2` (large-p branch).
//! 4. `ℓ_p` sampling (Theorem 5.5): `M′` mass is a constant when `y ∈ T`
//!    and exactly zero otherwise; the `ℓ_1` sampler (reservoir) remains
//!    accurate — the sampling dichotomy.
//!
//! Run: `cargo run -p pfe-bench --release --bin dichotomy`

use pfe_bench::report::{banner, fmt_bytes, fmt_f64, Table};
use pfe_codes::random_code::{RandomCode, RandomCodeParams};
use pfe_core::{ExactSummary, UniformSampleSummary};
use pfe_lowerbounds::fp::measure_fp_gap;
use pfe_lowerbounds::heavy_hitters::{ExactHhOracle, HhOracle, HhProtocol};
use pfe_lowerbounds::index_problem::run_trials;
use pfe_lowerbounds::sampling::m_prime_mass;
use pfe_row::{ColumnSet, Dataset, FrequencyVector, PatternKey};
use pfe_sketch::traits::SpaceUsage;
use pfe_stream::gen::zipf_patterns;

fn code_params(seed: u64) -> RandomCodeParams {
    RandomCodeParams {
        d: 32,
        epsilon: 0.25,
        gamma: 0.03,
        target_size: 12,
        seed,
    }
}

/// Part 1: p <= 1 heavy hitters via uniform sampling — easy.
fn easy_side() {
    banner("Easy side: l_p heavy hitters, p <= 1, via Theorem 5.1 sampling");
    let d = 20;
    let data = zipf_patterns(d, 50_000, 50, 1.4, 1);
    let summary = UniformSampleSummary::build(&data, 4096, 2);
    let mut t = Table::new(
        "Recall/precision of sampled heavy hitters (phi = 0.1, slack c = 2)",
        &[
            "p",
            "true HH",
            "reported",
            "recall",
            "precision vs phi/c^2 floor",
            "summary bytes",
        ],
    );
    for &p in &[0.25, 0.5, 0.75, 1.0] {
        let cols = ColumnSet::full(d).expect("valid");
        let exact = FrequencyVector::compute(&data, &cols).expect("fits");
        let truth: std::collections::BTreeSet<PatternKey> = exact
            .heavy_hitters(0.1, p)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        let reported: std::collections::BTreeSet<PatternKey> = summary
            .heavy_hitters(&cols, 0.1, p, 2.0)
            .expect("ok")
            .into_iter()
            .map(|h| h.key)
            .collect();
        // For p < 1 the threshold phi*||f||_p can exceed n, leaving no true
        // heavy hitters — recall is vacuously perfect then.
        let recall = if truth.is_empty() {
            1.0
        } else {
            truth.intersection(&reported).count() as f64 / truth.len() as f64
        };
        let floor = 0.1 / 4.0 * exact.total() as f64;
        let sound = reported
            .iter()
            .filter(|k| exact.frequency(**k) as f64 >= floor * 0.5)
            .count() as f64
            / reported.len().max(1) as f64;
        assert!(
            (recall - 1.0).abs() < 1e-12,
            "p={p}: sampling missed a true heavy hitter"
        );
        t.row(&[
            fmt_f64(p),
            truth.len().to_string(),
            reported.len().to_string(),
            fmt_f64(recall),
            fmt_f64(sound),
            fmt_bytes(summary.space_bytes()),
        ]);
    }
    t.print();
    t.save_tsv("dichotomy_easy.tsv");
}

/// A heavy-hitter oracle backed by a uniform sample of `T` rows — the
/// p <= 1 tool, deliberately misapplied at p = 2 to expose the dichotomy.
/// Uses the sample-estimated frequency of the pattern against the
/// sample-estimated l_p norm.
///
/// On the Theorem 5.3 instance the distinguishing pattern's l_1 share is
/// `1/(|T_Alice|+1)`, so the sample distinguishes only once `T` grows past
/// `|T_Alice|` — and `|T_Alice|` is `2^{Ω(d)}`, which is the lower bound.
struct SampledHhOracle<const T: usize>(UniformSampleSummary);

impl<const T: usize> HhOracle for SampledHhOracle<T> {
    fn build(data: &Dataset) -> Self {
        Self(UniformSampleSummary::build(data, T, 0xd1c0))
    }

    fn is_heavy(&self, cols: &ColumnSet, key: PatternKey, phi: f64, p: f64) -> bool {
        // Estimate f(key) and ||f||_p from the sample alone.
        let keys = self.0.projected_sample(cols).expect("valid");
        if keys.is_empty() {
            return false;
        }
        let rate = self.0.rate();
        let mut counts: std::collections::HashMap<PatternKey, u64> =
            std::collections::HashMap::new();
        for k in keys {
            *counts.entry(k).or_insert(0) += 1;
        }
        let fk = counts.get(&key).copied().unwrap_or(0) as f64 / rate;
        let fp: f64 = counts.values().map(|&c| (c as f64 / rate).powf(p)).sum();
        fk >= phi * fp.powf(1.0 / p)
    }

    fn bytes(&self) -> usize {
        self.0.space_bytes()
    }
}

/// Part 2: p > 1 heavy hitters on the Theorem 5.3 instance — hard.
fn hard_side() {
    banner("Hard side: l_2 heavy hitters on the Theorem 5.3 instance");
    let mut t = Table::new(
        "Index accuracy, exact vs sampled summary (p = 2, phi = 0.25)",
        &[
            "oracle",
            "trials",
            "accuracy",
            "yes-acc",
            "no-acc",
            "mean summary size",
        ],
    );
    let trials = 20;
    {
        let p: HhProtocol<ExactHhOracle> = HhProtocol::new(code_params(3), 2.0, 0.25);
        let r = run_trials(&p, trials, 4);
        assert_eq!(r.accuracy(), 1.0, "exact oracle must be perfect");
        t.row(&[
            "exact".to_string(),
            trials.to_string(),
            fmt_f64(r.accuracy()),
            fmt_f64(r.yes_accuracy()),
            fmt_f64(r.no_accuracy()),
            fmt_bytes(r.mean_summary_bytes as usize),
        ]);
    }
    fn sampled_row<const T: usize>(t: &mut Table, trials: usize) -> f64 {
        let p: HhProtocol<SampledHhOracle<T>> = HhProtocol::new(code_params(3), 2.0, 0.25);
        let r = run_trials(&p, trials, 4);
        t.row(&[
            format!("uniform sample t={T}"),
            trials.to_string(),
            fmt_f64(r.accuracy()),
            fmt_f64(r.yes_accuracy()),
            fmt_f64(r.no_accuracy()),
            fmt_bytes(r.mean_summary_bytes as usize),
        ]);
        r.accuracy()
    }
    // The distinguishing pattern's l_1 share is 1/(|T_Alice|+1) ~ 1/13 at
    // these parameters (Alice holds ~6 words on average), so samples below
    // ~a dozen rows cannot see it: accuracy collapses toward one-sided
    // guessing, and recovers only as t grows past |T_Alice| — which the
    // construction makes 2^{Ω(d)}.
    let acc_small = sampled_row::<4>(&mut t, trials);
    sampled_row::<16>(&mut t, trials);
    let acc_large = sampled_row::<256>(&mut t, trials);
    assert!(
        acc_small < acc_large,
        "tiny-sample accuracy {acc_small} should fall below large-sample {acc_large}"
    );
    println!(
        "\nnote: the p<=1 summary applied at p=2 scores {} at t=4 vs {} at t=256; \
         the instance forces any summary to scale with |T_Alice| = 2^Omega(d) — \
         Theorem 5.3's dichotomy observed.",
        fmt_f64(acc_small),
        fmt_f64(acc_large)
    );
    t.print();
    t.save_tsv("dichotomy_hard.tsv");
}

/// Part 3: the Theorem 5.4 F_p gaps.
fn fp_gaps() {
    banner("Theorem 5.4: measured F_p yes/no gaps");
    let code = RandomCode::generate(code_params(5)).expect("code");
    let others: Vec<usize> = (1..10).collect();
    let mut t = Table::new(
        "F_p(A, supp(y)) with and without y in T",
        &["p", "F_p (y in T)", "F_p (y not in T)", "ratio"],
    );
    for &p in &[0.25, 0.5, 0.75] {
        let gap = measure_fp_gap(&code, &others, 0, p);
        assert!(gap.yes_fp > gap.no_fp, "p={p}: no separation");
        t.row(&[
            fmt_f64(p),
            fmt_f64(gap.yes_fp),
            fmt_f64(gap.no_fp),
            fmt_f64(gap.yes_fp / gap.no_fp),
        ]);
    }
    t.print();
    t.save_tsv("dichotomy_fp.tsv");
}

/// Part 4: the Theorem 5.5 sampling dichotomy.
fn sampling_sides() {
    banner("Theorem 5.5: l_p sampling — M' mass and the l_1 exception");
    let code = RandomCode::generate(code_params(7)).expect("code");
    let mut t = Table::new(
        "M' mass (p = 0.5) and l_1 sampling sanity",
        &["quantity", "value"],
    );
    let yes_mass = m_prime_mass(&code, &[0, 1, 2, 3], 0, 0.5);
    let no_mass = m_prime_mass(&code, &[1, 2, 3], 0, 0.5);
    assert!(yes_mass > 0.1, "yes-case M' mass {yes_mass} not constant");
    assert_eq!(no_mass, 0.0, "no-case M' mass must be zero");
    t.row(&[
        "M' mass, y in T (constant fraction)".to_string(),
        fmt_f64(yes_mass),
    ]);
    t.row(&[
        "M' mass, y not in T (exactly zero)".to_string(),
        fmt_f64(no_mass),
    ]);

    // The l_1 exception: reservoir-based sampling of the same instance is
    // accurate in small space (p = 1 dichotomy side).
    let inst = pfe_stream::adversarial::FpInstance::build(code.clone(), &[0, 1, 2, 3]);
    let d = code.params().d;
    let y = code.words()[0];
    let cols = ColumnSet::from_mask(d, y).expect("valid");
    let exact = ExactSummary::build(&inst.data);
    let f = exact.freq_vector(&cols).expect("ok");
    let sample = UniformSampleSummary::build(&inst.data, 512, 8);
    let draws = sample.l1_sample(&cols, 4000, 9).expect("ok");
    // Empirical l1 rate of the all-zero pattern vs truth f_0/n.
    let truth = f.frequency(PatternKey::new(0)) as f64 / f.total() as f64;
    let obs =
        draws.iter().filter(|s| s.key == PatternKey::new(0)).count() as f64 / draws.len() as f64;
    assert!(
        (obs - truth).abs() < 0.05,
        "l1 sampler off: observed {obs} vs true {truth}"
    );
    t.row(&[
        "l_1 sampler |observed - true| rate (small space, OK)".to_string(),
        fmt_f64((obs - truth).abs()),
    ]);
    t.print();
    t.save_tsv("dichotomy_sampling.tsv");
}

fn main() {
    banner("SECTION 5 DICHOTOMY EXPERIMENTS");
    easy_side();
    hard_side();
    fp_gaps();
    sampling_sides();
    println!(
        "\nresults written under {:?}",
        pfe_bench::report::results_dir()
    );
}
