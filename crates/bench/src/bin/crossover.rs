//! Upper bound meets lower bound: the α-net `F_0` summary (Section 6) run
//! inside the Theorem 4.1 Index reduction.
//!
//! The protocol's separation is `Δ = Q/k` (Equation 3). The α-net answers
//! Bob's size-`k` query with multiplicative guarantee `β·Q^{|CΔC′|}`;
//! the query is *in the net* (distortion 1, sketch error only) exactly
//! when `k ≤ (1/2−α)d`, i.e. `α ≤ 1/2 − k/d`. The experiment sweeps α and
//! shows the accuracy cliff at that threshold — the sharpest possible
//! illustration that the paper's upper and lower bounds talk about the
//! same quantity:
//!
//! - `α ≤ 1/2 − k/d`: net contains the query, protocol decides correctly,
//!   space is large;
//! - `α > 1/2 − k/d`: rounding distortion `Q^{≥1} = Q ≥ Δ` exceeds the
//!   separation, the decision collapses, space is small.
//!
//! Run: `cargo run -p pfe-bench --release --bin crossover`

use pfe_bench::report::{banner, fmt_bytes, fmt_f64, Table};
use pfe_core::alpha_net::{AlphaNet, AlphaNetF0, NetMode};
use pfe_lowerbounds::f0::{F0Oracle, F0Protocol};
use pfe_lowerbounds::index_problem::run_trials;
use pfe_row::{ColumnSet, Dataset};
use pfe_sketch::kmv::Kmv;
use pfe_sketch::traits::SpaceUsage;

const D: u32 = 12;
const K: u32 = 3;
const Q: u32 = 8;
const UNIVERSE: usize = 16;
const TRIALS: usize = 30;

// α selected per build via a thread-local (the oracle trait is
// construct-by-data; the sweep parameter must reach it out of band).
thread_local! {
    static CURRENT_ALPHA: std::cell::Cell<f64> = const { std::cell::Cell::new(0.25) };
}

struct NetOracle {
    summary: AlphaNetF0<Kmv>,
}

impl F0Oracle for NetOracle {
    fn build(data: &Dataset) -> Self {
        let alpha = CURRENT_ALPHA.with(|a| a.get());
        let net = AlphaNet::new(D, alpha).expect("valid alpha");
        let summary = AlphaNetF0::build(data, net, NetMode::Full, 1 << 24, |mask| {
            Kmv::new(256, mask ^ 0xabcd)
        })
        .expect("net builds");
        Self { summary }
    }

    fn f0(&self, cols: &ColumnSet) -> f64 {
        self.summary.f0(cols).expect("valid query").estimate
    }

    fn bytes(&self) -> usize {
        self.summary.space_bytes()
    }
}

fn main() {
    banner("CROSSOVER — alpha-net summary inside the Theorem 4.1 reduction");
    println!(
        "\nprotocol: d={D}, k={K}, Q={Q}; separation Delta = Q/k = {:.2}; \
         net threshold alpha* = 1/2 - k/d = {:.3}",
        Q as f64 / K as f64,
        0.5 - K as f64 / D as f64
    );
    let mut t = Table::new(
        "Index accuracy vs alpha (E-X1)",
        &[
            "alpha",
            "query in net?",
            "distortion bound",
            "accuracy",
            "yes-acc",
            "no-acc",
            "mean summary bytes",
        ],
    );
    let threshold = 0.5 - K as f64 / D as f64;
    let mut last_in_net_acc = 0.0;
    let mut first_out_acc = f64::NAN;
    for &alpha in &[0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40] {
        CURRENT_ALPHA.with(|a| a.set(alpha));
        let net = AlphaNet::new(D, alpha).expect("valid");
        let query_in_net = K <= net.small_size();
        // Distortion the size-k query actually pays.
        let probe = ColumnSet::from_indices(D, &(0..K).collect::<Vec<_>>()).expect("valid");
        let rounded = net.round(&probe).expect("ok");
        let distortion = (Q as f64).powi(rounded.sym_diff as i32);
        let p: F0Protocol<NetOracle> = F0Protocol::new(D, K, Q, UNIVERSE, 1);
        let r = run_trials(&p, TRIALS, 2);
        if query_in_net {
            last_in_net_acc = r.accuracy();
        } else if first_out_acc.is_nan() {
            first_out_acc = r.accuracy();
        }
        t.row(&[
            fmt_f64(alpha),
            if query_in_net {
                "yes".into()
            } else {
                "no".to_string()
            },
            fmt_f64(distortion),
            fmt_f64(r.accuracy()),
            fmt_f64(r.yes_accuracy()),
            fmt_f64(r.no_accuracy()),
            fmt_bytes(r.mean_summary_bytes as usize),
        ]);
    }
    t.print();
    t.save_tsv("crossover.tsv");
    assert!(
        last_in_net_acc >= 0.95,
        "in-net regime should decide Index: accuracy {last_in_net_acc}"
    );
    assert!(
        first_out_acc <= 0.75,
        "out-of-net regime should collapse: accuracy {first_out_acc}"
    );
    println!(
        "\ncliff observed at alpha* = {threshold:.3}: accuracy {} (in-net) vs {} \
         (first rounded alpha) — the distortion Q^1 = {Q} exceeds the separation \
         Delta = {:.2} the moment the query leaves the net, exactly as Lemma 6.4 \
         and Theorem 4.1 together predict.",
        fmt_f64(last_in_net_acc),
        fmt_f64(first_out_acc),
        Q as f64 / K as f64
    );
    println!(
        "\nresults written under {:?}",
        pfe_bench::report::results_dir()
    );
}
