//! Related-work contrast experiments (paper §1 and §2.2): why the
//! projected-frequency model is neither the hypotheticals model nor the
//! independence-assumption world.
//!
//! 1. **Hypotheticals / provisioning** (Assadi et al. \[2\]): union-distinct
//!    over turned-on columns is `poly(d/ε)`-space easy, yet carries no
//!    signal about projected `F_0` — on the same data the two statistics
//!    diverge by orders of magnitude, and the union summary cannot decide
//!    the Theorem 4.1 Index instances.
//! 2. **Subcube heavy hitters under independence** (Kveton et al. \[13\]):
//!    the `O(dQ)`-space Naïve-Bayes estimator is accurate exactly when the
//!    independence assumption holds and fails on correlated columns, where
//!    the paper's assumption-free sampling summary stays correct.
//!
//! Run: `cargo run -p pfe-bench --release --bin contrasts`

use pfe_bench::report::{banner, fmt_bytes, fmt_f64, Table};
use pfe_core::{MarginalsSummary, UniformSampleSummary};
use pfe_lowerbounds::f0::{ExactF0Oracle, F0Protocol};
use pfe_lowerbounds::hypotheticals::{model_divergence, HypotheticalsProtocol};
use pfe_lowerbounds::index_problem::run_trials;
use pfe_row::{ColumnSet, FrequencyVector};
use pfe_sketch::traits::SpaceUsage;
use pfe_stream::gen::{correlated_columns, uniform_qary};

fn hypotheticals_contrast() {
    banner("Hypotheticals model vs projected F0 (paper Section 2.2, [2])");
    // Divergence on one dataset.
    let data = uniform_qary(4, 14, 20_000, 1);
    let mut t = Table::new(
        "Union-distinct vs projected F0, same data (Q=4, d=14, n=20k)",
        &[
            "|C|",
            "union-distinct (hypotheticals)",
            "projected F0 (this paper)",
        ],
    );
    for width in [2u32, 6, 10, 14] {
        let cols = ColumnSet::from_indices(14, &(0..width).collect::<Vec<_>>()).expect("valid");
        let (union, f0) = model_divergence(&data, &cols);
        assert!(union <= 4, "union-distinct exceeded alphabet");
        t.row(&[width.to_string(), union.to_string(), f0.to_string()]);
    }
    t.print();
    t.save_tsv("contrasts_divergence.tsv");

    // Index decision: union summary vs projected-F0 exact oracle.
    let mut t = Table::new(
        "Theorem 4.1 Index instances (d=12, k=3, Q=8)",
        &["oracle", "statistic", "accuracy", "mean summary size"],
    );
    {
        let p: F0Protocol<ExactF0Oracle> = F0Protocol::new(12, 3, 8, 16, 1);
        let r = run_trials(&p, 40, 2);
        t.row(&[
            "exact projected F0".into(),
            "distinct row vectors".into(),
            fmt_f64(r.accuracy()),
            fmt_bytes(r.mean_summary_bytes as usize),
        ]);
        assert_eq!(r.accuracy(), 1.0);
    }
    {
        let p = HypotheticalsProtocol::new(12, 3, 8, 16, 64, 1);
        let r = run_trials(&p, 40, 2);
        t.row(&[
            "per-column KMV union".into(),
            "distinct values in union".into(),
            fmt_f64(r.accuracy()),
            fmt_bytes(r.mean_summary_bytes as usize),
        ]);
        assert!(r.accuracy() <= 0.6, "union statistic decided Index?!");
    }
    t.print();
    t.save_tsv("contrasts_protocol.tsv");
    println!(
        "\nreading: the poly(d)-space union summary is accurate for its own\n\
         statistic yet at chance on the projected-F0 decision — the models\n\
         genuinely differ (paper: 'these disparities highlight the differences\n\
         in our models')."
    );
}

fn independence_contrast() {
    banner("Independence-assumption baseline vs assumption-free sampling ([13])");
    let d = 10;
    let n = 40_000;
    let independent = uniform_qary(2, d, n, 3);
    // Two independent source columns, eight (possibly negated) copies:
    // maximally concentrated joint distribution.
    let correlated = correlated_columns(d, n, 2, 4);
    // Error metric: additive error as a fraction of n — the guarantee form
    // of Theorem 5.1 (|est - true| <= eps * ||f||_1).
    let mut t = Table::new(
        "Top-pattern frequency estimation, additive error / n",
        &[
            "data",
            "query",
            "NaiveBayes O(dQ) space",
            "uniform sample (Thm 5.1)",
            "NB bytes",
            "sample bytes",
        ],
    );
    for (name, data) in [("independent", &independent), ("correlated", &correlated)] {
        let marg = MarginalsSummary::build(data);
        let samp = UniformSampleSummary::build(data, 4096, 5);
        let cols = ColumnSet::full(d).expect("valid");
        let exact = FrequencyVector::compute(data, &cols).expect("fits");
        let (key, count) = exact
            .sorted_counts()
            .into_iter()
            .max_by_key(|&(_, c)| c)
            .expect("nonempty");
        let err_m = (marg.frequency(&cols, key).expect("ok") - count as f64).abs() / n as f64;
        let err_s = (samp.frequency(&cols, key).expect("ok") - count as f64).abs() / n as f64;
        t.row(&[
            name.into(),
            format!("{cols}"),
            fmt_f64(err_m),
            fmt_f64(err_s),
            fmt_bytes(marg.space_bytes()),
            fmt_bytes(samp.space_bytes()),
        ]);
        if name == "independent" {
            assert!(err_m < 0.02, "NB should work on independent data: {err_m}");
        } else {
            assert!(err_m > 0.1, "NB should fail on correlated data: {err_m}");
        }
        assert!(err_s < 0.03, "sampling should work on {name}: {err_s}");
    }
    t.print();
    t.save_tsv("contrasts_independence.tsv");
    println!(
        "\nreading: prior subcube-HH work 'proceeded under strong statistical\n\
         independence assumptions' (paper §1); the assumption buys O(dQ) space\n\
         but silently breaks on correlated columns, which the paper's\n\
         assumption-free summaries handle."
    );
}

fn main() {
    banner("RELATED-WORK CONTRASTS — the models the paper distinguishes itself from");
    hypotheticals_contrast();
    independence_contrast();
    println!(
        "\nresults written under {:?}",
        pfe_bench::report::results_dir()
    );
}
