//! Ablation experiments (E-A1, E-A2):
//!
//! 1. **Lemma 6.4 tightness** — the measured rounding distortion
//!    `P(A,C′)/P(A,C)` against the bound `2^{|CΔC′|·x}` (`x = 1` for `F_0`,
//!    `|p−1|` for `F_p`), on uniform and adversarial (star-code) data.
//! 2. **Sketch plug-in ablation** — KMV vs HyperLogLog vs LinearCounting
//!    inside the α-net: bytes and observed error at equal α.
//! 3. **Net-mode ablation** — Full vs BoundaryOnly materialization.
//!
//! Run: `cargo run -p pfe-bench --release --bin ablation`

use pfe_bench::report::{banner, fmt_bytes, fmt_f64, Table};
use pfe_codes::constant_weight::ConstantWeightCode;
use pfe_core::alpha_net::{AlphaNet, AlphaNetF0, NetMode};
use pfe_core::ExactSummary;
use pfe_hash::rng::Xoshiro256pp;
use pfe_row::{ColumnSet, Dataset, FrequencyVector};
use pfe_sketch::traits::{DistinctSketch, SpaceUsage};
use pfe_sketch::{Bjkst, HyperLogLog, Kmv, LinearCounting};
use pfe_stream::adversarial::F0Instance;
use pfe_stream::gen::uniform_binary;

const D: u32 = 12;

fn datasets() -> Vec<(&'static str, Dataset)> {
    let uniform = uniform_binary(D, 4096, 1);
    // Adversarial: a star-code instance (the Theorem 4.1 shape) over
    // binary alphabet — concentrated supports stress the rounding.
    let code = ConstantWeightCode::new(D, 4);
    let mut rng = Xoshiro256pp::seed_from_u64(2);
    let mut words = std::collections::BTreeSet::new();
    while words.len() < 12 {
        let r = (rng.next_u64() as u128) % code.size();
        words.insert(code.unrank(r));
    }
    let words: Vec<u64> = words.into_iter().collect();
    let star = F0Instance::build(code, 2, &words).data;
    vec![("uniform", uniform), ("star-code", star)]
}

/// Part 1: measured distortion vs the Lemma 6.4 bound.
fn distortion_tightness() {
    banner("Lemma 6.4: measured rounding distortion vs bound (E-A1)");
    let mut t = Table::new(
        "Worst measured distortion over 300 queries",
        &[
            "data",
            "P",
            "alpha",
            "worst measured",
            "bound 2^{max |delta| * x}",
            "tight?",
        ],
    );
    for (name, data) in datasets() {
        let exact = ExactSummary::build(&data);
        for &alpha in &[0.1, 0.25, 0.4] {
            let net = AlphaNet::new(D, alpha).expect("valid");
            for &(label, p) in &[("F0", 0.0), ("F0.5", 0.5), ("F2", 2.0)] {
                let x = if p == 0.0 { 1.0 } else { (p - 1.0_f64).abs() };
                let mut rng = Xoshiro256pp::seed_from_u64(3);
                let mut worst: f64 = 1.0;
                let mut worst_bound: f64 = 1.0;
                for _ in 0..300 {
                    let mask = rng.next_u64() & ((1 << D) - 1);
                    let cols = ColumnSet::from_mask(D, mask).expect("valid");
                    let r = net.round(&cols).expect("ok");
                    if r.sym_diff == 0 {
                        continue;
                    }
                    let orig = FrequencyVector::compute(&data, &cols).expect("fits");
                    let rounded = exact.freq_vector(&r.target).expect("ok");
                    let (a, b) = if p == 0.0 {
                        (orig.f0() as f64, rounded.f0() as f64)
                    } else {
                        (orig.fp(p), rounded.fp(p))
                    };
                    let ratio = (a / b).max(b / a);
                    let bound = 2f64.powf(r.sym_diff as f64 * x);
                    assert!(
                        ratio <= bound * (1.0 + 1e-9),
                        "{name}/{label}/alpha={alpha}: measured distortion {ratio} \
                         exceeds Lemma 6.4 bound {bound}"
                    );
                    if ratio > worst {
                        worst = ratio;
                        worst_bound = bound;
                    }
                }
                t.row(&[
                    name.to_string(),
                    label.to_string(),
                    fmt_f64(alpha),
                    fmt_f64(worst),
                    fmt_f64(worst_bound),
                    if worst > 0.5 * worst_bound {
                        "near-tight".into()
                    } else {
                        "loose".to_string()
                    },
                ]);
            }
        }
    }
    t.print();
    t.save_tsv("ablation_distortion.tsv");
}

/// Part 2: sketch plug-ins at equal alpha.
fn sketch_plugins() {
    banner("Sketch plug-in ablation inside the alpha-net (E-A2)");
    let data = uniform_binary(D, 4096, 4);
    let exact = ExactSummary::build(&data);
    let alpha = 0.25;
    let net = AlphaNet::new(D, alpha).expect("valid");
    let mut t = Table::new(
        "KMV vs HLL vs LinearCounting (alpha = 0.25, 200 queries)",
        &["plug-in", "bytes", "median ratio", "worst ratio"],
    );

    fn run<S: DistinctSketch>(
        data: &Dataset,
        exact: &ExactSummary,
        net: AlphaNet,
        factory: impl FnMut(u64) -> S,
    ) -> (usize, f64, f64) {
        let summary = AlphaNetF0::build(data, net, NetMode::Full, 1 << 22, factory).expect("build");
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut ratios: Vec<f64> = Vec::new();
        for _ in 0..200 {
            let mask = rng.next_u64() & ((1 << D) - 1);
            let cols = ColumnSet::from_mask(D, mask).expect("valid");
            let est = summary.f0(&cols).expect("ok").estimate.max(1.0);
            let truth = exact.f0(&cols).expect("ok").value.max(1.0);
            ratios.push((est / truth).max(truth / est));
        }
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        (
            summary.space_bytes(),
            ratios[ratios.len() / 2],
            *ratios.last().expect("nonempty"),
        )
    }

    let (b, m, w) = run(&data, &exact, net, |mask| Kmv::new(64, mask));
    t.row(&["KMV k=64".to_string(), fmt_bytes(b), fmt_f64(m), fmt_f64(w)]);
    let (b, m, w) = run(&data, &exact, net, |mask| HyperLogLog::new(6, mask));
    t.row(&[
        "HLL b=6 (64 regs)".to_string(),
        fmt_bytes(b),
        fmt_f64(m),
        fmt_f64(w),
    ]);
    let (b, m, w) = run(&data, &exact, net, |mask| LinearCounting::new(512, mask));
    t.row(&[
        "LinearCounting m=512".to_string(),
        fmt_bytes(b),
        fmt_f64(m),
        fmt_f64(w),
    ]);
    let (b, m, w) = run(&data, &exact, net, |mask| Bjkst::new(64, mask));
    t.row(&[
        "BJKST budget=64".to_string(),
        fmt_bytes(b),
        fmt_f64(m),
        fmt_f64(w),
    ]);
    t.print();
    t.save_tsv("ablation_plugins.tsv");
}

/// Part 3: Full vs BoundaryOnly nets.
fn net_modes() {
    banner("Net-mode ablation: Full vs BoundaryOnly (E-A2)");
    let data = uniform_binary(D, 4096, 6);
    let exact = ExactSummary::build(&data);
    let mut t = Table::new(
        "Full vs BoundaryOnly (KMV k=64)",
        &[
            "alpha",
            "mode",
            "sketches",
            "bytes",
            "median ratio",
            "worst ratio",
        ],
    );
    for &alpha in &[0.15, 0.25, 0.35] {
        let net = AlphaNet::new(D, alpha).expect("valid");
        for (mode, label) in [(NetMode::Full, "full"), (NetMode::BoundaryOnly, "boundary")] {
            let summary = AlphaNetF0::build(&data, net, mode, 1 << 22, |mask| Kmv::new(64, mask))
                .expect("build");
            let mut rng = Xoshiro256pp::seed_from_u64(7);
            let mut ratios: Vec<f64> = Vec::new();
            for _ in 0..200 {
                let mask = rng.next_u64() & ((1 << D) - 1);
                let cols = ColumnSet::from_mask(D, mask).expect("valid");
                let est = summary.f0(&cols).expect("ok").estimate.max(1.0);
                let truth = exact.f0(&cols).expect("ok").value.max(1.0);
                ratios.push((est / truth).max(truth / est));
            }
            ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            t.row(&[
                fmt_f64(alpha),
                label.to_string(),
                summary.num_sketches().to_string(),
                fmt_bytes(summary.space_bytes()),
                fmt_f64(ratios[ratios.len() / 2]),
                fmt_f64(*ratios.last().expect("nonempty")),
            ]);
        }
    }
    t.print();
    t.save_tsv("ablation_modes.tsv");
}

fn main() {
    banner("ABLATIONS — distortion tightness, sketch plug-ins, net modes");
    distortion_tightness();
    sketch_plugins();
    net_modes();
    println!(
        "\nresults written under {:?}",
        pfe_bench::report::results_dir()
    );
}
