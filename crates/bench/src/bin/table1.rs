//! Regenerates **Table 1** of the paper: the family of projected-`F_0`
//! lower bounds (Theorem 4.1, Corollaries 4.2–4.4), in three layers:
//!
//! 1. the analytic rows exactly as the paper states them (instance shape ×
//!    approximation factor), instantiated at concrete parameters;
//! 2. measured yes/no pattern counts on constructed instances, verifying
//!    the separation `Q^k` vs `k·Q^{k−1}` (and its corollary forms) holds
//!    *exactly*;
//! 3. the Index protocol run end-to-end with the exact oracle (accuracy
//!    must be 1.0) and with a small uniform-sample summary (accuracy
//!    collapses toward 0.5) — the space/accuracy cliff that *is* the lower
//!    bound.
//!
//! Run: `cargo run -p pfe-bench --release --bin table1`

use pfe_bench::report::{banner, fmt_bytes, fmt_f64, Table};
use pfe_codes::constant_weight::ConstantWeightCode;
use pfe_hash::rng::Xoshiro256pp;
use pfe_lowerbounds::f0::{
    table1_corollary42, table1_corollary43, table1_corollary44, table1_theorem41, ExactF0Oracle,
    F0Oracle, F0Protocol, Table1Row,
};
use pfe_lowerbounds::index_problem::run_trials;
use pfe_row::{ColumnSet, Dataset, FrequencyVector};
use pfe_sketch::traits::SpaceUsage;
use pfe_stream::adversarial::{alphabet_reduce, expand_columns, F0Instance};

/// A compressed oracle: projected F0 estimated from a uniform row sample
/// (Theorem 5.1 machinery, which has no F0 guarantee — demonstrating that
/// the sampling upper bound does not transfer to F0, per Section 4).
struct SampledF0Oracle(pfe_core::UniformSampleSummary);

impl F0Oracle for SampledF0Oracle {
    fn build(data: &Dataset) -> Self {
        Self(pfe_core::UniformSampleSummary::build(data, 64, 0x5eed))
    }

    fn f0(&self, cols: &ColumnSet) -> f64 {
        // Distinct patterns in the sample — a natural but unsound F0 guess.
        let keys = self.0.projected_sample(cols).expect("valid query");
        let distinct: std::collections::HashSet<_> = keys.into_iter().collect();
        // Scale-up heuristic (Goodman-style naive): distinct / rate.
        distinct.len() as f64 / self.0.rate().max(1e-12)
    }

    fn bytes(&self) -> usize {
        self.0.space_bytes()
    }
}

fn analytic_rows() {
    banner("Table 1 (analytic): instance shape and approximation factor");
    let rows: Vec<(Table1Row, &str)> = vec![
        (table1_theorem41(16, 4, 16), "(d/k)^k x d over [Q]"),
        (table1_corollary42(12, 16), "2^d Q^{d/2} x d over [Q]"),
        (table1_corollary43(12), "2^d d^{d/2} x d over [d]"),
        (
            table1_corollary44(12, 16, 2),
            "2^d Q^{d/2} x d log_q Q over [q]",
        ),
    ];
    let mut t = Table::new(
        "Table 1 — F0 lower-bound family",
        &[
            "result",
            "instance shape (paper)",
            "log2(rows)",
            "columns",
            "alphabet",
            "approx factor",
            "log2 |C| (space bound bits)",
        ],
    );
    for (r, shape) in rows {
        t.row(&[
            r.label.to_string(),
            shape.to_string(),
            fmt_f64(r.log2_rows),
            fmt_f64(r.columns),
            fmt_f64(r.alphabet),
            fmt_f64(r.approx_factor),
            fmt_f64(r.log2_code_size),
        ]);
    }
    t.print();
    t.save_tsv("table1_analytic.tsv");
}

/// Build an instance holding `held_count` sampled words, measure F0 on a
/// held support and an unheld support.
fn measure_separation(
    d: u32,
    k: u32,
    q: u32,
    held_count: usize,
    seed: u64,
) -> (u64, u64, u128, u128) {
    let code = ConstantWeightCode::new(d, k);
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut words = std::collections::BTreeSet::new();
    while words.len() < held_count + 1 {
        let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % code.size();
        words.insert(code.unrank(r));
    }
    let words: Vec<u64> = words.into_iter().collect();
    let (held, absent) = (&words[..held_count], words[held_count]);
    let inst = F0Instance::build(code, q, held);
    let f_yes = FrequencyVector::compute(
        &inst.data,
        &ColumnSet::from_mask(d, held[0]).expect("valid"),
    )
    .expect("fits");
    let f_no =
        FrequencyVector::compute(&inst.data, &ColumnSet::from_mask(d, absent).expect("valid"))
            .expect("fits");
    (
        f_yes.f0(),
        f_no.f0(),
        inst.yes_threshold(),
        inst.no_ceiling(),
    )
}

fn measured_separations() {
    banner("Table 1 (measured): yes/no F0 on constructed instances");
    let mut t = Table::new(
        "Measured separations",
        &[
            "result",
            "params",
            "F0 (y in T)",
            "floor Q^k",
            "F0 (y not in T)",
            "ceiling kQ^{k-1}",
            "measured gap",
            "claimed gap Q/k",
        ],
    );
    let configs: [(&str, u32, u32, u32); 3] = [
        ("Theorem 4.1", 16, 4, 8),
        ("Corollary 4.2 (k=d/2)", 8, 4, 8),
        ("Corollary 4.3 (Q=d)", 8, 4, 8),
    ];
    for (label, d, k, q) in configs {
        let (yes, no, floor, ceiling) = measure_separation(d, k, q, 8, 42);
        assert!(yes as u128 >= floor, "{label}: yes case below floor");
        assert!(no as u128 <= ceiling, "{label}: no case above ceiling");
        t.row(&[
            label.to_string(),
            format!("d={d} k={k} Q={q}"),
            yes.to_string(),
            floor.to_string(),
            no.to_string(),
            ceiling.to_string(),
            fmt_f64(yes as f64 / no as f64),
            fmt_f64(q as f64 / k as f64),
        ]);
    }
    t.print();
    t.save_tsv("table1_measured.tsv");
}

fn corollary44_reduction() {
    banner("Corollary 4.4 (measured): alphabet reduction preserves the separation");
    let (d, k, big_q, small_q) = (8u32, 3u32, 16u32, 2u32);
    let code = ConstantWeightCode::new(d, k);
    let mut rng = Xoshiro256pp::seed_from_u64(7);
    let mut words = std::collections::BTreeSet::new();
    while words.len() < 7 {
        let r = (rng.next_u64() as u128) % code.size();
        words.insert(code.unrank(r));
    }
    let words: Vec<u64> = words.into_iter().collect();
    let (held, absent) = (&words[..6], words[6]);
    let inst = F0Instance::build(code, big_q, held);
    let reduced = alphabet_reduce(&inst.data, small_q);
    let mut t = Table::new(
        "Corollary 4.4 over [q]",
        &[
            "case",
            "original F0 (over [Q])",
            "reduced F0 (over [q])",
            "dims",
        ],
    );
    for (case, y) in [("y in T", held[0]), ("y not in T", absent)] {
        let cols = ColumnSet::from_mask(d, y).expect("valid");
        let expanded = expand_columns(&cols, big_q, small_q);
        let f_orig = FrequencyVector::compute(&inst.data, &cols).expect("fits");
        let f_red = FrequencyVector::compute(&reduced, &expanded).expect("fits");
        assert_eq!(f_orig.f0(), f_red.f0(), "reduction changed F0");
        t.row(&[
            case.to_string(),
            f_orig.f0().to_string(),
            f_red.f0().to_string(),
            format!(
                "{}x{} -> {}x{}",
                inst.data.num_rows(),
                inst.data.dimension(),
                reduced.num_rows(),
                reduced.dimension()
            ),
        ]);
    }
    t.print();
    t.save_tsv("table1_cor44.tsv");
}

fn index_protocol_cliff() {
    banner("Index protocol: exact oracle vs small uniform-sample summary");
    let mut t = Table::new(
        "Space/accuracy cliff (E-G1)",
        &[
            "oracle",
            "d,k,Q",
            "trials",
            "accuracy",
            "yes-acc",
            "no-acc",
            "mean summary size",
        ],
    );
    let (d, k, q, universe, trials) = (12u32, 3u32, 8u32, 20usize, 40usize);
    {
        let p: F0Protocol<ExactF0Oracle> = F0Protocol::new(d, k, q, universe, 1);
        let r = run_trials(&p, trials, 2);
        assert!(
            (r.accuracy() - 1.0).abs() < 1e-12,
            "exact oracle must be perfect"
        );
        t.row(&[
            "exact (Theta(nd))".to_string(),
            format!("{d},{k},{q}"),
            trials.to_string(),
            fmt_f64(r.accuracy()),
            fmt_f64(r.yes_accuracy()),
            fmt_f64(r.no_accuracy()),
            fmt_bytes(r.mean_summary_bytes as usize),
        ]);
    }
    {
        let p: F0Protocol<SampledF0Oracle> = F0Protocol::new(d, k, q, universe, 1);
        let r = run_trials(&p, trials, 2);
        t.row(&[
            "uniform sample t=64".to_string(),
            format!("{d},{k},{q}"),
            trials.to_string(),
            fmt_f64(r.accuracy()),
            fmt_f64(r.yes_accuracy()),
            fmt_f64(r.no_accuracy()),
            fmt_bytes(r.mean_summary_bytes as usize),
        ]);
        println!(
            "\nnote: sampled-summary accuracy {} (coin flip = 0.5) at {} vs exact's perfect \
             decision at Theta(nd) bytes — the 2^Omega(d) bound in action.",
            fmt_f64(r.accuracy()),
            fmt_bytes(r.mean_summary_bytes as usize),
        );
    }
    t.print();
    t.save_tsv("table1_protocol.tsv");
}

fn main() {
    banner("TABLE 1 REPRODUCTION — projected F0 lower bounds");
    analytic_rows();
    measured_separations();
    corollary44_reduction();
    index_protocol_cliff();
    println!(
        "\nresults written under {:?}",
        pfe_bench::report::results_dir()
    );
}
