//! Regenerates **Figure 1** of the paper: the space–approximation tradeoff
//! of the α-net scheme at `d = 20`, plus an empirical validation with real
//! sketches at `d = 12`.
//!
//! Panes (as in the paper):
//!   (a) relative space `2^{H(1/2−α)d}/2^d` vs `α` — we print both the
//!       analytic bound and the *exact* `|N|/2^d`;
//!   (b) approximation factor `2^{αd}` vs `α` (log2 scale in the paper);
//!   (c) the tradeoff curve: relative space vs factor.
//!
//! The paper's reading of pane (c): at relative space `2^{-2}` the factor
//! is "on the order of 10s"; at `2^{-8}` it is "on the order of hundreds",
//! with `2^{12} = 4096 ≪ 2^{20}` summaries kept. Both checkpoints are
//! asserted below.
//!
//! Run: `cargo run -p pfe-bench --release --bin figure1`

use pfe_bench::report::{banner, fmt_bytes, fmt_f64, Table};
use pfe_codes::entropy::{binary_entropy, f0_distortion};
use pfe_core::alpha_net::{AlphaNet, AlphaNetF0, NetMode};
use pfe_core::ExactSummary;
use pfe_hash::rng::Xoshiro256pp;
use pfe_row::ColumnSet;
use pfe_sketch::kmv::Kmv;
use pfe_sketch::traits::SpaceUsage;
use pfe_stream::gen::{clustered_subspace, uniform_binary, ClusteredConfig};
use pfe_stream::interleave;

const D_ANALYTIC: u32 = 20;
const D_EMPIRICAL: u32 = 12;

fn analytic_panes() {
    banner(format!("Figure 1 (analytic), d = {D_ANALYTIC}").as_str());
    let mut t = Table::new(
        "Figure 1 — curves (panes a, b, c)",
        &[
            "alpha",
            "relative space (bound 2^{H(1/2-a)d}/2^d)",
            "relative space (exact |N|/2^d)",
            "approx factor 2^{alpha d}",
            "log2 factor",
            "summaries kept |N|",
        ],
    );
    // (alpha, exact log2 relative space, factor, |N|) per grid point.
    let mut points: Vec<(f64, f64, f64, f64)> = Vec::with_capacity(49);
    for i in 1..=49 {
        let alpha = i as f64 / 100.0;
        let net = AlphaNet::new(D_ANALYTIC, alpha).expect("valid");
        let bound = net.relative_space_bound();
        let exact = net.relative_space();
        let factor = f0_distortion(D_ANALYTIC, alpha);
        t.row(&[
            fmt_f64(alpha),
            format!("2^{:.2}", bound.log2()),
            format!("2^{:.2}", exact.log2()),
            fmt_f64(factor),
            fmt_f64(factor.log2()),
            (net.size() as u64).to_string(),
        ]);
        points.push((alpha, exact.log2(), factor, net.size() as f64));
    }
    t.print();
    t.save_tsv("figure1_analytic.tsv");

    // The paper's §6 illustration claims: "factor on the order of 10s" at
    // relative space ~2^-2; "order of hundreds" (with ~4096 << 2^20
    // summaries) at ~2^-8. The exact curve is step-wise in alpha, so take
    // the grid point closest to each checkpoint.
    let closest = |target: f64| {
        points
            .iter()
            .min_by(|a, b| {
                (a.1 - target)
                    .abs()
                    .partial_cmp(&(b.1 - target).abs())
                    .expect("finite")
            })
            .copied()
            .expect("nonempty grid")
    };
    let (_, _, f2, _) = closest(-2.0);
    let (_, _, f8, n8) = closest(-8.0);
    assert!(
        (4.0..200.0).contains(&f2),
        "factor at 2^-2 relative space = {f2}, expected order of 10s"
    );
    assert!(
        (64.0..4096.0).contains(&f8),
        "factor at 2^-8 relative space = {f8}, expected order of hundreds"
    );
    println!(
        "\npaper checkpoints: factor {} at relative space 2^-2 (order of 10s); \
         factor {} with {} summaries at 2^-8 (paper: ~4096 << 2^20 ~ 1e6).",
        fmt_f64(f2),
        fmt_f64(f8),
        fmt_f64(n8),
    );
    assert!(
        binary_entropy(0.5 - 0.25) < 1.0,
        "entropy sanity for the sublinearity claim"
    );
}

fn empirical_pane() {
    banner(
        format!("Figure 1 (empirical), d = {D_EMPIRICAL}: real sketches, measured space & error")
            .as_str(),
    );
    // Mixed workload: uniform (diverse) + planted clusters (compressible).
    let uniform = uniform_binary(D_EMPIRICAL, 2048, 11);
    let clustered = clustered_subspace(&ClusteredConfig {
        d: D_EMPIRICAL,
        n: 2048,
        clusters: 4,
        subspace_size: 6,
        noise: 0.05,
        seed: 12,
    })
    .data;
    let data = interleave(&uniform, &clustered);
    let exact = ExactSummary::build(&data);
    let exact_bytes = exact.space_bytes();

    let mut t = Table::new(
        "Empirical tradeoff (KMV k=64 per subset)",
        &[
            "alpha",
            "sketches",
            "measured bytes",
            "rel. space vs exact",
            "worst obs. ratio",
            "median obs. ratio",
            "distortion bound 2^{ceil(alpha d)}",
        ],
    );
    let mut rng = Xoshiro256pp::seed_from_u64(99);
    for &alpha in &[0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45] {
        let net = AlphaNet::new(D_EMPIRICAL, alpha).expect("valid");
        let summary = AlphaNetF0::build(&data, net, NetMode::Full, 1 << 22, |mask| {
            Kmv::new(64, mask ^ 0xf00d)
        })
        .expect("build");
        // 200 random queries of random sizes.
        let mut ratios: Vec<f64> = Vec::with_capacity(200);
        for _ in 0..200 {
            let mask = rng.next_u64() & ((1 << D_EMPIRICAL) - 1);
            let cols = ColumnSet::from_mask(D_EMPIRICAL, mask).expect("valid");
            let ans = summary.f0(&cols).expect("ok");
            let truth = exact.f0(&cols).expect("ok").value.max(1.0);
            let r = (ans.estimate.max(1.0) / truth).max(truth / ans.estimate.max(1.0));
            ratios.push(r);
        }
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let worst = *ratios.last().expect("nonempty");
        let median = ratios[ratios.len() / 2];
        let bound = 2f64.powi(net.max_rounding() as i32);
        // Sketch slack: KMV(64) has ~13% rse; allow 2x on top of rounding.
        assert!(
            worst <= bound * 2.0,
            "alpha={alpha}: worst ratio {worst} above distortion bound {bound} x sketch slack"
        );
        t.row(&[
            fmt_f64(alpha),
            summary.num_sketches().to_string(),
            fmt_bytes(summary.space_bytes()),
            fmt_f64(summary.space_bytes() as f64 / exact_bytes as f64),
            fmt_f64(worst),
            fmt_f64(median),
            fmt_f64(bound),
        ]);
    }
    t.print();
    t.save_tsv("figure1_empirical.tsv");
    println!(
        "\nexact baseline: {} for {} rows x {} cols",
        fmt_bytes(exact_bytes),
        data.num_rows(),
        D_EMPIRICAL
    );
}

fn main() {
    banner("FIGURE 1 REPRODUCTION — alpha-net space/approximation tradeoff");
    analytic_panes();
    empirical_pane();
    println!(
        "\nresults written under {:?}",
        pfe_bench::report::results_dir()
    );
}
