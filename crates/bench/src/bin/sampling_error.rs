//! Theorem 5.1 / Corollary 5.2 experiment (E-S1): the additive error of
//! uniform-sample frequency estimation scales as `√(ln(2/δ)/t)·‖f‖₁`,
//! independent of `n` and `d`, and — the paper's point — independent of
//! the query `C`, which arrives only after the sample is taken.
//!
//! Sweeps the sample size `t`, measures observed additive error across
//! many post-hoc queries, and compares against the Chernoff prediction.
//!
//! Run: `cargo run -p pfe-bench --release --bin sampling_error`

use pfe_bench::report::{banner, fmt_bytes, fmt_f64, Table};
use pfe_core::UniformSampleSummary;
use pfe_hash::rng::Xoshiro256pp;
use pfe_row::{ColumnSet, FrequencyVector};
use pfe_sketch::traits::SpaceUsage;
use pfe_stream::gen::zipf_patterns;

fn main() {
    banner("THEOREM 5.1 — uniform-sampling frequency estimation error");
    const D: u32 = 24;
    const N: usize = 100_000;
    const DELTA: f64 = 0.05;
    let data = zipf_patterns(D, N, 200, 1.2, 1);

    let mut t = Table::new(
        "Additive error vs sample size (E-S1)",
        &[
            "t",
            "predicted eps = sqrt(ln(2/delta)/t)",
            "observed p95 eps",
            "observed max eps",
            "violations (of 500)",
            "summary bytes",
        ],
    );
    let mut rng = Xoshiro256pp::seed_from_u64(2);
    let mut prev_p95 = f64::MAX;
    for &tsize in &[64usize, 256, 1024, 4096, 16384] {
        let summary = UniformSampleSummary::build(&data, tsize, 3);
        // 50 random queries x 10 heaviest patterns each = 500 checks.
        let mut errs: Vec<f64> = Vec::with_capacity(500);
        for _ in 0..50 {
            let mask = rng.next_u64() & ((1 << D) - 1);
            let cols = ColumnSet::from_mask(D, mask).expect("valid");
            let exact = FrequencyVector::compute(&data, &cols).expect("fits");
            for (key, count) in exact.sorted_counts().into_iter().take(10) {
                let est = summary.frequency(&cols, key).expect("ok");
                errs.push((est - count as f64).abs() / N as f64);
            }
        }
        errs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let p95 = errs[(0.95 * errs.len() as f64) as usize];
        let max = *errs.last().expect("nonempty");
        let predicted = ((2.0 / DELTA).ln() / tsize as f64).sqrt();
        let violations = errs.iter().filter(|&&e| e > predicted).count();
        // The bound holds per-query with prob 1-delta; across 500 checks a
        // few violations are expected but not many.
        assert!(
            violations <= (DELTA * 2.0 * errs.len() as f64) as usize + 5,
            "t={tsize}: {violations} violations of the eps bound"
        );
        // Error decreases with t (checked on p95 to dodge max-noise).
        assert!(
            p95 <= prev_p95 * 1.25,
            "t={tsize}: p95 {p95} did not improve on {prev_p95}"
        );
        prev_p95 = p95;
        t.row(&[
            tsize.to_string(),
            fmt_f64(predicted),
            fmt_f64(p95),
            fmt_f64(max),
            violations.to_string(),
            fmt_bytes(summary.space_bytes()),
        ]);
    }
    t.print();
    t.save_tsv("sampling_error.tsv");

    // Scaling shape: eps ~ t^{-1/2} means quadrupling t halves the error.
    println!(
        "\nscaling check: observed p95 at t=16384 vs t=1024 should be ~1/4: \
         see table rows above (Chernoff prediction column halves per 4x t)."
    );
    println!(
        "\nresults written under {:?}",
        pfe_bench::report::results_dir()
    );
}
