//! Build-cost scaling study (E-P1): the α-net's one-pass cost in practice.
//!
//! Algorithm 1 feeds every row to every net sketch, so build time is
//! `Θ(n · |N|)` sketch updates and space is `Θ(|N|)` sketches. This binary
//! measures both across `d` (net grows like `2^{H(1/2−α)d}`) and across
//! `n` (linear), and checks the measured growth tracks the analytic
//! `|N|` counts — the systems-facing counterpart of Lemma 6.2.
//!
//! Run: `cargo run -p pfe-bench --release --bin scaling`

use std::time::Instant;

use pfe_bench::report::{banner, fmt_bytes, fmt_f64, Table};
use pfe_core::alpha_net::{AlphaNet, AlphaNetF0, NetMode};
use pfe_sketch::kmv::Kmv;
use pfe_sketch::traits::SpaceUsage;
use pfe_stream::gen::uniform_binary;

fn sweep_d() {
    banner("Build scaling in d (alpha = 0.25, n = 2048, KMV k = 64)");
    let mut t = Table::new(
        "Net build vs dimension",
        &[
            "d",
            "|N| (sketches)",
            "build ms",
            "bytes",
            "ms per sketch-krow",
        ],
    );
    let n = 2048usize;
    let mut prev_sketches = 0u128;
    for d in [8u32, 10, 12, 14, 16] {
        let data = uniform_binary(d, n, 1);
        let net = AlphaNet::new(d, 0.25).expect("valid");
        let start = Instant::now();
        let summary = AlphaNetF0::build(&data, net, NetMode::Full, 1 << 24, |m| Kmv::new(64, m))
            .expect("build");
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        let sketches = summary.num_sketches() as u128;
        assert_eq!(sketches, net.size(), "materialization must equal |N|");
        assert!(
            sketches >= prev_sketches,
            "net size must grow with d at fixed alpha"
        );
        prev_sketches = sketches;
        let per_unit = elapsed / (sketches as f64 * n as f64 / 1000.0);
        t.row(&[
            d.to_string(),
            sketches.to_string(),
            fmt_f64(elapsed),
            fmt_bytes(summary.space_bytes()),
            fmt_f64(per_unit),
        ]);
    }
    t.print();
    t.save_tsv("scaling_d.tsv");
}

fn sweep_n() {
    banner("Build scaling in n (d = 12, alpha = 0.25)");
    let mut t = Table::new("Net build vs rows", &["n", "build ms", "ms/row (x1000)"]);
    let net = AlphaNet::new(12, 0.25).expect("valid");
    let mut times: Vec<(usize, f64)> = Vec::new();
    for n in [1000usize, 4000, 16000] {
        let data = uniform_binary(12, n, 2);
        let start = Instant::now();
        let summary = AlphaNetF0::build(&data, net, NetMode::Full, 1 << 24, |m| Kmv::new(64, m))
            .expect("build");
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert!(summary.num_sketches() > 0);
        times.push((n, elapsed));
        t.row(&[
            n.to_string(),
            fmt_f64(elapsed),
            fmt_f64(elapsed / n as f64 * 1000.0),
        ]);
    }
    t.print();
    t.save_tsv("scaling_n.tsv");
    // Linearity: 16x the rows should cost within ~3x of 16x the base time
    // (allowing cache effects and timer noise).
    let (n0, t0) = times[0];
    let (n2, t2) = times[2];
    let ratio = (t2 / t0) / (n2 as f64 / n0 as f64);
    assert!(
        (0.2..5.0).contains(&ratio),
        "build time not ~linear in n: normalized ratio {ratio}"
    );
    println!("\nlinearity check: time ratio / row ratio = {ratio:.2} (1.0 = perfectly linear)");
}

fn main() {
    banner("SCALING STUDY — alpha-net build cost (E-P1)");
    sweep_d();
    sweep_n();
    println!(
        "\nresults written under {:?}",
        pfe_bench::report::results_dir()
    );
}
