#![warn(missing_docs)]
//! Benchmark harness: regenerates every table and figure of the paper.
//!
//! Experiment binaries (see `EXPERIMENTS.md` for the index):
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table 1 — F0 lower-bound family (analytic + measured + protocol) |
//! | `figure1` | Figure 1 — α-net space/approximation tradeoff (analytic + empirical) |
//! | `sampling_error` | Theorem 5.1 — uniform-sampling frequency error scaling |
//! | `dichotomy` | Section 5 — the p<1 easy / p>1 hard dichotomies |
//! | `ablation` | Lemma 6.4 distortion tightness; sketch plug-in and net-mode ablations |
//!
//! Criterion microbenchmarks live under `benches/`.

pub mod report;
