//! Window subsystem benchmarks: repeated windowed queries through the
//! covering-set merge + fingerprint/answer caches, against the naive
//! alternative of rebuilding a summary suite over the suffix per query.
//!
//! The acceptance bar for the subsystem is ≥10× on repeated windowed
//! heavy-hitter queries; in practice a warm repeat is a hash probe while
//! a rebuild re-materializes the α-net over the whole suffix.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pfe_core::{SuiteConfig, SummarySuite};
use pfe_engine::{EngineConfig, Query};
use pfe_row::{BinaryMatrix, ColumnSet, Dataset};
use pfe_stream::gen::uniform_binary;
use pfe_window::{WindowConfig, WindowedEngine};

const D: u32 = 12;
const ROWS: usize = 50_000;
const WINDOW: u64 = 10_000;

fn ecfg() -> EngineConfig {
    EngineConfig {
        sample_t: 4096,
        kmv_k: 64,
        ..Default::default()
    }
}

fn raw_rows() -> Vec<u64> {
    match uniform_binary(D, ROWS, 1) {
        Dataset::Binary(m) => m.rows().to_vec(),
        Dataset::Qary(_) => unreachable!("generator yields binary data"),
    }
}

fn windowed_engine(rows: &[u64]) -> WindowedEngine {
    let engine = WindowedEngine::start(
        D,
        2,
        ecfg(),
        WindowConfig {
            bucket_rows: 1024,
            tier_cap: 4,
            max_tiers: 8,
            merged_cache: 4,
        },
    )
    .expect("start");
    engine.push_packed_batch(rows).expect("ingest");
    engine
}

/// The acceptance comparison: repeated windowed heavy-hitter queries.
fn bench_windowed_hh_repeated(c: &mut Criterion) {
    let rows = raw_rows();
    let engine = windowed_engine(&rows);
    let query = Query::over([0, 1, 2]).heavy_hitters(0.05).window(WINDOW);
    // Warm both caches once (merge + first compute).
    let covered = engine
        .query(&query)
        .expect("ok")
        .window
        .expect("coverage")
        .covered_rows as usize;

    let mut g = c.benchmark_group("window_hh_repeated");
    g.sample_size(10);
    g.throughput(Throughput::Elements(1));
    g.bench_function("covering_merge_plus_cache", |b| {
        b.iter(|| black_box(engine.query(&query).expect("ok")))
    });
    // The naive alternative: rebuild a summary suite over the same
    // suffix for every query.
    let suffix = rows[rows.len() - covered..].to_vec();
    g.bench_function("rebuild_from_suffix", |b| {
        b.iter(|| {
            let data = Dataset::Binary(BinaryMatrix::from_rows(D, suffix.clone()));
            let suite = SummarySuite::build(
                &data,
                &SuiteConfig {
                    alpha: 0.25,
                    kmv_k: 64,
                    sample_t: 4096,
                    keep_exact: false,
                    ..Default::default()
                },
            )
            .expect("build");
            let cols = ColumnSet::from_indices(D, &[0, 1, 2]).expect("valid");
            black_box(
                suite
                    .sample()
                    .heavy_hitters(&cols, 0.05, 1.0, 2.0)
                    .expect("ok"),
            )
        })
    });
    g.finish();
}

/// Cache layering: answer-cache hit vs merged-snapshot hit (bypass) vs
/// cold merge (fresh fingerprint every time).
fn bench_windowed_cache_layers(c: &mut Criterion) {
    let rows = raw_rows();
    let engine = windowed_engine(&rows);
    let query = Query::over([0, 1, 2, 3]).heavy_hitters(0.05).window(WINDOW);
    engine.query(&query).expect("warm");

    let mut g = c.benchmark_group("window_hh_layers");
    g.sample_size(10);
    g.bench_function("answer_cache_hit", |b| {
        b.iter(|| black_box(engine.query(&query).expect("ok")))
    });
    let bypass = query.clone().bypass_cache();
    g.bench_function("merged_snapshot_hit", |b| {
        b.iter(|| black_box(engine.query(&bypass).expect("ok")))
    });
    // Fresh engine with memoization disabled: every query re-merges its
    // covering set.
    let cold = WindowedEngine::start(
        D,
        2,
        EngineConfig {
            cache_capacity: 0,
            ..ecfg()
        },
        WindowConfig {
            bucket_rows: 1024,
            tier_cap: 4,
            max_tiers: 8,
            merged_cache: 0,
        },
    )
    .expect("start");
    cold.push_packed_batch(&rows).expect("ingest");
    g.bench_function("cold_covering_merge", |b| {
        b.iter(|| black_box(cold.query(&query).expect("ok")))
    });
    g.finish();
}

/// Windowed ingest cost: ring maintenance (sealing, cascades) on top of
/// plain summary pushes.
fn bench_windowed_ingest(c: &mut Criterion) {
    let rows = raw_rows();
    let mut g = c.benchmark_group("window_ingest_d12_n50000");
    g.sample_size(10);
    g.throughput(Throughput::Elements(ROWS as u64));
    g.bench_function("ring", |b| {
        b.iter(|| {
            let engine = windowed_engine(&rows);
            black_box(engine.retained_rows())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_windowed_hh_repeated,
    bench_windowed_cache_layers,
    bench_windowed_ingest
);
criterion_main!(benches);
