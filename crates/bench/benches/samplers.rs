//! Criterion microbenchmarks for the sampling substrate: Algorithm R vs
//! the skip-ahead Algorithm L (the point of L is fewer RNG draws on long
//! streams), the weighted reservoir, and the turnstile ℓ₀-sampler.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pfe_sketch::{L0Sampler, Reservoir, ReservoirL, WeightedReservoir};

const N: u64 = 100_000;
const T: usize = 64;

fn bench_reservoirs(c: &mut Criterion) {
    let mut g = c.benchmark_group("reservoir_100k_stream_t64");
    g.throughput(Throughput::Elements(N));
    g.bench_function("algorithm_r", |b| {
        b.iter(|| {
            let mut r = Reservoir::new(T, 1);
            for i in 0..N {
                r.insert(black_box(i));
            }
            black_box(r.sample().len())
        })
    });
    g.bench_function("algorithm_l_skip_ahead", |b| {
        b.iter(|| {
            let mut r = ReservoirL::new(T, 1);
            for i in 0..N {
                r.insert(black_box(i));
            }
            black_box(r.sample().len())
        })
    });
    g.bench_function("weighted_a_res", |b| {
        b.iter(|| {
            let mut r = WeightedReservoir::new(T, 1);
            for i in 0..N {
                r.insert(black_box(i), 1.0 + (i % 10) as f64);
            }
            black_box(r.seen())
        })
    });
    g.finish();
}

fn bench_l0(c: &mut Criterion) {
    let mut g = c.benchmark_group("l0_sampler");
    let n = 10_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("update_10k_16reps", |b| {
        b.iter(|| {
            let mut s = L0Sampler::new(7);
            for i in 0..n {
                s.update(black_box(i), 1);
            }
            black_box(s.sample())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_reservoirs, bench_l0);
criterion_main!(benches);
