//! Connection-scale benchmark: live query latency while a crowd of idle
//! connections hangs off the same event loop.
//!
//! The readiness-loop design claims idle sessions are free — epoll holds
//! them, no thread and no dispatcher work is spent until bytes arrive.
//! If that claim holds, the measured round-trip time of the active
//! clients should be flat across crowd sizes; under the old
//! thread-per-connection design the crowd would have exhausted the pool
//! long before the first measurement.
//!
//! Crowd sizes stop at 5000 here because both ends of every connection
//! live in this one process (2 fds each, against one `RLIMIT_NOFILE`
//! budget); `scripts/load_test.sh` runs the same measurement across two
//! processes to reach the 10k point. On the 1-core CI box the absolute
//! numbers compress (server, crowd, and clients share the core) — the
//! shape across crowd sizes is the signal, not the magnitudes.

use std::hint::black_box;
use std::net::{SocketAddr, TcpStream};

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pfe_engine::Json;
use pfe_server::{Client, Server, ServerConfig, ServerHandle, ShutdownReport};
use pfe_stream::gen::uniform_binary;

const D: u32 = 12;
const ROWS: usize = 10_000;
/// Requests per active connection per measured round.
const REQUESTS: usize = 25;
/// Active (traffic-carrying) connections per round.
const ACTIVE: usize = 4;

fn query_lines() -> Vec<String> {
    vec![
        r#"{"op":"f0","cols":[0,1,2,3,4,5]}"#.to_string(),
        r#"{"op":"f0","cols":[0,1,2,3,4,5,6]}"#.to_string(),
        r#"{"op":"heavy_hitters","cols":[0,1,2],"phi":0.05}"#.to_string(),
        r#"{"op":"frequency","cols":[0,1],"pattern":[1,1]}"#.to_string(),
    ]
}

fn serve_ingested(
    session_capacity: usize,
) -> (
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<ShutdownReport>,
) {
    let server = Server::bind(ServerConfig {
        workers: 2,
        queue: session_capacity,
        ..Default::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("run"));

    let mut feeder = Client::connect(addr).expect("connect");
    feeder
        .request_line(r#"{"op":"start","d":12,"q":2,"shards":2,"sample_t":2048,"kmv_k":64}"#)
        .expect("start");
    let rows = match uniform_binary(D, ROWS, 1) {
        pfe_row::Dataset::Binary(m) => m.rows().to_vec(),
        pfe_row::Dataset::Qary(_) => unreachable!("generator yields binary data"),
    };
    for chunk in rows.chunks(2000) {
        let body: Vec<String> = chunk
            .iter()
            .map(|row| {
                let bits: Vec<String> = (0..D).map(|i| ((row >> i) & 1).to_string()).collect();
                format!("[{}]", bits.join(","))
            })
            .collect();
        feeder
            .request_line(&format!(r#"{{"op":"ingest","rows":[{}]}}"#, body.join(",")))
            .expect("ingest");
    }
    feeder
        .request_line(r#"{"op":"snapshot"}"#)
        .expect("snapshot");
    feeder.request_line(r#"{"op":"quit"}"#).expect("quit");
    (addr, handle, join)
}

/// One measured round of live traffic: `ACTIVE` fresh clients, each
/// issuing `REQUESTS` queries concurrently.
fn hammer(addr: SocketAddr) {
    let queries = query_lines();
    let threads: Vec<_> = (0..ACTIVE)
        .map(|t| {
            let queries = queries.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..REQUESTS {
                    let line = &queries[(i + t) % queries.len()];
                    let resp = client.request_line(line).expect("query");
                    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "failed: {resp}");
                    black_box(&resp);
                }
                client.request_line(r#"{"op":"quit"}"#).expect("quit");
            })
        })
        .collect();
    for t in threads {
        t.join().expect("load thread");
    }
}

/// Live-traffic round-trip throughput as the idle crowd grows 50×.
fn bench_idle_crowd(c: &mut Criterion) {
    let mut g = c.benchmark_group("server_idle_crowd");
    g.sample_size(10);
    g.throughput(Throughput::Elements((ACTIVE * REQUESTS) as u64));
    for crowd_size in [100usize, 1000, 5000] {
        let (addr, handle, join) = serve_ingested(crowd_size + 64);
        let crowd: Vec<TcpStream> = (0..crowd_size)
            .map(|i| TcpStream::connect(addr).unwrap_or_else(|e| panic!("conn {i}: {e}")))
            .collect();
        g.bench_function(format!("c{crowd_size}"), |b| b.iter(|| hammer(addr)));
        drop(crowd);
        handle.shutdown();
        join.join().expect("server");
    }
    g.finish();
}

criterion_group!(benches, bench_idle_crowd);
criterion_main!(benches);
