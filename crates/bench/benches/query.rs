//! Query-layer benchmarks: the mask-sharing batch planner against a naive
//! per-query loop.
//!
//! The planner's claim: a batch of queries whose canonical keys collide —
//! mid-size `F_0` subsets rounding to one net member, or repeated
//! heavy-hitter probes of one mask — costs one snapshot compute per
//! *group*, not per query. The cache is disabled in both arms so the
//! comparison isolates the planner (with the cache on, the naive loop
//! would also amortize after its first miss).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pfe_engine::{Engine, EngineConfig, Query};
use pfe_stream::gen::uniform_binary;

const D: u32 = 12;
const ROWS: usize = 20_000;

fn engine() -> Engine {
    let cfg = EngineConfig {
        shards: 4,
        kmv_k: 64,
        sample_t: 2048,
        batch_rows: 256,
        cache_capacity: 0, // isolate the planner from the cache
        ..Default::default()
    };
    let engine = Engine::start(D, 2, cfg).expect("start");
    engine.ingest(&uniform_binary(D, ROWS, 1)).expect("ingest");
    engine.refresh().expect("refresh");
    engine
}

/// A batch of mid-size `F_0` queries that all round to few net members:
/// rotations of a 6-column window (every one shrinks to a small-side
/// member, many to the same one).
fn colliding_f0_batch() -> Vec<Query> {
    (0..64u32)
        .map(|i| Query::over((0..6).map(|j| (i % 4 + j) % D)).f0())
        .collect()
}

/// Heavy-hitter probes of just two distinct (cols, phi) pairs — the worst
/// case for a naive loop, since every probe scans the whole merged sample.
fn colliding_hh_batch() -> Vec<Query> {
    (0..32u32)
        .map(|i| Query::over((0..4).map(|j| (i % 2 + j) % D)).heavy_hitters(0.05))
        .collect()
}

fn bench_planner_vs_naive(c: &mut Criterion) {
    let engine = engine();
    for (name, batch) in [
        ("f0_colliding64", colliding_f0_batch()),
        ("hh_colliding32", colliding_hh_batch()),
    ] {
        let mut g = c.benchmark_group(format!("query_planner_{name}"));
        g.throughput(Throughput::Elements(batch.len() as u64));
        // Naive: one planner invocation per query — no sharing possible.
        g.bench_function("naive_loop", |b| {
            b.iter(|| {
                let mut ok = 0usize;
                for q in &batch {
                    ok += engine.query(q).is_ok() as usize;
                }
                black_box(ok)
            })
        });
        // Planned: one invocation for the whole batch — colliding keys
        // share one compute.
        g.bench_function("query_batch", |b| {
            b.iter(|| {
                let answers = engine.query_batch(&batch);
                black_box(answers.iter().filter(|a| a.is_ok()).count())
            })
        });
        g.finish();
    }
}

fn bench_planning_overhead(c: &mut Criterion) {
    // All-distinct masks: the planner can share nothing, so this measures
    // its bookkeeping overhead against the per-query path.
    let engine = engine();
    let batch: Vec<Query> = (0..32u32)
        .map(|i| Query::over([i % D, (i / 2 + 3) % D, (i / 3 + 7) % D]).f0())
        .collect();
    let mut g = c.benchmark_group("query_planner_distinct32");
    g.throughput(Throughput::Elements(batch.len() as u64));
    g.bench_function("naive_loop", |b| {
        b.iter(|| {
            let mut ok = 0usize;
            for q in &batch {
                ok += engine.query(q).is_ok() as usize;
            }
            black_box(ok)
        })
    });
    g.bench_function("query_batch", |b| {
        b.iter(|| {
            let answers = engine.query_batch(&batch);
            black_box(answers.iter().filter(|a| a.is_ok()).count())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_planner_vs_naive, bench_planning_overhead);
criterion_main!(benches);
