//! TCP serving benchmarks: a multi-connection load generator against a
//! live `pfe-server` on an ephemeral port, measuring query throughput and
//! per-request latency as the client-connection count and the
//! worker-pool size vary.
//!
//! The interesting shape is the crossover: with one worker, connections
//! serialize; with workers ≥ connections, sessions run truly in parallel
//! (on a multi-core box — the 1-core CI runner flattens the scaling, the
//! same caveat as the engine's shard benchmark). Queries rotate through
//! mask-colliding `f0`s and a heavy-hitter request so the answer cache
//! sees a realistic hit mix.

use std::hint::black_box;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pfe_engine::Json;
use pfe_server::{Client, Server, ServerConfig, ServerHandle, ShutdownReport};
use pfe_stream::gen::uniform_binary;

const D: u32 = 12;
const ROWS: usize = 20_000;
/// Requests per connection per measured round.
const REQUESTS: usize = 50;

fn query_lines() -> Vec<String> {
    vec![
        r#"{"op":"f0","cols":[0,1,2,3,4,5]}"#.to_string(),
        r#"{"op":"f0","cols":[0,1,2,3,4,5,6]}"#.to_string(),
        r#"{"op":"heavy_hitters","cols":[0,1,2],"phi":0.05}"#.to_string(),
        r#"{"op":"frequency","cols":[0,1],"pattern":[1,1]}"#.to_string(),
    ]
}

/// Bind, start, and feed a server; returns the running server's handle
/// and join plus the address to hammer.
fn serve_ingested(
    workers: usize,
) -> (
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<ShutdownReport>,
) {
    serve_ingested_sampled(workers, None)
}

/// Like [`serve_ingested`] with an explicit trace-sampling rate (`None`
/// leaves the default — every request traced; `Some(0)` disables
/// tracing entirely).
fn serve_ingested_sampled(
    workers: usize,
    trace_sample: Option<u64>,
) -> (
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<ShutdownReport>,
) {
    let server = Server::bind(ServerConfig {
        workers,
        queue: 64,
        trace_sample,
        ..Default::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("run"));

    let mut feeder = Client::connect(addr).expect("connect");
    feeder
        .request_line(r#"{"op":"start","d":12,"q":2,"shards":2,"sample_t":2048,"kmv_k":64}"#)
        .expect("start");
    let rows = match uniform_binary(D, ROWS, 1) {
        pfe_row::Dataset::Binary(m) => m.rows().to_vec(),
        pfe_row::Dataset::Qary(_) => unreachable!("generator yields binary data"),
    };
    for chunk in rows.chunks(2000) {
        let body: Vec<String> = chunk
            .iter()
            .map(|row| {
                let bits: Vec<String> = (0..D).map(|i| ((row >> i) & 1).to_string()).collect();
                format!("[{}]", bits.join(","))
            })
            .collect();
        feeder
            .request_line(&format!(r#"{{"op":"ingest","rows":[{}]}}"#, body.join(",")))
            .expect("ingest");
    }
    feeder
        .request_line(r#"{"op":"snapshot"}"#)
        .expect("snapshot");
    feeder.request_line(r#"{"op":"quit"}"#).expect("quit");
    (addr, handle, join)
}

/// One measured round: `conns` fresh connections, each issuing
/// `REQUESTS` queries, all in flight together.
fn hammer(addr: SocketAddr, conns: usize) {
    let queries = query_lines();
    let threads: Vec<_> = (0..conns)
        .map(|t| {
            let queries = queries.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..REQUESTS {
                    let line = &queries[(i + t) % queries.len()];
                    let resp = client.request_line(line).expect("query");
                    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "failed: {resp}");
                    black_box(&resp);
                }
                client.request_line(r#"{"op":"quit"}"#).expect("quit");
            })
        })
        .collect();
    for t in threads {
        t.join().expect("load thread");
    }
}

/// Throughput vs connection count at a fixed worker pool.
fn bench_connections(c: &mut Criterion) {
    let (addr, handle, join) = serve_ingested(4);
    let mut g = c.benchmark_group("server_w4_by_connections");
    g.sample_size(10);
    for conns in [1usize, 2, 4, 8] {
        g.throughput(Throughput::Elements((conns * REQUESTS) as u64));
        g.bench_function(format!("c{conns}"), |b| b.iter(|| hammer(addr, conns)));
    }
    g.finish();
    handle.shutdown();
    join.join().expect("server");
}

/// Throughput vs worker count at a fixed connection count.
fn bench_workers(c: &mut Criterion) {
    let mut g = c.benchmark_group("server_c4_by_workers");
    g.sample_size(10);
    g.throughput(Throughput::Elements((4 * REQUESTS) as u64));
    for workers in [1usize, 2, 4] {
        let (addr, handle, join) = serve_ingested(workers);
        g.bench_function(format!("w{workers}"), |b| b.iter(|| hammer(addr, 4)));
        handle.shutdown();
        join.join().expect("server");
    }
    g.finish();
}

/// Tracing on (the default — every request records a full span tree)
/// vs tracing off (`trace_sample` 0), same pool, same load. The span
/// path's overhead budget is <5%; `scripts/check_trace_overhead.sh`
/// machine-checks these two ids in the bench-report JSON.
///
/// The two sides are measured *interleaved* — one round on, one round
/// off, repeated — and each side's recorded samples are replayed
/// through `iter_custom`. Measuring one side to completion before the
/// other leaves the comparison hostage to box-noise drift between the
/// two windows (minutes apart on small machines), which routinely
/// swamps a sub-5% effect; round-robin pairing cancels it.
fn bench_tracing_overhead(c: &mut Criterion) {
    const ROUNDS: usize = 120;
    let (on_addr, on_handle, on_join) = serve_ingested_sampled(4, None);
    let (off_addr, off_handle, off_join) = serve_ingested_sampled(4, Some(0));
    for _ in 0..3 {
        hammer(on_addr, 4);
        hammer(off_addr, 4);
    }
    let mut times: [Vec<Duration>; 2] = [Vec::new(), Vec::new()];
    for round in 0..ROUNDS {
        // Alternate which side goes first so a noise burst spanning a
        // few rounds lands on both sides evenly.
        let order = if round % 2 == 0 { [0, 1] } else { [1, 0] };
        for slot in order {
            let addr = if slot == 0 { on_addr } else { off_addr };
            let t0 = Instant::now();
            hammer(addr, 4);
            times[slot].push(t0.elapsed());
        }
    }
    on_handle.shutdown();
    off_handle.shutdown();
    on_join.join().expect("server");
    off_join.join().expect("server");

    let mut g = c.benchmark_group("server_traced_vs_untraced");
    g.sample_size(ROUNDS);
    // The samples above are replayed, not re-run: a minimal budget
    // stops the harness's calibration loop at one iteration per sample.
    g.measurement_time(Duration::from_millis(1));
    g.throughput(Throughput::Elements((4 * REQUESTS) as u64));
    for (label, recorded) in [("on", &times[0]), ("off", &times[1])] {
        let mut next = 0usize;
        g.bench_function(label, |b| {
            b.iter_custom(|_iters| {
                let d = recorded[next % recorded.len()];
                next += 1;
                d
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_connections,
    bench_workers,
    bench_tracing_overhead
);
criterion_main!(benches);
