//! Criterion microbenchmarks for the projection hot path: `PEXT` packing,
//! pattern-key fingerprinting, and exact frequency-vector computation.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pfe_row::{pext_u64, ColumnSet, FrequencyVector, PatternKey};
use pfe_stream::gen::{uniform_binary, uniform_qary};

fn bench_pext(c: &mut Criterion) {
    let rows: Vec<u64> = (0..10_000u64)
        .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15))
        .collect();
    let mask = 0b1010_1100_0110_1010u64;
    let mut g = c.benchmark_group("projection");
    g.throughput(Throughput::Elements(rows.len() as u64));
    g.bench_function("pext_10k_rows", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &r in &rows {
                acc ^= pext_u64(black_box(r), mask);
            }
            black_box(acc)
        })
    });
    g.bench_function("pext_plus_fingerprint_10k_rows", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &r in &rows {
                acc ^= PatternKey::from(pext_u64(black_box(r), mask)).fingerprint64(7);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_freq_vector(c: &mut Criterion) {
    let bin = uniform_binary(20, 10_000, 1);
    let qar = uniform_qary(8, 16, 10_000, 2);
    let bcols = ColumnSet::from_indices(20, &[0, 3, 7, 11, 15, 19]).expect("valid");
    let qcols = ColumnSet::from_indices(16, &[0, 5, 10, 15]).expect("valid");
    let mut g = c.benchmark_group("freq_vector");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("binary_10k_rows", |b| {
        b.iter(|| black_box(FrequencyVector::compute(&bin, &bcols).expect("fits").f0()))
    });
    g.bench_function("qary_10k_rows", |b| {
        b.iter(|| black_box(FrequencyVector::compute(&qar, &qcols).expect("fits").f0()))
    });
    g.finish();
}

criterion_group!(benches, bench_pext, bench_freq_vector);
criterion_main!(benches);
