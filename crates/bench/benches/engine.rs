//! Engine benchmarks: ingest throughput scaling with shard count, and
//! query latency with and without the answer cache.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pfe_engine::{Engine, EngineConfig, Query};
use pfe_stream::gen::uniform_binary;

const D: u32 = 12;
const ROWS: usize = 20_000;

fn cfg(shards: usize, cache_capacity: usize) -> EngineConfig {
    EngineConfig {
        shards,
        kmv_k: 64,
        sample_t: 1024,
        batch_rows: 256,
        cache_capacity,
        ..Default::default()
    }
}

fn bench_ingest_scaling(c: &mut Criterion) {
    let data = uniform_binary(D, ROWS, 1);
    let mut g = c.benchmark_group("engine_ingest_d12_n20000");
    g.sample_size(10);
    g.throughput(Throughput::Elements(ROWS as u64));
    for &shards in &[1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let engine = Engine::start(D, 2, cfg(shards, 0)).expect("start");
                    engine.ingest(&data).expect("ingest");
                    let snap = engine.shutdown().expect("shutdown");
                    black_box(snap.n())
                })
            },
        );
    }
    g.finish();
}

/// Per-row `push_packed` vs one `push_packed_batch` call: same shard
/// partitioning and channel chunking, with the engine's pipeline lock,
/// validation, and router bookkeeping taken once per slice instead of
/// once per row (20k lock acquisitions vs 1 here). Note: on a 1-core box
/// the shard workers serialize with the router and bounded-channel
/// backpressure hides the router-side saving — like the shard-count
/// scaling group above, read the comparison on multi-core hardware.
fn bench_ingest_batch_api(c: &mut Criterion) {
    let rows: Vec<u64> = match uniform_binary(D, ROWS, 5) {
        pfe_row::Dataset::Binary(m) => m.rows().to_vec(),
        pfe_row::Dataset::Qary(_) => unreachable!("generator yields binary data"),
    };
    let mut g = c.benchmark_group("engine_ingest_api_d12_n20000");
    g.sample_size(10);
    g.throughput(Throughput::Elements(ROWS as u64));
    g.bench_function("push_packed_per_row", |b| {
        b.iter(|| {
            let engine = Engine::start(D, 2, cfg(4, 0)).expect("start");
            for &row in &rows {
                engine.push_packed(row).expect("push");
            }
            let snap = engine.shutdown().expect("shutdown");
            black_box(snap.n())
        })
    });
    g.bench_function("push_packed_batch", |b| {
        b.iter(|| {
            let engine = Engine::start(D, 2, cfg(4, 0)).expect("start");
            engine.push_packed_batch(&rows).expect("push");
            let snap = engine.shutdown().expect("shutdown");
            black_box(snap.n())
        })
    });
    g.finish();
}

fn bench_query_latency(c: &mut Criterion) {
    let data = uniform_binary(D, ROWS, 2);
    let make = |cache_capacity| {
        let engine = Engine::start(D, 2, cfg(4, cache_capacity)).expect("start");
        engine.ingest(&data).expect("ingest");
        engine.refresh().expect("refresh");
        engine
    };
    // Mid-size queries (always rounded — the worst case for the net path).
    let reqs: Vec<Query> = (0..16u32)
        .map(|i| Query::over((0..6).map(|j| (i + j) % D)).f0())
        .collect();
    let mut g = c.benchmark_group("engine_query_f0");
    g.throughput(Throughput::Elements(reqs.len() as u64));
    let uncached = make(0);
    g.bench_function("uncached", |b| {
        b.iter(|| {
            for req in &reqs {
                black_box(uncached.query(req).expect("ok"));
            }
        })
    });
    let cached = make(4096);
    // Warm the cache once.
    for req in &reqs {
        cached.query(req).expect("ok");
    }
    g.bench_function("cached", |b| {
        b.iter(|| {
            for req in &reqs {
                black_box(cached.query(req).expect("ok"));
            }
        })
    });
    g.finish();

    // Heavy hitters scan the whole merged sample per query — the case the
    // answer cache exists for (F0 above is a near-free hash lookup either
    // way; the comparison shows the cache's fixed cost honestly).
    let hh_reqs: Vec<Query> = (0..8u32)
        .map(|i| Query::over((0..4).map(|j| (i + j) % D)).heavy_hitters(0.05))
        .collect();
    let mut g = c.benchmark_group("engine_query_hh");
    g.throughput(Throughput::Elements(hh_reqs.len() as u64));
    let uncached = make(0);
    g.bench_function("uncached", |b| {
        b.iter(|| {
            for req in &hh_reqs {
                black_box(uncached.query(req).expect("ok"));
            }
        })
    });
    let cached = make(4096);
    for req in &hh_reqs {
        cached.query(req).expect("ok");
    }
    g.bench_function("cached", |b| {
        b.iter(|| {
            for req in &hh_reqs {
                black_box(cached.query(req).expect("ok"));
            }
        })
    });
    g.finish();
}

fn bench_snapshot_refresh(c: &mut Criterion) {
    let data = uniform_binary(D, ROWS, 3);
    let mut g = c.benchmark_group("engine_snapshot");
    g.sample_size(10);
    for &shards in &[1usize, 4] {
        let engine = Engine::start(D, 2, cfg(shards, 0)).expect("start");
        engine.ingest(&data).expect("ingest");
        g.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, _| {
            b.iter(|| {
                let snap = engine.refresh().expect("refresh");
                black_box(snap.epoch())
            })
        });
    }
    g.finish();
}

fn bench_mixed_serving(c: &mut Criterion) {
    // The serving mix of `subspace_explorer`: mostly repeated F0 probes of
    // nearby subsets plus some frequency lookups.
    let data = uniform_binary(D, ROWS, 4);
    let engine = Engine::start(D, 2, cfg(4, 4096)).expect("start");
    engine.ingest(&data).expect("ingest");
    engine.refresh().expect("refresh");
    let mut reqs = Vec::new();
    for i in 0..32u32 {
        reqs.push(Query::over((0..5).map(|j| (i % 8 + j) % D)).f0());
        if i % 4 == 0 {
            reqs.push(Query::over([0, 1, 2]).frequency(vec![(i % 2) as u16, 0, 1]));
        }
    }
    let mut g = c.benchmark_group("engine_mixed_batch");
    g.throughput(Throughput::Elements(reqs.len() as u64));
    g.bench_function("batch40", |b| {
        b.iter(|| {
            let answers = engine.query_batch(&reqs);
            let ok = answers.iter().filter(|a| a.is_ok()).count();
            black_box(ok)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ingest_scaling,
    bench_ingest_batch_api,
    bench_query_latency,
    bench_snapshot_refresh,
    bench_mixed_serving
);
criterion_main!(benches);
