//! Snapshot persistence benchmarks: wire-format encode/decode throughput
//! and the end-to-end checkpoint / resume latency a serving deployment
//! pays at each durability point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pfe_engine::{Engine, EngineConfig, Snapshot};
use pfe_persist::frame;
use pfe_stream::gen::uniform_binary;

fn cfg(sample_t: usize, kmv_k: usize) -> EngineConfig {
    EngineConfig {
        shards: 2,
        sample_t,
        kmv_k,
        seed: 5,
        ..Default::default()
    }
}

fn built_snapshot(d: u32, rows: usize, sample_t: usize, kmv_k: usize) -> std::sync::Arc<Snapshot> {
    let engine = Engine::start(d, 2, cfg(sample_t, kmv_k)).expect("start");
    engine.ingest(&uniform_binary(d, rows, 11)).expect("ingest");
    engine.shutdown().expect("shutdown")
}

fn bench_encode_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("persist/codec");
    for (d, rows, sample_t, kmv_k) in [(10u32, 20_000usize, 1024, 64), (14, 50_000, 4096, 256)] {
        let snap = built_snapshot(d, rows, sample_t, kmv_k);
        let bytes = frame::to_bytes(pfe_persist::kind::SNAPSHOT, &*snap);
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("encode", format!("d{d}_{}KiB", bytes.len() / 1024)),
            &snap,
            |b, snap| b.iter(|| frame::to_bytes(pfe_persist::kind::SNAPSHOT, snap.as_ref())),
        );
        group.bench_with_input(
            BenchmarkId::new("decode", format!("d{d}_{}KiB", bytes.len() / 1024)),
            &bytes,
            |b, bytes| {
                b.iter(|| {
                    frame::from_bytes::<Snapshot>(pfe_persist::kind::SNAPSHOT, bytes)
                        .expect("decodes")
                })
            },
        );
    }
    group.finish();
}

fn bench_checkpoint_resume(c: &mut Criterion) {
    let dir = std::env::temp_dir().join("pfe-persist-bench");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("bench.pfes");
    let mut group = c.benchmark_group("persist/lifecycle");
    group.sample_size(10);
    let d = 12;
    let engine = Engine::start(d, 2, cfg(4096, 128)).expect("start");
    engine
        .ingest(&uniform_binary(d, 100_000, 13))
        .expect("ingest");
    group.bench_function("checkpoint_100k_rows", |b| {
        b.iter(|| engine.checkpoint(&path).expect("checkpoint"))
    });
    engine.checkpoint(&path).expect("checkpoint");
    group.bench_function("resume_100k_rows", |b| {
        b.iter(|| Engine::resume(&path, cfg(4096, 128)).expect("resume"))
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_encode_decode, bench_checkpoint_resume);
criterion_main!(benches);
