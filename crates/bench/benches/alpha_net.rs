//! Criterion microbenchmarks for the α-net summary (Algorithm 1): build
//! cost across α (the space/time axis of Figure 1) and query cost.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pfe_core::alpha_net::{AlphaNet, AlphaNetF0, NetMode};
use pfe_row::ColumnSet;
use pfe_sketch::kmv::Kmv;
use pfe_stream::gen::uniform_binary;

const D: u32 = 12;

fn bench_build(c: &mut Criterion) {
    let data = uniform_binary(D, 1000, 1);
    let mut g = c.benchmark_group("alpha_net_build_d12_n1000");
    g.sample_size(10);
    for &alpha in &[0.15, 0.25, 0.35] {
        g.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |b, &alpha| {
            let net = AlphaNet::new(D, alpha).expect("valid");
            b.iter(|| {
                let s = AlphaNetF0::build(&data, net, NetMode::Full, 1 << 22, |mask| {
                    Kmv::new(64, mask)
                })
                .expect("build");
                black_box(s.num_sketches())
            })
        });
    }
    g.finish();
}

fn bench_query(c: &mut Criterion) {
    let data = uniform_binary(D, 1000, 2);
    let net = AlphaNet::new(D, 0.25).expect("valid");
    let summary = AlphaNetF0::build(&data, net, NetMode::Full, 1 << 22, |mask| {
        Kmv::new(64, mask)
    })
    .expect("build");
    let in_net = ColumnSet::from_indices(D, &[0, 1, 2]).expect("valid");
    let rounded = ColumnSet::from_indices(D, &[0, 2, 4, 6, 8, 10]).expect("valid");
    let mut g = c.benchmark_group("alpha_net_query");
    g.bench_function("in_net", |b| {
        b.iter(|| black_box(summary.f0(&in_net).expect("ok").estimate))
    });
    g.bench_function("rounded", |b| {
        b.iter(|| black_box(summary.f0(&rounded).expect("ok").estimate))
    });
    g.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let data = uniform_binary(14, 2000, 3);
    let net = AlphaNet::new(14, 0.2).expect("valid");
    let mut g = c.benchmark_group("alpha_net_build_d14_n2000_parallel");
    g.sample_size(10);
    for &threads in &[1usize, 4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let s = AlphaNetF0::build_parallel(
                        &data,
                        net,
                        NetMode::Full,
                        1 << 24,
                        |mask| Kmv::new(64, mask),
                        threads,
                    )
                    .expect("build");
                    black_box(s.num_sketches())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_build, bench_query, bench_parallel);
criterion_main!(benches);
