//! File-ingest benchmarks: the columnar chunked path (`pfe-ingest`)
//! against the naive row-at-a-time loader it replaces, on real files,
//! with byte throughput so the MB/s lands in `BENCH_<date>.json`.
//!
//! Two axes:
//! - parse only (rows land in a `VecSink`) — isolates the byte-level
//!   columnar parser from engine routing;
//! - end to end (rows land in an engine, `refresh` barriers the shard
//!   workers) — the number an operator sees from `pfe bench-ingest`.

use std::hint::black_box;
use std::io::BufRead;
use std::path::PathBuf;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pfe_engine::{Engine, EngineConfig};
use pfe_ingest::{FileIngester, IngestError, IngestOptions, VecSink};

const PARSE_D: u32 = 16;
const PARSE_ROWS: usize = 30_000;
// The end-to-end fixture is smaller: engine summary updates dominate
// beyond d=12 and would hide the parse-path comparison entirely.
const E2E_D: u32 = 12;
const E2E_ROWS: usize = 8_000;

fn cfg() -> EngineConfig {
    EngineConfig {
        shards: 4,
        kmv_k: 64,
        sample_t: 1024,
        batch_rows: 256,
        ..Default::default()
    }
}

/// Write a benchmark CSV once per process; returns (path, bytes).
fn fixture(name: &str, d: u32, rows: usize) -> (PathBuf, u64) {
    let dir = std::env::temp_dir().join(format!("pfe-bench-ingest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join(name);
    if !path.exists() {
        let mut text = (0..d)
            .map(|i| format!("c{i}"))
            .collect::<Vec<_>>()
            .join(",");
        text.push('\n');
        let mut state = 0x1234_5678_u64;
        for _ in 0..rows {
            state = state.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0xb5);
            let row = (state >> 17) & ((1 << d) - 1);
            let line: Vec<String> = (0..d).map(|i| ((row >> i) & 1).to_string()).collect();
            text.push_str(&line.join(","));
            text.push('\n');
        }
        std::fs::write(&path, text).expect("write fixture");
    }
    let bytes = std::fs::metadata(&path).expect("metadata").len();
    (path, bytes)
}

/// The baseline: buffered lines, `split`, `str::parse`, one
/// `push_dense` per row.
fn naive_rows(path: &std::path::Path, mut push: impl FnMut(&[u16])) -> u64 {
    let file = std::fs::File::open(path).expect("open");
    let mut rows = 0u64;
    let mut header = true;
    for line in std::io::BufReader::new(file).lines() {
        let line = line.expect("read line");
        if header {
            header = false;
            continue;
        }
        let row: Vec<u16> = line.split(',').map(|f| f.parse().expect("digit")).collect();
        push(&row);
        rows += 1;
    }
    rows
}

fn bench_parse_only(c: &mut Criterion) {
    let (path, bytes) = fixture("parse.csv", PARSE_D, PARSE_ROWS);
    let mut g = c.benchmark_group(format!("file_parse_d{PARSE_D}_n{PARSE_ROWS}"));
    g.sample_size(10);
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function(BenchmarkId::from_parameter("columnar"), |b| {
        b.iter(|| {
            let (sink, report) = FileIngester::new(IngestOptions::default())
                .ingest_into(&path, VecSink::default())
                .expect("ingest");
            black_box((sink.packed.len(), report.rows))
        })
    });
    g.bench_function(BenchmarkId::from_parameter("row_at_a_time"), |b| {
        b.iter(|| {
            let mut out: Vec<u16> = Vec::new();
            let rows = naive_rows(&path, |r| out.extend_from_slice(r));
            black_box((out.len(), rows))
        })
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let (path, bytes) = fixture("e2e.csv", E2E_D, E2E_ROWS);
    let mut g = c.benchmark_group(format!("file_ingest_engine_d{E2E_D}_n{E2E_ROWS}"));
    g.sample_size(10);
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function(BenchmarkId::from_parameter("columnar"), |b| {
        b.iter(|| {
            let (engine, _) = FileIngester::new(IngestOptions::default())
                .ingest_path_with(&path, |s| {
                    Engine::start(s.dimension(), s.alphabet, cfg())
                        .map_err(|e| IngestError::Sink(e.to_string()))
                })
                .expect("ingest");
            let snap = engine.shutdown().expect("shutdown");
            black_box(snap.n())
        })
    });
    g.bench_function(BenchmarkId::from_parameter("row_at_a_time"), |b| {
        b.iter(|| {
            let engine = Engine::start(E2E_D, 2, cfg()).expect("start");
            naive_rows(&path, |r| engine.push_dense(r).expect("push"));
            let snap = engine.shutdown().expect("shutdown");
            black_box(snap.n())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_parse_only, bench_end_to_end);
criterion_main!(benches);
