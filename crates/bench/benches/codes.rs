//! Criterion microbenchmarks for the coding-theory substrate: constant
//! weight enumeration, colex (un)ranking, star expansion, and Lemma 3.2
//! random-code generation.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use pfe_codes::constant_weight::ConstantWeightCode;
use pfe_codes::random_code::{RandomCode, RandomCodeParams};
use pfe_codes::star::StarIter;
use pfe_codes::subsets::FixedWeightIter;

fn bench_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("codes");
    g.bench_function("enumerate_B_20_5", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for w in FixedWeightIter::new(20, 5) {
                acc ^= black_box(w);
            }
            black_box(acc)
        })
    });
    g.bench_function("rank_unrank_B_24_6", |b| {
        let code = ConstantWeightCode::new(24, 6);
        let size = code.size();
        b.iter(|| {
            let mut acc = 0u64;
            for r in (0..size).step_by((size / 100).max(1) as usize) {
                let w = code.unrank(black_box(r));
                acc ^= w;
                black_box(code.rank(w));
            }
            black_box(acc)
        })
    });
    g.bench_function("star_expand_q4_k6", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for child in StarIter::new(0b111111, 16, 4) {
                acc += child.len();
            }
            black_box(acc)
        })
    });
    g.bench_function("random_code_d32_target12", |b| {
        b.iter(|| {
            let code = RandomCode::generate(RandomCodeParams {
                d: 32,
                epsilon: 0.25,
                gamma: 0.03,
                target_size: 12,
                seed: black_box(7),
            })
            .expect("generates");
            black_box(code.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
