//! Criterion microbenchmarks for the sketch substrate: update and estimate
//! throughput for every α-net plug-in and the classical baselines.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pfe_sketch::traits::{DistinctSketch, FrequencySketch, MomentSketch};
use pfe_sketch::{AmsF2, CountMin, CountSketch, HyperLogLog, Kmv, LinearCounting, MisraGries};

const N: u64 = 10_000;

fn bench_distinct(c: &mut Criterion) {
    let mut g = c.benchmark_group("distinct_insert");
    g.throughput(Throughput::Elements(N));
    g.bench_function("kmv_k256", |b| {
        b.iter(|| {
            let mut s = Kmv::new(256, 1);
            for i in 0..N {
                s.insert(black_box(i));
            }
            black_box(s.estimate())
        })
    });
    g.bench_function("hll_b10", |b| {
        b.iter(|| {
            let mut s = HyperLogLog::new(10, 1);
            for i in 0..N {
                s.insert(black_box(i));
            }
            black_box(s.estimate())
        })
    });
    g.bench_function("linear_counting_8k", |b| {
        b.iter(|| {
            let mut s = LinearCounting::new(8192, 1);
            for i in 0..N {
                s.insert(black_box(i));
            }
            black_box(s.estimate())
        })
    });
    g.finish();
}

fn bench_frequency(c: &mut Criterion) {
    let mut g = c.benchmark_group("frequency_update");
    g.throughput(Throughput::Elements(N));
    g.bench_function("count_min_4x272", |b| {
        b.iter(|| {
            let mut s = CountMin::new(4, 272, 1);
            for i in 0..N {
                s.update(black_box(i % 100), 1);
            }
            black_box(s.estimate(7))
        })
    });
    g.bench_function("count_sketch_5x256", |b| {
        b.iter(|| {
            let mut s = CountSketch::new(5, 256, 1);
            for i in 0..N {
                s.update(black_box(i % 100), 1);
            }
            black_box(s.estimate(7))
        })
    });
    g.bench_function("misra_gries_k64", |b| {
        b.iter(|| {
            let mut s = MisraGries::new(64);
            for i in 0..N {
                s.insert(black_box(i % 100));
            }
            black_box(s.estimate(7))
        })
    });
    g.finish();
}

fn bench_moments(c: &mut Criterion) {
    let mut g = c.benchmark_group("moment_update");
    let n = 1000u64; // AMS updates touch every estimator: keep streams short
    g.throughput(Throughput::Elements(n));
    g.bench_function("ams_f2_5x64", |b| {
        b.iter(|| {
            let mut s = AmsF2::new(5, 64, 1);
            for i in 0..n {
                s.update(black_box(i % 50), 1);
            }
            black_box(s.estimate())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_distinct, bench_frequency, bench_moments);
criterion_main!(benches);
