//! The snapshot-relative query executor: plan → cache probe → compute →
//! materialize, shared by every serving frontend.
//!
//! [`Engine`](crate::Engine) answers whole-stream batches against its
//! published snapshot; the windowed engine (`pfe-window`) answers
//! `last_n`-row batches against merged covering-set snapshots. Both drive
//! the same [`QueryExecutor`]: one planner, one LRU answer cache keyed by
//! the canonical [`pfe_query::QueryKey`], one per-statistic counter set,
//! and one materialization path attaching guarantees and provenance — so
//! the two frontends cannot drift in semantics.

use std::sync::Arc;
use std::time::Instant;

use pfe_core::bounds;
use pfe_obs::{AttrValue, Counter, Histogram, Recorder, TraceHandle};
use pfe_query::{
    Answer, AnswerValue, CostInfo, Guarantee, GuaranteeSource, Provenance, Query, StatKind,
    Statistic,
};

use crate::cache::{CacheStats, CachedAnswer, QueryCache};
use crate::error::EngineError;
use crate::planner::{plan, PlanGroup, Planned};
use crate::snapshot::Snapshot;

/// Per-statistic counters of queries answered since the executor started.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryCounters {
    /// `F_0` queries answered.
    pub f0: u64,
    /// Point-frequency queries answered.
    pub frequency: u64,
    /// Heavy-hitter queries answered.
    pub heavy_hitters: u64,
    /// `ℓ_1`-sample queries answered.
    pub l1_sample: u64,
    /// `F_p` moment queries answered.
    pub fp: u64,
}

impl QueryCounters {
    /// Total queries answered across all statistics.
    pub fn total(&self) -> u64 {
        self.f0 + self.frequency + self.heavy_hitters + self.l1_sample + self.fp
    }

    /// The counter for one statistic kind.
    pub fn get(&self, kind: StatKind) -> u64 {
        match kind {
            StatKind::F0 => self.f0,
            StatKind::Frequency => self.frequency,
            StatKind::HeavyHitters => self.heavy_hitters,
            StatKind::L1Sample => self.l1_sample,
            StatKind::Fp => self.fp,
        }
    }
}

fn kind_index(kind: StatKind) -> usize {
    match kind {
        StatKind::F0 => 0,
        StatKind::Frequency => 1,
        StatKind::HeavyHitters => 2,
        StatKind::L1Sample => 3,
        StatKind::Fp => 4,
    }
}

/// The shared plan/probe/compute/materialize pipeline behind a serving
/// frontend: an LRU answer cache plus per-statistic counters and latency
/// histograms, exercised one snapshot at a time.
///
/// All metrics live in the executor's [`Recorder`]: `engine_queries_*`
/// counters, `engine_query_latency_ns_*` per-statistic histograms,
/// `engine_stage_{plan,cache_probe,compute,materialize}_ns` stage
/// histograms, and the `engine_cache_*` series owned by the cache. The
/// legacy [`QueryCounters`]/[`CacheStats`] views read the same handles.
pub struct QueryExecutor {
    cache: QueryCache,
    recorder: Arc<Recorder>,
    /// Per-statistic handles, indexed by [`kind_index`].
    stat_queries: [Arc<Counter>; 5],
    stat_latency: [Arc<Histogram>; 5],
    stage_plan: Arc<Histogram>,
    stage_probe: Arc<Histogram>,
    stage_compute: Arc<Histogram>,
    stage_materialize: Arc<Histogram>,
    /// Whether this executor's frontend can serve `window(last_n)`
    /// queries (only the windowed engine resolves covering sets).
    windowed: bool,
}

impl QueryExecutor {
    /// Create an executor with an answer cache of `cache_capacity`
    /// entries (0 disables caching) and a private recorder. `windowed`
    /// declares whether the owning frontend resolves window requests;
    /// when `false`, queries carrying [`pfe_query::QueryOptions::window`]
    /// get a typed per-slot error instead of a silently whole-stream
    /// answer.
    pub fn new(cache_capacity: usize, windowed: bool) -> Self {
        Self::with_recorder(cache_capacity, windowed, Arc::new(Recorder::new()))
    }

    /// Create an executor registering its metrics in a shared `recorder`
    /// (the server threads one recorder through engine, window, and
    /// connection handling).
    pub fn with_recorder(cache_capacity: usize, windowed: bool, recorder: Arc<Recorder>) -> Self {
        let stat_queries =
            StatKind::ALL.map(|kind| recorder.counter(&format!("engine_queries_{}", kind.name())));
        let stat_latency = StatKind::ALL
            .map(|kind| recorder.histogram(&format!("engine_query_latency_ns_{}", kind.name())));
        Self {
            cache: QueryCache::with_recorder(cache_capacity, &recorder),
            stat_queries,
            stat_latency,
            stage_plan: recorder.histogram("engine_stage_plan_ns"),
            stage_probe: recorder.histogram("engine_stage_cache_probe_ns"),
            stage_compute: recorder.histogram("engine_stage_compute_ns"),
            stage_materialize: recorder.histogram("engine_stage_materialize_ns"),
            recorder,
            windowed,
        }
    }

    /// The recorder this executor reports into.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// Answer a batch of queries against one snapshot. Answers return in
    /// request order; per-query errors are reported per slot, never
    /// batch-fatal. Co-plannable queries (same canonical key) share one
    /// cache probe and at most one snapshot compute.
    pub fn answer_batch(
        &self,
        snap: &Arc<Snapshot>,
        queries: &[Query],
    ) -> Vec<Result<Answer, EngineError>> {
        self.answer_batch_traced(snap, queries, &TraceHandle::disabled())
    }

    /// Like [`answer_batch`](Self::answer_batch), but additionally
    /// recording per-stage spans (`plan`, `cache_probe`, `compute`,
    /// `materialize`) into the request's trace. The trace context never
    /// participates in planning or cache keys — a traced and an
    /// untraced run of the same batch produce identical answers (modulo
    /// the [`Answer::trace_id`] echo on client-traced and slow
    /// requests).
    pub fn answer_batch_traced(
        &self,
        snap: &Arc<Snapshot>,
        queries: &[Query],
        trace: &TraceHandle,
    ) -> Vec<Result<Answer, EngineError>> {
        let mut out: Vec<Option<Result<Answer, EngineError>>> = vec![None; queries.len()];
        if !self.windowed {
            for (slot, q) in queries.iter().enumerate() {
                if q.options.window.is_some() {
                    out[slot] = Some(Err(EngineError::Query(pfe_core::QueryError::BadParameter(
                        "window(last_n) queries require a windowed engine (pfe-window)".to_string(),
                    ))));
                }
            }
        }
        // Plan only the slots that passed the frontend gate; on the
        // common all-open path, plan the request slice directly (no
        // clones).
        let plan_start = Instant::now();
        let mut plan_span = trace.span("plan");
        let plan = if out.iter().all(Option::is_none) {
            plan(snap, queries)
        } else {
            // Re-map planned slots back to original request slots.
            let slots: Vec<usize> = (0..queries.len())
                .filter(|slot| out[*slot].is_none())
                .collect();
            let open: Vec<Query> = slots.iter().map(|&slot| queries[slot].clone()).collect();
            let mut p = plan(snap, &open);
            for (slot, _) in p.errors.iter_mut() {
                *slot = slots[*slot];
            }
            for group in p.groups.iter_mut() {
                for m in group.members.iter_mut() {
                    m.slot = slots[m.slot];
                }
            }
            p
        };
        plan_span.attr("queries", queries.len());
        plan_span.attr("groups", plan.groups.len());
        drop(plan_span);
        self.stage_plan.record_duration(plan_start.elapsed());
        for (slot, e) in plan.errors {
            out[slot] = Some(Err(e));
        }
        for group in &plan.groups {
            let group_start = Instant::now();
            match self.execute_group(snap, queries, group, trace) {
                Err(e) => {
                    for m in &group.members {
                        out[m.slot] = Some(Err(e.clone()));
                    }
                }
                Ok((value, cached)) => {
                    let idx = kind_index(group.key.kind);
                    self.stat_queries[idx].add(group.members.len() as u64);
                    let group_size = group.members.len() as u32;
                    let mat_start = Instant::now();
                    let mut mat_span = trace.span("materialize");
                    if mat_span.is_enabled() {
                        mat_span.attr("statistic", group.key.kind.name());
                        mat_span.attr("mask", AttrValue::Hex(group.key.mask));
                        mat_span.attr("epoch", group.key.epoch);
                        mat_span.attr("cached", cached);
                        mat_span.attr("group_size", group_size);
                    }
                    for m in &group.members {
                        out[m.slot] = Some(Ok(materialize(snap, m, &value, cached, group_size)));
                    }
                    drop(mat_span);
                    self.stage_materialize.record_duration(mat_start.elapsed());
                    let elapsed = group_start.elapsed();
                    // Each member observed the group's latency: the
                    // histogram count matches queries served.
                    let elapsed_ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
                    for _ in &group.members {
                        self.stat_latency[idx].record(elapsed_ns);
                    }
                    let logged = self.recorder.slow_log().record(
                        &format!("query:{}", group.key.kind.name()),
                        elapsed,
                        || {
                            let mut detail = vec![
                                ("mask".to_string(), format!("{:#x}", group.key.mask)),
                                ("epoch".to_string(), group.key.epoch.to_string()),
                                ("exact".to_string(), group.key.exact.to_string()),
                                ("cached".to_string(), cached.to_string()),
                                ("group_size".to_string(), group_size.to_string()),
                                ("group_ns".to_string(), elapsed_ns.to_string()),
                            ];
                            if let Some(id) = trace.trace_id() {
                                detail.push((
                                    "trace_id".to_string(),
                                    pfe_obs::TraceContext::format_id(id),
                                ));
                            }
                            detail
                        },
                    );
                    if logged {
                        // Slow-log-qualifying requests are always kept by
                        // the trace head-sampler.
                        trace.mark_slow();
                    }
                }
            }
        }
        let mut answers: Vec<Result<Answer, EngineError>> = out
            .into_iter()
            .map(|slot| slot.expect("planner fills every slot"))
            .collect();
        // Stamp answers only when the caller will look for the id: a
        // client-supplied trace, or one marked slow mid-flight. The
        // common fast path skips the 32-hex field entirely — it costs
        // more to serialize and parse than the span recording itself.
        if trace.client_supplied() || trace.is_slow() {
            if let Some(id) = trace.trace_id() {
                for a in answers.iter_mut().flatten() {
                    a.trace_id = Some(id);
                }
            }
        }
        answers
    }

    /// Probe the cache for a group's key, or compute its answer once from
    /// the snapshot and (re)fill the cache entry.
    fn execute_group(
        &self,
        snap: &Snapshot,
        queries: &[Query],
        group: &PlanGroup,
        trace: &TraceHandle,
    ) -> Result<(CachedAnswer, bool), EngineError> {
        if group.probe_cache {
            let probe_start = Instant::now();
            let mut probe_span = trace.span("cache_probe");
            let hit = self.cache.get(&group.key);
            probe_span.attr("hit", hit.is_some());
            drop(probe_span);
            self.stage_probe.record_duration(probe_start.elapsed());
            if let Some(hit) = hit {
                return Ok((hit, true));
            }
        }
        let compute_start = Instant::now();
        let mut compute_span = trace.span("compute");
        if compute_span.is_enabled() {
            compute_span.attr("statistic", group.key.kind.name());
            compute_span.attr("mask", AttrValue::Hex(group.key.mask));
        }
        let rep = &group.members[0];
        let value = match &queries[rep.slot].statistic {
            Statistic::F0 => {
                if rep.exact {
                    CachedAnswer::F0(snap.f0_exact(&rep.cols)?)
                } else {
                    // The estimate belongs to the rounded target (the
                    // group key's mask); per-query provenance is attached
                    // at materialization.
                    CachedAnswer::F0(snap.f0(&rep.target)?.estimate)
                }
            }
            Statistic::Frequency { .. } => {
                // The pattern was encoded once at plan time; the probe
                // above and this compute both reuse it.
                let key = rep
                    .pattern_key
                    .expect("planned frequency queries carry a key");
                CachedAnswer::Frequency(snap.frequency(&rep.cols, key)?)
            }
            Statistic::HeavyHitters { phi } => {
                let mut hitters = snap.heavy_hitters(&rep.cols, *phi, 1.0, 2.0)?;
                if rep.exact {
                    // Full retention: estimates are exact counts, so the
                    // recall slack is unnecessary — keep exactly `≥ φn`.
                    let threshold = phi * snap.n() as f64;
                    hitters.retain(|h| h.estimate >= threshold);
                }
                CachedAnswer::HeavyHitters(hitters)
            }
            Statistic::L1Sample { k, seed } => {
                CachedAnswer::L1Sample(snap.l1_sample(&rep.cols, *k, *seed)?)
            }
            Statistic::Fp { p } => {
                if rep.exact {
                    CachedAnswer::Fp {
                        p: *p,
                        estimate: snap.fp_exact(&rep.cols, *p)?,
                    }
                } else {
                    // Like F_0: the estimate belongs to the rounded target.
                    CachedAnswer::Fp {
                        p: *p,
                        estimate: snap.fp(&rep.target, *p)?.estimate,
                    }
                }
            }
        };
        drop(compute_span);
        self.stage_compute.record_duration(compute_start.elapsed());
        self.cache.put(group.key, value.clone());
        Ok((value, false))
    }

    /// Cache hit/miss/occupancy counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Per-statistic served-query counters (a view over the recorder's
    /// `engine_queries_*` series).
    pub fn counters(&self) -> QueryCounters {
        QueryCounters {
            f0: self.stat_queries[kind_index(StatKind::F0)].get(),
            frequency: self.stat_queries[kind_index(StatKind::Frequency)].get(),
            heavy_hitters: self.stat_queries[kind_index(StatKind::HeavyHitters)].get(),
            l1_sample: self.stat_queries[kind_index(StatKind::L1Sample)].get(),
            fp: self.stat_queries[kind_index(StatKind::Fp)].get(),
        }
    }
}

/// Attach one member's provenance, guarantee, and cost metadata to the
/// group's shared value.
fn materialize(
    snap: &Snapshot,
    m: &Planned,
    value: &CachedAnswer,
    cached: bool,
    group_size: u32,
) -> Answer {
    let provenance = Provenance {
        requested: m.cols,
        answered_on: m.target,
        sym_diff: m.sym_diff,
    };
    let sample_guarantee = |epsilon: f64| {
        if m.exact {
            Guarantee::exact()
        } else {
            Guarantee {
                alpha: 1.0,
                epsilon,
                source: GuaranteeSource::Sample,
            }
        }
    };
    let (value, guarantee) = match value {
        CachedAnswer::F0(estimate) => {
            let guarantee = if m.exact {
                Guarantee::exact()
            } else {
                // Theorem 6.5: the sketch's β times the per-query
                // Lemma 6.4 rounding distortion.
                let k = snap
                    .net_f0()
                    .sketch(m.target.mask())
                    .map(|s| s.k())
                    .unwrap_or(2);
                Guarantee {
                    alpha: bounds::kmv_beta(k)
                        * bounds::f0_rounding_distortion(snap.sample().alphabet(), m.sym_diff),
                    epsilon: 0.0,
                    source: GuaranteeSource::AlphaNet,
                }
            };
            (
                AnswerValue::F0 {
                    estimate: *estimate,
                },
                guarantee,
            )
        }
        CachedAnswer::Frequency(fa) => (
            AnswerValue::Frequency {
                estimate: fa.estimate,
                upper_bound: fa.upper_bound,
            },
            // Theorem 5.1: unbiased with additive error ε‖f‖₁.
            sample_guarantee(fa.additive_error),
        ),
        CachedAnswer::HeavyHitters(hitters) => (
            AnswerValue::HeavyHitters {
                hitters: hitters.clone(),
            },
            sample_guarantee(snap.sample().additive_error(bounds::DEFAULT_DELTA)),
        ),
        CachedAnswer::L1Sample(patterns) => (
            AnswerValue::L1Sample {
                patterns: patterns.clone(),
            },
            // Probability-mass error of sample proportions.
            sample_guarantee(bounds::sample_epsilon(
                snap.sample().sample_len().max(1),
                bounds::DEFAULT_DELTA,
            )),
        ),
        CachedAnswer::Fp { p, estimate } => {
            let guarantee = if m.exact {
                Guarantee::exact()
            } else {
                // Theorem 6.5 with the moment plug-in's β (AMS at p = 2,
                // stable projections otherwise) times the Lemma 6.4(2)–(3)
                // rounding distortion Q^{|CΔC′|·|p−1|}.
                let beta = snap.fp_net(*p).map(|n| n.beta()).unwrap_or(1.0);
                Guarantee {
                    alpha: beta
                        * bounds::fp_rounding_distortion(snap.sample().alphabet(), m.sym_diff, *p),
                    epsilon: 0.0,
                    source: GuaranteeSource::AlphaNet,
                }
            };
            (
                AnswerValue::Fp {
                    estimate: *estimate,
                },
                guarantee,
            )
        }
    };
    Answer {
        value,
        guarantee,
        provenance,
        epoch: snap.epoch(),
        cost: CostInfo { cached, group_size },
        window: None,
        trace_id: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::shard::ShardSummary;
    use pfe_stream::gen::uniform_binary;

    fn snapshot(d: u32, rows: usize) -> Arc<Snapshot> {
        let cfg = EngineConfig {
            sample_t: 256,
            kmv_k: 64,
            ..Default::default()
        };
        let mut shard = ShardSummary::new(d, 2, 0, &cfg).expect("new");
        if let pfe_row::Dataset::Binary(m) = &uniform_binary(d, rows, 3) {
            for &row in m.rows() {
                shard.push_packed(row);
            }
        }
        Arc::new(Snapshot::from_shards(vec![shard], 1))
    }

    #[test]
    fn non_windowed_executor_rejects_window_queries_per_slot() {
        let snap = snapshot(8, 500);
        let exec = QueryExecutor::new(16, false);
        let answers = exec.answer_batch(
            &snap,
            &[
                Query::over([0, 1]).f0(),
                Query::over([0, 1]).f0().window(100),
                Query::over([0, 2]).f0(),
            ],
        );
        assert!(answers[0].is_ok());
        assert!(matches!(
            answers[1],
            Err(EngineError::Query(pfe_core::QueryError::BadParameter(_)))
        ));
        // The slot after the rejected one still answers in its own slot.
        let a2 = answers[2].as_ref().expect("ok");
        assert_eq!(a2.provenance.requested.to_indices(), vec![0, 2]);
        // Rejected slots never reach the counters.
        assert_eq!(exec.counters().total(), 2);
    }

    #[test]
    fn windowed_executor_accepts_window_queries() {
        let snap = snapshot(8, 500);
        let exec = QueryExecutor::new(16, true);
        let answers = exec.answer_batch(&snap, &[Query::over([0, 1]).f0().window(100)]);
        let a = answers[0].as_ref().expect("windowed slot accepted");
        // The executor leaves coverage attachment to the frontend.
        assert_eq!(a.window, None);
    }

    #[test]
    fn recorder_latency_counts_match_queries_served() {
        let snap = snapshot(8, 500);
        let rec = Arc::new(pfe_obs::Recorder::new());
        let exec = QueryExecutor::with_recorder(16, false, Arc::clone(&rec));
        let queries = [
            Query::over([0, 1]).f0(),
            Query::over([0, 1]).f0(), // co-planned with the first
            Query::over([0, 2]).heavy_hitters(0.1),
        ];
        let answers = exec.answer_batch(&snap, &queries);
        assert!(answers.iter().all(Result::is_ok));
        // One latency observation per answered query, even when a plan
        // group serves several members from one compute.
        assert_eq!(rec.histogram("engine_query_latency_ns_f0").count(), 2);
        assert_eq!(
            rec.histogram("engine_query_latency_ns_heavy_hitters")
                .count(),
            1
        );
        assert_eq!(rec.counter("engine_queries_f0").get(), 2);
        assert_eq!(rec.histogram("engine_stage_plan_ns").count(), 1);
        assert!(rec.histogram("engine_stage_compute_ns").count() >= 1);
        assert!(rec.histogram("engine_stage_materialize_ns").count() >= 1);
        // The QueryCounters view reads the same series.
        assert_eq!(exec.counters().total(), 3);
    }

    #[test]
    fn slow_log_disabled_by_default_enabled_by_threshold() {
        let snap = snapshot(8, 500);
        let rec = Arc::new(pfe_obs::Recorder::new());
        let exec = QueryExecutor::with_recorder(16, false, Arc::clone(&rec));
        exec.answer_batch(&snap, &[Query::over([0, 1]).f0()]);
        assert!(rec.slow_log().is_empty(), "threshold 0 logs nothing");
        // Entry shape and ring behaviour are pinned in pfe-obs; here we
        // only need the executor to share the recorder's slow log so a
        // server-set threshold reaches query groups.
        assert_eq!(rec.slow_log().threshold_ms(), 0);
        rec.slow_log().set_threshold_ms(250);
        assert_eq!(exec.recorder().slow_log().threshold_ms(), 250);
    }

    #[test]
    fn fp_answers_carry_alpha_net_guarantee_and_count() {
        let cfg = EngineConfig {
            sample_t: 256,
            kmv_k: 64,
            fp: Some(pfe_core::FpConfig {
                orders: vec![2.0, 1.5],
                stable_t: 4,
                ams_groups: 3,
                ams_per_group: 4,
            }),
            ..Default::default()
        };
        let d = 8;
        let mut shard = ShardSummary::new(d, 2, 0, &cfg).expect("new");
        if let pfe_row::Dataset::Binary(m) = &uniform_binary(d, 500, 3) {
            for &row in m.rows() {
                shard.push_packed(row);
            }
        }
        let snap = Arc::new(Snapshot::from_shards(vec![shard], 1));
        let exec = QueryExecutor::new(16, false);
        let answers = exec.answer_batch(
            &snap,
            &[
                Query::over([0, 1]).fp(2.0),
                Query::over([0, 1]).fp(1.5),
                Query::over([0, 1]).fp(0.7), // unmaterialized order
            ],
        );
        for (i, p) in [(0usize, 2.0), (1, 1.5)] {
            let a = answers[i].as_ref().expect("ok");
            assert_eq!(a.kind(), StatKind::Fp);
            assert!(a.estimate().expect("scalar") > 0.0);
            assert_eq!(a.guarantee.source, GuaranteeSource::AlphaNet);
            let beta = snap.fp_net(p).expect("net").beta();
            // In-net query: no rounding, so alpha is exactly the plug-in β.
            assert_eq!(a.provenance.sym_diff, 0);
            assert_eq!(a.guarantee.alpha, beta);
        }
        assert!(matches!(
            answers[2],
            Err(EngineError::Query(
                pfe_core::QueryError::UnsupportedMoment { .. }
            ))
        ));
        assert_eq!(exec.counters().fp, 2);
        assert_eq!(exec.counters().total(), 2);
    }

    #[test]
    fn counters_and_cache_shared_across_batches() {
        let snap = snapshot(8, 500);
        let exec = QueryExecutor::new(16, false);
        let q = Query::over([0, 1]).heavy_hitters(0.1);
        let first = exec.answer_batch(&snap, std::slice::from_ref(&q));
        assert!(!first[0].as_ref().expect("ok").cost.cached);
        let second = exec.answer_batch(&snap, std::slice::from_ref(&q));
        assert!(second[0].as_ref().expect("ok").cost.cached);
        assert_eq!(exec.counters().heavy_hitters, 2);
        assert_eq!(exec.cache_stats().hits, 1);
    }
}
