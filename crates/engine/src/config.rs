//! Engine configuration.

use pfe_core::FpConfig;

use crate::error::EngineError;

/// Optional α-net point-frequency summary (one CountMin per net subset on
/// every shard). Off by default: the uniform sample already answers point
/// frequencies unbiasedly; the CountMin net adds a one-sided upper bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreqNetConfig {
    /// CountMin depth (rows).
    pub depth: usize,
    /// CountMin width (counters per row).
    pub width: usize,
}

impl Default for FreqNetConfig {
    fn default() -> Self {
        Self {
            depth: 4,
            width: 1024,
        }
    }
}

/// Configuration for [`crate::Engine`] / [`crate::IngestPipeline`].
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Number of ingest worker shards (each owns its own summaries).
    pub shards: usize,
    /// Bounded-channel depth per shard, in batches; `send` blocks when a
    /// shard falls this far behind (backpressure).
    pub channel_capacity: usize,
    /// Rows buffered per shard before a batch is sent down the channel.
    pub batch_rows: usize,
    /// α-net parameter for the `F_0` net.
    pub alpha: f64,
    /// KMV capacity per net subset.
    pub kmv_k: usize,
    /// Uniform-sample reservoir size (per shard and for the merged
    /// snapshot).
    pub sample_t: usize,
    /// Net materialization cap (safety against runaway `|N|`).
    pub max_subsets: u128,
    /// Base seed; per-shard reservoir seeds and per-mask sketch seeds are
    /// derived from it, so runs are reproducible.
    pub seed: u64,
    /// Optional point-frequency net.
    pub freq_net: Option<FreqNetConfig>,
    /// Optional `F_p` moment nets (one α-net of moment sketches per
    /// configured order). Off by default: each order costs a full net.
    pub fp: Option<FpConfig>,
    /// Query-cache entries kept (LRU); 0 disables caching.
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            channel_capacity: 64,
            batch_rows: 512,
            alpha: 0.25,
            kmv_k: 256,
            sample_t: 4096,
            max_subsets: 1 << 22,
            seed: 0,
            freq_net: None,
            fp: None,
            cache_capacity: 1024,
        }
    }
}

impl EngineConfig {
    /// Validate parameter ranges.
    ///
    /// # Errors
    /// `BadConfig` naming the offending field.
    pub fn validate(&self) -> Result<(), EngineError> {
        if self.shards == 0 {
            return Err(EngineError::BadConfig("shards must be >= 1".into()));
        }
        if self.channel_capacity == 0 {
            return Err(EngineError::BadConfig(
                "channel_capacity must be >= 1".into(),
            ));
        }
        if self.batch_rows == 0 {
            return Err(EngineError::BadConfig("batch_rows must be >= 1".into()));
        }
        if !(self.alpha > 0.0 && self.alpha < 0.5) {
            return Err(EngineError::BadConfig(format!(
                "alpha={} outside (0, 1/2)",
                self.alpha
            )));
        }
        if self.kmv_k < 2 {
            return Err(EngineError::BadConfig("kmv_k must be >= 2".into()));
        }
        if self.sample_t == 0 {
            return Err(EngineError::BadConfig("sample_t must be >= 1".into()));
        }
        if let Some(fc) = &self.freq_net {
            if fc.depth == 0 || fc.width == 0 {
                return Err(EngineError::BadConfig(
                    "freq_net depth/width must be >= 1".into(),
                ));
            }
        }
        if let Some(fp) = &self.fp {
            fp.validate()
                .map_err(|e| EngineError::BadConfig(format!("fp: {e}")))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(EngineConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_bad_fields() {
        for cfg in [
            EngineConfig {
                shards: 0,
                ..Default::default()
            },
            EngineConfig {
                channel_capacity: 0,
                ..Default::default()
            },
            EngineConfig {
                batch_rows: 0,
                ..Default::default()
            },
            EngineConfig {
                alpha: 0.5,
                ..Default::default()
            },
            EngineConfig {
                kmv_k: 1,
                ..Default::default()
            },
            EngineConfig {
                sample_t: 0,
                ..Default::default()
            },
            EngineConfig {
                freq_net: Some(FreqNetConfig { depth: 0, width: 8 }),
                ..Default::default()
            },
            EngineConfig {
                fp: Some(FpConfig::with_orders([2.5])),
                ..Default::default()
            },
        ] {
            assert!(cfg.validate().is_err(), "{cfg:?} should be rejected");
        }
    }
}
