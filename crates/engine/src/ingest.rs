//! Sharded parallel ingest pipeline.
//!
//! Rows are hash-partitioned by content across `N` worker shards; each
//! worker owns a [`ShardSummary`] and drains a *bounded* channel of row
//! batches, so a slow shard exerts backpressure on the producer instead of
//! letting the queue grow without bound. Content partitioning sends every
//! copy of a row to the same shard — harmless for all summaries (distinct
//! counting is duplicate-insensitive, sampling and counting are
//! partition-oblivious) and the standard scheme for distributed distinct
//! counting.
//!
//! The pipeline accepts both batch [`Dataset`]s and incremental row pushes,
//! and supports two exits: [`snapshot`](IngestPipeline::snapshot) clones
//! the live shard summaries into a point-in-time merged view while ingest
//! continues, and [`finish`](IngestPipeline::finish) shuts the workers down
//! and merges their final state.

use std::sync::mpsc::{self, Receiver, SyncSender};
use std::thread::JoinHandle;

use pfe_core::QueryError;
use pfe_hash::hash_u64;
use pfe_obs::TraceHandle;
use pfe_row::Dataset;

use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::shard::ShardSummary;
use crate::snapshot::Snapshot;

/// A batch of rows travelling to one shard.
#[derive(Debug, Clone)]
pub enum RowBatch {
    /// Packed binary rows (`q = 2` fast path).
    Packed(Vec<u64>),
    /// Dense rows over a general alphabet, flattened row-major (`d`
    /// symbols per row). One allocation per channel message instead of
    /// one per row — the worker re-chunks by the dimension it already
    /// knows.
    Dense(Vec<u16>),
}

enum Msg {
    Batch(RowBatch),
    /// Reply with a clone of the shard's current summary.
    Collect(SyncSender<ShardSummary>),
}

/// The sharded ingest pipeline.
pub struct IngestPipeline {
    senders: Vec<SyncSender<Msg>>,
    handles: Vec<JoinHandle<ShardSummary>>,
    /// Router-side per-shard row buffers (amortize channel traffic).
    packed_buf: Vec<Vec<u64>>,
    /// Flattened row-major dense rows per shard (`d` symbols per row).
    dense_buf: Vec<Vec<u16>>,
    d: u32,
    q: u32,
    batch_rows: usize,
    partition_seed: u64,
    rows_routed: u64,
    epoch: u64,
    /// Checkpointed state a resumed pipeline folds under every snapshot
    /// (cloned per snapshot so the fold is deterministic).
    base: Option<ShardSummary>,
    /// Sends that blocked on a full shard channel (backpressure events);
    /// detached unless [`instrument`](Self::instrument) installed a
    /// registered handle.
    backpressure: std::sync::Arc<pfe_obs::Counter>,
}

fn worker(rx: Receiver<Msg>, mut shard: ShardSummary, d: usize) -> ShardSummary {
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Batch(RowBatch::Packed(rows)) => {
                for row in rows {
                    shard.push_packed(row);
                }
            }
            Msg::Batch(RowBatch::Dense(flat)) => {
                for row in flat.chunks_exact(d) {
                    shard.push_dense(row);
                }
            }
            Msg::Collect(reply) => {
                // The collector may have given up (engine dropped); ignore.
                let _ = reply.send(shard.clone());
            }
        }
    }
    shard
}

impl IngestPipeline {
    /// Spawn the shard workers for a `d`-column stream over alphabet `q`.
    ///
    /// Summary construction happens inside each worker thread, so the
    /// (potentially large) α-net materialization is itself parallel.
    ///
    /// # Errors
    /// Config validation and summary construction errors.
    pub fn new(d: u32, q: u32, cfg: &EngineConfig) -> Result<Self, EngineError> {
        Self::with_base(d, q, cfg, None, 0)
    }

    /// Spawn the workers on top of checkpointed state: every snapshot (and
    /// the final merge) folds `base` under the live shards, and epochs
    /// continue from `start_epoch`. This is the engine's resume path.
    ///
    /// # Errors
    /// Config validation and summary construction errors.
    pub(crate) fn with_base(
        d: u32,
        q: u32,
        cfg: &EngineConfig,
        base: Option<ShardSummary>,
        start_epoch: u64,
    ) -> Result<Self, EngineError> {
        // Validate everything shard construction can fail on up front (no
        // sketch allocation), so construction errors surface here — not as
        // worker panics — and the net materialization stays parallel.
        ShardSummary::validate(d, q, cfg)?;
        let mut senders = Vec::with_capacity(cfg.shards);
        let mut handles = Vec::with_capacity(cfg.shards);
        for shard_id in 0..cfg.shards {
            let (tx, rx) = mpsc::sync_channel::<Msg>(cfg.channel_capacity);
            let cfg = cfg.clone();
            handles.push(std::thread::spawn(move || {
                let shard = ShardSummary::new(d, q, shard_id, &cfg)
                    .expect("parameters validated by the router");
                worker(rx, shard, d as usize)
            }));
            senders.push(tx);
        }
        Ok(Self {
            packed_buf: vec![Vec::new(); cfg.shards],
            dense_buf: vec![Vec::new(); cfg.shards],
            senders,
            handles,
            d,
            q,
            batch_rows: cfg.batch_rows,
            partition_seed: cfg.seed ^ 0x9a97_7171_0000_5afe,
            // Like the epoch, the row counter continues from the
            // checkpointed state, so stats stay consistent with the
            // snapshot across a restart.
            rows_routed: base.as_ref().map(|b| b.rows()).unwrap_or(0),
            epoch: start_epoch,
            base,
            backpressure: std::sync::Arc::new(pfe_obs::Counter::new()),
        })
    }

    /// Route backpressure events (sends that found a shard channel full)
    /// into `counter` — typically `engine_ingest_backpressure` from the
    /// engine's shared recorder.
    pub fn instrument(&mut self, counter: std::sync::Arc<pfe_obs::Counter>) {
        self.backpressure = counter;
    }

    /// Dimension `d`.
    pub fn dimension(&self) -> u32 {
        self.d
    }

    /// Alphabet `Q`.
    pub fn alphabet(&self) -> u32 {
        self.q
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Rows routed so far (some may still be in flight to workers).
    pub fn rows_routed(&self) -> u64 {
        self.rows_routed
    }

    fn shard_of_packed(&self, row: u64) -> usize {
        (hash_u64(row, self.partition_seed) % self.senders.len() as u64) as usize
    }

    fn shard_of_dense(&self, row: &[u16]) -> usize {
        let mut h = self.partition_seed;
        for &s in row {
            h = hash_u64(h ^ s as u64, self.partition_seed);
        }
        (h % self.senders.len() as u64) as usize
    }

    fn send(&self, shard: usize, batch: RowBatch) -> Result<(), EngineError> {
        // Try the non-blocking path first so a full channel is visible as
        // a backpressure event before the router parks on the blocking
        // send (same delivery order either way — one sender per shard).
        match self.senders[shard].try_send(Msg::Batch(batch)) {
            Ok(()) => Ok(()),
            Err(mpsc::TrySendError::Disconnected(_)) => Err(EngineError::Closed),
            Err(mpsc::TrySendError::Full(msg)) => {
                self.backpressure.inc();
                self.senders[shard]
                    .send(msg)
                    .map_err(|_| EngineError::Closed)
            }
        }
    }

    /// Route one packed binary row.
    ///
    /// The pipeline is the serving boundary, so malformed rows are typed
    /// errors here (not panics): a bad client request must never take the
    /// engine down. The shard-side summaries keep their assert contracts
    /// as defense in depth — rows are validated before crossing a thread.
    ///
    /// # Errors
    /// `Query(BadParameter)` on shape violations; `Closed` if a worker
    /// has gone away.
    pub fn push_packed(&mut self, row: u64) -> Result<(), EngineError> {
        if self.q != 2 {
            return Err(EngineError::Query(QueryError::BadParameter(
                "push_packed requires a binary pipeline".into(),
            )));
        }
        if row & !((1u64 << self.d) - 1) != 0 {
            return Err(EngineError::Query(QueryError::BadParameter(format!(
                "row has bits above d={}",
                self.d
            ))));
        }
        let shard = self.shard_of_packed(row);
        self.packed_buf[shard].push(row);
        self.rows_routed += 1;
        if self.packed_buf[shard].len() >= self.batch_rows {
            let batch = std::mem::take(&mut self.packed_buf[shard]);
            self.send(shard, RowBatch::Packed(batch))?;
        }
        Ok(())
    }

    /// Route a slice of packed binary rows.
    ///
    /// Every row is validated *before* any routing happens (a malformed
    /// batch routes nothing), then rows are partitioned into the per-shard
    /// buffers and forwarded one bounded-channel message per full chunk —
    /// the same wire format as [`push_packed`](Self::push_packed), with
    /// the per-row q/mask checks and counter updates amortized across the
    /// whole slice.
    ///
    /// # Errors
    /// `Query(BadParameter)` on shape violations; `Closed` if a worker
    /// has gone away.
    pub fn push_packed_batch(&mut self, rows: &[u64]) -> Result<(), EngineError> {
        self.push_packed_batch_traced(rows, &TraceHandle::disabled())
    }

    /// [`push_packed_batch`](Self::push_packed_batch) under a request
    /// trace: the routing sweep is recorded as one `ingest_route` span
    /// and every bounded-channel hop to a worker as a child `shard_send`
    /// span (shard id, chunk index, rows). With a disabled handle this is
    /// exactly the untraced path — same delivery order, no allocation.
    ///
    /// # Errors
    /// `Query(BadParameter)` on shape violations; `Closed` if a worker
    /// has gone away.
    pub fn push_packed_batch_traced(
        &mut self,
        rows: &[u64],
        trace: &TraceHandle,
    ) -> Result<(), EngineError> {
        if self.q != 2 {
            return Err(EngineError::Query(QueryError::BadParameter(
                "push_packed requires a binary pipeline".into(),
            )));
        }
        let above_d = !((1u64 << self.d) - 1);
        if let Some(&bad) = rows.iter().find(|&&row| row & above_d != 0) {
            return Err(EngineError::Query(QueryError::BadParameter(format!(
                "row {bad:#x} has bits above d={}",
                self.d
            ))));
        }
        let mut route_span = trace.span("ingest_route");
        if route_span.is_enabled() {
            route_span.attr("rows", rows.len());
            route_span.attr("format", "packed");
        }
        let hop = route_span.handle();
        let mut chunk = 0usize;
        for &row in rows {
            let shard = self.shard_of_packed(row);
            self.packed_buf[shard].push(row);
            if self.packed_buf[shard].len() >= self.batch_rows {
                let batch = std::mem::take(&mut self.packed_buf[shard]);
                let mut send_span = hop.span("shard_send");
                if send_span.is_enabled() {
                    send_span.attr("shard", shard);
                    send_span.attr("chunk", chunk);
                    send_span.attr("rows", batch.len());
                }
                self.send(shard, RowBatch::Packed(batch))?;
                drop(send_span);
                chunk += 1;
            }
        }
        self.rows_routed += rows.len() as u64;
        Ok(())
    }

    /// Route one dense row.
    ///
    /// # Errors
    /// `Query(BadParameter)` on wrong row length or out-of-alphabet
    /// symbols (see [`push_packed`](Self::push_packed) on why these are
    /// errors, not panics); `Closed` if a worker has gone away.
    pub fn push_dense(&mut self, row: &[u16]) -> Result<(), EngineError> {
        if row.len() != self.d as usize {
            return Err(EngineError::Query(QueryError::BadParameter(format!(
                "row length {} != d = {}",
                row.len(),
                self.d
            ))));
        }
        if let Some(&s) = row.iter().find(|&&s| s as u32 >= self.q) {
            return Err(EngineError::Query(QueryError::BadParameter(format!(
                "symbol {s} outside alphabet Q={}",
                self.q
            ))));
        }
        let shard = self.shard_of_dense(row);
        self.dense_buf[shard].extend_from_slice(row);
        self.rows_routed += 1;
        if self.dense_buf[shard].len() >= self.batch_rows * self.d as usize {
            let batch = std::mem::take(&mut self.dense_buf[shard]);
            self.send(shard, RowBatch::Dense(batch))?;
        }
        Ok(())
    }

    /// Route a flattened row-major slice of dense rows (`d` symbols per
    /// row, `flat.len() / d` rows).
    ///
    /// Every symbol is validated *before* any routing happens (a
    /// malformed batch routes nothing), then rows are appended to the
    /// per-shard flat buffers — no per-row allocation anywhere on the
    /// path, which is what lets the columnar file ingester feed general
    /// alphabets at the same channel cost as the packed path.
    ///
    /// # Errors
    /// `Query(BadParameter)` on shape violations; `Closed` if a worker
    /// has gone away.
    pub fn push_dense_batch(&mut self, flat: &[u16]) -> Result<(), EngineError> {
        self.push_dense_batch_traced(flat, &TraceHandle::disabled())
    }

    /// [`push_dense_batch`](Self::push_dense_batch) under a request
    /// trace — see
    /// [`push_packed_batch_traced`](Self::push_packed_batch_traced) for
    /// the span shape.
    ///
    /// # Errors
    /// `Query(BadParameter)` on shape violations; `Closed` if a worker
    /// has gone away.
    pub fn push_dense_batch_traced(
        &mut self,
        flat: &[u16],
        trace: &TraceHandle,
    ) -> Result<(), EngineError> {
        let d = self.d as usize;
        if d == 0 || !flat.len().is_multiple_of(d) {
            return Err(EngineError::Query(QueryError::BadParameter(format!(
                "flat length {} is not a multiple of d = {}",
                flat.len(),
                self.d
            ))));
        }
        if let Some(&s) = flat.iter().find(|&&s| s as u32 >= self.q) {
            return Err(EngineError::Query(QueryError::BadParameter(format!(
                "symbol {s} outside alphabet Q={}",
                self.q
            ))));
        }
        let mut route_span = trace.span("ingest_route");
        if route_span.is_enabled() {
            route_span.attr("rows", flat.len() / d);
            route_span.attr("format", "dense");
        }
        let hop = route_span.handle();
        let mut chunk = 0usize;
        for row in flat.chunks_exact(d) {
            let shard = self.shard_of_dense(row);
            self.dense_buf[shard].extend_from_slice(row);
            if self.dense_buf[shard].len() >= self.batch_rows * d {
                let batch = std::mem::take(&mut self.dense_buf[shard]);
                let mut send_span = hop.span("shard_send");
                if send_span.is_enabled() {
                    send_span.attr("shard", shard);
                    send_span.attr("chunk", chunk);
                    send_span.attr("rows", batch.len() / d);
                }
                self.send(shard, RowBatch::Dense(batch))?;
                drop(send_span);
                chunk += 1;
            }
        }
        self.rows_routed += (flat.len() / d) as u64;
        Ok(())
    }

    /// Route a whole dataset (batch ingest).
    ///
    /// # Errors
    /// Shape mismatch (`BadConfig`) or `Closed`.
    pub fn ingest(&mut self, data: &Dataset) -> Result<(), EngineError> {
        if data.dimension() != self.d || data.alphabet() != self.q {
            return Err(EngineError::BadConfig(format!(
                "dataset shape ({}, Q={}) does not match pipeline ({}, Q={})",
                data.dimension(),
                data.alphabet(),
                self.d,
                self.q
            )));
        }
        match data {
            // One validation sweep + chunked channel sends for the packed
            // fast path, instead of per-row routing.
            Dataset::Binary(m) => self.push_packed_batch(m.rows())?,
            // Same story for the dense path: the matrix is already flat
            // row-major, so the batch router consumes it directly.
            Dataset::Qary(m) => self.push_dense_batch(m.flat())?,
        }
        Ok(())
    }

    /// Flush router-side buffers to the workers.
    ///
    /// # Errors
    /// `Closed` if a worker has gone away.
    pub fn flush(&mut self) -> Result<(), EngineError> {
        for shard in 0..self.senders.len() {
            if !self.packed_buf[shard].is_empty() {
                let batch = std::mem::take(&mut self.packed_buf[shard]);
                self.send(shard, RowBatch::Packed(batch))?;
            }
            if !self.dense_buf[shard].is_empty() {
                let batch = std::mem::take(&mut self.dense_buf[shard]);
                self.send(shard, RowBatch::Dense(batch))?;
            }
        }
        Ok(())
    }

    /// Take a point-in-time snapshot: flush, ask every worker for a clone
    /// of its summary, and merge the clones. Workers keep ingesting;
    /// subsequent pushes land in later snapshots.
    ///
    /// # Errors
    /// `Closed` if a worker has gone away.
    pub fn snapshot(&mut self) -> Result<Snapshot, EngineError> {
        self.flush()?;
        // One reply channel per worker; collection waits for every shard,
        // which (FIFO channels) also barriers all previously sent batches.
        let mut replies = Vec::with_capacity(self.senders.len());
        for tx in &self.senders {
            let (reply_tx, reply_rx) = mpsc::sync_channel::<ShardSummary>(1);
            tx.send(Msg::Collect(reply_tx))
                .map_err(|_| EngineError::Closed)?;
            replies.push(reply_rx);
        }
        let shards: Result<Vec<ShardSummary>, _> = replies
            .into_iter()
            .map(|rx| rx.recv().map_err(|_| EngineError::Closed))
            .collect();
        self.epoch += 1;
        Ok(Snapshot::from_shards(
            self.with_base_first(shards?),
            self.epoch,
        ))
    }

    /// Prepend a clone of the base (resume) state, if any, so the merge
    /// fold starts from the checkpointed summaries.
    fn with_base_first(&self, shards: Vec<ShardSummary>) -> Vec<ShardSummary> {
        match &self.base {
            None => shards,
            Some(base) => {
                let mut all = Vec::with_capacity(shards.len() + 1);
                all.push(base.clone());
                all.extend(shards);
                all
            }
        }
    }

    /// Shut down: flush, close the channels, join the workers, and merge
    /// their final summaries.
    ///
    /// # Errors
    /// `ShardFailed` if a worker panicked.
    pub fn finish(mut self) -> Result<Snapshot, EngineError> {
        self.flush()?;
        self.senders.clear(); // drop senders => workers drain and exit
        let mut shards = Vec::with_capacity(self.handles.len());
        for handle in self.handles.drain(..) {
            shards.push(
                handle
                    .join()
                    .map_err(|e| EngineError::ShardFailed(format!("{e:?}")))?,
            );
        }
        Ok(Snapshot::from_shards(
            self.with_base_first(shards),
            self.epoch + 1,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfe_row::ColumnSet;
    use pfe_stream::gen::{uniform_binary, uniform_qary};

    fn cfg(shards: usize) -> EngineConfig {
        EngineConfig {
            shards,
            sample_t: 512,
            kmv_k: 64,
            batch_rows: 64,
            ..Default::default()
        }
    }

    #[test]
    fn batch_ingest_then_finish() {
        let d = 10;
        let data = uniform_binary(d, 3000, 5);
        let mut p = IngestPipeline::new(d, 2, &cfg(3)).expect("spawn");
        p.ingest(&data).expect("ingest");
        assert_eq!(p.rows_routed(), 3000);
        let snap = p.finish().expect("finish");
        assert_eq!(snap.n(), 3000);
        let cols = ColumnSet::from_mask(d, 0b11111).expect("valid");
        assert!(snap.f0(&cols).expect("ok").estimate > 0.0);
    }

    #[test]
    fn incremental_push_and_live_snapshots() {
        let d = 8;
        let data = uniform_binary(d, 1000, 6);
        let mut p = IngestPipeline::new(d, 2, &cfg(2)).expect("spawn");
        let rows: Vec<u64> = match &data {
            Dataset::Binary(m) => m.rows().to_vec(),
            Dataset::Qary(_) => unreachable!("generator yields binary data"),
        };
        for &row in &rows[..500] {
            p.push_packed(row).expect("push");
        }
        let snap1 = p.snapshot().expect("snapshot");
        assert_eq!(snap1.n(), 500);
        for &row in &rows[500..] {
            p.push_packed(row).expect("push");
        }
        let snap2 = p.snapshot().expect("snapshot");
        assert_eq!(snap2.n(), 1000);
        assert!(snap2.epoch() > snap1.epoch());
        // Pipeline still alive after snapshots.
        let final_snap = p.finish().expect("finish");
        assert_eq!(final_snap.n(), 1000);
    }

    #[test]
    fn qary_ingest_roundtrip() {
        let data = uniform_qary(3, 6, 800, 7);
        let mut p = IngestPipeline::new(6, 3, &cfg(2)).expect("spawn");
        p.ingest(&data).expect("ingest");
        let snap = p.finish().expect("finish");
        assert_eq!(snap.n(), 800);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let data = uniform_binary(9, 10, 8);
        let mut p = IngestPipeline::new(8, 2, &cfg(1)).expect("spawn");
        assert!(matches!(p.ingest(&data), Err(EngineError::BadConfig(_))));
    }

    #[test]
    fn malformed_rows_are_typed_errors_not_panics() {
        // The pipeline is the serving boundary: a bad client row must not
        // take the engine down (regression: wrong-length rows panicked).
        let mut p = IngestPipeline::new(8, 2, &cfg(2)).expect("spawn");
        assert!(matches!(p.push_dense(&[0, 1]), Err(EngineError::Query(_))));
        assert!(matches!(p.push_dense(&[7; 8]), Err(EngineError::Query(_))));
        assert!(matches!(p.push_packed(1 << 20), Err(EngineError::Query(_))));
        // A batch with one bad row routes nothing.
        let routed_before = p.rows_routed();
        assert!(matches!(
            p.push_packed_batch(&[0b1, 1 << 20, 0b10]),
            Err(EngineError::Query(_))
        ));
        assert_eq!(p.rows_routed(), routed_before);
        // Still healthy afterwards.
        p.push_packed(0b1010_1010).expect("good row");
        p.push_dense(&[0, 1, 0, 1, 0, 1, 0, 1]).expect("good row");
        let snap = p.finish().expect("finish");
        assert_eq!(snap.n(), 2);
        // Q-ary pipeline rejects push_packed.
        let mut q = IngestPipeline::new(4, 3, &cfg(1)).expect("spawn");
        assert!(matches!(q.push_packed(0), Err(EngineError::Query(_))));
        q.finish().expect("finish");
    }

    #[test]
    fn dense_batch_matches_per_row_pushes() {
        // One flat batched push must produce the same snapshot as d-sized
        // per-row pushes: same per-shard arrival order either way.
        let (d, q) = (6u32, 3u32);
        let data = uniform_qary(q, d, 900, 11);
        let rows: Vec<Vec<u16>> = match &data {
            Dataset::Qary(m) => (0..m.num_rows()).map(|i| m.row(i).to_vec()).collect(),
            Dataset::Binary(_) => unreachable!("generator yields q-ary data"),
        };
        let flat: Vec<u16> = rows.iter().flatten().copied().collect();
        let mut a = IngestPipeline::new(d, q, &cfg(3)).expect("spawn");
        for row in &rows {
            a.push_dense(row).expect("push");
        }
        let mut b = IngestPipeline::new(d, q, &cfg(3)).expect("spawn");
        b.push_dense_batch(&flat).expect("batch push");
        assert_eq!(b.rows_routed(), 900);
        let (sa, sb) = (a.finish().expect("finish"), b.finish().expect("finish"));
        assert_eq!(sa.n(), sb.n());
        let cols = ColumnSet::from_mask(d, 0b111).expect("valid");
        assert_eq!(
            sa.f0(&cols).expect("ok").estimate,
            sb.f0(&cols).expect("ok").estimate
        );
        // Malformed flat batches are typed errors that route nothing.
        let mut c = IngestPipeline::new(d, q, &cfg(2)).expect("spawn");
        assert!(matches!(
            c.push_dense_batch(&flat[..5]),
            Err(EngineError::Query(_))
        ));
        assert!(matches!(
            c.push_dense_batch(&[9; 6]),
            Err(EngineError::Query(_))
        ));
        assert_eq!(c.rows_routed(), 0);
        c.finish().expect("finish");
    }

    #[test]
    fn partitioning_is_content_stable() {
        let p = IngestPipeline::new(8, 2, &cfg(4)).expect("spawn");
        for row in 0..200u64 {
            assert_eq!(p.shard_of_packed(row), p.shard_of_packed(row));
        }
        // All shards get traffic.
        let mut seen = [false; 4];
        for row in 0..200u64 {
            seen[p.shard_of_packed(row)] = true;
        }
        assert!(seen.iter().all(|&s| s), "unused shard under hash partition");
    }
}
