//! The wire protocol: canonical `pfe-query` types ⇄ line-delimited JSON.
//!
//! One definition drives everything — the `serve` example parses requests
//! with [`query_from_json`] and serializes responses with
//! [`answer_to_json`] / [`stats_to_json`], so the Rust API, the cache
//! keys, and the wire protocol can never drift apart. The statistic op
//! names are [`StatKind::name`] (`f0`, `frequency`, `heavy_hitters`,
//! `l1_sample`, `fp`); per-query options travel as optional fields
//! (`epoch`, `bypass_cache`, `exact`, `seed`).
//!
//! ```
//! use pfe_engine::{wire, Json};
//! use pfe_query::Statistic;
//!
//! let req = Json::parse(r#"{"op":"heavy_hitters","cols":[0,2],"phi":0.1}"#).unwrap();
//! let query = wire::query_from_json(&req).unwrap();
//! assert_eq!(query.cols, vec![0, 2]);
//! assert_eq!(query.statistic, Statistic::HeavyHitters { phi: 0.1 });
//! ```

use pfe_query::{Answer, AnswerValue, Query, StatKind};
use pfe_row::PatternCodec;

use crate::engine::EngineStats;
use crate::json::Json;

/// Parse an array of nonnegative integers fitting `u32` (e.g. a `cols`
/// field).
///
/// # Errors
/// A message naming the malformed element.
pub fn u32s(v: Option<&Json>) -> Result<Vec<u32>, String> {
    v.and_then(Json::as_arr)
        .ok_or_else(|| "expected an array of numbers".to_string())?
        .iter()
        .map(|x| {
            x.as_f64()
                .filter(|&f| f >= 0.0 && f.fract() == 0.0 && f < u32::MAX as f64)
                .map(|f| f as u32)
                .ok_or_else(|| "expected a nonnegative integer".to_string())
        })
        .collect()
}

/// Parse an array of symbols fitting `u16` (e.g. a `pattern` field or an
/// ingest row).
///
/// # Errors
/// A message naming the malformed element.
pub fn u16s(v: Option<&Json>) -> Result<Vec<u16>, String> {
    u32s(v)?
        .into_iter()
        .map(|x| u16::try_from(x).map_err(|_| format!("symbol {x} exceeds u16 range")))
        .collect()
}

fn uint(req: &Json, field: &str) -> Result<Option<u64>, String> {
    match req.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .filter(|&f| f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64)
            .map(|f| Some(f as u64))
            .ok_or_else(|| format!("'{field}' must be a nonnegative integer")),
    }
}

fn flag(req: &Json, field: &str) -> Result<bool, String> {
    match req.get(field) {
        None | Some(Json::Null) | Some(Json::Bool(false)) => Ok(false),
        Some(Json::Bool(true)) => Ok(true),
        Some(_) => Err(format!("'{field}' must be a boolean")),
    }
}

/// Parse one statistic request object into a [`Query`].
///
/// The object's `op` must be a [`StatKind::name`]; `cols` is required;
/// statistic payloads (`pattern`, `phi`, `k`) and options (`epoch`,
/// `bypass_cache`, `exact`, `seed`, `window`) are read from sibling
/// fields. A `window` field asks for the most recent `window` rows and is
/// honored by a windowed engine (a plain engine returns a typed error).
///
/// # Errors
/// A human-readable message naming the malformed field.
pub fn query_from_json(req: &Json) -> Result<Query, String> {
    let op = req
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing 'op'".to_string())?;
    let builder = Query::over(u32s(req.get("cols"))?);
    let mut query = match op {
        "f0" => builder.f0(),
        "frequency" | "freq" => builder.frequency(u16s(req.get("pattern"))?),
        "heavy_hitters" | "hh" => {
            let phi = req
                .get("phi")
                .and_then(Json::as_f64)
                .ok_or_else(|| "missing 'phi'".to_string())?;
            builder.heavy_hitters(phi)
        }
        "l1_sample" => {
            let k = uint(req, "k")?.ok_or_else(|| "missing 'k'".to_string())?;
            builder.l1_sample(k as usize)
        }
        "fp" => {
            let p = req
                .get("p")
                .and_then(Json::as_f64)
                .ok_or_else(|| "missing 'p'".to_string())?;
            builder.fp(p)
        }
        other => return Err(format!("unknown statistic op '{other}'")),
    };
    if let Some(seed) = uint(req, "seed")? {
        query = query.with_seed(seed);
    }
    if let Some(epoch) = uint(req, "epoch")? {
        query = query.pinned_to(epoch);
    }
    if flag(req, "bypass_cache")? {
        query = query.bypass_cache();
    }
    if flag(req, "exact")? {
        query = query.exact_if_available();
    }
    if let Some(last_n) = uint(req, "window")? {
        query = query.window(last_n);
    }
    Ok(query)
}

fn indices_json(cols: &pfe_row::ColumnSet) -> Json {
    Json::Arr(
        cols.to_indices()
            .into_iter()
            .map(|i| Json::Num(i as f64))
            .collect(),
    )
}

fn pattern_json(codec: &PatternCodec, key: pfe_row::PatternKey) -> Json {
    Json::Arr(
        codec
            .decode(key)
            .into_iter()
            .map(|s| Json::Num(s as f64))
            .collect(),
    )
}

/// Serialize one [`Answer`] (computed over alphabet `q`) as a response
/// object: the statistic payload plus the guarantee, rounded-mask
/// provenance, snapshot epoch, and cache/cost metadata.
pub fn answer_to_json(answer: &Answer, q: u32) -> Json {
    let mut fields: Vec<(&'static str, Json)> = vec![("ok", Json::Bool(true))];
    match &answer.value {
        AnswerValue::F0 { estimate } => {
            fields.push(("estimate", Json::Num(*estimate)));
        }
        AnswerValue::Frequency {
            estimate,
            upper_bound,
        } => {
            fields.push(("estimate", Json::Num(*estimate)));
            fields.push((
                "upper_bound",
                upper_bound.map(Json::Num).unwrap_or(Json::Null),
            ));
        }
        AnswerValue::HeavyHitters { hitters } => {
            let codec = PatternCodec::new(q, answer.provenance.requested.len())
                .expect("codec validated when the answer was computed");
            fields.push((
                "hitters",
                Json::Arr(
                    hitters
                        .iter()
                        .map(|h| {
                            Json::obj([
                                ("pattern", pattern_json(&codec, h.key)),
                                ("estimate", Json::Num(h.estimate)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        AnswerValue::L1Sample { patterns } => {
            let codec = PatternCodec::new(q, answer.provenance.requested.len())
                .expect("codec validated when the answer was computed");
            fields.push((
                "patterns",
                Json::Arr(
                    patterns
                        .iter()
                        .map(|p| {
                            Json::obj([
                                ("pattern", pattern_json(&codec, p.key)),
                                ("probability", Json::Num(p.probability)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        AnswerValue::Fp { estimate } => {
            fields.push(("estimate", Json::Num(*estimate)));
        }
    }
    fields.push((
        "guarantee",
        Json::obj([
            ("alpha", Json::Num(answer.guarantee.alpha)),
            ("epsilon", Json::Num(answer.guarantee.epsilon)),
            ("source", Json::Str(answer.guarantee.source.name().into())),
        ]),
    ));
    fields.push(("answered_on", indices_json(&answer.provenance.answered_on)));
    fields.push(("sym_diff", Json::Num(answer.provenance.sym_diff as f64)));
    fields.push(("epoch", Json::Num(answer.epoch as f64)));
    fields.push(("cached", Json::Bool(answer.cost.cached)));
    fields.push(("group_size", Json::Num(answer.cost.group_size as f64)));
    if let Some(id) = answer.trace_id {
        fields.push(("trace_id", Json::Str(pfe_obs::TraceContext::format_id(id))));
    }
    if let Some(w) = &answer.window {
        fields.push((
            "window",
            Json::obj([
                ("requested_rows", Json::Num(w.requested_rows as f64)),
                ("covered_rows", Json::Num(w.covered_rows as f64)),
                ("buckets", Json::Num(w.buckets as f64)),
                ("truncated", Json::Bool(w.truncated)),
            ]),
        ));
    }
    Json::obj(fields)
}

/// Serialize [`EngineStats`] as the `{"op":"stats"}` response object.
pub fn stats_to_json(stats: &EngineStats) -> Json {
    Json::obj([
        ("ok", Json::Bool(true)),
        ("rows_ingested", Json::Num(stats.rows_ingested as f64)),
        ("snapshot_epoch", Json::Num(stats.snapshot_epoch as f64)),
        ("snapshot_rows", Json::Num(stats.snapshot_rows as f64)),
        ("snapshot_bytes", Json::Num(stats.snapshot_bytes as f64)),
        ("cache_hits", Json::Num(stats.cache.hits as f64)),
        ("cache_misses", Json::Num(stats.cache.misses as f64)),
        ("cache_evictions", Json::Num(stats.cache.evictions as f64)),
        ("cache_hit_ratio", Json::Num(stats.cache.hit_ratio())),
        ("queries_served", Json::Num(stats.queries_served as f64)),
        (
            "queries",
            Json::obj(
                StatKind::ALL
                    .iter()
                    .map(|&k| (k.name(), Json::Num(stats.queries.get(k) as f64)))
                    .collect::<Vec<_>>(),
            ),
        ),
        ("shards", Json::Num(stats.shards as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfe_query::{CostInfo, Guarantee, Provenance, Statistic};
    use pfe_row::ColumnSet;

    #[test]
    fn parses_every_statistic_with_options() {
        let q = query_from_json(&Json::parse(r#"{"op":"f0","cols":[0,3]}"#).unwrap()).unwrap();
        assert_eq!(q.statistic, Statistic::F0);
        assert_eq!(q.cols, vec![0, 3]);
        assert_eq!(q.options, Default::default());

        let q = query_from_json(
            &Json::parse(r#"{"op":"frequency","cols":[0,1],"pattern":[1,0]}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(
            q.statistic,
            Statistic::Frequency {
                pattern: vec![1, 0]
            }
        );
        // Legacy short op still accepted.
        let q2 =
            query_from_json(&Json::parse(r#"{"op":"freq","cols":[0,1],"pattern":[1,0]}"#).unwrap())
                .unwrap();
        assert_eq!(q.statistic, q2.statistic);

        let q = query_from_json(
            &Json::parse(
                r#"{"op":"heavy_hitters","cols":[2],"phi":0.25,"epoch":4,"bypass_cache":true}"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(q.statistic, Statistic::HeavyHitters { phi: 0.25 });
        assert_eq!(q.options.pin_epoch, Some(4));
        assert!(q.options.bypass_cache);

        let q = query_from_json(
            &Json::parse(r#"{"op":"l1_sample","cols":[0],"k":16,"seed":7,"exact":true}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(q.statistic, Statistic::L1Sample { k: 16, seed: 7 });
        assert!(q.options.exact_if_available);

        let q =
            query_from_json(&Json::parse(r#"{"op":"fp","cols":[0,1],"p":1.5}"#).unwrap()).unwrap();
        assert_eq!(q.statistic, Statistic::Fp { p: 1.5 });

        // A window field travels on every statistic op.
        let q = query_from_json(&Json::parse(r#"{"op":"f0","cols":[0,1],"window":5000}"#).unwrap())
            .unwrap();
        assert_eq!(q.options.window, Some(5000));
        let q = query_from_json(
            &Json::parse(r#"{"op":"heavy_hitters","cols":[0],"phi":0.1,"window":100}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(q.options.window, Some(100));
    }

    #[test]
    fn rejects_malformed_requests() {
        for text in [
            r#"{"cols":[0]}"#,
            r#"{"op":"nope","cols":[0]}"#,
            r#"{"op":"f0"}"#,
            r#"{"op":"f0","cols":[-1]}"#,
            r#"{"op":"heavy_hitters","cols":[0]}"#,
            r#"{"op":"l1_sample","cols":[0]}"#,
            r#"{"op":"fp","cols":[0]}"#,
            r#"{"op":"fp","cols":[0],"p":"two"}"#,
            r#"{"op":"f0","cols":[0],"epoch":1.5}"#,
            r#"{"op":"f0","cols":[0],"bypass_cache":1}"#,
            r#"{"op":"f0","cols":[0],"window":-3}"#,
        ] {
            let req = Json::parse(text).expect("valid json");
            assert!(query_from_json(&req).is_err(), "accepted {text}");
        }
    }

    #[test]
    fn answer_serialization_carries_guarantee_and_provenance() {
        let requested = ColumnSet::from_indices(8, &[0, 1, 4]).expect("valid");
        let answered_on = ColumnSet::from_indices(8, &[0, 1]).expect("valid");
        let answer = Answer {
            value: AnswerValue::F0 { estimate: 12.0 },
            guarantee: Guarantee {
                alpha: 2.5,
                epsilon: 0.0,
                source: pfe_query::GuaranteeSource::AlphaNet,
            },
            provenance: Provenance {
                requested,
                answered_on,
                sym_diff: 1,
            },
            epoch: 3,
            cost: CostInfo {
                cached: true,
                group_size: 2,
            },
            window: None,
            trace_id: None,
        };
        let json = answer_to_json(&answer, 2);
        assert_eq!(json.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(json.get("estimate").and_then(Json::as_f64), Some(12.0));
        let g = json.get("guarantee").expect("guarantee travels");
        assert_eq!(g.get("alpha").and_then(Json::as_f64), Some(2.5));
        assert_eq!(g.get("source").and_then(Json::as_str), Some("alpha_net"));
        assert_eq!(
            json.get("answered_on")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(json.get("sym_diff").and_then(Json::as_f64), Some(1.0));
        assert_eq!(json.get("cached"), Some(&Json::Bool(true)));
        assert_eq!(json.get("group_size").and_then(Json::as_f64), Some(2.0));
        // Unwindowed answers carry no window object…
        assert!(json.get("window").is_none());
        // …windowed answers serialize their realized coverage.
        let windowed = Answer {
            window: Some(pfe_query::WindowCoverage {
                requested_rows: 1000,
                covered_rows: 1200,
                buckets: 3,
                truncated: false,
            }),
            ..answer
        };
        let json_w = answer_to_json(&windowed, 2);
        let w = json_w.get("window").expect("coverage travels");
        assert_eq!(w.get("requested_rows").and_then(Json::as_f64), Some(1000.0));
        assert_eq!(w.get("covered_rows").and_then(Json::as_f64), Some(1200.0));
        assert_eq!(w.get("buckets").and_then(Json::as_f64), Some(3.0));
        assert_eq!(w.get("truncated"), Some(&Json::Bool(false)));
        // Untraced answers carry no trace_id field at all (wire parity);
        // traced answers echo the id as 32 hex digits.
        assert!(json_w.get("trace_id").is_none());
        let traced = Answer {
            trace_id: Some(0xab),
            ..windowed
        };
        assert_eq!(
            answer_to_json(&traced, 2)
                .get("trace_id")
                .and_then(Json::as_str),
            Some(format!("{:032x}", 0xab).as_str())
        );
        // The output is valid, re-parseable JSON.
        assert_eq!(Json::parse(&json_w.to_string()).expect("reparse"), json_w);
    }
}
