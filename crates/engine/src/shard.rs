//! Per-shard summary state.
//!
//! Each ingest worker owns one [`ShardSummary`]: a uniform row sample
//! (Theorem 5.1), an α-net `F_0` summary (Algorithm 1 with KMV plug-ins),
//! and optionally an α-net CountMin frequency summary. All three are
//! mergeable — KMV/CountMin exactly (per-mask seeds are derived from the
//! shared base seed, so equal masks carry equal seeds on every shard), the
//! reservoir by the seeded hypergeometric union — which is what makes the
//! shard → merge → snapshot pipeline equivalent to a single-threaded build.

use pfe_core::alpha_net::{AlphaNet, AlphaNetF0, NetMode};
use pfe_core::{fp_seed, AlphaNetFrequency, FpNet, UniformSampleSummary};
use pfe_hash::rng::SplitMix64;
use pfe_persist::{Decoder, Encoder, Persist, PersistError};
use pfe_sketch::kmv::Kmv;
use pfe_sketch::traits::SpaceUsage;

use crate::config::EngineConfig;
use crate::error::EngineError;

/// Summaries owned by one ingest shard.
#[derive(Clone)]
pub struct ShardSummary {
    sample: UniformSampleSummary,
    net_f0: AlphaNetF0<Kmv>,
    freq: Option<AlphaNetFrequency>,
    fp: Vec<FpNet>,
    rows: u64,
}

/// Reservoir seed for shard `shard_id`: statistically independent streams
/// per shard, derived deterministically from the base seed.
fn shard_sample_seed(base: u64, shard_id: usize) -> u64 {
    let mut sm = SplitMix64::new(base ^ 0x5a5a);
    let mut s = 0;
    for _ in 0..=shard_id {
        s = sm.next_u64();
    }
    s
}

impl ShardSummary {
    /// Check every failure path of [`new`](Self::new) without materializing
    /// any sketch — the router calls this once so worker-thread
    /// construction cannot fail, keeping the (potentially large) net
    /// materialization off the caller thread.
    ///
    /// # Errors
    /// The same errors `new` would surface.
    pub fn validate(d: u32, q: u32, cfg: &EngineConfig) -> Result<(), EngineError> {
        cfg.validate()?;
        let net = AlphaNet::new(d, cfg.alpha)?;
        if q < 2 {
            return Err(EngineError::Query(pfe_core::QueryError::BadParameter(
                format!("alphabet q={q} must be >= 2"),
            )));
        }
        let count = net.member_count(NetMode::Full);
        if count > cfg.max_subsets {
            return Err(EngineError::Query(pfe_core::QueryError::BadParameter(
                format!(
                    "net would materialize {count} subsets, above the safety cap {}",
                    cfg.max_subsets
                ),
            )));
        }
        if q > 2 {
            // The widths the Full net materializes (same set the summary
            // constructors validate).
            for w in (0..=net.small_size()).chain(net.large_size()..=d) {
                pfe_row::PatternCodec::new(q, w).map_err(pfe_core::QueryError::from)?;
            }
        }
        Ok(())
    }

    /// Create the empty summaries for one shard of a `d`-column stream over
    /// alphabet `q`.
    ///
    /// # Errors
    /// Parameter/codec errors; net size above the configured cap.
    pub fn new(d: u32, q: u32, shard_id: usize, cfg: &EngineConfig) -> Result<Self, EngineError> {
        cfg.validate()?;
        let net = AlphaNet::new(d, cfg.alpha)?;
        let kmv_k = cfg.kmv_k;
        let seed = cfg.seed;
        // KMV seeds depend only on (mask, base seed) — NOT the shard id —
        // so shard merges are exact unions.
        let net_f0 =
            AlphaNetF0::new_streaming_qary(net, NetMode::Full, cfg.max_subsets, q, |mask| {
                Kmv::new(kmv_k, mask ^ seed)
            })?;
        let freq = cfg
            .freq_net
            .map(|fc| {
                AlphaNetFrequency::new_streaming(net, q, fc.depth, fc.width, cfg.max_subsets, seed)
            })
            .transpose()?;
        // Fp seeds, like KMV seeds, depend only on (base seed, order,
        // mask) — not the shard id — so shard merges are well-defined.
        let mut fp = Vec::new();
        if let Some(fp_cfg) = &cfg.fp {
            fp.reserve(fp_cfg.orders.len());
            for (idx, &p) in fp_cfg.orders.iter().enumerate() {
                fp.push(FpNet::new_streaming_qary(
                    net,
                    NetMode::Full,
                    cfg.max_subsets,
                    q,
                    p,
                    fp_cfg,
                    fp_seed(seed, idx),
                )?);
            }
        }
        Ok(Self {
            sample: UniformSampleSummary::new(
                d,
                q,
                cfg.sample_t,
                shard_sample_seed(seed, shard_id),
            ),
            net_f0,
            freq,
            fp,
            rows: 0,
        })
    }

    /// Observe one packed binary row.
    ///
    /// # Panics
    /// Panics if the shard is not binary or the row has bits at or above
    /// `d`.
    pub fn push_packed(&mut self, row: u64) {
        self.sample.push_packed(row);
        self.net_f0.push_packed(row);
        if let Some(freq) = &mut self.freq {
            freq.push_packed(row);
        }
        for net in &mut self.fp {
            net.push_packed(row);
        }
        self.rows += 1;
    }

    /// Observe one dense row (any alphabet).
    ///
    /// # Panics
    /// Panics on wrong row length or out-of-alphabet symbols.
    pub fn push_dense(&mut self, row: &[u16]) {
        self.sample.push_dense(row);
        self.net_f0.push_dense(row);
        if let Some(freq) = &mut self.freq {
            freq.push_dense(row);
        }
        for net in &mut self.fp {
            net.push_dense(row);
        }
        self.rows += 1;
    }

    /// Fold another shard's summaries into this one.
    ///
    /// # Panics
    /// Panics on shape/parameter mismatch (shards of one engine always
    /// match).
    pub fn merge(&mut self, other: &Self) {
        self.sample.merge(&other.sample);
        self.net_f0.merge(&other.net_f0);
        match (&mut self.freq, &other.freq) {
            (Some(a), Some(b)) => a.merge(b),
            (None, None) => {}
            _ => panic!("shard merge: frequency-net presence mismatch"),
        }
        assert_eq!(
            self.fp.len(),
            other.fp.len(),
            "shard merge: fp-net count mismatch"
        );
        for (a, b) in self.fp.iter_mut().zip(&other.fp) {
            a.merge(b);
        }
        self.rows += other.rows;
    }

    /// Rows observed by this shard.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// The uniform row sample.
    pub fn sample(&self) -> &UniformSampleSummary {
        &self.sample
    }

    /// The α-net `F_0` summary.
    pub fn net_f0(&self) -> &AlphaNetF0<Kmv> {
        &self.net_f0
    }

    /// The optional frequency net.
    pub fn freq(&self) -> Option<&AlphaNetFrequency> {
        self.freq.as_ref()
    }

    /// The `F_p` moment nets, one per configured order.
    pub fn fp(&self) -> &[FpNet] {
        &self.fp
    }

    /// Reassemble a shard from parts (the resume path: a decoded snapshot
    /// becomes the base state that every later snapshot merges on top of).
    pub(crate) fn from_parts(
        sample: UniformSampleSummary,
        net_f0: AlphaNetF0<Kmv>,
        freq: Option<AlphaNetFrequency>,
        fp: Vec<FpNet>,
        rows: u64,
    ) -> Self {
        Self {
            sample,
            net_f0,
            freq,
            fp,
            rows,
        }
    }

    /// Decompose into parts (snapshot assembly).
    pub(crate) fn into_parts(
        self,
    ) -> (
        UniformSampleSummary,
        AlphaNetF0<Kmv>,
        Option<AlphaNetFrequency>,
        Vec<FpNet>,
        u64,
    ) {
        (self.sample, self.net_f0, self.freq, self.fp, self.rows)
    }
}

impl Persist for ShardSummary {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.rows);
        self.sample.encode(enc);
        self.net_f0.encode(enc);
        self.freq.encode(enc);
        enc.put_len(self.fp.len());
        for net in &self.fp {
            net.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let rows = dec.take_u64()?;
        let sample = UniformSampleSummary::decode(dec)?;
        let net_f0 = AlphaNetF0::<Kmv>::decode(dec)?;
        let freq = Option::<AlphaNetFrequency>::decode(dec)?;
        // Each fp net is at least a family tag plus net parameters.
        let n_fp = dec.take_len(13)?;
        let mut fp = Vec::with_capacity(n_fp);
        for _ in 0..n_fp {
            fp.push(FpNet::decode(dec)?);
        }
        // Cross-component consistency, mirroring `Snapshot::decode`: a
        // CRC-valid record whose parts are each internally consistent but
        // summarize different (d, Q) would panic later when a merge walks
        // one component's masks and indexes the other's.
        let (d, q) = (sample.dimension(), sample.alphabet());
        if net_f0.net().dimension() != d || net_f0.alphabet() != q {
            return Err(PersistError::Malformed(format!(
                "F0 net summarizes ({}, Q={}) but the sample holds ({d}, Q={q})",
                net_f0.net().dimension(),
                net_f0.alphabet()
            )));
        }
        if let Some(f) = &freq {
            if f.net() != net_f0.net() || f.alphabet() != q {
                return Err(PersistError::Malformed(format!(
                    "frequency net (d={}, alpha={}, Q={}) disagrees with the F0 net \
                     (d={d}, alpha={}, Q={q})",
                    f.net().dimension(),
                    f.net().alpha(),
                    f.alphabet(),
                    net_f0.net().alpha()
                )));
            }
        }
        for net in &fp {
            if net.net() != net_f0.net() || net.alphabet() != q {
                return Err(PersistError::Malformed(format!(
                    "fp net (p={}, d={}, Q={}) disagrees with the F0 net (d={d}, Q={q})",
                    net.p(),
                    net.net().dimension(),
                    net.alphabet()
                )));
            }
        }
        Ok(Self {
            sample,
            net_f0,
            freq,
            fp,
            rows,
        })
    }
}

impl SpaceUsage for ShardSummary {
    fn space_bytes(&self) -> usize {
        self.sample.space_bytes()
            + self.net_f0.space_bytes()
            + self.freq.as_ref().map(|f| f.space_bytes()).unwrap_or(0)
            + self.fp.iter().map(|n| n.space_bytes()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FreqNetConfig;
    use pfe_row::ColumnSet;
    use pfe_stream::gen::uniform_binary;

    fn cfg() -> EngineConfig {
        EngineConfig {
            shards: 2,
            sample_t: 256,
            kmv_k: 64,
            freq_net: Some(FreqNetConfig {
                depth: 4,
                width: 256,
            }),
            fp: Some(pfe_core::FpConfig {
                orders: vec![2.0, 0.5],
                stable_t: 4,
                ams_groups: 3,
                ams_per_group: 4,
            }),
            ..Default::default()
        }
    }

    #[test]
    fn two_shards_merge_to_single_build_f0() {
        let d = 10;
        let data = uniform_binary(d, 1200, 3);
        let cfg = cfg();
        let mut single = ShardSummary::new(d, 2, 0, &cfg).expect("new");
        let mut a = ShardSummary::new(d, 2, 0, &cfg).expect("new");
        let mut b = ShardSummary::new(d, 2, 1, &cfg).expect("new");
        if let pfe_row::Dataset::Binary(m) = &data {
            for (i, &row) in m.rows().iter().enumerate() {
                single.push_packed(row);
                if i % 2 == 0 {
                    a.push_packed(row);
                } else {
                    b.push_packed(row);
                }
            }
        } else {
            unreachable!("generator yields binary data");
        }
        a.merge(&b);
        assert_eq!(a.rows(), single.rows());
        // KMV union over disjoint segments == single KMV over the stream.
        for mask in [0b11u64, 0b1111100000, (1 << d) - 1] {
            let cols = ColumnSet::from_mask(d, mask).expect("valid");
            assert_eq!(
                a.net_f0().f0(&cols).expect("ok").estimate,
                single.net_f0().f0(&cols).expect("ok").estimate,
                "merged shards diverged from single build at mask {mask:#b}"
            );
        }
        // Frequency nets merge by CountMin addition: totals match exactly.
        assert_eq!(a.freq().expect("on").n(), single.freq().expect("on").n());
        // AMS fp net (integer sums) merges bit-exactly; the stable net
        // agrees up to f64 addition order.
        let cols = ColumnSet::from_mask(d, 0b11).expect("valid");
        assert_eq!(a.fp().len(), 2);
        assert_eq!(
            a.fp()[0].fp(&cols).expect("ok").estimate.to_bits(),
            single.fp()[0].fp(&cols).expect("ok").estimate.to_bits(),
            "AMS fp merge not bit-exact"
        );
        let (m, s) = (
            a.fp()[1].fp(&cols).expect("ok").estimate,
            single.fp()[1].fp(&cols).expect("ok").estimate,
        );
        assert!(
            (m - s).abs() <= 1e-9 * s.abs().max(1.0),
            "stable fp merge diverged beyond float tolerance: {m} vs {s}"
        );
    }

    #[test]
    fn shard_reservoir_seeds_differ() {
        assert_ne!(shard_sample_seed(0, 0), shard_sample_seed(0, 1));
        assert_ne!(shard_sample_seed(0, 1), shard_sample_seed(1, 1));
        // Deterministic.
        assert_eq!(shard_sample_seed(7, 3), shard_sample_seed(7, 3));
    }

    #[test]
    fn space_accounted() {
        let s = ShardSummary::new(8, 2, 0, &cfg()).expect("new");
        assert!(s.space_bytes() > 0);
    }

    #[test]
    fn persist_roundtrip_is_byte_stable() {
        let d = 8;
        let mut s = ShardSummary::new(d, 2, 1, &cfg()).expect("new");
        if let pfe_row::Dataset::Binary(m) = &uniform_binary(d, 700, 23) {
            for &row in m.rows() {
                s.push_packed(row);
            }
        }
        let mut enc = pfe_persist::Encoder::new();
        s.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = pfe_persist::Decoder::new(&bytes);
        let back = ShardSummary::decode(&mut dec).expect("decode");
        assert_eq!(back.rows(), s.rows());
        // Re-encode must be byte-identical (canonical encoding).
        let mut enc2 = pfe_persist::Encoder::new();
        back.encode(&mut enc2);
        assert_eq!(enc2.into_bytes(), bytes);
        // Decoded summaries answer identically.
        let cols = ColumnSet::from_mask(d, 0b1111).expect("valid");
        assert_eq!(
            back.net_f0().f0(&cols).expect("ok").estimate,
            s.net_f0().f0(&cols).expect("ok").estimate
        );
        assert_eq!(
            back.sample().projected_sample(&cols).expect("ok"),
            s.sample().projected_sample(&cols).expect("ok")
        );
    }
}
