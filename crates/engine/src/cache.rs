//! Thread-safe LRU cache for query answers, keyed by the canonical
//! [`QueryKey`].
//!
//! The key is the *effective* identity of a query against one snapshot:
//! `(epoch, rounded subset mask, statistic, payload, exactness)` — the
//! rounded mask, because every query that rounds to the same net member
//! reads the same sketch; caching at that granularity makes the
//! `subspace_explorer` access pattern (many nearby subsets probing the
//! same region of the net) hit after the first probe. The batch planner
//! groups by the same key, so "shares a cache entry" and "shares a
//! planner group" coincide by construction. Entries from older epochs age
//! out through normal LRU pressure since no new queries touch them.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use pfe_core::{HeavyHitter, SampledPattern};
use pfe_obs::{Counter, Gauge, Recorder};
use pfe_query::QueryKey;

use crate::snapshot::FrequencyAnswer;

/// A cached answer — the snapshot-derived payload only; per-query
/// provenance, guarantees, and cost metadata are rebuilt by the planner
/// for each query the entry serves.
#[derive(Debug, Clone, PartialEq)]
pub enum CachedAnswer {
    /// `F_0` estimate for the key's (rounded) mask.
    F0(f64),
    /// Point-frequency answer.
    Frequency(FrequencyAnswer),
    /// Heavy-hitter list.
    HeavyHitters(Vec<HeavyHitter>),
    /// `ℓ_1` pattern draws (deterministic per the key's `(k, seed)`).
    L1Sample(Vec<SampledPattern>),
    /// `F_p` moment estimate for the key's (rounded) mask; carries the
    /// order so materialization can look up the serving net's β.
    Fp {
        /// The moment order the estimate answers.
        p: f64,
        /// The (possibly rounded) moment estimate.
        estimate: f64,
    },
}

struct LruState {
    map: HashMap<QueryKey, (CachedAnswer, u64)>,
    /// Recency index: tick -> key; first entry is least recent.
    order: BTreeMap<u64, QueryKey>,
    tick: u64,
}

/// Cache hit/miss counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that fell through to the snapshot.
    pub misses: u64,
    /// Entries dropped by LRU pressure.
    pub evictions: u64,
    /// Entries currently held.
    pub len: usize,
}

impl CacheStats {
    /// Fraction of lookups answered from cache (`0.0` before any lookup).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Bounded LRU cache; `capacity == 0` disables it entirely.
///
/// Hit/miss/eviction counters live in `pfe-obs` handles so the same
/// series feeds [`CacheStats`], the `metrics` wire op, and the
/// Prometheus endpoint; a cache built with [`QueryCache::new`] keeps
/// detached (unregistered) handles.
pub struct QueryCache {
    capacity: usize,
    state: Mutex<LruState>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    len_gauge: Arc<Gauge>,
}

impl QueryCache {
    /// Create with room for `capacity` answers and detached counters.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            state: Mutex::new(LruState {
                map: HashMap::new(),
                order: BTreeMap::new(),
                tick: 0,
            }),
            hits: Arc::new(Counter::new()),
            misses: Arc::new(Counter::new()),
            evictions: Arc::new(Counter::new()),
            len_gauge: Arc::new(Gauge::new()),
        }
    }

    /// Create with counters registered in `recorder` under the
    /// `engine_cache_*` names.
    pub fn with_recorder(capacity: usize, recorder: &Recorder) -> Self {
        let mut cache = Self::new(capacity);
        cache.hits = recorder.counter("engine_cache_hits");
        cache.misses = recorder.counter("engine_cache_misses");
        cache.evictions = recorder.counter("engine_cache_evictions");
        cache.len_gauge = recorder.gauge("engine_cache_len");
        cache
    }

    /// Look up a key, refreshing its recency on hit.
    pub fn get(&self, key: &QueryKey) -> Option<CachedAnswer> {
        if self.capacity == 0 {
            return None;
        }
        let mut s = self.state.lock().expect("cache lock");
        s.tick += 1;
        let tick = s.tick;
        match s.map.get_mut(key) {
            Some((value, last)) => {
                let old = *last;
                *last = tick;
                let value = value.clone();
                s.order.remove(&old);
                s.order.insert(tick, *key);
                self.hits.inc();
                Some(value)
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Insert (or refresh) an answer, evicting the least recently used
    /// entry on overflow.
    pub fn put(&self, key: QueryKey, value: CachedAnswer) {
        if self.capacity == 0 {
            return;
        }
        let mut s = self.state.lock().expect("cache lock");
        s.tick += 1;
        let tick = s.tick;
        if let Some((_, old)) = s.map.remove(&key) {
            s.order.remove(&old);
        }
        s.map.insert(key, (value, tick));
        s.order.insert(tick, key);
        while s.map.len() > self.capacity {
            let (&oldest, &victim) = s.order.iter().next().expect("nonempty over capacity");
            s.order.remove(&oldest);
            s.map.remove(&victim);
            self.evictions.inc();
        }
        self.len_gauge.set(s.map.len() as u64);
    }

    /// Hit/miss/occupancy counters.
    pub fn stats(&self) -> CacheStats {
        let s = self.state.lock().expect("cache lock");
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            len: s.map.len(),
        }
    }

    /// Drop every entry (counters are kept).
    pub fn clear(&self) {
        let mut s = self.state.lock().expect("cache lock");
        s.map.clear();
        s.order.clear();
        self.len_gauge.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfe_query::Statistic;

    fn key(mask: u64) -> QueryKey {
        QueryKey::new(1, mask, &Statistic::F0, None, false, 0)
    }

    fn answer(v: f64) -> CachedAnswer {
        CachedAnswer::F0(v)
    }

    #[test]
    fn hit_after_put() {
        let c = QueryCache::new(4);
        assert!(c.get(&key(1)).is_none());
        c.put(key(1), answer(10.0));
        assert_eq!(c.get(&key(1)), Some(answer(10.0)));
        let stats = c.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));
        assert_eq!(stats.hit_ratio(), 0.5);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let c = QueryCache::new(2);
        c.put(key(1), answer(1.0));
        c.put(key(2), answer(2.0));
        assert!(c.get(&key(1)).is_some()); // 1 now most recent
        c.put(key(3), answer(3.0)); // evicts 2
        assert!(c.get(&key(2)).is_none());
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn hit_ratio_is_zero_not_nan_before_any_lookup() {
        let stats = QueryCache::new(4).stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
        let ratio = stats.hit_ratio();
        assert!(ratio.is_finite());
        assert_eq!(ratio, 0.0);
    }

    #[test]
    fn recorder_backed_cache_shares_its_counters() {
        let rec = pfe_obs::Recorder::new();
        let c = QueryCache::with_recorder(1, &rec);
        c.get(&key(1));
        c.put(key(1), answer(1.0));
        c.put(key(2), answer(2.0)); // evicts 1
        c.get(&key(2));
        let read = |name: &str| rec.counter(name).get();
        assert_eq!(read("engine_cache_hits"), 1);
        assert_eq!(read("engine_cache_misses"), 1);
        assert_eq!(read("engine_cache_evictions"), 1);
        assert_eq!(rec.gauge("engine_cache_len").get(), 1);
        // The CacheStats view reads the very same handles.
        let stats = c.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 1));
    }

    #[test]
    fn distinct_stats_epochs_and_exactness_do_not_collide() {
        let c = QueryCache::new(8);
        let f0 = QueryKey::new(1, 5, &Statistic::F0, None, false, 0);
        let hh = QueryKey::new(1, 5, &Statistic::HeavyHitters { phi: 0.0 }, None, false, 0);
        let f0e2 = QueryKey::new(2, 5, &Statistic::F0, None, false, 0);
        let f0exact = QueryKey::new(1, 5, &Statistic::F0, None, true, 0);
        c.put(f0, answer(1.0));
        c.put(hh, answer(2.0));
        c.put(f0e2, answer(3.0));
        c.put(f0exact, answer(4.0));
        assert_eq!(c.get(&f0), Some(answer(1.0)));
        assert_eq!(c.get(&hh), Some(answer(2.0)));
        assert_eq!(c.get(&f0e2), Some(answer(3.0)));
        assert_eq!(c.get(&f0exact), Some(answer(4.0)));
    }

    #[test]
    fn zero_capacity_disables() {
        let c = QueryCache::new(0);
        c.put(key(1), answer(1.0));
        assert!(c.get(&key(1)).is_none());
        assert_eq!(c.stats().len, 0);
        assert_eq!(c.stats().hit_ratio(), 0.0);
    }

    #[test]
    fn clear_empties() {
        let c = QueryCache::new(4);
        c.put(key(1), answer(1.0));
        c.clear();
        assert!(c.get(&key(1)).is_none());
    }

    #[test]
    fn concurrent_access_is_safe() {
        let c = std::sync::Arc::new(QueryCache::new(64));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        c.put(key(t * 1000 + i % 100), answer(i as f64));
                        c.get(&key(t * 1000 + (i + 1) % 100));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panic");
        }
        assert!(c.stats().len <= 64);
    }
}
