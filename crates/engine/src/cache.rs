//! Thread-safe LRU cache for query answers.
//!
//! Keys are `(snapshot epoch, rounded subset mask, statistic, aux)` — the
//! *rounded* mask, because every query that rounds to the same net member
//! reads the same sketch; caching at that granularity makes the
//! `subspace_explorer` access pattern (many nearby subsets probing the
//! same region of the net) hit after the first probe. Entries from older
//! epochs age out through normal LRU pressure since no new queries touch
//! them.

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

use pfe_core::{HeavyHitter, NetAnswer};

use crate::snapshot::FrequencyAnswer;

/// Which statistic an entry caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StatKind {
    /// Projected distinct count.
    F0,
    /// Point frequency (aux = pattern key).
    Frequency,
    /// Heavy hitters (aux = `phi` bits).
    HeavyHitters,
}

/// Cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Snapshot epoch the answer was computed against.
    pub epoch: u64,
    /// Rounded subset mask (`F_0`) or query mask (sample statistics).
    pub mask: u64,
    /// Statistic discriminant.
    pub stat: StatKind,
    /// Statistic-specific payload (pattern key, `phi` bits, ...).
    pub aux: u128,
}

/// A cached answer.
#[derive(Debug, Clone, PartialEq)]
pub enum CachedAnswer {
    /// `F_0` net answer (for the *rounded* query; distortion is
    /// recomputed per original query by the caller).
    F0(NetAnswer),
    /// Point-frequency answer.
    Frequency(FrequencyAnswer),
    /// Heavy-hitter list.
    HeavyHitters(Vec<HeavyHitter>),
}

struct LruState {
    map: HashMap<CacheKey, (CachedAnswer, u64)>,
    /// Recency index: tick -> key; first entry is least recent.
    order: BTreeMap<u64, CacheKey>,
    tick: u64,
    hits: u64,
    misses: u64,
}

/// Cache hit/miss counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that fell through to the snapshot.
    pub misses: u64,
    /// Entries currently held.
    pub len: usize,
}

/// Bounded LRU cache; `capacity == 0` disables it entirely.
pub struct QueryCache {
    capacity: usize,
    state: Mutex<LruState>,
}

impl QueryCache {
    /// Create with room for `capacity` answers.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            state: Mutex::new(LruState {
                map: HashMap::new(),
                order: BTreeMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// Look up a key, refreshing its recency on hit.
    pub fn get(&self, key: &CacheKey) -> Option<CachedAnswer> {
        if self.capacity == 0 {
            return None;
        }
        let mut s = self.state.lock().expect("cache lock");
        s.tick += 1;
        let tick = s.tick;
        match s.map.get_mut(key) {
            Some((value, last)) => {
                let old = *last;
                *last = tick;
                let value = value.clone();
                s.order.remove(&old);
                s.order.insert(tick, *key);
                s.hits += 1;
                Some(value)
            }
            None => {
                s.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) an answer, evicting the least recently used
    /// entry on overflow.
    pub fn put(&self, key: CacheKey, value: CachedAnswer) {
        if self.capacity == 0 {
            return;
        }
        let mut s = self.state.lock().expect("cache lock");
        s.tick += 1;
        let tick = s.tick;
        if let Some((_, old)) = s.map.remove(&key) {
            s.order.remove(&old);
        }
        s.map.insert(key, (value, tick));
        s.order.insert(tick, key);
        while s.map.len() > self.capacity {
            let (&oldest, &victim) = s.order.iter().next().expect("nonempty over capacity");
            s.order.remove(&oldest);
            s.map.remove(&victim);
        }
    }

    /// Hit/miss/occupancy counters.
    pub fn stats(&self) -> CacheStats {
        let s = self.state.lock().expect("cache lock");
        CacheStats {
            hits: s.hits,
            misses: s.misses,
            len: s.map.len(),
        }
    }

    /// Drop every entry (counters are kept).
    pub fn clear(&self) {
        let mut s = self.state.lock().expect("cache lock");
        s.map.clear();
        s.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(mask: u64) -> CacheKey {
        CacheKey {
            epoch: 1,
            mask,
            stat: StatKind::F0,
            aux: 0,
        }
    }

    fn answer(v: f64) -> CachedAnswer {
        CachedAnswer::Frequency(FrequencyAnswer {
            estimate: v,
            upper_bound: None,
            additive_error: 0.0,
        })
    }

    #[test]
    fn hit_after_put() {
        let c = QueryCache::new(4);
        assert!(c.get(&key(1)).is_none());
        c.put(key(1), answer(10.0));
        assert_eq!(c.get(&key(1)), Some(answer(10.0)));
        let stats = c.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let c = QueryCache::new(2);
        c.put(key(1), answer(1.0));
        c.put(key(2), answer(2.0));
        assert!(c.get(&key(1)).is_some()); // 1 now most recent
        c.put(key(3), answer(3.0)); // evicts 2
        assert!(c.get(&key(2)).is_none());
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(3)).is_some());
    }

    #[test]
    fn distinct_stats_and_epochs_do_not_collide() {
        let c = QueryCache::new(8);
        let f0 = CacheKey {
            epoch: 1,
            mask: 5,
            stat: StatKind::F0,
            aux: 0,
        };
        let hh = CacheKey {
            epoch: 1,
            mask: 5,
            stat: StatKind::HeavyHitters,
            aux: 0,
        };
        let f0e2 = CacheKey { epoch: 2, ..f0 };
        c.put(f0, answer(1.0));
        c.put(hh, answer(2.0));
        c.put(f0e2, answer(3.0));
        assert_eq!(c.get(&f0), Some(answer(1.0)));
        assert_eq!(c.get(&hh), Some(answer(2.0)));
        assert_eq!(c.get(&f0e2), Some(answer(3.0)));
    }

    #[test]
    fn zero_capacity_disables() {
        let c = QueryCache::new(0);
        c.put(key(1), answer(1.0));
        assert!(c.get(&key(1)).is_none());
        assert_eq!(c.stats().len, 0);
    }

    #[test]
    fn clear_empties() {
        let c = QueryCache::new(4);
        c.put(key(1), answer(1.0));
        c.clear();
        assert!(c.get(&key(1)).is_none());
    }

    #[test]
    fn concurrent_access_is_safe() {
        let c = std::sync::Arc::new(QueryCache::new(64));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        c.put(key(t * 1000 + i % 100), answer(i as f64));
                        c.get(&key(t * 1000 + (i + 1) % 100));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panic");
        }
        assert!(c.stats().len <= 64);
    }
}
