//! Minimal JSON support for the `serve` example.
//!
//! The build environment is offline (no `serde`), so the line protocol is
//! handled by this small, dependency-free parser/writer covering the JSON
//! subset the protocol uses: objects, arrays, strings (with `\uXXXX`
//! escapes), finite numbers, booleans, and null.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted keys: deterministic output).
    Obj(BTreeMap<String, Json>),
}

/// Parse failure with byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl std::fmt::Display for Json {
    /// Compact single-line serialization (object keys sorted).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            at: self.pos,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err(format!("expected '{lit}'"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => self.err(format!("unexpected '{}'", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            _ => self.err(format!("bad number '{text}'")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return self.err("unterminated string"),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = match self.bump() {
                                Some(c) if c.is_ascii_hexdigit() => {
                                    (c as char).to_digit(16).expect("hex")
                                }
                                _ => return self.err("bad \\u escape"),
                            };
                            code = code * 16 + d;
                        }
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            // Surrogate halves: emit the replacement char
                            // (the protocol never sends them).
                            None => out.push('\u{fffd}'),
                        }
                    }
                    _ => return self.err("bad escape"),
                },
                Some(c) if c < 0x20 => return self.err("control byte in string"),
                Some(c) => {
                    // Re-decode multi-byte UTF-8 sequences.
                    let len = match c {
                        0x00..=0x7f => 0,
                        0xc0..=0xdf => 1,
                        0xe0..=0xef => 2,
                        0xf0..=0xf7 => 3,
                        _ => return self.err("invalid utf-8"),
                    };
                    let start = self.pos - 1;
                    for _ in 0..len {
                        self.bump();
                    }
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return self.err("invalid utf-8"),
                    }
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return self.err("expected ',' or ']'");
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(map)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return self.err("expected ',' or '}'");
                }
            }
        }
    }
}

impl Json {
    /// Parse one JSON document (trailing whitespace allowed, nothing else).
    ///
    /// # Errors
    /// Position-annotated parse errors.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return p.err("trailing characters");
        }
        Ok(v)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if !v.is_finite() {
                    // JSON has no NaN/Infinity literal; emitting one would
                    // make the document unparseable (including by this
                    // module's own parser). Serialize as null instead.
                    out.push_str("null");
                } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *v as i64);
                } else {
                    let _ = write!(out, "{v}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: build an object from pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_finite_numbers_serialize_as_null_not_nan() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let doc = Json::Obj(std::collections::BTreeMap::from([(
                "ratio".to_string(),
                Json::Num(v),
            )]));
            let text = doc.to_string();
            assert_eq!(text, r#"{"ratio":null}"#, "for {v}");
            // The output must stay parseable by this parser.
            Json::parse(&text).expect("round-trippable");
        }
        // Finite values are untouched.
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
        assert_eq!(Json::Num(3.0).to_string(), "3");
    }

    #[test]
    fn roundtrip_protocol_shapes() {
        for text in [
            r#"{"op":"f0","cols":[0,5,9]}"#,
            r#"{"op":"freq","cols":[1,2],"pattern":[0,1]}"#,
            r#"{"op":"hh","cols":[0],"phi":0.1}"#,
            r#"{"op":"ingest","rows":[[0,1,0],[1,1,1]]}"#,
            r#"[1,2.5,-3,1e3,true,false,null,"s"]"#,
            r#"{}"#,
            r#"[]"#,
        ] {
            let v = Json::parse(text).expect(text);
            let again = Json::parse(&v.to_string()).expect("reparse");
            assert_eq!(v, again, "unstable roundtrip for {text}");
        }
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Json::parse(r#""a\"b\\c\nd é A""#).expect("parse");
        assert_eq!(v, Json::Str("a\"b\\c\nd \u{e9} A".to_string()));
        let out = v.to_string();
        assert_eq!(Json::parse(&out).expect("reparse"), v);
    }

    #[test]
    fn rejects_garbage() {
        for text in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "nulL",
            "01x",
            "\"unterminated",
            "{\"a\":1} trailing",
            "1e999",
        ] {
            assert!(Json::parse(text).is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"op":"f0","cols":[0,2],"phi":0.5}"#).expect("parse");
        assert_eq!(v.get("op").and_then(Json::as_str), Some("f0"));
        assert_eq!(v.get("phi").and_then(Json::as_f64), Some(0.5));
        assert_eq!(
            v.get("cols").and_then(Json::as_arr).map(|a| a.len()),
            Some(2)
        );
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
    }
}
