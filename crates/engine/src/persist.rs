//! Durable snapshots: cross-process union and resume validation.
//!
//! A [`Snapshot`] file is a complete, self-describing
//! stand-in for the stream it summarized (the whole point of the paper's
//! summaries — Theorem 5.1's sample and the Section 6 α-net survive the
//! data). Because every summary in the stack is mergeable — KMV and
//! CountMin exactly under shared per-mask seeds, the row sample by the
//! seeded hypergeometric union — snapshot files built by *independent
//! processes over disjoint slices of one stream* can be unioned after the
//! fact:
//!
//! ```text
//! process A: ingest slice 1 ──▶ checkpoint ──▶ a.pfes ─┐
//! process B: ingest slice 2 ──▶ checkpoint ──▶ b.pfes ─┼─▶ merge_snapshot_files
//! process C: ingest slice 3 ──▶ checkpoint ──▶ c.pfes ─┘        │
//!                                                               ▼
//!                                            one snapshot ≡ single-process build
//! ```
//!
//! The sketch-backed statistics (`F_0`, frequency-net bounds) of the
//! merged snapshot are *bit-identical* to a single-process build over the
//! concatenated slices; the sample-backed statistics are an unbiased
//! uniform sample of the union (and exactly the concatenation while the
//! reservoirs stay under-full).

use std::path::Path;

use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::shard::ShardSummary;
use crate::snapshot::Snapshot;

/// Load several snapshot files and union them into one snapshot — the
/// cross-machine compaction path. Inputs must have been built with the
/// same engine parameters and base seed (checked; mismatches are typed
/// errors, not panics). The merged epoch is the maximum input epoch.
///
/// # Errors
/// [`EngineError::Persist`] for unreadable/corrupt files,
/// [`EngineError::Incompatible`] for parameter mismatches,
/// [`EngineError::BadConfig`] for an empty path list.
pub fn merge_snapshot_files<P: AsRef<Path>>(paths: &[P]) -> Result<Snapshot, EngineError> {
    let (first, rest) = paths
        .split_first()
        .ok_or_else(|| EngineError::BadConfig("merge_snapshot_files needs >= 1 file".into()))?;
    let mut acc = Snapshot::load_from(first)?;
    for path in rest {
        let next = Snapshot::load_from(path)?;
        acc.merge(&next)?;
    }
    Ok(acc)
}

/// Verify that a decoded snapshot was built with exactly the parameters in
/// `cfg`, so a resumed pipeline's shards merge with it seamlessly (same
/// α-net, same per-mask sketch seeds, same reservoir capacity). Returns
/// the snapshot's `(d, q)` on success.
///
/// The rules are not re-stated here: an empty probe shard is constructed
/// from `cfg` — the same construction the resumed pipeline's workers will
/// perform — and checked with [`Snapshot::check_mergeable`], so resume
/// validation and file-merge validation share one source of truth.
///
/// # Errors
/// [`EngineError::Incompatible`] naming the first mismatch.
pub(crate) fn validate_resume(
    snap: &Snapshot,
    cfg: &EngineConfig,
) -> Result<(u32, u32), EngineError> {
    cfg.validate()?;
    let (d, q) = (snap.sample().dimension(), snap.sample().alphabet());
    let probe = Snapshot::from_shards(vec![ShardSummary::new(d, q, 0, cfg)?], 0);
    snap.check_mergeable(&probe)?;
    Ok((d, q))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_path_list_is_typed_error() {
        let none: &[&str] = &[];
        assert!(matches!(
            merge_snapshot_files(none),
            Err(EngineError::BadConfig(_))
        ));
    }

    #[test]
    fn missing_file_is_persist_error() {
        assert!(matches!(
            merge_snapshot_files(&["/nonexistent/engine-snapshot.pfes"]),
            Err(EngineError::Persist(_))
        ));
    }
}
