//! The serving engine: concurrent queries over immutable snapshots, with
//! an LRU answer cache, in front of the sharded ingest pipeline.
//!
//! ```
//! use pfe_engine::{Engine, EngineConfig, QueryRequest, QueryResponse};
//! use pfe_stream::gen::uniform_binary;
//!
//! let cfg = EngineConfig { shards: 2, sample_t: 512, kmv_k: 64, ..Default::default() };
//! let engine = Engine::start(12, 2, cfg).unwrap();
//! engine.ingest(&uniform_binary(12, 5_000, 1)).unwrap();
//! engine.refresh().unwrap(); // publish a snapshot
//! let answers = engine.query_batch(&[
//!     QueryRequest::F0 { cols: vec![0, 3, 5] },
//!     QueryRequest::HeavyHitters { cols: vec![0, 1], phi: 0.1 },
//! ]);
//! assert!(matches!(answers[0], Ok(QueryResponse::F0 { .. })));
//! ```

use std::sync::{Arc, Mutex, RwLock};

use pfe_core::{HeavyHitter, NetAnswer, QueryError};
use pfe_row::{ColumnSet, Dataset};
use pfe_sketch::traits::SpaceUsage;

use crate::cache::{CacheKey, CacheStats, CachedAnswer, QueryCache, StatKind};
use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::ingest::IngestPipeline;
use crate::snapshot::{FrequencyAnswer, Snapshot};

/// One projection query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryRequest {
    /// Projected distinct count over the given columns.
    F0 {
        /// Column indices of `C`.
        cols: Vec<u32>,
    },
    /// Point frequency of `pattern` on the projection.
    Frequency {
        /// Column indices of `C`.
        cols: Vec<u32>,
        /// Dense pattern, one symbol per column of `C` (ascending order).
        pattern: Vec<u16>,
    },
    /// `φ`-heavy hitters (`ℓ_1`) on the projection.
    HeavyHitters {
        /// Column indices of `C`.
        cols: Vec<u32>,
        /// Threshold `φ ∈ (0, 1]`.
        phi: f64,
    },
}

/// Answer to one [`QueryRequest`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResponse {
    /// `F_0` answer with net provenance.
    F0 {
        /// The α-net answer (estimate, rounded target, distortion).
        answer: NetAnswer,
        /// Whether the answer came from the cache.
        cached: bool,
    },
    /// Point-frequency answer.
    Frequency {
        /// Sample estimate with optional CountMin bound.
        answer: FrequencyAnswer,
        /// Whether the answer came from the cache.
        cached: bool,
    },
    /// Heavy-hitter list.
    HeavyHitters {
        /// Reported patterns, heaviest first.
        hitters: Vec<HeavyHitter>,
        /// Whether the answer came from the cache.
        cached: bool,
    },
}

/// Engine-level observability counters.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStats {
    /// Rows routed to shards so far.
    pub rows_ingested: u64,
    /// Epoch of the published snapshot (0 = none yet).
    pub snapshot_epoch: u64,
    /// Rows covered by the published snapshot.
    pub snapshot_rows: u64,
    /// Bytes held by the published snapshot.
    pub snapshot_bytes: usize,
    /// Cache counters.
    pub cache: CacheStats,
    /// Worker shard count.
    pub shards: usize,
}

/// Sharded-ingest, snapshot-serving engine.
///
/// Ingestion is serialized through the router (`&self` methods take an
/// internal lock); queries are wait-free with respect to ingest — they
/// read the last published [`Snapshot`] behind an `Arc` and only contend
/// on the answer cache's mutex.
pub struct Engine {
    pipeline: Mutex<Option<IngestPipeline>>,
    published: RwLock<Option<Arc<Snapshot>>>,
    cache: QueryCache,
    q: u32,
    /// `(rows_routed, shards)` captured at shutdown, so stats stay
    /// truthful after the pipeline is gone.
    retired: Mutex<Option<(u64, usize)>>,
}

impl Engine {
    /// Spawn the shard workers for a `d`-column stream over alphabet `q`.
    ///
    /// # Errors
    /// Config validation or summary construction errors.
    pub fn start(d: u32, q: u32, cfg: EngineConfig) -> Result<Self, EngineError> {
        let cache = QueryCache::new(cfg.cache_capacity);
        let pipeline = IngestPipeline::new(d, q, &cfg)?;
        Ok(Self {
            pipeline: Mutex::new(Some(pipeline)),
            published: RwLock::new(None),
            cache,
            q,
            retired: Mutex::new(None),
        })
    }

    fn with_pipeline<T>(
        &self,
        f: impl FnOnce(&mut IngestPipeline) -> Result<T, EngineError>,
    ) -> Result<T, EngineError> {
        let mut guard = self.pipeline.lock().expect("pipeline lock");
        match guard.as_mut() {
            Some(p) => f(p),
            None => Err(EngineError::Closed),
        }
    }

    /// Route one packed binary row.
    ///
    /// # Errors
    /// `Closed` after [`shutdown`](Self::shutdown) or on worker loss.
    pub fn push_packed(&self, row: u64) -> Result<(), EngineError> {
        self.with_pipeline(|p| p.push_packed(row))
    }

    /// Route one dense row.
    ///
    /// # Errors
    /// `Closed` after [`shutdown`](Self::shutdown) or on worker loss.
    pub fn push_dense(&self, row: &[u16]) -> Result<(), EngineError> {
        self.with_pipeline(|p| p.push_dense(row))
    }

    /// Route a whole dataset.
    ///
    /// # Errors
    /// Shape mismatch or `Closed`.
    pub fn ingest(&self, data: &Dataset) -> Result<(), EngineError> {
        self.with_pipeline(|p| p.ingest(data))
    }

    /// Merge the live shards into a new snapshot and publish it. Ingest
    /// continues; queries switch to the new snapshot atomically.
    ///
    /// # Errors
    /// `Closed` if the pipeline is gone.
    pub fn refresh(&self) -> Result<Arc<Snapshot>, EngineError> {
        let snap = Arc::new(self.with_pipeline(|p| p.snapshot())?);
        *self.published.write().expect("snapshot lock") = Some(Arc::clone(&snap));
        Ok(snap)
    }

    /// Checkpoint: merge the live shards into a snapshot, publish it, and
    /// write it to `path` as a framed, checksummed file. After
    /// [`shutdown`](Self::shutdown), the final published snapshot is saved
    /// instead. The file restores via [`resume`](Self::resume) into an
    /// engine that answers `F_0`, frequency, and heavy-hitter queries
    /// bit-identically to this one.
    ///
    /// # Errors
    /// `NoSnapshot` if the engine is shut down without a published
    /// snapshot; `Persist` on I/O failure.
    pub fn checkpoint<P: AsRef<std::path::Path>>(
        &self,
        path: P,
    ) -> Result<Arc<Snapshot>, EngineError> {
        let snap = match self.refresh() {
            Ok(snap) => snap,
            Err(EngineError::Closed) => self.snapshot().ok_or(EngineError::NoSnapshot)?,
            Err(e) => return Err(e),
        };
        snap.save_to(path)?;
        Ok(snap)
    }

    /// Restore an engine from a snapshot file written by
    /// [`checkpoint`](Self::checkpoint) (or [`Snapshot::save_to`]).
    ///
    /// The loaded snapshot is published immediately — queries are served
    /// without re-ingesting anything — and fresh shard workers are spawned
    /// on top of it, so ingest can continue where the checkpointed process
    /// left off: every later snapshot folds the checkpointed state under
    /// the newly ingested rows (exact union for the sketches, seeded
    /// hypergeometric union for the row sample). Epochs continue from the
    /// snapshot's epoch.
    ///
    /// `cfg` must carry the same parameters (`alpha`, `kmv_k`, `sample_t`,
    /// `seed`, `freq_net`) the snapshot was built with — per-mask sketch
    /// seeds are re-derived from `cfg.seed`, and a mismatch would corrupt
    /// later merges, so every parameter is verified against the decoded
    /// summaries first.
    ///
    /// # Errors
    /// `Persist` for unreadable/corrupt files, `Incompatible` when `cfg`
    /// disagrees with the snapshot, plus config validation errors.
    pub fn resume<P: AsRef<std::path::Path>>(
        path: P,
        cfg: EngineConfig,
    ) -> Result<Self, EngineError> {
        let snap = Snapshot::load_from(path)?;
        let (d, q) = crate::persist::validate_resume(&snap, &cfg)?;
        let cache = QueryCache::new(cfg.cache_capacity);
        let pipeline =
            IngestPipeline::with_base(d, q, &cfg, Some(snap.to_base_shard()), snap.epoch())?;
        Ok(Self {
            pipeline: Mutex::new(Some(pipeline)),
            published: RwLock::new(Some(Arc::new(snap))),
            cache,
            q,
            retired: Mutex::new(None),
        })
    }

    /// Stop ingest: flush, join the workers, publish their final merged
    /// state. The engine keeps serving queries afterwards.
    ///
    /// # Errors
    /// `Closed` if already shut down; `ShardFailed` on worker panic.
    pub fn shutdown(&self) -> Result<Arc<Snapshot>, EngineError> {
        let pipeline = self
            .pipeline
            .lock()
            .expect("pipeline lock")
            .take()
            .ok_or(EngineError::Closed)?;
        *self.retired.lock().expect("retired lock") =
            Some((pipeline.rows_routed(), pipeline.shards()));
        let snap = Arc::new(pipeline.finish()?);
        *self.published.write().expect("snapshot lock") = Some(Arc::clone(&snap));
        Ok(snap)
    }

    /// The currently published snapshot, if any.
    pub fn snapshot(&self) -> Option<Arc<Snapshot>> {
        self.published.read().expect("snapshot lock").clone()
    }

    fn current(&self) -> Result<Arc<Snapshot>, EngineError> {
        self.snapshot().ok_or(EngineError::NoSnapshot)
    }

    fn column_set(&self, snap: &Snapshot, cols: &[u32]) -> Result<ColumnSet, EngineError> {
        let d = snap.sample().dimension();
        ColumnSet::from_indices(d, cols)
            .map_err(|e| EngineError::Query(QueryError::BadParameter(format!("columns: {e:?}"))))
    }

    /// Answer one query against the published snapshot.
    ///
    /// # Errors
    /// `NoSnapshot` before the first [`refresh`](Self::refresh); query
    /// errors from the summaries.
    pub fn query(&self, req: &QueryRequest) -> Result<QueryResponse, EngineError> {
        let snap = self.current()?;
        match req {
            QueryRequest::F0 { cols } => {
                let cols = self.column_set(&snap, cols)?;
                // Key by the *rounded* mask: every query rounding to the
                // same net member reads the same sketch.
                let rounding = snap.f0_rounding(&cols)?;
                let key = CacheKey {
                    epoch: snap.epoch(),
                    mask: rounding.target.mask(),
                    stat: StatKind::F0,
                    aux: 0,
                };
                if let Some(CachedAnswer::F0(hit)) = self.cache.get(&key) {
                    // The cached estimate belongs to the rounded target;
                    // provenance is per-query.
                    return Ok(QueryResponse::F0 {
                        answer: NetAnswer {
                            estimate: hit.estimate,
                            answered_on: rounding.target,
                            sym_diff: rounding.sym_diff,
                            distortion_bound: (self.q as f64).powi(rounding.sym_diff as i32),
                        },
                        cached: true,
                    });
                }
                let answer = snap.f0(&cols)?;
                self.cache.put(key, CachedAnswer::F0(answer.clone()));
                Ok(QueryResponse::F0 {
                    answer,
                    cached: false,
                })
            }
            QueryRequest::Frequency { cols, pattern } => {
                let cols = self.column_set(&snap, cols)?;
                let pattern_key = snap.encode_pattern(&cols, pattern)?;
                let key = CacheKey {
                    epoch: snap.epoch(),
                    mask: cols.mask(),
                    stat: StatKind::Frequency,
                    aux: pattern_key.raw(),
                };
                if let Some(CachedAnswer::Frequency(hit)) = self.cache.get(&key) {
                    return Ok(QueryResponse::Frequency {
                        answer: hit,
                        cached: true,
                    });
                }
                let answer = snap.frequency(&cols, pattern_key)?;
                self.cache.put(key, CachedAnswer::Frequency(answer.clone()));
                Ok(QueryResponse::Frequency {
                    answer,
                    cached: false,
                })
            }
            QueryRequest::HeavyHitters { cols, phi } => {
                let cols = self.column_set(&snap, cols)?;
                let key = CacheKey {
                    epoch: snap.epoch(),
                    mask: cols.mask(),
                    stat: StatKind::HeavyHitters,
                    aux: phi.to_bits() as u128,
                };
                if let Some(CachedAnswer::HeavyHitters(hit)) = self.cache.get(&key) {
                    return Ok(QueryResponse::HeavyHitters {
                        hitters: hit,
                        cached: true,
                    });
                }
                let hitters = snap.heavy_hitters(&cols, *phi, 1.0, 2.0)?;
                self.cache
                    .put(key, CachedAnswer::HeavyHitters(hitters.clone()));
                Ok(QueryResponse::HeavyHitters {
                    hitters,
                    cached: false,
                })
            }
        }
    }

    /// Answer a batch of queries (the serving unit of the `serve`
    /// example). Per-query errors are reported per slot, not batch-fatal.
    pub fn query_batch(&self, reqs: &[QueryRequest]) -> Vec<Result<QueryResponse, EngineError>> {
        reqs.iter().map(|r| self.query(r)).collect()
    }

    /// Observability counters.
    pub fn stats(&self) -> EngineStats {
        let (rows_ingested, shards) = {
            let guard = self.pipeline.lock().expect("pipeline lock");
            match guard.as_ref() {
                Some(p) => (p.rows_routed(), p.shards()),
                // After shutdown, report the counters captured when the
                // pipeline retired.
                None => self.retired.lock().expect("retired lock").unwrap_or((0, 0)),
            }
        };
        let snap = self.snapshot();
        EngineStats {
            rows_ingested,
            snapshot_epoch: snap.as_ref().map(|s| s.epoch()).unwrap_or(0),
            snapshot_rows: snap.as_ref().map(|s| s.n()).unwrap_or(0),
            snapshot_bytes: snap.as_ref().map(|s| s.space_bytes()).unwrap_or(0),
            cache: self.cache.stats(),
            shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfe_stream::gen::uniform_binary;

    fn small_cfg(shards: usize) -> EngineConfig {
        EngineConfig {
            shards,
            sample_t: 512,
            kmv_k: 64,
            batch_rows: 64,
            ..Default::default()
        }
    }

    #[test]
    fn query_before_snapshot_is_typed_error() {
        let engine = Engine::start(8, 2, small_cfg(1)).expect("start");
        assert_eq!(
            engine.query(&QueryRequest::F0 { cols: vec![0] }),
            Err(EngineError::NoSnapshot)
        );
    }

    #[test]
    fn f0_cache_hits_on_shared_rounded_target() {
        let d = 12;
        let engine = Engine::start(d, 2, small_cfg(2)).expect("start");
        engine.ingest(&uniform_binary(d, 3000, 11)).expect("ingest");
        engine.refresh().expect("refresh");
        // Two different mid-size queries that round to the same target.
        let q1 = QueryRequest::F0 {
            cols: (0..6).collect(),
        };
        let q2 = QueryRequest::F0 {
            cols: (0..7).collect(),
        };
        let a1 = engine.query(&q1).expect("ok");
        let QueryResponse::F0 {
            answer: ans1,
            cached,
        } = a1
        else {
            panic!("wrong variant")
        };
        assert!(!cached);
        let a2 = engine.query(&q2).expect("ok");
        let QueryResponse::F0 {
            answer: ans2,
            cached,
        } = a2
        else {
            panic!("wrong variant")
        };
        // Both rounded (shrunk) to the same small-side member => same
        // estimate, second answer from cache with its own provenance.
        if ans1.answered_on == ans2.answered_on {
            assert!(cached, "same rounded target must hit the cache");
            assert_eq!(ans1.estimate, ans2.estimate);
            assert_ne!(ans1.sym_diff, ans2.sym_diff);
        }
        // Exact repeat definitely hits.
        let QueryResponse::F0 { cached, .. } = engine.query(&q1).expect("ok") else {
            panic!("wrong variant")
        };
        assert!(cached);
    }

    #[test]
    fn refresh_bumps_epoch_and_bypasses_stale_cache() {
        let d = 10;
        let engine = Engine::start(d, 2, small_cfg(2)).expect("start");
        engine.ingest(&uniform_binary(d, 1000, 12)).expect("ingest");
        engine.refresh().expect("refresh");
        let req = QueryRequest::F0 { cols: vec![0, 1] };
        engine.query(&req).expect("ok");
        engine.ingest(&uniform_binary(d, 1000, 13)).expect("ingest");
        engine.refresh().expect("refresh");
        let QueryResponse::F0 { cached, .. } = engine.query(&req).expect("ok") else {
            panic!("wrong variant")
        };
        assert!(!cached, "new epoch must not serve the old answer");
    }

    #[test]
    fn shutdown_then_queries_still_served() {
        let d = 8;
        let engine = Engine::start(d, 2, small_cfg(3)).expect("start");
        engine.ingest(&uniform_binary(d, 500, 14)).expect("ingest");
        let snap = engine.shutdown().expect("shutdown");
        assert_eq!(snap.n(), 500);
        assert!(engine.push_packed(0).is_err());
        assert!(engine.query(&QueryRequest::F0 { cols: vec![0] }).is_ok());
        assert!(engine.shutdown().is_err());
        // Counters must survive the pipeline retiring.
        let stats = engine.stats();
        assert_eq!(stats.rows_ingested, 500);
        assert_eq!(stats.shards, 3);
    }

    #[test]
    fn concurrent_queries_while_ingesting() {
        let d = 10;
        let engine = Arc::new(Engine::start(d, 2, small_cfg(2)).expect("start"));
        engine.ingest(&uniform_binary(d, 2000, 15)).expect("ingest");
        engine.refresh().expect("refresh");
        let mut handles = Vec::new();
        for t in 0..4 {
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u32 {
                    let cols: Vec<u32> = (0..(1 + (t + i) % 5)).collect();
                    let r = engine.query(&QueryRequest::F0 { cols });
                    assert!(r.is_ok(), "query failed: {r:?}");
                }
            }));
        }
        // Ingest and refresh concurrently with the query threads.
        for chunk in 0..4 {
            engine
                .ingest(&uniform_binary(d, 500, 16 + chunk))
                .expect("ingest");
            engine.refresh().expect("refresh");
        }
        for h in handles {
            h.join().expect("no panic");
        }
        let stats = engine.stats();
        assert_eq!(stats.rows_ingested, 4000);
        assert!(stats.cache.hits > 0, "repeat queries should hit the cache");
    }

    #[test]
    fn stats_reflect_state() {
        let d = 8;
        let engine = Engine::start(d, 2, small_cfg(2)).expect("start");
        let s0 = engine.stats();
        assert_eq!((s0.rows_ingested, s0.snapshot_epoch), (0, 0));
        engine.ingest(&uniform_binary(d, 300, 17)).expect("ingest");
        engine.refresh().expect("refresh");
        let s1 = engine.stats();
        assert_eq!(s1.snapshot_rows, 300);
        assert!(s1.snapshot_bytes > 0);
        assert_eq!(s1.shards, 2);
    }
}
