//! The serving engine: concurrent typed queries over immutable snapshots,
//! with a mask-sharing batch planner and an LRU answer cache, in front of
//! the sharded ingest pipeline.
//!
//! ```
//! use pfe_engine::{Engine, EngineConfig, Query};
//! use pfe_stream::gen::uniform_binary;
//!
//! let cfg = EngineConfig { shards: 2, sample_t: 512, kmv_k: 64, ..Default::default() };
//! let engine = Engine::start(12, 2, cfg).unwrap();
//! engine.ingest(&uniform_binary(12, 5_000, 1)).unwrap();
//! engine.refresh().unwrap(); // publish a snapshot
//! let answers = engine.query_batch(&[
//!     Query::over([0, 3, 5]).f0(),
//!     Query::over([0, 1]).heavy_hitters(0.1),
//! ]);
//! let f0 = answers[0].as_ref().unwrap();
//! assert!(f0.estimate().unwrap() > 0.0);
//! // Every answer carries its theorem-derived guarantee and provenance.
//! assert!(f0.guarantee.alpha >= 1.0);
//! assert_eq!(f0.provenance.requested.to_indices(), vec![0, 3, 5]);
//! ```

use std::sync::{Arc, Mutex, RwLock};

use pfe_obs::Recorder;
use pfe_query::{Answer, Query};
use pfe_row::Dataset;
use pfe_sketch::traits::SpaceUsage;

use crate::cache::CacheStats;
use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::exec::{QueryCounters, QueryExecutor};
use crate::ingest::IngestPipeline;
use crate::snapshot::Snapshot;

/// Engine-level observability counters.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStats {
    /// Rows routed to shards so far.
    pub rows_ingested: u64,
    /// Epoch of the published snapshot (0 = none yet).
    pub snapshot_epoch: u64,
    /// Rows covered by the published snapshot.
    pub snapshot_rows: u64,
    /// Bytes held by the published snapshot.
    pub snapshot_bytes: usize,
    /// Cache counters (see [`CacheStats::hit_ratio`]).
    pub cache: CacheStats,
    /// Worker shard count.
    pub shards: usize,
    /// Queries answered since start, across all statistics.
    pub queries_served: u64,
    /// Per-statistic breakdown of `queries_served`.
    pub queries: QueryCounters,
}

/// Sharded-ingest, snapshot-serving engine.
///
/// Ingestion is serialized through the router (`&self` methods take an
/// internal lock); queries are wait-free with respect to ingest — they
/// read the last published [`Snapshot`] behind an `Arc` and only contend
/// on the answer cache's mutex. Requests and responses are the canonical
/// `pfe-query` types: [`Query`] in, guarantee-carrying [`Answer`] out.
/// The plan/probe/compute path is the shared
/// [`QueryExecutor`], so this whole-stream
/// engine and the `pfe-window` sliding-window engine serve identical
/// semantics per snapshot.
pub struct Engine {
    pipeline: Mutex<Option<IngestPipeline>>,
    published: RwLock<Option<Arc<Snapshot>>>,
    exec: QueryExecutor,
    /// `(rows_routed, shards)` captured at shutdown, so stats stay
    /// truthful after the pipeline is gone.
    retired: Mutex<Option<(u64, usize)>>,
}

impl Engine {
    /// Spawn the shard workers for a `d`-column stream over alphabet `q`.
    ///
    /// # Errors
    /// Config validation or summary construction errors.
    pub fn start(d: u32, q: u32, cfg: EngineConfig) -> Result<Self, EngineError> {
        Self::start_with_recorder(d, q, cfg, Arc::new(Recorder::new()))
    }

    /// Like [`start`](Self::start), but registering every engine metric
    /// (query counters/latencies, cache series, ingest backpressure,
    /// snapshot gauges) in a shared `recorder` — the server threads one
    /// recorder through the engine, window ring, and connection handling.
    ///
    /// # Errors
    /// Config validation or summary construction errors.
    pub fn start_with_recorder(
        d: u32,
        q: u32,
        cfg: EngineConfig,
        recorder: Arc<Recorder>,
    ) -> Result<Self, EngineError> {
        let exec = QueryExecutor::with_recorder(cfg.cache_capacity, false, Arc::clone(&recorder));
        let mut pipeline = IngestPipeline::new(d, q, &cfg)?;
        pipeline.instrument(recorder.counter("engine_ingest_backpressure"));
        Ok(Self {
            pipeline: Mutex::new(Some(pipeline)),
            published: RwLock::new(None),
            exec,
            retired: Mutex::new(None),
        })
    }

    fn with_pipeline<T>(
        &self,
        f: impl FnOnce(&mut IngestPipeline) -> Result<T, EngineError>,
    ) -> Result<T, EngineError> {
        let mut guard = self.pipeline.lock().expect("pipeline lock");
        match guard.as_mut() {
            Some(p) => f(p),
            None => Err(EngineError::Closed),
        }
    }

    /// Route one packed binary row.
    ///
    /// # Errors
    /// `Closed` after [`shutdown`](Self::shutdown) or on worker loss.
    pub fn push_packed(&self, row: u64) -> Result<(), EngineError> {
        self.with_pipeline(|p| p.push_packed(row))
    }

    /// Route a slice of packed binary rows in one call: the rows are
    /// validated up front, partitioned, and forwarded one bounded-channel
    /// message per accumulated chunk — amortizing the per-row router
    /// bookkeeping of [`push_packed`](Self::push_packed) (see
    /// `benches/engine.rs` for the ingest win).
    ///
    /// # Errors
    /// `Query(BadParameter)` if any row is malformed (nothing is routed in
    /// that case); `Closed` after [`shutdown`](Self::shutdown).
    pub fn push_packed_batch(&self, rows: &[u64]) -> Result<(), EngineError> {
        self.with_pipeline(|p| p.push_packed_batch(rows))
    }

    /// [`push_packed_batch`](Self::push_packed_batch) under a request
    /// trace: records the routing sweep and every per-shard channel hop
    /// as spans on `trace` (no-ops when the handle is disabled).
    ///
    /// # Errors
    /// Same as [`push_packed_batch`](Self::push_packed_batch).
    pub fn push_packed_batch_traced(
        &self,
        rows: &[u64],
        trace: &pfe_obs::TraceHandle,
    ) -> Result<(), EngineError> {
        self.with_pipeline(|p| p.push_packed_batch_traced(rows, trace))
    }

    /// Route one dense row.
    ///
    /// # Errors
    /// `Closed` after [`shutdown`](Self::shutdown) or on worker loss.
    pub fn push_dense(&self, row: &[u16]) -> Result<(), EngineError> {
        self.with_pipeline(|p| p.push_dense(row))
    }

    /// Route a flattened row-major slice of dense rows (`d` symbols per
    /// row) — the allocation-free batch surface for general alphabets.
    ///
    /// # Errors
    /// `Closed` after [`shutdown`](Self::shutdown) or on worker loss.
    pub fn push_dense_batch(&self, flat: &[u16]) -> Result<(), EngineError> {
        self.with_pipeline(|p| p.push_dense_batch(flat))
    }

    /// [`push_dense_batch`](Self::push_dense_batch) under a request
    /// trace — see
    /// [`push_packed_batch_traced`](Self::push_packed_batch_traced).
    ///
    /// # Errors
    /// Same as [`push_dense_batch`](Self::push_dense_batch).
    pub fn push_dense_batch_traced(
        &self,
        flat: &[u16],
        trace: &pfe_obs::TraceHandle,
    ) -> Result<(), EngineError> {
        self.with_pipeline(|p| p.push_dense_batch_traced(flat, trace))
    }

    /// Route a whole dataset.
    ///
    /// # Errors
    /// Shape mismatch or `Closed`.
    pub fn ingest(&self, data: &Dataset) -> Result<(), EngineError> {
        self.with_pipeline(|p| p.ingest(data))
    }

    /// Merge the live shards into a new snapshot and publish it. Ingest
    /// continues; queries switch to the new snapshot atomically.
    ///
    /// # Errors
    /// `Closed` if the pipeline is gone.
    pub fn refresh(&self) -> Result<Arc<Snapshot>, EngineError> {
        let snap = Arc::new(self.with_pipeline(|p| p.snapshot())?);
        *self.published.write().expect("snapshot lock") = Some(Arc::clone(&snap));
        Ok(snap)
    }

    /// Checkpoint: merge the live shards into a snapshot, publish it, and
    /// write it to `path` as a framed, checksummed file. After
    /// [`shutdown`](Self::shutdown), the final published snapshot is saved
    /// instead. The file restores via [`resume`](Self::resume) into an
    /// engine that answers every statistic bit-identically to this one.
    ///
    /// # Errors
    /// `NoSnapshot` if the engine is shut down without a published
    /// snapshot; `Persist` on I/O failure.
    pub fn checkpoint<P: AsRef<std::path::Path>>(
        &self,
        path: P,
    ) -> Result<Arc<Snapshot>, EngineError> {
        let snap = match self.refresh() {
            Ok(snap) => snap,
            Err(EngineError::Closed) => self.snapshot().ok_or(EngineError::NoSnapshot)?,
            Err(e) => return Err(e),
        };
        snap.save_to(path)?;
        Ok(snap)
    }

    /// Restore an engine from a snapshot file written by
    /// [`checkpoint`](Self::checkpoint) (or [`Snapshot::save_to`]).
    ///
    /// The loaded snapshot is published immediately — queries are served
    /// without re-ingesting anything — and fresh shard workers are spawned
    /// on top of it, so ingest can continue where the checkpointed process
    /// left off: every later snapshot folds the checkpointed state under
    /// the newly ingested rows (exact union for the sketches, seeded
    /// hypergeometric union for the row sample). Epochs continue from the
    /// snapshot's epoch.
    ///
    /// `cfg` must carry the same parameters (`alpha`, `kmv_k`, `sample_t`,
    /// `seed`, `freq_net`, `fp`) the snapshot was built with — per-mask sketch
    /// seeds are re-derived from `cfg.seed`, and a mismatch would corrupt
    /// later merges, so every parameter is verified against the decoded
    /// summaries first.
    ///
    /// # Errors
    /// `Persist` for unreadable/corrupt files, `Incompatible` when `cfg`
    /// disagrees with the snapshot, plus config validation errors.
    pub fn resume<P: AsRef<std::path::Path>>(
        path: P,
        cfg: EngineConfig,
    ) -> Result<Self, EngineError> {
        Self::resume_with_recorder(path, cfg, Arc::new(Recorder::new()))
    }

    /// Like [`resume`](Self::resume), but registering metrics in a shared
    /// `recorder` (see [`start_with_recorder`](Self::start_with_recorder)).
    ///
    /// # Errors
    /// Same as [`resume`](Self::resume).
    pub fn resume_with_recorder<P: AsRef<std::path::Path>>(
        path: P,
        cfg: EngineConfig,
        recorder: Arc<Recorder>,
    ) -> Result<Self, EngineError> {
        let snap = Snapshot::load_from(path)?;
        Self::from_snapshot(Arc::new(snap), cfg, recorder).map(|(engine, _q)| engine)
    }

    /// Build an engine directly around an in-memory snapshot (e.g. one
    /// produced by [`merge_snapshot_files`](crate::merge_snapshot_files)):
    /// [`resume_with_recorder`](Self::resume_with_recorder) without the
    /// file read. Returns the engine and the stream alphabet `q` decoded
    /// from the snapshot, which transports need for wire encoding.
    ///
    /// # Errors
    /// `Incompatible` when `cfg` disagrees with the snapshot, plus config
    /// validation errors.
    pub fn from_snapshot(
        snap: Arc<Snapshot>,
        cfg: EngineConfig,
        recorder: Arc<Recorder>,
    ) -> Result<(Self, u32), EngineError> {
        let (d, q) = crate::persist::validate_resume(&snap, &cfg)?;
        let exec = QueryExecutor::with_recorder(cfg.cache_capacity, false, Arc::clone(&recorder));
        let mut pipeline =
            IngestPipeline::with_base(d, q, &cfg, Some(snap.to_base_shard()), snap.epoch())?;
        pipeline.instrument(recorder.counter("engine_ingest_backpressure"));
        let engine = Self {
            pipeline: Mutex::new(Some(pipeline)),
            published: RwLock::new(Some(snap)),
            exec,
            retired: Mutex::new(None),
        };
        Ok((engine, q))
    }

    /// Atomically swap a newer snapshot in as the published (query-serving)
    /// state without touching the ingest pipeline — the read-replica hot
    /// path. In-flight queries finish against the old snapshot; the next
    /// query sees the new one.
    ///
    /// The swap is only legal when `snap` is mergeable with the published
    /// snapshot (same config-derived shape) and carries a strictly newer
    /// epoch: the answer cache is keyed by epoch, so republishing an epoch
    /// with different contents would serve stale cached answers. Callers
    /// hitting the epoch rejection should rebuild via
    /// [`from_snapshot`](Self::from_snapshot) instead (fresh cache).
    ///
    /// # Errors
    /// `NoSnapshot` when nothing is published yet, `Incompatible` on a
    /// shape mismatch or a non-increasing epoch.
    pub fn install_snapshot(&self, snap: Arc<Snapshot>) -> Result<(), EngineError> {
        let current = self.current()?;
        current.check_mergeable(&snap)?;
        if snap.epoch() <= current.epoch() {
            return Err(EngineError::Incompatible(format!(
                "snapshot epoch {} is not newer than published epoch {}",
                snap.epoch(),
                current.epoch()
            )));
        }
        *self.published.write().expect("snapshot lock") = Some(snap);
        Ok(())
    }

    /// Stop ingest: flush, join the workers, publish their final merged
    /// state. The engine keeps serving queries afterwards.
    ///
    /// # Errors
    /// `Closed` if already shut down; `ShardFailed` on worker panic.
    pub fn shutdown(&self) -> Result<Arc<Snapshot>, EngineError> {
        let pipeline = self
            .pipeline
            .lock()
            .expect("pipeline lock")
            .take()
            .ok_or(EngineError::Closed)?;
        *self.retired.lock().expect("retired lock") =
            Some((pipeline.rows_routed(), pipeline.shards()));
        let snap = Arc::new(pipeline.finish()?);
        *self.published.write().expect("snapshot lock") = Some(Arc::clone(&snap));
        Ok(snap)
    }

    /// The currently published snapshot, if any.
    pub fn snapshot(&self) -> Option<Arc<Snapshot>> {
        self.published.read().expect("snapshot lock").clone()
    }

    fn current(&self) -> Result<Arc<Snapshot>, EngineError> {
        self.snapshot().ok_or(EngineError::NoSnapshot)
    }

    /// Answer one query against the published snapshot.
    ///
    /// Single queries run through the same planner as
    /// [`query_batch`](Self::query_batch), so normalization (column
    /// validation, `F_0` rounding, pattern encoding) happens exactly once
    /// per query — before the cache probe — on both paths.
    ///
    /// # Errors
    /// `NoSnapshot` before the first [`refresh`](Self::refresh);
    /// `EpochMismatch` for stale pins; query errors from the summaries.
    pub fn query(&self, query: &Query) -> Result<Answer, EngineError> {
        self.query_batch(std::slice::from_ref(query))
            .pop()
            .expect("one answer per query")
    }

    /// Answer a batch of queries (the serving unit of the `serve`
    /// example). Answers return in request order; per-query errors are
    /// reported per slot, not batch-fatal.
    ///
    /// The whole batch is answered against one snapshot. The planner
    /// groups co-plannable queries by canonical [`pfe_query::QueryKey`] —
    /// same effective (rounded) mask, statistic, and payload — so each
    /// group costs one cache probe and at most one snapshot compute no
    /// matter how many queries share it; each answer still carries its
    /// own rounding provenance and guarantee.
    pub fn query_batch(&self, queries: &[Query]) -> Vec<Result<Answer, EngineError>> {
        let snap = match self.current() {
            Ok(snap) => snap,
            Err(e) => return queries.iter().map(|_| Err(e.clone())).collect(),
        };
        self.exec.answer_batch(&snap, queries)
    }

    /// [`query_batch`](Self::query_batch) under a request trace: the
    /// planner/cache/compute/materialize stages record spans on `trace`
    /// and every `Ok` answer echoes the trace id. With a disabled handle
    /// this is exactly the untraced path.
    pub fn query_batch_traced(
        &self,
        queries: &[Query],
        trace: &pfe_obs::TraceHandle,
    ) -> Vec<Result<Answer, EngineError>> {
        let snap = match self.current() {
            Ok(snap) => snap,
            Err(e) => return queries.iter().map(|_| Err(e.clone())).collect(),
        };
        self.exec.answer_batch_traced(&snap, queries, trace)
    }

    /// The recorder this engine reports into (see
    /// [`start_with_recorder`](Self::start_with_recorder)).
    pub fn recorder(&self) -> &Arc<Recorder> {
        self.exec.recorder()
    }

    /// Observability counters.
    ///
    /// Reading stats also mirrors the pipeline/snapshot-derived values
    /// (rows routed, snapshot epoch/rows/bytes, shard count) into the
    /// recorder's `engine_*` gauges, so a Prometheus scrape taken through
    /// the server sees them without a separate wire round trip.
    pub fn stats(&self) -> EngineStats {
        let (rows_ingested, shards) = {
            let guard = self.pipeline.lock().expect("pipeline lock");
            match guard.as_ref() {
                Some(p) => (p.rows_routed(), p.shards()),
                // After shutdown, report the counters captured when the
                // pipeline retired.
                None => self.retired.lock().expect("retired lock").unwrap_or((0, 0)),
            }
        };
        let snap = self.snapshot();
        let queries = self.exec.counters();
        let stats = EngineStats {
            rows_ingested,
            snapshot_epoch: snap.as_ref().map(|s| s.epoch()).unwrap_or(0),
            snapshot_rows: snap.as_ref().map(|s| s.n()).unwrap_or(0),
            snapshot_bytes: snap.as_ref().map(|s| s.space_bytes()).unwrap_or(0),
            cache: self.exec.cache_stats(),
            shards,
            queries_served: queries.total(),
            queries,
        };
        let rec = self.exec.recorder();
        rec.gauge("engine_rows_ingested").set(stats.rows_ingested);
        rec.gauge("engine_snapshot_epoch").set(stats.snapshot_epoch);
        rec.gauge("engine_snapshot_rows").set(stats.snapshot_rows);
        rec.gauge("engine_snapshot_bytes")
            .set(stats.snapshot_bytes as u64);
        rec.gauge("engine_shards").set(stats.shards as u64);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfe_query::{GuaranteeSource, StatKind};
    use pfe_stream::gen::uniform_binary;

    fn small_cfg(shards: usize) -> EngineConfig {
        EngineConfig {
            shards,
            sample_t: 512,
            kmv_k: 64,
            batch_rows: 64,
            ..Default::default()
        }
    }

    #[test]
    fn query_before_snapshot_is_typed_error() {
        let engine = Engine::start(8, 2, small_cfg(1)).expect("start");
        assert_eq!(
            engine.query(&Query::over([0]).f0()),
            Err(EngineError::NoSnapshot)
        );
        // Batches report the error per slot.
        let answers = engine.query_batch(&[Query::over([0]).f0(), Query::over([1]).f0()]);
        assert_eq!(answers.len(), 2);
        assert!(answers.iter().all(|a| a == &Err(EngineError::NoSnapshot)));
    }

    #[test]
    fn windowed_queries_rejected_by_whole_stream_engine() {
        let engine = Engine::start(8, 2, small_cfg(1)).expect("start");
        engine.ingest(&uniform_binary(8, 300, 9)).expect("ingest");
        engine.refresh().expect("refresh");
        let answers = engine.query_batch(&[
            Query::over([0, 1]).f0(),
            Query::over([0, 1]).f0().window(100),
        ]);
        assert!(answers[0].is_ok());
        assert!(matches!(
            &answers[1],
            Err(EngineError::Query(pfe_core::QueryError::BadParameter(m)))
                if m.contains("windowed engine")
        ));
    }

    #[test]
    fn f0_cache_hits_on_shared_rounded_target() {
        let d = 12;
        let engine = Engine::start(d, 2, small_cfg(2)).expect("start");
        engine.ingest(&uniform_binary(d, 3000, 11)).expect("ingest");
        engine.refresh().expect("refresh");
        // Two different mid-size queries that round to the same target.
        let q1 = Query::over(0..6).f0();
        let q2 = Query::over(0..7).f0();
        let a1 = engine.query(&q1).expect("ok");
        assert!(!a1.cost.cached);
        let a2 = engine.query(&q2).expect("ok");
        // Both rounded (shrunk) to the same small-side member => same
        // estimate, second answer from cache with its own provenance.
        if a1.provenance.answered_on == a2.provenance.answered_on {
            assert!(a2.cost.cached, "same rounded target must hit the cache");
            assert_eq!(a1.estimate(), a2.estimate());
            assert_ne!(a1.provenance.sym_diff, a2.provenance.sym_diff);
            assert_ne!(a1.guarantee.alpha, a2.guarantee.alpha);
        }
        // Exact repeat definitely hits.
        assert!(engine.query(&q1).expect("ok").cost.cached);
    }

    #[test]
    fn batch_planner_shares_one_compute_across_colliding_masks() {
        let d = 12;
        let engine = Engine::start(d, 2, small_cfg(2)).expect("start");
        engine.ingest(&uniform_binary(d, 3000, 21)).expect("ingest");
        engine.refresh().expect("refresh");
        let batch = vec![
            Query::over(0..6).f0(),
            Query::over(0..7).f0(),
            Query::over(0..6).f0(),
        ];
        let answers = engine.query_batch(&batch);
        let a: Vec<&Answer> = answers.iter().map(|a| a.as_ref().expect("ok")).collect();
        if a[0].provenance.answered_on == a[1].provenance.answered_on {
            // All three shared one group: one cache miss total, none of
            // them served from cache, every answer stamped with the group.
            assert!(a.iter().all(|x| x.cost.group_size == 3));
            assert!(a.iter().all(|x| !x.cost.cached));
            assert_eq!(engine.stats().cache.misses, 1);
            assert_eq!(a[0].estimate(), a[1].estimate());
        }
        // Same batch again: one probe, served from cache for all members.
        let again = engine.query_batch(&batch);
        assert!(again.iter().all(|x| x.as_ref().expect("ok").cost.cached));
    }

    #[test]
    fn refresh_bumps_epoch_and_bypasses_stale_cache() {
        let d = 10;
        let engine = Engine::start(d, 2, small_cfg(2)).expect("start");
        engine.ingest(&uniform_binary(d, 1000, 12)).expect("ingest");
        engine.refresh().expect("refresh");
        let req = Query::over([0, 1]).f0();
        let first = engine.query(&req).expect("ok");
        assert_eq!(first.epoch, 1);
        engine.ingest(&uniform_binary(d, 1000, 13)).expect("ingest");
        engine.refresh().expect("refresh");
        let second = engine.query(&req).expect("ok");
        assert!(!second.cost.cached, "new epoch must not serve old answers");
        assert_eq!(second.epoch, 2);
    }

    #[test]
    fn epoch_pinning_is_enforced() {
        let d = 10;
        let engine = Engine::start(d, 2, small_cfg(1)).expect("start");
        engine.ingest(&uniform_binary(d, 500, 31)).expect("ingest");
        engine.refresh().expect("refresh");
        assert!(engine.query(&Query::over([0]).f0().pinned_to(1)).is_ok());
        assert_eq!(
            engine.query(&Query::over([0]).f0().pinned_to(9)),
            Err(EngineError::EpochMismatch {
                pinned: 9,
                published: 1
            })
        );
        engine.refresh().expect("refresh");
        // The old pin is now stale.
        assert_eq!(
            engine.query(&Query::over([0]).f0().pinned_to(1)),
            Err(EngineError::EpochMismatch {
                pinned: 1,
                published: 2
            })
        );
    }

    #[test]
    fn bypass_cache_recomputes_but_refreshes_entry() {
        let d = 10;
        let engine = Engine::start(d, 2, small_cfg(1)).expect("start");
        engine.ingest(&uniform_binary(d, 800, 33)).expect("ingest");
        engine.refresh().expect("refresh");
        let q = Query::over([0, 1, 2]).heavy_hitters(0.05);
        engine.query(&q).expect("ok");
        // A bypassing repeat recomputes (not served from cache)…
        let fresh = engine.query(&q.clone().bypass_cache()).expect("ok");
        assert!(!fresh.cost.cached);
        // …but the entry is still warm for cache-eligible queries.
        assert!(engine.query(&q).expect("ok").cost.cached);
    }

    #[test]
    fn exact_if_available_on_full_retention() {
        let d = 10;
        // sample_t (512) > rows (300): the reservoir retains everything.
        let engine = Engine::start(d, 2, small_cfg(2)).expect("start");
        engine.ingest(&uniform_binary(d, 300, 35)).expect("ingest");
        engine.refresh().expect("refresh");
        let approx = engine.query(&Query::over(0..6).f0()).expect("ok");
        let exact = engine
            .query(&Query::over(0..6).f0().exact_if_available())
            .expect("ok");
        assert_eq!(exact.guarantee, pfe_query::Guarantee::exact());
        // Exact answers are never rounded.
        assert_eq!(exact.provenance.sym_diff, 0);
        assert_eq!(
            exact.provenance.answered_on.to_indices(),
            (0..6).collect::<Vec<u32>>()
        );
        assert_eq!(exact.guarantee.source, GuaranteeSource::Exact);
        assert_eq!(approx.guarantee.source, GuaranteeSource::AlphaNet);
        // The exact estimate equals the true projected distinct count.
        let snap = engine.snapshot().expect("published");
        let cols = pfe_row::ColumnSet::from_indices(d, &[0, 1, 2, 3, 4, 5]).expect("valid");
        assert_eq!(exact.estimate(), Some(snap.f0_exact(&cols).expect("ok")));
    }

    #[test]
    fn l1_sample_served_end_to_end_and_deterministic() {
        let d = 10;
        let engine = Engine::start(d, 2, small_cfg(2)).expect("start");
        engine.ingest(&uniform_binary(d, 2000, 37)).expect("ingest");
        engine.refresh().expect("refresh");
        let q = Query::over([0, 1, 2]).l1_sample(16).with_seed(7);
        let a = engine.query(&q).expect("ok");
        let patterns = a.patterns().expect("l1 payload");
        assert_eq!(patterns.len(), 16);
        assert!(patterns.iter().all(|p| p.probability > 0.0));
        assert_eq!(a.guarantee.source, GuaranteeSource::Sample);
        // Same (k, seed) is deterministic (and cached); another seed is a
        // different canonical key.
        let b = engine.query(&q).expect("ok");
        assert!(b.cost.cached);
        assert_eq!(a.value, b.value);
        let c = engine
            .query(&Query::over([0, 1, 2]).l1_sample(16).with_seed(8))
            .expect("ok");
        assert!(!c.cost.cached);
    }

    #[test]
    fn shutdown_then_queries_still_served() {
        let d = 8;
        let engine = Engine::start(d, 2, small_cfg(3)).expect("start");
        engine.ingest(&uniform_binary(d, 500, 14)).expect("ingest");
        let snap = engine.shutdown().expect("shutdown");
        assert_eq!(snap.n(), 500);
        assert!(engine.push_packed(0).is_err());
        assert!(engine.query(&Query::over([0]).f0()).is_ok());
        assert!(engine.shutdown().is_err());
        // Counters must survive the pipeline retiring.
        let stats = engine.stats();
        assert_eq!(stats.rows_ingested, 500);
        assert_eq!(stats.shards, 3);
    }

    #[test]
    fn push_packed_batch_matches_per_row_pushes() {
        let d = 10;
        let data = uniform_binary(d, 2000, 41);
        let rows: Vec<u64> = match &data {
            Dataset::Binary(m) => m.rows().to_vec(),
            Dataset::Qary(_) => unreachable!("generator yields binary data"),
        };
        let per_row = Engine::start(d, 2, small_cfg(3)).expect("start");
        for &row in &rows {
            per_row.push_packed(row).expect("push");
        }
        let batched = Engine::start(d, 2, small_cfg(3)).expect("start");
        batched.push_packed_batch(&rows).expect("batch push");
        let a = per_row.shutdown().expect("shutdown");
        let b = batched.shutdown().expect("shutdown");
        assert_eq!(a.n(), b.n());
        // Same shard partitioning, same per-shard arrival order => every
        // statistic identical.
        for mask in [0b11u64, 0b1111, (1 << d) - 1] {
            let cols = pfe_row::ColumnSet::from_mask(d, mask).expect("valid");
            assert_eq!(
                a.f0(&cols).expect("ok").estimate,
                b.f0(&cols).expect("ok").estimate
            );
            assert_eq!(
                a.heavy_hitters(&cols, 0.05, 1.0, 2.0).expect("ok"),
                b.heavy_hitters(&cols, 0.05, 1.0, 2.0).expect("ok")
            );
        }
    }

    #[test]
    fn concurrent_queries_while_ingesting() {
        let d = 10;
        let engine = Arc::new(Engine::start(d, 2, small_cfg(2)).expect("start"));
        engine.ingest(&uniform_binary(d, 2000, 15)).expect("ingest");
        engine.refresh().expect("refresh");
        let mut handles = Vec::new();
        for t in 0..4 {
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u32 {
                    let cols: Vec<u32> = (0..(1 + (t + i) % 5)).collect();
                    let r = engine.query(&Query::over(cols).f0());
                    assert!(r.is_ok(), "query failed: {r:?}");
                }
            }));
        }
        // Ingest and refresh concurrently with the query threads.
        for chunk in 0..4 {
            engine
                .ingest(&uniform_binary(d, 500, 16 + chunk))
                .expect("ingest");
            engine.refresh().expect("refresh");
        }
        for h in handles {
            h.join().expect("no panic");
        }
        let stats = engine.stats();
        assert_eq!(stats.rows_ingested, 4000);
        assert!(stats.cache.hits > 0, "repeat queries should hit the cache");
        assert_eq!(stats.queries_served, 800);
        assert_eq!(stats.queries.f0, 800);
    }

    #[test]
    fn stats_reflect_state_and_count_per_statistic() {
        let d = 8;
        let engine = Engine::start(d, 2, small_cfg(2)).expect("start");
        let s0 = engine.stats();
        assert_eq!((s0.rows_ingested, s0.snapshot_epoch), (0, 0));
        assert_eq!(s0.queries_served, 0);
        engine.ingest(&uniform_binary(d, 300, 17)).expect("ingest");
        engine.refresh().expect("refresh");
        engine.query(&Query::over([0, 1]).f0()).expect("ok");
        engine
            .query(&Query::over([0, 1]).frequency([0u16, 0]))
            .expect("ok");
        engine
            .query(&Query::over([0, 1]).heavy_hitters(0.1))
            .expect("ok");
        engine.query(&Query::over([0, 1]).l1_sample(4)).expect("ok");
        engine.query(&Query::over([0, 1]).f0()).expect("ok");
        let s1 = engine.stats();
        assert_eq!(s1.snapshot_rows, 300);
        assert!(s1.snapshot_bytes > 0);
        assert_eq!(s1.shards, 2);
        assert_eq!(s1.queries_served, 5);
        assert_eq!(
            (
                s1.queries.f0,
                s1.queries.frequency,
                s1.queries.heavy_hitters,
                s1.queries.l1_sample
            ),
            (2, 1, 1, 1)
        );
        assert_eq!(s1.queries.get(StatKind::F0), 2);
        assert!(s1.cache.hit_ratio() > 0.0);
    }
}
