//! Engine-level errors.

use pfe_core::QueryError;
use pfe_persist::PersistError;

/// Errors surfaced by the serving engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A summary-level query error (dimension, codec, parameter, ...).
    Query(QueryError),
    /// The engine configuration is invalid.
    BadConfig(String),
    /// The ingest pipeline has been shut down.
    Closed,
    /// A shard worker thread panicked; the engine is unusable.
    ShardFailed(String),
    /// No snapshot has been published yet (call `refresh` after ingesting).
    NoSnapshot,
    /// A query pinned to one snapshot epoch cannot be served because a
    /// different epoch is published.
    EpochMismatch {
        /// The epoch the query demanded.
        pinned: u64,
        /// The epoch actually published.
        published: u64,
    },
    /// A snapshot file failed to read, write, verify, or decode.
    Persist(PersistError),
    /// Two snapshots cannot be merged (or a snapshot cannot be resumed
    /// under a config) because their parameters disagree; the message names
    /// the first mismatch.
    Incompatible(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Query(e) => write!(f, "query error: {e}"),
            Self::BadConfig(msg) => write!(f, "bad engine config: {msg}"),
            Self::Closed => write!(f, "ingest pipeline is closed"),
            Self::ShardFailed(msg) => write!(f, "shard worker failed: {msg}"),
            Self::NoSnapshot => write!(f, "no snapshot published yet"),
            Self::EpochMismatch { pinned, published } => write!(
                f,
                "query pinned to epoch {pinned}, but epoch {published} is published"
            ),
            Self::Persist(e) => write!(f, "snapshot persistence error: {e}"),
            Self::Incompatible(msg) => write!(f, "incompatible snapshots: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<QueryError> for EngineError {
    fn from(e: QueryError) -> Self {
        Self::Query(e)
    }
}

impl From<PersistError> for EngineError {
    fn from(e: PersistError) -> Self {
        Self::Persist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        let e: EngineError = QueryError::EmptyData.into();
        assert!(e.to_string().contains("no data"));
        assert!(EngineError::NoSnapshot.to_string().contains("snapshot"));
    }
}
