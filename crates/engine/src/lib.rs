#![warn(missing_docs)]
//! `pfe-engine` — sharded parallel ingest and concurrent projection-query
//! serving over the paper's mergeable summaries.
//!
//! The paper's Algorithm 1 summaries (α-net of β-approximate sketches) and
//! Theorem 5.1 uniform samples are mergeable and stream-friendly; this
//! crate turns that property into a production-shaped engine:
//!
//! 1. **Sharded ingest** ([`IngestPipeline`]): rows are hash-partitioned
//!    by content across `N` worker shards, each owning its own
//!    [`UniformSampleSummary`](pfe_core::UniformSampleSummary) +
//!    [`AlphaNetF0`](pfe_core::alpha_net::AlphaNetF0)`<Kmv>` (plus an
//!    optional CountMin frequency net), fed through *bounded* channels so
//!    slow shards apply backpressure. Accepts batch
//!    [`Dataset`](pfe_row::Dataset)s and incremental row pushes.
//! 2. **Merge / compaction** ([`Snapshot`]): shard summaries fold into an
//!    immutable snapshot via the `DistinctSketch::merge` /
//!    reservoir-union contracts — exact for KMV/CountMin (per-mask seeds
//!    are shared), hypergeometric-uniform for the row sample.
//! 3. **Query serving** ([`Engine`]): batched `F_0`, point-frequency, and
//!    heavy-hitter queries against `Arc`-shared snapshots, with an LRU
//!    cache keyed by `(epoch, rounded subset mask, statistic)` so repeated
//!    exploration queries skip the net lookup.
//!
//! The `serve` example (workspace root) speaks line-delimited JSON over
//! stdin using the vendored [`json`] module; `benches/engine.rs` in
//! `pfe-bench` measures ingest throughput vs. shard count and query
//! latency with and without the cache.

pub mod cache;
pub mod config;
pub mod engine;
pub mod error;
pub mod ingest;
pub mod json;
pub mod shard;
pub mod snapshot;

pub use cache::{CacheKey, CacheStats, CachedAnswer, QueryCache, StatKind};
pub use config::{EngineConfig, FreqNetConfig};
pub use engine::{Engine, EngineStats, QueryRequest, QueryResponse};
pub use error::EngineError;
pub use ingest::{IngestPipeline, RowBatch};
pub use json::Json;
pub use shard::ShardSummary;
pub use snapshot::{FrequencyAnswer, Snapshot};
