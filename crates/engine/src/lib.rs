#![deny(missing_docs)]
//! `pfe-engine` — sharded parallel ingest and concurrent projection-query
//! serving over the paper's mergeable summaries.
//!
//! The paper's Algorithm 1 summaries (α-net of β-approximate sketches) and
//! Theorem 5.1 uniform samples are mergeable and stream-friendly; this
//! crate turns that property into a production-shaped engine:
//!
//! 1. **Sharded ingest** ([`IngestPipeline`]): rows are hash-partitioned
//!    by content across `N` worker shards, each owning its own
//!    [`UniformSampleSummary`](pfe_core::UniformSampleSummary) +
//!    [`AlphaNetF0`](pfe_core::alpha_net::AlphaNetF0)`<Kmv>` (plus an
//!    optional CountMin frequency net), fed through *bounded* channels so
//!    slow shards apply backpressure. Accepts batch
//!    [`Dataset`](pfe_row::Dataset)s and incremental row pushes.
//! 2. **Merge / compaction** ([`Snapshot`]): shard summaries fold into an
//!    immutable snapshot via the `DistinctSketch::merge` /
//!    reservoir-union contracts — exact for KMV/CountMin (per-mask seeds
//!    are shared), hypergeometric-uniform for the row sample.
//! 3. **Query serving** ([`Engine`]): typed [`Query`] batches — the four
//!    paper statistics (`F_0`, point frequency, heavy hitters, `ℓ_1`
//!    sampling) plus opt-in `F_p` frequency moments (AMS at `p = 2`,
//!    stable projections at fractional `p`) — against `Arc`-shared
//!    snapshots. A batch **planner**
//!    normalizes every query to its canonical [`pfe_query::QueryKey`]
//!    (rounded mask, encoded pattern) once, groups co-plannable queries
//!    so one net lookup and one cache probe serve the whole group, and
//!    returns guarantee-carrying [`Answer`]s in request order. The LRU
//!    cache is keyed by the same canonical key.
//!
//! Snapshots are also **durable** ([`persist`]): [`Engine::checkpoint`]
//! writes the merged state as a framed, CRC-checked file (`pfe-persist`
//! format), [`Engine::resume`] restores it into a fresh engine that
//! answers queries bit-identically and keeps ingesting, and
//! [`merge_snapshot_files`] unions snapshot files built by independent
//! processes over disjoint slices of one stream. See
//! `examples/checkpoint_resume.rs` for the full cycle:
//!
//! ```
//! use pfe_engine::{Engine, EngineConfig, Query};
//! use pfe_stream::gen::uniform_binary;
//!
//! let dir = std::env::temp_dir().join("pfe-engine-doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("doc.pfes");
//! let cfg = EngineConfig { shards: 2, sample_t: 256, kmv_k: 32, ..Default::default() };
//! let engine = Engine::start(10, 2, cfg.clone()).unwrap();
//! engine.ingest(&uniform_binary(10, 2_000, 5)).unwrap();
//! engine.checkpoint(&path).unwrap();              // durable snapshot
//! let restored = Engine::resume(&path, cfg).unwrap();
//! let q = Query::over([0, 1, 2]).f0();
//! // The restored engine serves immediately, identically.
//! assert_eq!(
//!     engine.query(&q).unwrap().value,
//!     restored.query(&q).unwrap().value,
//! );
//! # std::fs::remove_file(&path).ok();
//! ```
//!
//! The `serve` example (workspace root) speaks line-delimited JSON over
//! stdin; the [`wire`] module serializes the canonical `pfe-query` types
//! directly onto the vendored [`json`] parser, so the Rust API and the
//! wire protocol are one definition. `benches/engine.rs`,
//! `benches/query.rs`, and `benches/persist.rs` in `pfe-bench` measure
//! ingest throughput vs. shard count, planner/cache query latency, and
//! snapshot encode/decode/checkpoint cost.

pub mod cache;
pub mod config;
pub mod engine;
pub mod error;
pub mod exec;
pub mod ingest;
pub mod json;
pub mod persist;
pub mod planner;
pub mod shard;
pub mod snapshot;
pub mod wire;

pub use cache::{CacheStats, CachedAnswer, QueryCache};
pub use config::{EngineConfig, FreqNetConfig};
// The moment-net configuration lives in pfe-core (the nets are built
// there); re-exported so engine users need only one import path.
pub use engine::{Engine, EngineStats};
pub use error::EngineError;
pub use exec::{QueryCounters, QueryExecutor};
pub use ingest::{IngestPipeline, RowBatch};
pub use json::Json;
pub use persist::merge_snapshot_files;
pub use pfe_core::FpConfig;
pub use shard::ShardSummary;
pub use snapshot::{FrequencyAnswer, Snapshot};
// The shared observability registry — re-exported so frontends threading
// a recorder through the engine need only one import path.
pub use pfe_obs::{
    chrome_trace_json, CompletedTrace, Recorder, SlowEntry, SpanRecord, TraceContext, TraceHandle,
    TraceStore,
};
// The canonical query surface — re-exported so engine users need only one
// import path.
pub use pfe_query::{
    Answer, AnswerValue, CostInfo, Guarantee, GuaranteeSource, Provenance, Query, QueryKey,
    QueryOptions, StatKind, Statistic, WindowCoverage,
};
