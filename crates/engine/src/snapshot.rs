//! Immutable, queryable snapshots.
//!
//! A [`Snapshot`] is the merge of every shard's summaries at one point in
//! time. It is immutable by construction and shared behind `Arc` by the
//! serving layer, so any number of query threads can read it while ingest
//! continues on the live shards.

use pfe_core::alpha_net::{AlphaNetF0, RoundedQuery};
use pfe_core::{
    AlphaNetFrequency, HeavyHitter, NetAnswer, QueryError, SampledPattern, UniformSampleSummary,
};
use pfe_row::{ColumnSet, PatternCodec, PatternKey};
use pfe_sketch::kmv::Kmv;
use pfe_sketch::traits::SpaceUsage;

use crate::shard::ShardSummary;

/// A point-frequency answer combining the unbiased sample estimate with
/// the CountMin one-sided bound (when the frequency net is enabled).
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyAnswer {
    /// Unbiased estimate from the uniform row sample (`ĝ/α`).
    pub estimate: f64,
    /// One-sided overestimate from the α-net CountMin summary, if enabled.
    pub upper_bound: Option<f64>,
    /// Additive error `ε‖f‖₁` of `estimate` at `δ = 0.05`.
    pub additive_error: f64,
}

/// The merged, immutable view the engine serves queries from.
pub struct Snapshot {
    sample: UniformSampleSummary,
    net_f0: AlphaNetF0<Kmv>,
    freq: Option<AlphaNetFrequency>,
    rows: u64,
    epoch: u64,
}

impl Snapshot {
    /// Merge shard summaries into one snapshot.
    ///
    /// # Panics
    /// Panics if `shards` is empty or shard parameters mismatch.
    pub fn from_shards(shards: Vec<ShardSummary>, epoch: u64) -> Self {
        assert!(!shards.is_empty(), "snapshot needs at least one shard");
        let mut iter = shards.into_iter();
        let mut acc = iter.next().expect("nonempty");
        for shard in iter {
            acc.merge(&shard);
        }
        let (sample, net_f0, freq, rows) = acc.into_parts();
        Self {
            sample,
            net_f0,
            freq,
            rows,
            epoch,
        }
    }

    /// Monotone snapshot sequence number (per engine).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Rows summarized.
    pub fn n(&self) -> u64 {
        self.rows
    }

    /// The merged uniform row sample.
    pub fn sample(&self) -> &UniformSampleSummary {
        &self.sample
    }

    /// The merged α-net `F_0` summary.
    pub fn net_f0(&self) -> &AlphaNetF0<Kmv> {
        &self.net_f0
    }

    /// Whether the frequency net is materialized.
    pub fn has_freq_net(&self) -> bool {
        self.freq.is_some()
    }

    /// The rounding `f0` will apply to this query — exposed so the serving
    /// layer can key its cache by the *rounded* subset mask.
    ///
    /// # Errors
    /// Dimension errors.
    pub fn f0_rounding(&self, cols: &ColumnSet) -> Result<RoundedQuery, QueryError> {
        self.net_f0.effective_rounding(cols)
    }

    /// Projected `F_0` (Algorithm 1).
    ///
    /// # Errors
    /// Dimension errors.
    pub fn f0(&self, cols: &ColumnSet) -> Result<NetAnswer, QueryError> {
        self.net_f0.f0(cols)
    }

    /// Encode a dense pattern for `cols`.
    ///
    /// # Errors
    /// Codec or arity errors.
    pub fn encode_pattern(
        &self,
        cols: &ColumnSet,
        pattern: &[u16],
    ) -> Result<PatternKey, QueryError> {
        if pattern.len() != cols.len() as usize {
            return Err(QueryError::BadParameter(format!(
                "pattern arity {} != |C| = {}",
                pattern.len(),
                cols.len()
            )));
        }
        for &s in pattern {
            if s as u32 >= self.sample.alphabet() {
                return Err(QueryError::BadParameter(format!(
                    "symbol {s} outside alphabet"
                )));
            }
        }
        let codec = PatternCodec::new(self.sample.alphabet(), cols.len())?;
        Ok(codec.encode_pattern(pattern))
    }

    /// Point frequency of `key` on projection `cols`: unbiased sample
    /// estimate plus (if enabled) the CountMin upper bound.
    ///
    /// # Errors
    /// Dimension or codec errors.
    pub fn frequency(
        &self,
        cols: &ColumnSet,
        key: PatternKey,
    ) -> Result<FrequencyAnswer, QueryError> {
        let estimate = self.sample.frequency(cols, key)?;
        let upper_bound = match &self.freq {
            Some(net) => Some(net.frequency(cols, key)?.estimate),
            None => None,
        };
        Ok(FrequencyAnswer {
            estimate,
            upper_bound,
            additive_error: self.sample.additive_error(0.05),
        })
    }

    /// `φ`-`ℓ_p` heavy hitters (`0 < p ≤ 1`) with slack `c`.
    ///
    /// # Errors
    /// Dimension, codec, or parameter errors.
    pub fn heavy_hitters(
        &self,
        cols: &ColumnSet,
        phi: f64,
        p: f64,
        c: f64,
    ) -> Result<Vec<HeavyHitter>, QueryError> {
        self.sample.heavy_hitters(cols, phi, p, c)
    }

    /// `ℓ_1` pattern sampling on projection `cols`.
    ///
    /// # Errors
    /// Dimension, codec, or empty-data errors.
    pub fn l1_sample(
        &self,
        cols: &ColumnSet,
        count: usize,
        seed: u64,
    ) -> Result<Vec<SampledPattern>, QueryError> {
        self.sample.l1_sample(cols, count, seed)
    }
}

impl SpaceUsage for Snapshot {
    fn space_bytes(&self) -> usize {
        self.sample.space_bytes()
            + self.net_f0.space_bytes()
            + self.freq.as_ref().map(|f| f.space_bytes()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EngineConfig, FreqNetConfig};
    use pfe_stream::gen::uniform_binary;

    #[test]
    fn snapshot_serves_all_statistics() {
        let d = 10;
        let data = uniform_binary(d, 2000, 9);
        let cfg = EngineConfig {
            sample_t: 1024,
            kmv_k: 128,
            freq_net: Some(FreqNetConfig {
                depth: 4,
                width: 512,
            }),
            ..Default::default()
        };
        let mut shard = ShardSummary::new(d, 2, 0, &cfg).expect("new");
        if let pfe_row::Dataset::Binary(m) = &data {
            for &row in m.rows() {
                shard.push_packed(row);
            }
        } else {
            unreachable!("generator yields binary data");
        }
        let snap = Snapshot::from_shards(vec![shard], 1);
        assert_eq!(snap.n(), 2000);
        assert_eq!(snap.epoch(), 1);
        assert!(snap.has_freq_net());
        let cols = ColumnSet::from_mask(d, 0b111).expect("valid");
        assert!(snap.f0(&cols).expect("ok").estimate > 0.0);
        let key = snap.encode_pattern(&cols, &[0, 0, 0]).expect("ok");
        let freq = snap.frequency(&cols, key).expect("ok");
        assert!(freq.estimate >= 0.0);
        let ub = freq.upper_bound.expect("freq net on");
        // CountMin never underestimates; the sample is unbiased.
        assert!(
            ub + 1e-9 >= freq.estimate * 0.5,
            "bound {ub} vs {}",
            freq.estimate
        );
        assert!(!snap
            .heavy_hitters(&cols, 0.05, 1.0, 2.0)
            .expect("ok")
            .is_empty());
        assert_eq!(snap.l1_sample(&cols, 10, 3).expect("ok").len(), 10);
        assert!(snap.space_bytes() > 0);
    }

    #[test]
    fn encode_pattern_validates() {
        let cfg = EngineConfig::default();
        let shard = ShardSummary::new(6, 2, 0, &cfg).expect("new");
        let snap = Snapshot::from_shards(vec![shard], 1);
        let cols = ColumnSet::from_mask(6, 0b11).expect("valid");
        assert!(snap.encode_pattern(&cols, &[0]).is_err());
        assert!(snap.encode_pattern(&cols, &[0, 7]).is_err());
        assert!(snap.encode_pattern(&cols, &[1, 0]).is_ok());
    }
}
