//! Immutable, queryable snapshots.
//!
//! A [`Snapshot`] is the merge of every shard's summaries at one point in
//! time. It is immutable by construction and shared behind `Arc` by the
//! serving layer, so any number of query threads can read it while ingest
//! continues on the live shards.

use std::path::Path;

use pfe_core::alpha_net::{AlphaNetF0, RoundedQuery};
use pfe_core::{
    AlphaNetFrequency, FpNet, HeavyHitter, NetAnswer, QueryError, SampledPattern,
    UniformSampleSummary,
};
use pfe_persist::{Decoder, Encoder, Persist, PersistError};
use pfe_row::{ColumnSet, PatternCodec, PatternKey};
use pfe_sketch::kmv::Kmv;
use pfe_sketch::traits::SpaceUsage;

use crate::error::EngineError;
use crate::shard::ShardSummary;

/// A point-frequency answer combining the unbiased sample estimate with
/// the CountMin one-sided bound (when the frequency net is enabled).
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyAnswer {
    /// Unbiased estimate from the uniform row sample (`ĝ/α`).
    pub estimate: f64,
    /// One-sided overestimate from the α-net CountMin summary, if enabled.
    pub upper_bound: Option<f64>,
    /// Additive error `ε‖f‖₁` of `estimate` at `δ = 0.05`.
    pub additive_error: f64,
}

/// The merged, immutable view the engine serves queries from.
pub struct Snapshot {
    sample: UniformSampleSummary,
    net_f0: AlphaNetF0<Kmv>,
    freq: Option<AlphaNetFrequency>,
    fp: Vec<FpNet>,
    rows: u64,
    epoch: u64,
}

impl Snapshot {
    /// Merge shard summaries into one snapshot.
    ///
    /// # Panics
    /// Panics if `shards` is empty or shard parameters mismatch.
    pub fn from_shards(shards: Vec<ShardSummary>, epoch: u64) -> Self {
        assert!(!shards.is_empty(), "snapshot needs at least one shard");
        let mut iter = shards.into_iter();
        let mut acc = iter.next().expect("nonempty");
        for shard in iter {
            acc.merge(&shard);
        }
        let (sample, net_f0, freq, fp, rows) = acc.into_parts();
        Self {
            sample,
            net_f0,
            freq,
            fp,
            rows,
            epoch,
        }
    }

    /// Monotone snapshot sequence number (per engine).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Write this snapshot to `path` as a framed, checksummed file (see
    /// `pfe-persist` for the format). The file can be reloaded with
    /// [`load_from`](Self::load_from), resumed into a fresh engine with
    /// [`Engine::resume`](crate::Engine::resume), or unioned with other
    /// snapshot files via [`merge_snapshot_files`](crate::merge_snapshot_files).
    ///
    /// # Errors
    /// I/O errors, as [`EngineError::Persist`].
    pub fn save_to<P: AsRef<Path>>(&self, path: P) -> Result<(), EngineError> {
        pfe_persist::save(path, pfe_persist::kind::SNAPSHOT, self)?;
        Ok(())
    }

    /// Read a snapshot file written by [`save_to`](Self::save_to).
    ///
    /// Decoding is fully defensive: truncated, bit-flipped, version-skewed,
    /// or wrong-kind files surface as typed [`EngineError::Persist`]
    /// errors, never panics. A decoded snapshot answers every query
    /// bit-identically to the one that was saved.
    ///
    /// # Errors
    /// I/O and decode errors, as [`EngineError::Persist`].
    pub fn load_from<P: AsRef<Path>>(path: P) -> Result<Self, EngineError> {
        Ok(pfe_persist::load(path, pfe_persist::kind::SNAPSHOT)?)
    }

    /// Check that `other` summarizes a disjoint segment of the *same*
    /// logical stream configuration as `self`: equal dimension, alphabet,
    /// reservoir capacity, α-net, and per-subset sketch parameters/seeds.
    ///
    /// # Errors
    /// [`EngineError::Incompatible`] naming the first mismatch.
    pub fn check_mergeable(&self, other: &Self) -> Result<(), EngineError> {
        let mismatch = |what: &str| Err(EngineError::Incompatible(what.to_string()));
        if self.sample.dimension() != other.sample.dimension() {
            return mismatch("dimension d differs");
        }
        if self.sample.alphabet() != other.sample.alphabet() {
            return mismatch("alphabet Q differs");
        }
        if self.sample.capacity() != other.sample.capacity() {
            return mismatch("reservoir capacity sample_t differs");
        }
        if self.net_f0.net() != other.net_f0.net() {
            return mismatch("alpha-net (d, alpha) differs");
        }
        if self.net_f0.mode() != other.net_f0.mode() {
            return mismatch("net materialization mode differs");
        }
        for mask in self.net_f0.net().members(self.net_f0.mode()) {
            let (a, b) = (
                self.net_f0.sketch(mask).expect("member materialized"),
                other.net_f0.sketch(mask).expect("member materialized"),
            );
            if a.k() != b.k() {
                return mismatch("KMV capacity k differs");
            }
            if a.seed() != b.seed() {
                return mismatch("KMV seeds differ (snapshots from different base seeds)");
            }
        }
        match (&self.freq, &other.freq) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                if a.net() != b.net() {
                    return mismatch("frequency-net alpha-nets differ");
                }
                if a.fingerprint_seed() != b.fingerprint_seed() {
                    return mismatch("frequency-net fingerprint seeds differ");
                }
                for mask in a.net().members(pfe_core::NetMode::Full) {
                    let (x, y) = (
                        a.sketch(mask).expect("member materialized"),
                        b.sketch(mask).expect("member materialized"),
                    );
                    if x.depth() != y.depth() || x.width() != y.width() {
                        return mismatch("CountMin geometry differs");
                    }
                }
            }
            _ => return mismatch("frequency net present on one side only"),
        }
        if self.fp.len() != other.fp.len() {
            return mismatch("fp-net counts differ");
        }
        for (a, b) in self.fp.iter().zip(&other.fp) {
            if a.p().to_bits() != b.p().to_bits() {
                return mismatch("fp-net moment orders differ");
            }
            if a.is_ams() != b.is_ams() {
                return mismatch("fp-net sketch families differ");
            }
            if a.net() != b.net() || a.mode() != b.mode() || a.alphabet() != b.alphabet() {
                return mismatch("fp-net alpha-nets differ");
            }
            if a.sketch_shape() != b.sketch_shape() {
                return mismatch("fp-net sketch shapes differ");
            }
        }
        Ok(())
    }

    /// Union another snapshot into this one — the cross-process merge
    /// behind [`merge_snapshot_files`](crate::merge_snapshot_files).
    /// Sketch unions are exact (shared per-mask seeds); the row samples
    /// merge by the seeded hypergeometric union. The resulting epoch is
    /// the maximum of the two.
    ///
    /// # Errors
    /// [`EngineError::Incompatible`] when [`check_mergeable`](Self::check_mergeable)
    /// fails; nothing is modified in that case.
    pub fn merge(&mut self, other: &Self) -> Result<(), EngineError> {
        self.check_mergeable(other)?;
        self.sample.merge(&other.sample);
        self.net_f0.merge(&other.net_f0);
        match (&mut self.freq, &other.freq) {
            (Some(a), Some(b)) => a.merge(b),
            (None, None) => {}
            _ => unreachable!("checked by check_mergeable"),
        }
        for (a, b) in self.fp.iter_mut().zip(&other.fp) {
            a.merge(b);
        }
        self.rows += other.rows;
        self.epoch = self.epoch.max(other.epoch);
        Ok(())
    }

    /// Clone this snapshot's summaries into a [`ShardSummary`] — the base
    /// state a resumed pipeline folds every later snapshot on top of.
    pub(crate) fn to_base_shard(&self) -> ShardSummary {
        ShardSummary::from_parts(
            self.sample.clone(),
            self.net_f0.clone(),
            self.freq.clone(),
            self.fp.clone(),
            self.rows,
        )
    }

    /// Rows summarized.
    pub fn n(&self) -> u64 {
        self.rows
    }

    /// The merged uniform row sample.
    pub fn sample(&self) -> &UniformSampleSummary {
        &self.sample
    }

    /// The merged α-net `F_0` summary.
    pub fn net_f0(&self) -> &AlphaNetF0<Kmv> {
        &self.net_f0
    }

    /// Whether the frequency net is materialized.
    pub fn has_freq_net(&self) -> bool {
        self.freq.is_some()
    }

    /// The materialized `F_p` moment nets, one per configured order.
    pub fn fp_nets(&self) -> &[FpNet] {
        &self.fp
    }

    /// The net materialized for moment order `p`, if any.
    pub fn fp_net(&self, p: f64) -> Option<&FpNet> {
        self.fp.iter().find(|n| (n.p() - p).abs() <= 1e-12)
    }

    /// Whether the uniform sample retains the *entire* stream (the
    /// reservoir never overflowed). When true, every sample statistic —
    /// and [`f0_exact`](Self::f0_exact) — is computed from complete data,
    /// so the serving layer can honor `exact_if_available` queries.
    pub fn is_exhaustive(&self) -> bool {
        self.sample.sample_len() as u64 == self.sample.n()
    }

    /// Exact projected `F_0` from the fully retained rows: the number of
    /// distinct projected patterns in the sample. Only meaningful when
    /// [`is_exhaustive`](Self::is_exhaustive) holds — otherwise it counts
    /// distinct patterns of a subsample.
    ///
    /// # Errors
    /// Dimension or codec errors.
    pub fn f0_exact(&self, cols: &ColumnSet) -> Result<f64, QueryError> {
        let mut keys = self.sample.projected_sample(cols)?;
        keys.sort_unstable();
        keys.dedup();
        Ok(keys.len() as f64)
    }

    /// The rounding `f0` will apply to this query — exposed so the serving
    /// layer can key its cache by the *rounded* subset mask.
    ///
    /// # Errors
    /// Dimension errors.
    pub fn f0_rounding(&self, cols: &ColumnSet) -> Result<RoundedQuery, QueryError> {
        self.net_f0.effective_rounding(cols)
    }

    /// Projected `F_0` (Algorithm 1).
    ///
    /// # Errors
    /// Dimension errors.
    pub fn f0(&self, cols: &ColumnSet) -> Result<NetAnswer, QueryError> {
        self.net_f0.f0(cols)
    }

    /// Exact projected `F_p = Σ f_i^p` from the fully retained rows. Like
    /// [`f0_exact`](Self::f0_exact), only meaningful when
    /// [`is_exhaustive`](Self::is_exhaustive) holds.
    ///
    /// # Errors
    /// Dimension or codec errors.
    pub fn fp_exact(&self, cols: &ColumnSet, p: f64) -> Result<f64, QueryError> {
        let mut keys = self.sample.projected_sample(cols)?;
        keys.sort_unstable();
        let mut total = 0.0;
        let mut i = 0;
        while i < keys.len() {
            let mut run = 1usize;
            while i + run < keys.len() && keys[i + run] == keys[i] {
                run += 1;
            }
            total += (run as f64).powf(p);
            i += run;
        }
        Ok(total)
    }

    /// The rounding the order-`p` moment net will apply to this query —
    /// the `F_p` analog of [`f0_rounding`](Self::f0_rounding).
    ///
    /// # Errors
    /// [`QueryError::UnsupportedMoment`] when no net for `p` is
    /// materialized; dimension errors.
    pub fn fp_rounding(&self, cols: &ColumnSet, p: f64) -> Result<RoundedQuery, QueryError> {
        self.fp_net(p)
            .ok_or(QueryError::UnsupportedMoment {
                requested: p,
                supported: f64::NAN,
            })?
            .effective_rounding(cols)
    }

    /// Projected frequency moment `F_p` (Algorithm 1 with the moment
    /// plug-in: AMS at `p = 2`, stable projections at fractional `p`).
    ///
    /// # Errors
    /// [`QueryError::UnsupportedMoment`] when no net for `p` is
    /// materialized; dimension errors.
    pub fn fp(&self, cols: &ColumnSet, p: f64) -> Result<NetAnswer, QueryError> {
        self.fp_net(p)
            .ok_or(QueryError::UnsupportedMoment {
                requested: p,
                supported: f64::NAN,
            })?
            .fp(cols)
    }

    /// Encode a dense pattern for `cols`.
    ///
    /// # Errors
    /// Codec or arity errors.
    pub fn encode_pattern(
        &self,
        cols: &ColumnSet,
        pattern: &[u16],
    ) -> Result<PatternKey, QueryError> {
        if pattern.len() != cols.len() as usize {
            return Err(QueryError::BadParameter(format!(
                "pattern arity {} != |C| = {}",
                pattern.len(),
                cols.len()
            )));
        }
        for &s in pattern {
            if s as u32 >= self.sample.alphabet() {
                return Err(QueryError::BadParameter(format!(
                    "symbol {s} outside alphabet"
                )));
            }
        }
        let codec = PatternCodec::new(self.sample.alphabet(), cols.len())?;
        Ok(codec.encode_pattern(pattern))
    }

    /// Point frequency of `key` on projection `cols`: unbiased sample
    /// estimate plus (if enabled) the CountMin upper bound.
    ///
    /// # Errors
    /// Dimension or codec errors.
    pub fn frequency(
        &self,
        cols: &ColumnSet,
        key: PatternKey,
    ) -> Result<FrequencyAnswer, QueryError> {
        let estimate = self.sample.frequency(cols, key)?;
        let upper_bound = match &self.freq {
            Some(net) => Some(net.frequency(cols, key)?.estimate),
            None => None,
        };
        Ok(FrequencyAnswer {
            estimate,
            upper_bound,
            additive_error: self.sample.additive_error(pfe_core::bounds::DEFAULT_DELTA),
        })
    }

    /// `φ`-`ℓ_p` heavy hitters (`0 < p ≤ 1`) with slack `c`.
    ///
    /// # Errors
    /// Dimension, codec, or parameter errors.
    pub fn heavy_hitters(
        &self,
        cols: &ColumnSet,
        phi: f64,
        p: f64,
        c: f64,
    ) -> Result<Vec<HeavyHitter>, QueryError> {
        self.sample.heavy_hitters(cols, phi, p, c)
    }

    /// `ℓ_1` pattern sampling on projection `cols`.
    ///
    /// # Errors
    /// Dimension, codec, or empty-data errors.
    pub fn l1_sample(
        &self,
        cols: &ColumnSet,
        count: usize,
        seed: u64,
    ) -> Result<Vec<SampledPattern>, QueryError> {
        self.sample.l1_sample(cols, count, seed)
    }
}

impl Persist for Snapshot {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.epoch);
        enc.put_u64(self.rows);
        self.sample.encode(enc);
        self.net_f0.encode(enc);
        self.freq.encode(enc);
        enc.put_len(self.fp.len());
        for net in &self.fp {
            net.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let epoch = dec.take_u64()?;
        let rows = dec.take_u64()?;
        let sample = UniformSampleSummary::decode(dec)?;
        let net_f0 = AlphaNetF0::<Kmv>::decode(dec)?;
        let freq = Option::<AlphaNetFrequency>::decode(dec)?;
        // Cross-component consistency: every part summarizes one (d, Q).
        let (d, q) = (sample.dimension(), sample.alphabet());
        if net_f0.net().dimension() != d || net_f0.alphabet() != q {
            return Err(PersistError::Malformed(format!(
                "F0 net summarizes ({}, Q={}) but the sample holds ({d}, Q={q})",
                net_f0.net().dimension(),
                net_f0.alphabet()
            )));
        }
        if let Some(f) = &freq {
            // The freq net must share the F0 net's exact (d, alpha) and
            // alphabet: a CRC-valid file whose components are each
            // internally consistent but disagree with one another would
            // otherwise panic later, when resume/merge walks one net's
            // members and indexes the other's sketch map.
            if f.net() != net_f0.net() || f.alphabet() != q {
                return Err(PersistError::Malformed(format!(
                    "frequency net (d={}, alpha={}, Q={}) disagrees with the F0 net \
                     (d={d}, alpha={}, Q={q})",
                    f.net().dimension(),
                    f.net().alpha(),
                    f.alphabet(),
                    net_f0.net().alpha()
                )));
            }
        }
        // Each fp net is at least a family tag plus net parameters.
        let n_fp = dec.take_len(13)?;
        let mut fp = Vec::with_capacity(n_fp);
        for _ in 0..n_fp {
            let net = FpNet::decode(dec)?;
            if net.net() != net_f0.net() || net.alphabet() != q {
                return Err(PersistError::Malformed(format!(
                    "fp net (p={}, d={}, Q={}) disagrees with the F0 net (d={d}, Q={q})",
                    net.p(),
                    net.net().dimension(),
                    net.alphabet()
                )));
            }
            fp.push(net);
        }
        Ok(Self {
            sample,
            net_f0,
            freq,
            fp,
            rows,
            epoch,
        })
    }
}

impl SpaceUsage for Snapshot {
    fn space_bytes(&self) -> usize {
        self.sample.space_bytes()
            + self.net_f0.space_bytes()
            + self.freq.as_ref().map(|f| f.space_bytes()).unwrap_or(0)
            + self.fp.iter().map(|n| n.space_bytes()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EngineConfig, FreqNetConfig};
    use pfe_stream::gen::uniform_binary;

    #[test]
    fn snapshot_serves_all_statistics() {
        let d = 10;
        let data = uniform_binary(d, 2000, 9);
        let cfg = EngineConfig {
            sample_t: 1024,
            kmv_k: 128,
            freq_net: Some(FreqNetConfig {
                depth: 4,
                width: 512,
            }),
            fp: Some(pfe_core::FpConfig {
                orders: vec![2.0, 1.0],
                stable_t: 4,
                ams_groups: 3,
                ams_per_group: 4,
            }),
            ..Default::default()
        };
        let mut shard = ShardSummary::new(d, 2, 0, &cfg).expect("new");
        if let pfe_row::Dataset::Binary(m) = &data {
            for &row in m.rows() {
                shard.push_packed(row);
            }
        } else {
            unreachable!("generator yields binary data");
        }
        let snap = Snapshot::from_shards(vec![shard], 1);
        assert_eq!(snap.n(), 2000);
        assert_eq!(snap.epoch(), 1);
        assert!(snap.has_freq_net());
        let cols = ColumnSet::from_mask(d, 0b111).expect("valid");
        assert!(snap.f0(&cols).expect("ok").estimate > 0.0);
        let key = snap.encode_pattern(&cols, &[0, 0, 0]).expect("ok");
        let freq = snap.frequency(&cols, key).expect("ok");
        assert!(freq.estimate >= 0.0);
        let ub = freq.upper_bound.expect("freq net on");
        // CountMin never underestimates; the sample is unbiased.
        assert!(
            ub + 1e-9 >= freq.estimate * 0.5,
            "bound {ub} vs {}",
            freq.estimate
        );
        assert!(!snap
            .heavy_hitters(&cols, 0.05, 1.0, 2.0)
            .expect("ok")
            .is_empty());
        assert_eq!(snap.l1_sample(&cols, 10, 3).expect("ok").len(), 10);
        // Both moment nets answer; unmaterialized orders are typed errors.
        assert_eq!(snap.fp_nets().len(), 2);
        assert!(snap.fp(&cols, 2.0).expect("ams").estimate > 0.0);
        // F_1 is the row count (up to sketch error): sanity-check scale.
        let f1 = snap.fp(&cols, 1.0).expect("stable").estimate;
        assert!(f1 > 0.0 && f1.is_finite());
        assert!(matches!(
            snap.fp(&cols, 1.7),
            Err(QueryError::UnsupportedMoment { .. })
        ));
        assert!(snap.space_bytes() > 0);
    }

    #[test]
    fn exact_paths_on_exhaustive_sample() {
        let d = 8;
        let data = uniform_binary(d, 300, 19);
        let cfg = EngineConfig {
            sample_t: 1024, // > rows: the reservoir retains everything
            kmv_k: 64,
            ..Default::default()
        };
        let mut shard = ShardSummary::new(d, 2, 0, &cfg).expect("new");
        if let pfe_row::Dataset::Binary(m) = &data {
            for &row in m.rows() {
                shard.push_packed(row);
            }
        } else {
            unreachable!("generator yields binary data");
        }
        let snap = Snapshot::from_shards(vec![shard], 1);
        assert!(snap.is_exhaustive());
        let cols = ColumnSet::from_mask(d, 0b1111).expect("valid");
        let exact = pfe_row::FrequencyVector::compute(&data, &cols).expect("fits");
        assert_eq!(snap.f0_exact(&cols).expect("ok"), exact.f0() as f64);
    }

    #[test]
    fn encode_pattern_validates() {
        let cfg = EngineConfig::default();
        let shard = ShardSummary::new(6, 2, 0, &cfg).expect("new");
        let snap = Snapshot::from_shards(vec![shard], 1);
        let cols = ColumnSet::from_mask(6, 0b11).expect("valid");
        assert!(snap.encode_pattern(&cols, &[0]).is_err());
        assert!(snap.encode_pattern(&cols, &[0, 7]).is_err());
        assert!(snap.encode_pattern(&cols, &[1, 0]).is_ok());
    }
}
