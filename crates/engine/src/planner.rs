//! The batch planner: normalize every query of a batch to its canonical
//! [`QueryKey`] once, then group co-plannable queries so one snapshot
//! compute and one cache probe serve the whole group.
//!
//! Planning does all the per-query normalization work exactly once:
//! column validation, epoch-pin checking, `F_0` net rounding, and pattern
//! encoding (the encoded [`PatternKey`] is carried into execution, so the
//! frequency path never re-encodes after the cache probe). Queries whose
//! keys coincide — e.g. many mid-size `F_0` subsets rounding to the same
//! net member, or repeated heavy-hitter probes of one mask — land in one
//! [`PlanGroup`]; the executor computes the group's answer once and
//! materializes a per-query [`Answer`](pfe_query::Answer) with each
//! query's own provenance.
//!
//! The planner is snapshot-relative, not engine-relative: the windowed
//! engine plans each covering-set batch against the *merged* snapshot of
//! that covering set (whose epoch slot carries the covering-set
//! fingerprint), so windowed queries group — and cache — by fingerprint
//! exactly like whole-stream queries group by epoch.

use std::collections::HashMap;

use pfe_core::QueryError;
use pfe_query::{Query, QueryKey, Statistic};
use pfe_row::{ColumnSet, PatternKey};

use crate::error::EngineError;
use crate::snapshot::Snapshot;

/// One query after normalization.
#[derive(Debug, Clone)]
pub struct Planned {
    /// Index into the request slice (answers return in request order).
    pub slot: usize,
    /// The validated query column set.
    pub cols: ColumnSet,
    /// The column set the answer is computed on: the rounded net member
    /// for (non-exact) `F_0`, `cols` otherwise.
    pub target: ColumnSet,
    /// `|C Δ C′|` of the rounding (0 when not rounded).
    pub sym_diff: u32,
    /// The pattern encoded against `cols` — done here, once, for the
    /// frequency path.
    pub pattern_key: Option<PatternKey>,
    /// Whether the exact (full-retention) path answers this query.
    pub exact: bool,
}

/// A set of queries sharing one canonical key: one cache probe, one
/// snapshot compute.
#[derive(Debug, Clone)]
pub struct PlanGroup {
    /// The shared canonical key (also the cache key).
    pub key: QueryKey,
    /// Whether the executor may probe the answer cache (false for
    /// cache-bypassing queries, which always plan as singleton groups).
    pub probe_cache: bool,
    /// Group members, in request order.
    pub members: Vec<Planned>,
}

/// The plan for one batch: groups to execute plus per-slot planning
/// errors (bad columns, stale pins, codec failures).
#[derive(Debug, Clone, Default)]
pub struct Plan {
    /// Groups to execute, in first-appearance order.
    pub groups: Vec<PlanGroup>,
    /// Per-slot planning failures (`(request index, error)`).
    pub errors: Vec<(usize, EngineError)>,
}

fn column_set(snap: &Snapshot, cols: &[u32]) -> Result<ColumnSet, EngineError> {
    let d = snap.sample().dimension();
    ColumnSet::from_indices(d, cols)
        .map_err(|e| EngineError::Query(QueryError::BadParameter(format!("columns: {e:?}"))))
}

/// Normalize and group a batch against one snapshot.
pub fn plan(snap: &Snapshot, queries: &[Query]) -> Plan {
    let epoch = snap.epoch();
    let exhaustive = snap.is_exhaustive();
    let mut plan = Plan::default();
    let mut index: HashMap<QueryKey, usize> = HashMap::with_capacity(queries.len());
    'next: for (slot, q) in queries.iter().enumerate() {
        if let Some(pinned) = q.options.pin_epoch {
            if pinned != epoch {
                plan.errors.push((
                    slot,
                    EngineError::EpochMismatch {
                        pinned,
                        published: epoch,
                    },
                ));
                continue 'next;
            }
        }
        let cols = match column_set(snap, &q.cols) {
            Ok(c) => c,
            Err(e) => {
                plan.errors.push((slot, e));
                continue 'next;
            }
        };
        let exact = q.options.exact_if_available && exhaustive;
        // F_0 and F_p round to a net member (Definition 6.1) unless the
        // exact path answers from the retained rows directly.
        let rounding = match q.statistic {
            Statistic::F0 if !exact => Some(snap.f0_rounding(&cols)),
            Statistic::Fp { p } if !exact => Some(snap.fp_rounding(&cols, p)),
            _ => None,
        };
        let (target, sym_diff) = match rounding {
            Some(Ok(r)) => (r.target, r.sym_diff),
            Some(Err(e)) => {
                plan.errors.push((slot, e.into()));
                continue 'next;
            }
            None => (cols, 0),
        };
        let pattern_key = match &q.statistic {
            Statistic::Frequency { pattern } => match snap.encode_pattern(&cols, pattern) {
                Ok(k) => Some(k),
                Err(e) => {
                    plan.errors.push((slot, e.into()));
                    continue 'next;
                }
            },
            _ => None,
        };
        let key = QueryKey::new(
            epoch,
            target.mask(),
            &q.statistic,
            pattern_key,
            exact,
            q.options.window.unwrap_or(0),
        );
        let planned = Planned {
            slot,
            cols,
            target,
            sym_diff,
            pattern_key,
            exact,
        };
        if q.options.bypass_cache {
            // Bypass means "recompute for me": never share a group, never
            // probe (the fresh answer still refreshes the cache entry).
            plan.groups.push(PlanGroup {
                key,
                probe_cache: false,
                members: vec![planned],
            });
        } else if let Some(&gi) = index.get(&key) {
            plan.groups[gi].members.push(planned);
        } else {
            index.insert(key, plan.groups.len());
            plan.groups.push(PlanGroup {
                key,
                probe_cache: true,
                members: vec![planned],
            });
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::shard::ShardSummary;
    use pfe_query::StatKind;
    use pfe_stream::gen::uniform_binary;

    fn snapshot(d: u32, rows: usize) -> Snapshot {
        let cfg = EngineConfig {
            sample_t: 256,
            kmv_k: 64,
            ..Default::default()
        };
        let mut shard = ShardSummary::new(d, 2, 0, &cfg).expect("new");
        if let pfe_row::Dataset::Binary(m) = &uniform_binary(d, rows, 3) {
            for &row in m.rows() {
                shard.push_packed(row);
            }
        }
        Snapshot::from_shards(vec![shard], 1)
    }

    #[test]
    fn mask_colliding_f0_queries_share_a_group() {
        let snap = snapshot(12, 2000);
        // Mid-size queries that shrink to the same small-side member.
        let queries = vec![
            Query::over(0..6).f0(),
            Query::over(0..7).f0(),
            Query::over([0, 1]).f0(), // in-net: its own group
        ];
        let plan = plan(&snap, &queries);
        assert!(plan.errors.is_empty());
        let r0 = snap
            .f0_rounding(&ColumnSet::from_indices(12, &[0, 1, 2, 3, 4, 5]).expect("v"))
            .expect("ok");
        let r1 = snap
            .f0_rounding(&ColumnSet::from_indices(12, &[0, 1, 2, 3, 4, 5, 6]).expect("v"))
            .expect("ok");
        if r0.target == r1.target {
            assert_eq!(plan.groups.len(), 2, "colliding masks must share a group");
            assert_eq!(plan.groups[0].members.len(), 2);
            // Per-member provenance is preserved inside the shared group.
            assert_ne!(
                plan.groups[0].members[0].sym_diff,
                plan.groups[0].members[1].sym_diff
            );
        }
    }

    #[test]
    fn statistics_never_share_groups_and_errors_keep_slots() {
        let snap = snapshot(8, 500);
        let queries = vec![
            Query::over([0, 1]).f0(),
            Query::over([0, 1]).heavy_hitters(0.1),
            Query::over([99]).f0(),                // bad column
            Query::over([0, 1]).f0().pinned_to(7), // stale pin
        ];
        let plan = plan(&snap, &queries);
        assert_eq!(plan.groups.len(), 2);
        assert_ne!(plan.groups[0].key.kind, plan.groups[1].key.kind);
        assert_eq!(plan.errors.len(), 2);
        assert_eq!(plan.errors[0].0, 2);
        assert!(matches!(
            plan.errors[1],
            (
                3,
                EngineError::EpochMismatch {
                    pinned: 7,
                    published: 1
                }
            )
        ));
    }

    #[test]
    fn bypass_queries_plan_as_singletons() {
        let snap = snapshot(8, 500);
        let queries = vec![
            Query::over([0, 1]).heavy_hitters(0.1),
            Query::over([0, 1]).heavy_hitters(0.1).bypass_cache(),
            Query::over([0, 1]).heavy_hitters(0.1),
        ];
        let plan = plan(&snap, &queries);
        assert_eq!(plan.groups.len(), 2);
        let bypass: Vec<_> = plan.groups.iter().filter(|g| !g.probe_cache).collect();
        assert_eq!(bypass.len(), 1);
        assert_eq!(bypass[0].members.len(), 1);
        assert_eq!(bypass[0].members[0].slot, 1);
    }

    #[test]
    fn window_lengths_split_groups() {
        let snap = snapshot(8, 500);
        let queries = vec![
            Query::over([0, 1]).heavy_hitters(0.1).window(100),
            Query::over([0, 1]).heavy_hitters(0.1).window(100),
            Query::over([0, 1]).heavy_hitters(0.1).window(200),
            Query::over([0, 1]).heavy_hitters(0.1),
        ];
        let plan = plan(&snap, &queries);
        assert_eq!(plan.groups.len(), 3, "two windows + whole-stream");
        assert_eq!(plan.groups[0].members.len(), 2);
        assert_eq!(plan.groups[0].key.window, 100);
        assert_eq!(plan.groups[1].key.window, 200);
        assert_eq!(plan.groups[2].key.window, 0);
    }

    #[test]
    fn fp_queries_round_like_f0_and_split_by_order() {
        let cfg = EngineConfig {
            sample_t: 256,
            kmv_k: 64,
            fp: Some(pfe_core::FpConfig {
                orders: vec![2.0, 1.0],
                stable_t: 4,
                ams_groups: 3,
                ams_per_group: 4,
            }),
            ..Default::default()
        };
        let d = 12;
        let mut shard = ShardSummary::new(d, 2, 0, &cfg).expect("new");
        if let pfe_row::Dataset::Binary(m) = &uniform_binary(d, 2000, 3) {
            for &row in m.rows() {
                shard.push_packed(row);
            }
        }
        let snap = Snapshot::from_shards(vec![shard], 1);
        let queries = vec![
            Query::over(0..6).fp(2.0),
            Query::over(0..6).fp(2.0),
            Query::over(0..6).fp(1.0), // same mask, different order
            Query::over(0..6).fp(1.7), // unmaterialized: plan-time error
        ];
        let plan = plan(&snap, &queries);
        assert_eq!(plan.groups.len(), 2, "orders must not share groups");
        assert_eq!(plan.groups[0].members.len(), 2);
        // Mid-size subsets round to a net member, like F_0.
        let r = snap
            .fp_rounding(&plan.groups[0].members[0].cols, 2.0)
            .expect("ok");
        assert_eq!(plan.groups[0].members[0].target, r.target);
        assert_eq!(plan.errors.len(), 1);
        assert_eq!(plan.errors[0].0, 3);
    }

    #[test]
    fn frequency_pattern_encoded_once_at_plan_time() {
        let snap = snapshot(8, 500);
        let queries = vec![Query::over([0, 2]).frequency([1u16, 0])];
        let plan = plan(&snap, &queries);
        let planned = &plan.groups[0].members[0];
        assert_eq!(plan.groups[0].key.kind, StatKind::Frequency);
        let expected = snap
            .encode_pattern(&planned.cols, &[1, 0])
            .expect("encodes");
        assert_eq!(planned.pattern_key, Some(expected));
        assert_eq!(plan.groups[0].key.aux, expected.raw());
    }
}
