//! Statistical soundness of the `F_p` path: over deterministic trials,
//! the engine's estimate lands inside the *advertised* multiplicative
//! `Guarantee` window `[truth/α, truth·α]` at least as often as the
//! theory promises.
//!
//! Both plug-in families back their β with a ≥ 3/4 success argument:
//! Chebyshev per AMS group (β = 1 + √(8/g), failure ≤ 1/4) boosted by a
//! median of groups, and the p-stable median-of-t estimator (β = 1 +
//! 3/√t). The α the engine advertises additionally folds in the
//! Lemma 6.4 rounding distortion `Q^{|CΔC′|·|p−1|}` for out-of-net
//! masks, so the same window must hold there too. We therefore require
//! ≥ 3/4 of trials in-window for every `p ∈ {0.5, 1, 1.5, 2}` — seeds
//! are fixed, so the outcome is bit-reproducible, never flaky.

use std::collections::HashMap;

use pfe_engine::{AnswerValue, Engine, EngineConfig, FpConfig, Query};
use pfe_row::Dataset;
use pfe_stream::gen::uniform_binary;

const D: u32 = 7;
const ROWS: usize = 300;
const TRIALS: usize = 48;
/// Both β constants are backed by a ≥ 3/4 success probability.
const MIN_SUCCESSES: usize = TRIALS * 3 / 4;

/// Exact `F_p` of the rows projected onto `mask`: Σ (multiplicity)^p.
fn exact_fp(rows: &[u64], mask: u64, p: f64) -> f64 {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for &row in rows {
        *counts.entry(row & mask).or_insert(0) += 1;
    }
    counts.values().map(|&c| (c as f64).powf(p)).sum()
}

/// One engine per (p, trial): fresh sketch randomness, same data shape.
fn run_trials(p: f64, mask: u64) -> usize {
    let mut successes = 0;
    for trial in 0..TRIALS {
        let data = uniform_binary(D, ROWS, 900 + trial as u64);
        let rows: Vec<u64> = match &data {
            Dataset::Binary(m) => m.rows().to_vec(),
            Dataset::Qary(_) => unreachable!("generator yields binary data"),
        };
        let engine = Engine::start(
            D,
            2,
            EngineConfig {
                shards: 1,
                kmv_k: 32,
                sample_t: 64, // far below ROWS: forces the sketch path
                seed: 7000 + trial as u64,
                fp: Some(FpConfig {
                    orders: vec![p],
                    stable_t: 16,
                    ams_groups: 5,
                    ams_per_group: 16,
                }),
                ..Default::default()
            },
        )
        .expect("start");
        engine.ingest(&data).expect("ingest");
        engine.refresh().expect("refresh");

        let cols: Vec<u32> = (0..D).filter(|i| mask >> i & 1 == 1).collect();
        let ans = engine
            .query(&Query::over(cols.iter().copied()).fp(p))
            .expect("fp answer");
        let AnswerValue::Fp { estimate } = ans.value else {
            panic!("expected Fp answer, got {:?}", ans.value);
        };
        let alpha = ans.guarantee.alpha;
        assert!(alpha.is_finite() && alpha >= 1.0, "advertised α: {alpha}");
        let truth = exact_fp(&rows, mask, p);
        if truth / alpha <= estimate && estimate <= truth * alpha {
            successes += 1;
        }
    }
    successes
}

#[test]
fn fp_estimates_meet_advertised_guarantee_in_net() {
    // The full-column mask is always a net member: sym_diff = 0, so the
    // advertised α is exactly the sketch β.
    let mask = (1u64 << D) - 1;
    for p in [0.5, 1.0, 1.5, 2.0] {
        let ok = run_trials(p, mask);
        assert!(
            ok >= MIN_SUCCESSES,
            "p={p}: only {ok}/{TRIALS} trials inside the advertised window"
        );
    }
}

#[test]
fn fp_estimates_meet_advertised_guarantee_after_rounding() {
    // A mid-size mask gets rounded to a net member; the advertised α
    // folds in the Q^{|CΔC′|·|p−1|} distortion and must still cover the
    // truth on the *requested* columns. p = 1 is the zero-distortion
    // special case of Lemma 6.4(3).
    let mask = 0b000_1110u64;
    for p in [0.5, 1.0, 1.5, 2.0] {
        let ok = run_trials(p, mask);
        assert!(
            ok >= MIN_SUCCESSES,
            "p={p} (rounded): only {ok}/{TRIALS} trials inside the advertised window"
        );
    }
}
