//! Algebraic contracts of `Snapshot::merge` — the operation the
//! `pfe-window` covering-set merge is built on.
//!
//! For disjoint segments of one stream:
//!
//! - **3-way associativity**: `(A ∪ B) ∪ C == A ∪ (B ∪ C)` bit-exactly
//!   for *all four* statistics while the reservoirs are under-full (both
//!   orders concatenate the segments in stream order — the regime the
//!   window ring's oldest-first cascade relies on), and for the
//!   KMV-backed `F_0` in every regime.
//! - **Commutativity**: `A ∪ B == B ∪ A` for the multiset-insensitive
//!   statistics (`F_0`, frequency, heavy hitters). The `ℓ_1` sampler
//!   indexes the sample *in order*, so commutativity is deliberately not
//!   claimed for it — which is why the window ring always merges
//!   oldest-first.
//!
//! Rows counters and epochs must combine correctly in every case.

use pfe_engine::{EngineConfig, ShardSummary, Snapshot};
use pfe_row::{ColumnSet, PatternKey};
use proptest::prelude::*;

const D: u32 = 10;

fn cfg(sample_t: usize, seed: u64) -> EngineConfig {
    EngineConfig {
        sample_t,
        kmv_k: 32,
        seed,
        fp: Some(pfe_core::FpConfig {
            orders: vec![2.0, 1.5],
            stable_t: 4,
            ams_groups: 3,
            ams_per_group: 4,
        }),
        ..Default::default()
    }
}

/// One snapshot over a row segment (`shard_id` varies the reservoir seed,
/// as window buckets and ingest shards do).
fn snap_over(rows: &[u64], sample_t: usize, seed: u64, shard_id: usize, epoch: u64) -> Snapshot {
    let mut shard = ShardSummary::new(D, 2, shard_id, &cfg(sample_t, seed)).expect("new");
    for &row in rows {
        shard.push_packed(row);
    }
    Snapshot::from_shards(vec![shard], epoch)
}

fn merged(a: &Snapshot, b: &Snapshot) -> Snapshot {
    // Snapshot has no Clone; rebuild the left side through its own merge.
    let mut acc = empty_like();
    acc.merge(a).expect("compatible");
    acc.merge(b).expect("compatible");
    acc
}

thread_local! {
    static EMPTY_PARAMS: std::cell::RefCell<Option<(usize, u64)>> = const { std::cell::RefCell::new(None) };
}

fn set_empty_params(sample_t: usize, seed: u64) {
    EMPTY_PARAMS.with(|p| *p.borrow_mut() = Some((sample_t, seed)));
}

fn empty_like() -> Snapshot {
    let (sample_t, seed) = EMPTY_PARAMS.with(|p| p.borrow().expect("params set"));
    snap_over(&[], sample_t, seed, 0, 0)
}

/// Every queryable surface of a snapshot, bit-comparable.
fn battery(
    snap: &Snapshot,
    mask: u64,
) -> (
    f64,
    f64,
    Vec<pfe_core::HeavyHitter>,
    Vec<pfe_core::SampledPattern>,
) {
    let cols = ColumnSet::from_mask(D, mask).expect("valid");
    (
        snap.f0(&cols).expect("ok").estimate,
        snap.frequency(&cols, PatternKey::new(0))
            .expect("ok")
            .estimate,
        snap.heavy_hitters(&cols, 0.05, 1.0, 2.0).expect("ok"),
        snap.l1_sample(&cols, 8, 5).expect("ok"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Under-full regime: associativity holds bit-exactly for all four
    /// statistics, commutativity for the multiset-insensitive three.
    #[test]
    fn prop_merge_associative_and_commutative_underfull(
        rows in proptest::collection::vec(0u64..(1 << D), 60..400),
        cut1 in 0.1f64..0.45,
        cut2 in 0.55f64..0.9,
        mask in 1u64..(1 << D),
        seed in 0u64..1000,
    ) {
        let sample_t = 2048; // above total rows: lossless merges
        set_empty_params(sample_t, seed);
        let (i, j) = (
            (rows.len() as f64 * cut1) as usize,
            (rows.len() as f64 * cut2) as usize,
        );
        let a = snap_over(&rows[..i], sample_t, seed, 0, 3);
        let b = snap_over(&rows[i..j], sample_t, seed, 1, 5);
        let c = snap_over(&rows[j..], sample_t, seed, 2, 4);

        // (A ∪ B) ∪ C == A ∪ (B ∪ C), every statistic bit-identical.
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(left.n(), rows.len() as u64);
        prop_assert_eq!(left.n(), right.n());
        prop_assert_eq!(left.epoch(), 5, "merged epoch is the max input epoch");
        prop_assert_eq!(left.epoch(), right.epoch());
        prop_assert_eq!(battery(&left, mask), battery(&right, mask));

        // Both equal a single sequential build over the whole stream
        // (shard_id 0 so the reservoir seed matches A's — irrelevant
        // while under-full, but keeps the contract tight).
        let whole = snap_over(&rows, sample_t, seed, 0, 5);
        prop_assert_eq!(battery(&left, mask), battery(&whole, mask));

        // A ∪ B == B ∪ A for the multiset-insensitive statistics.
        let ab = merged(&a, &b);
        let ba = merged(&b, &a);
        let (f0_ab, freq_ab, hh_ab, _) = battery(&ab, mask);
        let (f0_ba, freq_ba, hh_ba, _) = battery(&ba, mask);
        prop_assert_eq!(f0_ab, f0_ba);
        prop_assert_eq!(freq_ab, freq_ba);
        prop_assert_eq!(hh_ab, hh_ba);
        prop_assert_eq!(ab.n(), ba.n());
    }

    /// Over-full regime: the KMV union behind `F_0` stays exactly
    /// commutative and associative even when the reservoirs subsample.
    #[test]
    fn prop_f0_merge_algebra_survives_overfull_reservoirs(
        rows in proptest::collection::vec(0u64..(1 << D), 150..500),
        mask in 1u64..(1 << D),
        seed in 0u64..1000,
    ) {
        let sample_t = 32; // far below segment sizes: reservoirs subsample
        set_empty_params(sample_t, seed);
        let third = rows.len() / 3;
        let a = snap_over(&rows[..third], sample_t, seed, 0, 1);
        let b = snap_over(&rows[third..2 * third], sample_t, seed, 1, 1);
        let c = snap_over(&rows[2 * third..], sample_t, seed, 2, 1);
        let cols = ColumnSet::from_mask(D, mask).expect("valid");
        let f0 = |s: &Snapshot| s.f0(&cols).expect("ok").estimate;

        let left = f0(&merged(&merged(&a, &b), &c));
        let right = f0(&merged(&a, &merged(&b, &c)));
        let flipped = f0(&merged(&merged(&c, &a), &b));
        let whole = f0(&snap_over(&rows, sample_t, seed, 0, 1));
        prop_assert_eq!(left, right);
        prop_assert_eq!(left, flipped, "F_0 union is fully commutative");
        prop_assert_eq!(left, whole, "union == sequential build");
    }

    /// `F_p` merge algebra, both plug-in families.
    ///
    /// - **AMS (`p = 2`)**: counter sums are `i64` additions, so every
    ///   merge grouping — reassociated, commuted, or a sequential build —
    ///   yields the bit-identical estimate.
    /// - **Stable projections (`p < 2`)**: sketch state is `f64` sums, so
    ///   a fixed merge structure is bit-reproducible, but reassociating
    ///   the additions may move the last ulp. Across differing groupings
    ///   the contract is a tight *relative* tolerance, not bit equality —
    ///   which is why the window ring keeps one canonical (oldest-first)
    ///   merge order.
    #[test]
    fn prop_fp_merge_algebra(
        rows in proptest::collection::vec(0u64..(1 << D), 60..240),
        mask in 1u64..(1 << D),
        seed in 0u64..1000,
    ) {
        let sample_t = 2048;
        set_empty_params(sample_t, seed);
        let third = rows.len() / 3;
        let a = snap_over(&rows[..third], sample_t, seed, 0, 1);
        let b = snap_over(&rows[third..2 * third], sample_t, seed, 1, 1);
        let c = snap_over(&rows[2 * third..], sample_t, seed, 2, 1);
        let cols = ColumnSet::from_mask(D, mask).expect("valid");
        let fp = |s: &Snapshot, p: f64| s.fp(&cols, p).expect("ok").estimate;

        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        let flipped = merged(&merged(&c, &a), &b);
        let whole = snap_over(&rows, sample_t, seed, 0, 1);

        // AMS F_2: bit-exact under ANY grouping, and against the
        // single-threaded sequential build.
        for other in [&right, &flipped, &whole] {
            prop_assert_eq!(fp(&left, 2.0).to_bits(), fp(other, 2.0).to_bits());
        }

        // Stable F_1.5: identical merge structure => bit-identical…
        let left_again = merged(&merged(&a, &b), &c);
        prop_assert_eq!(fp(&left, 1.5).to_bits(), fp(&left_again, 1.5).to_bits());
        // …differing structure => equal up to f64 reassociation.
        let close = |x: f64, y: f64| (x - y).abs() <= 1e-9 * y.abs().max(1.0);
        prop_assert!(close(fp(&left, 1.5), fp(&right, 1.5)));
        prop_assert!(close(fp(&left, 1.5), fp(&flipped, 1.5)));
        prop_assert!(close(fp(&left, 1.5), fp(&whole, 1.5)));
    }
}

/// A zero-row summary answers `F_p` with a finite 0 — never NaN, which
/// the JSON wire layer could not represent. Checked end-to-end through
/// the snapshot and directly at the sketch level (`lp_norm_estimate`).
#[test]
fn empty_snapshot_fp_is_finite_zero() {
    set_empty_params(64, 7);
    let empty = snap_over(&[], 64, 7, 0, 0);
    let cols = ColumnSet::from_mask(D, 0b11).expect("valid");
    for p in [2.0, 1.5] {
        let ans = empty.fp(&cols, p).expect("ok");
        assert!(
            ans.estimate.is_finite(),
            "p={p}: non-finite {}",
            ans.estimate
        );
        assert_eq!(ans.estimate, 0.0, "p={p}");
    }
    // Sketch-level guard: an all-zero stable sketch has a finite norm.
    let s = pfe_sketch::StableFp::new(5, 0.5, 42);
    assert!(s.lp_norm_estimate().is_finite());
    assert_eq!(s.lp_norm_estimate(), 0.0);
}

#[test]
fn incompatible_snapshots_refuse_to_merge() {
    set_empty_params(64, 7);
    let a = snap_over(&[1, 2, 3], 64, 7, 0, 1);
    // Different base seed => different per-mask KMV seeds.
    let b = snap_over(&[4, 5], 64, 8, 0, 1);
    let mut acc = empty_like();
    acc.merge(&a).expect("compatible");
    assert!(matches!(
        acc.merge(&b),
        Err(pfe_engine::EngineError::Incompatible(_))
    ));
}
