//! Engine correctness contracts:
//!
//! 1. Sharded build ≡ single-shard build: the merged α-net is an *exact*
//!    union (per-mask KMV seeds are shared), the merged sample answers
//!    within sampling tolerance.
//! 2. Engine ≡ `SummarySuite` on the same data and seed: `F_0` answers are
//!    bit-identical, frequency answers agree within sketch tolerance.
//! 3. Order-insensitivity under `pfe_stream::stream::{shuffled, reorder}`.

use pfe_core::{SuiteConfig, SummarySuite};
use pfe_engine::{Engine, EngineConfig, Query};
use pfe_row::{ColumnSet, Dataset, FrequencyVector};
use pfe_stream::gen::{uniform_binary, zipf_patterns};
use pfe_stream::stream::{reorder, shuffled};
use proptest::prelude::*;

const D: u32 = 12;

fn engine_cfg(shards: usize, seed: u64) -> EngineConfig {
    EngineConfig {
        shards,
        alpha: 0.25,
        kmv_k: 256,
        sample_t: 4096,
        seed,
        batch_rows: 128,
        ..Default::default()
    }
}

fn suite_cfg(seed: u64) -> SuiteConfig {
    SuiteConfig {
        alpha: 0.25,
        kmv_k: 256,
        sample_t: 4096,
        seed,
        keep_exact: true,
        ..Default::default()
    }
}

fn engine_over(data: &Dataset, shards: usize, seed: u64) -> Engine {
    let engine =
        Engine::start(data.dimension(), data.alphabet(), engine_cfg(shards, seed)).expect("start");
    engine.ingest(data).expect("ingest");
    engine.refresh().expect("refresh");
    engine
}

fn f0_of(engine: &Engine, cols: Vec<u32>) -> f64 {
    engine
        .query(&Query::over(cols).f0())
        .expect("query")
        .estimate()
        .expect("F0 answers carry a scalar estimate")
}

fn freq_of(engine: &Engine, cols: Vec<u32>, pattern: Vec<u16>) -> f64 {
    engine
        .query(&Query::over(cols).frequency(pattern))
        .expect("query")
        .estimate()
        .expect("frequency answers carry a scalar estimate")
}

/// Column subsets exercising in-net (small/large) and rounded (mid) sizes.
fn probe_sets() -> Vec<Vec<u32>> {
    vec![
        vec![0],
        vec![0, 3, 7],
        (0..6).collect(),
        (3..10).collect(),
        (0..10).collect(),
        (0..D).collect(),
    ]
}

#[test]
fn sharded_f0_equals_suite_exactly() {
    let seed = 5;
    let data = uniform_binary(D, 20_000, 2);
    let suite = SummarySuite::build(&data, &suite_cfg(seed)).expect("suite");
    for shards in [2usize, 4, 7] {
        let engine = engine_over(&data, shards, seed);
        for cols in probe_sets() {
            let cs = ColumnSet::from_indices(D, &cols).expect("valid");
            let expected = suite.f0(&cs).expect("suite answer").estimate;
            let got = f0_of(&engine, cols.clone());
            assert_eq!(
                got, expected,
                "{shards}-shard engine diverged from suite at {cols:?}"
            );
        }
    }
}

#[test]
fn sharded_frequency_within_sampling_tolerance() {
    let seed = 9;
    let data = zipf_patterns(D, 50_000, 40, 1.3, 4);
    let engine = engine_over(&data, 4, seed);
    let cols: Vec<u32> = vec![0, 2, 4, 6];
    let cs = ColumnSet::from_indices(D, &cols).expect("valid");
    let exact = FrequencyVector::compute(&data, &cs).expect("fits");
    let n = exact.total() as f64;
    // additive tolerance: eps = sqrt(ln(2/delta)/t), delta = 0.01, t = 4096
    // => ~0.036; allow 2x for the max over several patterns.
    let tol = 2.0 * ((2.0f64 / 0.01).ln() / 4096.0).sqrt();
    for (key, count) in exact.sorted_counts().into_iter().take(8) {
        let codec = data.codec_for(&cs).expect("fits");
        let pattern = codec.decode(key);
        let est = freq_of(&engine, cols.clone(), pattern);
        let rel = (est - count as f64).abs() / n;
        assert!(rel <= tol, "pattern {key:?}: additive error {rel} > {tol}");
    }
}

#[test]
fn one_shard_equals_many_shards_for_f0() {
    let seed = 11;
    let data = uniform_binary(D, 8_000, 6);
    let single = engine_over(&data, 1, seed);
    let many = engine_over(&data, 6, seed);
    for cols in probe_sets() {
        assert_eq!(
            f0_of(&single, cols.clone()),
            f0_of(&many, cols.clone()),
            "shard count changed the F_0 answer at {cols:?}"
        );
    }
}

#[test]
fn sharded_fp_matches_suite() {
    let seed = 21;
    let data = uniform_binary(D, 1_500, 4);
    let fp_cfg = pfe_core::FpConfig {
        orders: vec![2.0, 1.5],
        stable_t: 4,
        ams_groups: 3,
        ams_per_group: 4,
    };
    let suite = SummarySuite::build_with_fp(&data, &suite_cfg(seed), &fp_cfg).expect("suite");
    for shards in [1usize, 4] {
        let mut ecfg = engine_cfg(shards, seed);
        ecfg.fp = Some(fp_cfg.clone());
        let engine = Engine::start(D, 2, ecfg).expect("start");
        engine.ingest(&data).expect("ingest");
        engine.refresh().expect("refresh");
        let snap = engine.snapshot().expect("published");
        for cols in probe_sets() {
            let cs = ColumnSet::from_indices(D, &cols).expect("valid");
            // AMS F_2 counters are i64 sums: the sharded merge is
            // bit-identical to the single-threaded suite build.
            assert_eq!(
                snap.fp(&cs, 2.0).expect("ok").estimate.to_bits(),
                suite.fp(&cs, 2.0).expect("ok").estimate.to_bits(),
                "{shards}-shard AMS F_2 diverged from suite at {cols:?}"
            );
            // Stable projections: sharding reassociates the f64 sums, so
            // equality holds up to ulps, not bit-wise.
            let (e, s) = (
                snap.fp(&cs, 1.5).expect("ok").estimate,
                suite.fp(&cs, 1.5).expect("ok").estimate,
            );
            assert!(
                (e - s).abs() <= 1e-9 * s.abs().max(1.0),
                "{shards}-shard stable F_1.5 diverged from suite at {cols:?}: {e} vs {s}"
            );
        }
    }
}

#[test]
fn f0_is_order_insensitive_under_shuffle_and_reorder() {
    let seed = 13;
    let data = uniform_binary(D, 10_000, 8);
    let baseline = engine_over(&data, 3, seed);
    // A seeded permutation and a deterministic interleave-style reorder.
    let shuffled_data = shuffled(&data, 99);
    let order: Vec<usize> = (0..data.num_rows())
        .map(|i| {
            if i % 2 == 0 {
                i / 2
            } else {
                data.num_rows() - 1 - i / 2
            }
        })
        .collect();
    let reordered_data = reorder(&data, &order);
    for variant in [shuffled_data, reordered_data] {
        let engine = engine_over(&variant, 3, seed);
        for cols in probe_sets() {
            assert_eq!(
                f0_of(&baseline, cols.clone()),
                f0_of(&engine, cols.clone()),
                "row order changed the F_0 answer at {cols:?}"
            );
        }
    }
}

#[test]
fn heavy_hitters_match_suite_sample_semantics() {
    let seed = 17;
    let data = zipf_patterns(D, 30_000, 25, 1.5, 10);
    let engine = engine_over(&data, 4, seed);
    let cols: Vec<u32> = (0..8).collect();
    let cs = ColumnSet::from_indices(D, &cols).expect("valid");
    let exact = FrequencyVector::compute(&data, &cs).expect("fits");
    let truth: Vec<_> = exact
        .heavy_hitters(0.1, 1.0)
        .into_iter()
        .map(|(k, _)| k)
        .collect();
    let answer = engine
        .query(&Query::over(cols).heavy_hitters(0.1))
        .expect("query");
    let reported: Vec<_> = answer
        .hitters()
        .expect("heavy-hitter payload")
        .iter()
        .map(|h| h.key)
        .collect();
    for k in &truth {
        assert!(reported.contains(k), "engine missed a true heavy hitter");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random binary data, random split: sharded engine == suite for F_0,
    /// on every probe subset.
    #[test]
    fn prop_sharded_engine_matches_suite(
        rows in proptest::collection::vec(0u64..(1 << 10), 50..400),
        shards in 1usize..5,
        seed in 0u64..1000,
    ) {
        let d = 10;
        let data = Dataset::Binary(pfe_row::BinaryMatrix::from_rows(d, rows));
        let suite = SummarySuite::build(
            &data,
            &SuiteConfig { kmv_k: 64, sample_t: 256, seed, ..Default::default() },
        )
        .expect("suite");
        let engine = Engine::start(
            d,
            2,
            EngineConfig { shards, kmv_k: 64, sample_t: 256, seed, ..Default::default() },
        )
        .expect("start");
        engine.ingest(&data).expect("ingest");
        engine.refresh().expect("refresh");
        for mask in [0b1u64, 0b11111, 0b1110000111] {
            let cols = ColumnSet::from_mask(d, mask).expect("valid");
            let expected = suite.f0(&cols).expect("ok").estimate;
            let got = f0_of(&engine, cols.to_indices());
            prop_assert_eq!(got, expected, "mask {:#b}", mask);
        }
    }
}
