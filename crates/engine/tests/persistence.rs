//! Durability parity: a resumed engine must be indistinguishable from the
//! engine that never stopped, and snapshot files from independent
//! processes must union to the single-process build.

use pfe_engine::{
    merge_snapshot_files, Engine, EngineConfig, EngineError, FpConfig, FreqNetConfig, Query,
    Snapshot,
};
use pfe_row::{ColumnSet, Dataset};
use pfe_stream::gen::uniform_binary;

fn cfg() -> EngineConfig {
    EngineConfig {
        shards: 3,
        sample_t: 4096, // stays under-full at the row counts below
        kmv_k: 64,
        batch_rows: 64,
        freq_net: Some(FreqNetConfig {
            depth: 4,
            width: 256,
        }),
        // Both F_p plug-in families ride through every checkpoint below:
        // AMS (p = 2) and stable projections (p = 1.5).
        fp: Some(FpConfig {
            orders: vec![2.0, 1.5],
            stable_t: 4,
            ams_groups: 3,
            ams_per_group: 4,
        }),
        seed: 42,
        ..Default::default()
    }
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pfe-engine-persistence-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// The query battery every parity test compares: mixed in-net, rounded,
/// frequency, heavy-hitter, and `ℓ_1`-sample requests.
fn battery(d: u32) -> Vec<Query> {
    vec![
        Query::over(0..2).f0(),
        Query::over(0..d / 2).f0(),
        Query::over(0..d).f0(),
        Query::over([0, 1]).frequency([1u16, 0]),
        Query::over([0, 1, 2]).heavy_hitters(0.05),
        Query::over([0, 1, 2]).l1_sample(8).with_seed(5),
        Query::over(0..2).fp(2.0),
        Query::over(0..d / 2).fp(1.5),
    ]
}

#[test]
fn checkpoint_resume_answers_bit_identical() {
    let d = 12;
    let path = tmp("roundtrip.pfes");
    let engine = Engine::start(d, 2, cfg()).expect("start");
    engine.ingest(&uniform_binary(d, 3000, 7)).expect("ingest");
    engine.checkpoint(&path).expect("checkpoint");
    let resumed = Engine::resume(&path, cfg()).expect("resume");
    // The resumed engine serves immediately — no refresh needed — and
    // every statistic matches to the bit.
    for req in battery(d) {
        let a = engine.query(&req).expect("original answers");
        let b = resumed.query(&req).expect("resumed answers");
        // Compare values and guarantees; cache/cost metadata is
        // legitimately engine-local.
        assert_eq!(a.value, b.value, "answers diverged on {req:?}");
        assert_eq!(a.guarantee, b.guarantee, "guarantees diverged on {req:?}");
        assert_eq!(a.provenance, b.provenance);
    }
    let stats = resumed.stats();
    assert_eq!(stats.snapshot_rows, 3000);
    std::fs::remove_file(&path).ok();
}

#[test]
fn resumed_engine_continues_ingesting() {
    let d = 10;
    let path = tmp("continue.pfes");
    let first = uniform_binary(d, 1500, 21);
    let second = uniform_binary(d, 1500, 22);

    // Uninterrupted reference: both chunks through one engine.
    let full = Engine::start(d, 2, cfg()).expect("start");
    full.ingest(&first).expect("ingest");
    full.ingest(&second).expect("ingest");
    full.refresh().expect("refresh");

    // Interrupted run: chunk 1, checkpoint, resume, chunk 2.
    let before = Engine::start(d, 2, cfg()).expect("start");
    before.ingest(&first).expect("ingest");
    before.checkpoint(&path).expect("checkpoint");
    let resumed = Engine::resume(&path, cfg()).expect("resume");
    resumed.ingest(&second).expect("ingest after resume");
    let resumed_snap = resumed.refresh().expect("refresh");
    assert_eq!(resumed_snap.n(), 3000, "resumed snapshot covers all rows");

    // KMV unions are order-insensitive and CountMin merges are additive,
    // so the sketch-backed statistics stay bit-exact across the restart.
    let full_snap = full.snapshot().expect("published");
    for mask in [0b11u64, 0b11111, (1 << d) - 1] {
        let cols = ColumnSet::from_mask(d, mask).expect("valid");
        assert_eq!(
            full_snap.f0(&cols).expect("ok").estimate,
            resumed_snap.f0(&cols).expect("ok").estimate,
            "F0 diverged after resume at mask {mask:#b}"
        );
        let key = full_snap
            .encode_pattern(&cols, &vec![0; mask.count_ones() as usize])
            .expect("ok");
        assert_eq!(
            full_snap.frequency(&cols, key).expect("ok").upper_bound,
            resumed_snap.frequency(&cols, key).expect("ok").upper_bound,
            "CountMin bound diverged after resume at mask {mask:#b}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn merged_half_stream_files_equal_single_stream_snapshot() {
    let d = 12;
    let data = uniform_binary(d, 2400, 33);
    let rows: Vec<u64> = match &data {
        Dataset::Binary(m) => m.rows().to_vec(),
        Dataset::Qary(_) => unreachable!("generator yields binary data"),
    };
    let (path_a, path_b, path_full) = (tmp("half-a.pfes"), tmp("half-b.pfes"), tmp("full.pfes"));

    // Two independent "processes" each summarize half the stream.
    let a = Engine::start(d, 2, cfg()).expect("start");
    for &row in &rows[..1200] {
        a.push_packed(row).expect("push");
    }
    a.checkpoint(&path_a).expect("checkpoint a");
    let b = Engine::start(d, 2, cfg()).expect("start");
    for &row in &rows[1200..] {
        b.push_packed(row).expect("push");
    }
    b.checkpoint(&path_b).expect("checkpoint b");

    // One process summarizes everything.
    let full = Engine::start(d, 2, cfg()).expect("start");
    full.ingest(&data).expect("ingest");
    full.checkpoint(&path_full).expect("checkpoint full");
    let full_snap = Snapshot::load_from(&path_full).expect("load full");

    // Cross-process union == single-process build, statistic by statistic.
    let merged = merge_snapshot_files(&[&path_a, &path_b]).expect("merge");
    assert_eq!(merged.n(), full_snap.n());
    for mask in [0b1u64, 0b1111, 0b101010101010, (1 << d) - 1] {
        let cols = ColumnSet::from_mask(d, mask).expect("valid");
        assert_eq!(
            merged.f0(&cols).expect("ok"),
            full_snap.f0(&cols).expect("ok"),
            "merged F0 diverged at mask {mask:#b}"
        );
        let pattern = vec![0u16; mask.count_ones() as usize];
        let key = merged.encode_pattern(&cols, &pattern).expect("ok");
        // Reservoirs stay under-full at these sizes, so the merged sample
        // is the exact union and the estimates match to the bit.
        assert_eq!(
            merged.frequency(&cols, key).expect("ok"),
            full_snap.frequency(&cols, key).expect("ok"),
            "merged frequency diverged at mask {mask:#b}"
        );
        assert_eq!(
            merged.heavy_hitters(&cols, 0.05, 1.0, 2.0).expect("ok"),
            full_snap.heavy_hitters(&cols, 0.05, 1.0, 2.0).expect("ok"),
            "merged heavy hitters diverged at mask {mask:#b}"
        );
        // AMS F_2 counters are i64 sums: cross-process union is bit-exact.
        assert_eq!(
            merged.fp(&cols, 2.0).expect("ok").estimate.to_bits(),
            full_snap.fp(&cols, 2.0).expect("ok").estimate.to_bits(),
            "merged AMS F_2 diverged at mask {mask:#b}"
        );
        // Stable-projection sums are f64: the union reassociates the
        // additions, so equality holds up to the last ulp, not bit-wise.
        let (m, s) = (
            merged.fp(&cols, 1.5).expect("ok").estimate,
            full_snap.fp(&cols, 1.5).expect("ok").estimate,
        );
        assert!(
            (m - s).abs() <= 1e-9 * s.abs().max(1.0),
            "merged stable F_1.5 diverged at mask {mask:#b}: {m} vs {s}"
        );
    }
    for p in [path_a, path_b, path_full] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn corrupt_files_are_typed_errors_never_panics() {
    let d = 8;
    let path = tmp("corrupt.pfes");
    let engine = Engine::start(d, 2, cfg()).expect("start");
    engine.ingest(&uniform_binary(d, 400, 3)).expect("ingest");
    engine.checkpoint(&path).expect("checkpoint");
    let pristine = std::fs::read(&path).expect("read");

    // Bit-flips anywhere in the file are detected (checksum or decoder).
    let step = (pristine.len() / 97).max(1);
    for byte in (0..pristine.len()).step_by(step) {
        let mut bytes = pristine.clone();
        bytes[byte] ^= 0x10;
        std::fs::write(&path, &bytes).expect("write");
        let r = Snapshot::load_from(&path);
        assert!(
            matches!(r, Err(EngineError::Persist(_))),
            "bit flip at byte {byte} not rejected: {r:?}",
            r = r.map(|_| "decoded fine")
        );
    }

    // Truncations at any prefix length are detected.
    for cut in [0, 3, 8, 15, 16, pristine.len() / 2, pristine.len() - 1] {
        std::fs::write(&path, &pristine[..cut]).expect("write");
        assert!(
            matches!(Snapshot::load_from(&path), Err(EngineError::Persist(_))),
            "truncation to {cut} bytes not rejected"
        );
    }

    // Wrong magic / wrong version / wrong kind are each their own error.
    let mut bad_magic = pristine.clone();
    bad_magic[0] = b'X';
    std::fs::write(&path, &bad_magic).expect("write");
    assert!(matches!(
        Snapshot::load_from(&path),
        Err(EngineError::Persist(
            pfe_persist::PersistError::BadMagic { .. }
        ))
    ));
    let mut bad_version = pristine.clone();
    bad_version[4] = 0xff;
    std::fs::write(&path, &bad_version).expect("write");
    assert!(matches!(
        Snapshot::load_from(&path),
        Err(EngineError::Persist(
            pfe_persist::PersistError::UnsupportedVersion { .. }
        ))
    ));
    let sketch_kind_file = pfe_persist::frame::to_bytes(pfe_persist::kind::SKETCH, &7u64);
    std::fs::write(&path, &sketch_kind_file).expect("write");
    assert!(matches!(
        Snapshot::load_from(&path),
        Err(EngineError::Persist(pfe_persist::PersistError::WrongKind {
            found: pfe_persist::kind::SKETCH,
            expected: pfe_persist::kind::SNAPSHOT,
        }))
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_rejects_mismatched_config() {
    let d = 8;
    let path = tmp("mismatch.pfes");
    let engine = Engine::start(d, 2, cfg()).expect("start");
    engine.ingest(&uniform_binary(d, 300, 5)).expect("ingest");
    engine.checkpoint(&path).expect("checkpoint");
    for (what, bad) in [
        (
            "sample_t",
            EngineConfig {
                sample_t: 512,
                ..cfg()
            },
        ),
        (
            "alpha",
            EngineConfig {
                alpha: 0.1,
                ..cfg()
            },
        ),
        (
            "kmv_k",
            EngineConfig {
                kmv_k: 128,
                ..cfg()
            },
        ),
        ("seed", EngineConfig { seed: 7, ..cfg() }),
        (
            "freq_net off",
            EngineConfig {
                freq_net: None,
                ..cfg()
            },
        ),
        (
            "freq_net shape",
            EngineConfig {
                freq_net: Some(FreqNetConfig {
                    depth: 2,
                    width: 64,
                }),
                ..cfg()
            },
        ),
        ("fp off", EngineConfig { fp: None, ..cfg() }),
        (
            "fp orders",
            EngineConfig {
                fp: Some(FpConfig {
                    orders: vec![2.0, 0.5],
                    ..cfg().fp.unwrap()
                }),
                ..cfg()
            },
        ),
        (
            "fp shape",
            EngineConfig {
                fp: Some(FpConfig {
                    stable_t: 8,
                    ..cfg().fp.unwrap()
                }),
                ..cfg()
            },
        ),
    ] {
        assert!(
            matches!(
                Engine::resume(&path, bad),
                Err(EngineError::Incompatible(_))
            ),
            "mismatched {what} accepted by resume"
        );
    }
    // Shard count and cache size may legitimately change across restarts.
    let restarted = Engine::resume(
        &path,
        EngineConfig {
            shards: 1,
            cache_capacity: 16,
            ..cfg()
        },
    );
    assert!(restarted.is_ok(), "shards/cache are not part of the state");
    std::fs::remove_file(&path).ok();
}

#[test]
fn merge_rejects_incompatible_snapshot_files() {
    let d = 8;
    let (path_a, path_b) = (tmp("inc-a.pfes"), tmp("inc-b.pfes"));
    let a = Engine::start(d, 2, cfg()).expect("start");
    a.ingest(&uniform_binary(d, 200, 1)).expect("ingest");
    a.checkpoint(&path_a).expect("checkpoint");
    let b = Engine::start(d, 2, EngineConfig { seed: 99, ..cfg() }).expect("start");
    b.ingest(&uniform_binary(d, 200, 2)).expect("ingest");
    b.checkpoint(&path_b).expect("checkpoint");
    assert!(matches!(
        merge_snapshot_files(&[&path_a, &path_b]),
        Err(EngineError::Incompatible(_))
    ));
    for p in [path_a, path_b] {
        std::fs::remove_file(p).ok();
    }
}
