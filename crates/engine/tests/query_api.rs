//! API-parity contracts for the unified query layer:
//!
//! 1. Every answer produced through the typed `Query` surface is
//!    **bit-identical** to the corresponding direct
//!    `Snapshot::{f0, frequency, heavy_hitters, l1_sample, fp}` call — the
//!    planner, the cache, and the guarantee wrapper never change values.
//! 2. A shuffled `query_batch` returns answers **in request order** with
//!    values identical to the unshuffled batch — planner grouping is
//!    invisible to clients.

use pfe_engine::{Answer, AnswerValue, Engine, EngineConfig, FpConfig, Query};
use pfe_row::{BinaryMatrix, ColumnSet, Dataset};
use proptest::prelude::*;

const D: u32 = 10;

/// Both `F_p` plug-in families: AMS at `p = 2`, stable projections at
/// `p = 1`. Small shapes keep the proptest cases fast in debug builds.
fn fp_config() -> FpConfig {
    FpConfig {
        orders: vec![2.0, 1.0],
        stable_t: 4,
        ams_groups: 3,
        ams_per_group: 4,
    }
}

fn engine_over(rows: Vec<u64>, seed: u64, shards: usize) -> Engine {
    let data = Dataset::Binary(BinaryMatrix::from_rows(D, rows));
    let engine = Engine::start(
        D,
        2,
        EngineConfig {
            shards,
            kmv_k: 64,
            sample_t: 256,
            seed,
            fp: Some(fp_config()),
            ..Default::default()
        },
    )
    .expect("start");
    engine.ingest(&data).expect("ingest");
    engine.refresh().expect("refresh");
    engine
}

/// A mixed battery over one mask: every statistic the API serves.
fn battery(cols: &[u32], pattern_bit: u16) -> Vec<Query> {
    let pattern: Vec<u16> = cols.iter().map(|_| pattern_bit).collect();
    vec![
        Query::over(cols.iter().copied()).f0(),
        Query::over(cols.iter().copied()).frequency(pattern),
        Query::over(cols.iter().copied()).heavy_hitters(0.1),
        Query::over(cols.iter().copied()).l1_sample(8).with_seed(3),
        Query::over(cols.iter().copied()).fp(2.0),
        Query::over(cols.iter().copied()).fp(1.0),
    ]
}

/// Seeded Fisher–Yates, so shuffles are reproducible per proptest case.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        // SplitMix64 step.
        seed = seed.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        items.swap(i, (z % (i as u64 + 1)) as usize);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// New-API answers == direct snapshot calls, bit for bit, for every
    /// statistic, on random data and random masks.
    #[test]
    fn prop_answers_bit_identical_to_snapshot_calls(
        rows in proptest::collection::vec(0u64..(1 << D), 50..400),
        mask in 1u64..(1 << D),
        seed in 0u64..1000,
        shards in 1usize..4,
    ) {
        let engine = engine_over(rows, seed, shards);
        let snap = engine.snapshot().expect("published");
        let cols = ColumnSet::from_mask(D, mask).expect("valid");
        let indices = cols.to_indices();

        // F_0: same estimate and same rounding provenance.
        let api = engine.query(&Query::over(indices.iter().copied()).f0()).expect("ok");
        let direct = snap.f0(&cols).expect("ok");
        prop_assert_eq!(api.value, AnswerValue::F0 { estimate: direct.estimate });
        prop_assert_eq!(api.provenance.answered_on, direct.answered_on);
        prop_assert_eq!(api.provenance.sym_diff, direct.sym_diff);

        // Frequency: estimate and CountMin bound both travel unchanged.
        let pattern = vec![0u16; indices.len()];
        let api = engine
            .query(&Query::over(indices.iter().copied()).frequency(pattern.clone()))
            .expect("ok");
        let key = snap.encode_pattern(&cols, &pattern).expect("ok");
        let direct = snap.frequency(&cols, key).expect("ok");
        prop_assert_eq!(
            api.value,
            AnswerValue::Frequency { estimate: direct.estimate, upper_bound: direct.upper_bound }
        );
        prop_assert_eq!(api.guarantee.epsilon, direct.additive_error);

        // Heavy hitters: identical list, identical order.
        let api = engine
            .query(&Query::over(indices.iter().copied()).heavy_hitters(0.1))
            .expect("ok");
        let direct = snap.heavy_hitters(&cols, 0.1, 1.0, 2.0).expect("ok");
        prop_assert_eq!(api.value, AnswerValue::HeavyHitters { hitters: direct });

        // ℓ_1 sample: identical draws for identical (k, seed).
        let api = engine
            .query(&Query::over(indices.iter().copied()).l1_sample(8).with_seed(3))
            .expect("ok");
        let direct = snap.l1_sample(&cols, 8, 3).expect("ok");
        prop_assert_eq!(api.value, AnswerValue::L1Sample { patterns: direct });

        // F_p moments, both plug-in families: bit-identical estimate and
        // the same rounding provenance as the serving α-net.
        for p in [2.0, 1.0] {
            let api = engine
                .query(&Query::over(indices.iter().copied()).fp(p))
                .expect("ok");
            let direct = snap.fp(&cols, p).expect("ok");
            let AnswerValue::Fp { estimate } = api.value else {
                panic!("expected Fp answer, got {:?}", api.value);
            };
            prop_assert_eq!(estimate.to_bits(), direct.estimate.to_bits());
            prop_assert_eq!(api.provenance.answered_on, direct.answered_on);
            prop_assert_eq!(api.provenance.sym_diff, direct.sym_diff);
            // The guarantee is the net β inflated by the Lemma 6.4
            // rounding distortion — never below the sketch's own β.
            let beta = snap.fp_net(p).expect("configured").beta();
            prop_assert!(api.guarantee.alpha >= beta);
        }
    }

    /// Shuffling a batch changes nothing observable: answers come back in
    /// request order, with values identical to the unshuffled batch.
    #[test]
    fn prop_shuffled_batch_keeps_request_order_and_values(
        rows in proptest::collection::vec(0u64..(1 << D), 50..300),
        seed in 0u64..1000,
        shuffle_seed in 0u64..1000,
    ) {
        let engine = engine_over(rows, seed, 2);
        // Several masks × all statistics, with deliberate duplicates so
        // the planner has groups to share.
        let mut queries = Vec::new();
        for cols in [vec![0u32, 1], vec![0, 1, 2, 3, 4, 5], vec![2, 4, 6], vec![0, 1]] {
            queries.extend(battery(&cols, 0));
        }
        let baseline: Vec<Answer> = engine
            .query_batch(&queries)
            .into_iter()
            .map(|a| a.expect("ok"))
            .collect();

        let mut order: Vec<usize> = (0..queries.len()).collect();
        shuffle(&mut order, shuffle_seed);
        let shuffled: Vec<Query> = order.iter().map(|&i| queries[i].clone()).collect();
        let answers: Vec<Answer> = engine
            .query_batch(&shuffled)
            .into_iter()
            .map(|a| a.expect("ok"))
            .collect();

        prop_assert_eq!(answers.len(), shuffled.len());
        for (slot, &orig) in order.iter().enumerate() {
            // Slot `slot` of the shuffled batch answers query `orig`:
            // its provenance names that query's columns…
            let expected_cols = ColumnSet::from_indices(D, &queries[orig].cols).expect("valid");
            prop_assert_eq!(answers[slot].provenance.requested, expected_cols);
            // …and its value and guarantee are identical to the
            // unshuffled run (the cache may serve them, values never move).
            prop_assert_eq!(&answers[slot].value, &baseline[orig].value);
            prop_assert_eq!(answers[slot].guarantee, baseline[orig].guarantee);
        }
    }
}
