//! The Index problem and the one-way protocol harness (Section 3.3).
//!
//! Alice holds `a ∈ {0,1}^N`, Bob an index `i ∈ [N]`, and Bob must output
//! `a_i` after a single message from Alice. Randomized one-way
//! communication for Index is `Ω(N)` [Kremer–Nisan–Ron], so any summary
//! that lets Bob decide membership solves Index and must be `Ω(N)` bits.
//!
//! The harness makes the reductions *executable*: a
//! [`MembershipProtocol`] says how Alice encodes her held set as a dataset
//! and how Bob decides membership from a summary; [`run_trials`] samples
//! balanced yes/no instances and reports accuracy and summary size. An
//! exact-oracle protocol must reach accuracy 1.0 (the reduction is
//! correct); a small-space summary whose guarantee is weaker than the
//! construction's separation degrades toward coin-flipping — which is the
//! lower bound, observed.

use pfe_hash::rng::Xoshiro256pp;

/// A membership reduction: Alice holds a subset of a finite universe of
/// codewords; Bob must decide whether universe element `i` is held.
pub trait MembershipProtocol {
    /// The message Alice sends (a summary of her encoded dataset).
    type Summary;

    /// Universe size `N` (the Index instance length).
    fn universe(&self) -> usize;

    /// Alice: encode held indices (sorted, distinct) into a summary.
    fn alice(&self, held: &[usize]) -> Self::Summary;

    /// Bob: decide whether `index` is held, from the summary alone.
    fn bob(&self, summary: &Self::Summary, index: usize) -> bool;

    /// Size of the summary in bytes (the communication cost).
    fn summary_bytes(&self, summary: &Self::Summary) -> usize;
}

/// Outcome of a batch of protocol trials.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialReport {
    /// Trials run.
    pub trials: usize,
    /// Correct decisions overall.
    pub correct: usize,
    /// Correct decisions on `y ∈ T` instances.
    pub yes_correct: usize,
    /// Number of `y ∈ T` instances.
    pub yes_total: usize,
    /// Correct decisions on `y ∉ T` instances.
    pub no_correct: usize,
    /// Number of `y ∉ T` instances.
    pub no_total: usize,
    /// Mean summary size over trials, in bytes.
    pub mean_summary_bytes: f64,
}

impl TrialReport {
    /// Overall accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.correct as f64 / self.trials as f64
    }

    /// Accuracy on held ("yes") instances.
    pub fn yes_accuracy(&self) -> f64 {
        if self.yes_total == 0 {
            return 1.0;
        }
        self.yes_correct as f64 / self.yes_total as f64
    }

    /// Accuracy on not-held ("no") instances.
    pub fn no_accuracy(&self) -> f64 {
        if self.no_total == 0 {
            return 1.0;
        }
        self.no_correct as f64 / self.no_total as f64
    }
}

/// Run `trials` balanced membership trials: each trial draws Alice's held
/// set (each universe element held independently with probability 1/2) and
/// a Bob index, forced to alternate between held and not-held so both
/// branches are exercised equally.
///
/// # Panics
/// Panics if the universe is empty or `trials == 0`.
pub fn run_trials<P: MembershipProtocol>(protocol: &P, trials: usize, seed: u64) -> TrialReport {
    let n = protocol.universe();
    assert!(n >= 2, "universe must have at least 2 elements");
    assert!(trials > 0, "need at least one trial");
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut report = TrialReport {
        trials,
        correct: 0,
        yes_correct: 0,
        yes_total: 0,
        no_correct: 0,
        no_total: 0,
        mean_summary_bytes: 0.0,
    };
    let mut total_bytes = 0usize;
    for trial in 0..trials {
        let want_yes = trial % 2 == 0;
        // Draw Alice's set; ensure at least one held and one free slot so
        // the forced query exists.
        let mut held: Vec<usize> = (0..n).filter(|_| rng.bernoulli(0.5)).collect();
        if held.is_empty() {
            held.push(rng.range_u64(n as u64) as usize);
        }
        if held.len() == n {
            let drop = rng.range_u64(n as u64) as usize;
            held.retain(|&x| x != drop);
        }
        let index = loop {
            let i = rng.range_u64(n as u64) as usize;
            if held.binary_search(&i).is_ok() == want_yes {
                break i;
            }
        };
        let summary = protocol.alice(&held);
        total_bytes += protocol.summary_bytes(&summary);
        let decision = protocol.bob(&summary, index);
        let truth = want_yes;
        if want_yes {
            report.yes_total += 1;
            if decision == truth {
                report.yes_correct += 1;
            }
        } else {
            report.no_total += 1;
            if decision == truth {
                report.no_correct += 1;
            }
        }
        if decision == truth {
            report.correct += 1;
        }
    }
    report.mean_summary_bytes = total_bytes as f64 / trials as f64;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A protocol that simply ships Alice's bit vector: always correct,
    /// `N/8`-ish bytes — the Index upper bound.
    struct ShipTheBits {
        n: usize,
    }

    impl MembershipProtocol for ShipTheBits {
        type Summary = Vec<bool>;

        fn universe(&self) -> usize {
            self.n
        }

        fn alice(&self, held: &[usize]) -> Vec<bool> {
            let mut bits = vec![false; self.n];
            for &i in held {
                bits[i] = true;
            }
            bits
        }

        fn bob(&self, summary: &Vec<bool>, index: usize) -> bool {
            summary[index]
        }

        fn summary_bytes(&self, s: &Vec<bool>) -> usize {
            s.len().div_ceil(8)
        }
    }

    /// A protocol that sends nothing: Bob guesses "no" always — 50%
    /// accuracy on balanced trials.
    struct SendNothing {
        n: usize,
    }

    impl MembershipProtocol for SendNothing {
        type Summary = ();

        fn universe(&self) -> usize {
            self.n
        }

        fn alice(&self, _held: &[usize]) {}

        fn bob(&self, _summary: &(), _index: usize) -> bool {
            false
        }

        fn summary_bytes(&self, _s: &()) -> usize {
            0
        }
    }

    #[test]
    fn exact_protocol_is_perfect() {
        let p = ShipTheBits { n: 64 };
        let r = run_trials(&p, 200, 1);
        assert_eq!(r.accuracy(), 1.0);
        assert_eq!(r.yes_accuracy(), 1.0);
        assert_eq!(r.no_accuracy(), 1.0);
        assert!((r.mean_summary_bytes - 8.0).abs() < 1e-9);
    }

    #[test]
    fn trivial_protocol_is_half_right() {
        let p = SendNothing { n: 64 };
        let r = run_trials(&p, 200, 2);
        // Balanced trials: all "no" answers are right, all "yes" wrong.
        assert_eq!(r.yes_accuracy(), 0.0);
        assert_eq!(r.no_accuracy(), 1.0);
        assert!((r.accuracy() - 0.5).abs() < 0.01);
        assert_eq!(r.mean_summary_bytes, 0.0);
    }

    #[test]
    fn balanced_yes_no_split() {
        let p = ShipTheBits { n: 32 };
        let r = run_trials(&p, 101, 3);
        assert_eq!(r.yes_total + r.no_total, 101);
        assert!((r.yes_total as i64 - r.no_total as i64).abs() <= 1);
    }

    #[test]
    #[should_panic(expected = "at least 2 elements")]
    fn rejects_tiny_universe() {
        let p = ShipTheBits { n: 1 };
        run_trials(&p, 10, 0);
    }
}
