//! The "provisioning / hypotheticals" contrast (Assadi–Khanna–Li–Tannen
//! \[2\], discussed in the paper's Section 2.2).
//!
//! In the hypotheticals model a query turns a set of columns *on* and asks
//! for the number of distinct **values in the union** of those columns —
//! not distinct *row vectors*. The paper's Related Work notes the models
//! diverge sharply:
//!
//! - union-distinct over scenarios admits `poly(d/ε)` space (one distinct
//!   sketch per column, merged at query time), and in the binary case the
//!   union has at most 2 distinct values no matter how many columns are on;
//! - projected `F_0` (distinct row *vectors*) can reach `2^d` and needs
//!   `2^{Ω(d)}` space (Section 4).
//!
//! This module implements the hypotheticals-model summary and the
//! experiment that exhibits the divergence on the *same* dataset — the
//! paper's "these disparities highlight the differences in our models",
//! executed.

use pfe_row::{ColumnSet, Dataset, FrequencyVector};
use pfe_sketch::kmv::Kmv;
use pfe_sketch::traits::{DistinctSketch, SpaceUsage};

use crate::index_problem::MembershipProtocol;

/// Per-column distinct-value sketches: the `poly(d/ε)`-space summary for
/// union-distinct queries over arbitrary scenarios.
pub struct HypotheticalsSummary {
    per_column: Vec<Kmv>,
    d: u32,
}

impl HypotheticalsSummary {
    /// Build with a KMV of capacity `k` per column. All columns share one
    /// hash seed — required so the sketches merge as a true set union
    /// (identical values must hash identically across columns).
    pub fn build(data: &Dataset, k: usize, seed: u64) -> Self {
        let d = data.dimension();
        let mut per_column: Vec<Kmv> = (0..d).map(|_| Kmv::new(k, seed)).collect();
        for i in 0..data.num_rows() {
            for (c, &v) in data.row_dense(i).iter().enumerate() {
                // The union semantics: values are column-agnostic symbols.
                per_column[c].insert(v as u64);
            }
        }
        Self { per_column, d }
    }

    /// Estimate the number of distinct values in the union of the turned-on
    /// columns (merge the per-column sketches).
    ///
    /// # Panics
    /// Panics (debug) on dimension mismatch.
    pub fn union_distinct(&self, scenario: &ColumnSet) -> f64 {
        debug_assert_eq!(scenario.dimension(), self.d);
        let mut it = scenario.iter();
        let Some(first) = it.next() else {
            return 0.0;
        };
        let mut acc = self.per_column[first as usize].clone();
        for c in it {
            acc.merge(&self.per_column[c as usize]);
        }
        acc.estimate()
    }

    /// Exact union-distinct for verification.
    pub fn exact_union_distinct(data: &Dataset, scenario: &ColumnSet) -> u64 {
        let mut values = std::collections::BTreeSet::new();
        for i in 0..data.num_rows() {
            let row = data.row_dense(i);
            for c in scenario.iter() {
                values.insert(row[c as usize]);
            }
        }
        values.len() as u64
    }
}

impl SpaceUsage for HypotheticalsSummary {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.per_column.iter().map(Kmv::space_bytes).sum::<usize>()
    }
}

/// The Index protocol of Theorem 4.1, decided with the hypotheticals
/// summary instead of a projected-`F_0` oracle — demonstrating that the
/// union-distinct statistic carries *no* signal about row-vector
/// distinctness: accuracy stays at chance while the summary is tiny.
pub struct HypotheticalsProtocol {
    inner: crate::f0::F0Protocol<crate::f0::ExactF0Oracle>,
    kmv_k: usize,
}

impl HypotheticalsProtocol {
    /// Wrap a Theorem 4.1 instance family.
    pub fn new(d: u32, k: u32, q: u32, universe: usize, kmv_k: usize, seed: u64) -> Self {
        Self {
            inner: crate::f0::F0Protocol::new(d, k, q, universe, seed),
            kmv_k,
        }
    }
}

impl MembershipProtocol for HypotheticalsProtocol {
    type Summary = (HypotheticalsSummary, f64);

    fn universe(&self) -> usize {
        self.inner.universe_words.len()
    }

    fn alice(&self, held: &[usize]) -> (HypotheticalsSummary, f64) {
        let words: Vec<u64> = held.iter().map(|&i| self.inner.universe_words[i]).collect();
        let inst =
            pfe_stream::adversarial::F0Instance::build(self.inner.code, self.inner.q, &words);
        let summary = HypotheticalsSummary::build(&inst.data, self.kmv_k, 0x417);
        // Bob thresholds union-distinct at Q/2 (the best data-independent
        // rule available; the experiment shows no rule can work).
        (summary, self.inner.q as f64 / 2.0)
    }

    fn bob(&self, summary: &(HypotheticalsSummary, f64), index: usize) -> bool {
        let y = self.inner.universe_words[index];
        let cols = ColumnSet::from_mask(self.inner.code.dimension(), y).expect("support in range");
        summary.0.union_distinct(&cols) >= summary.1
    }

    fn summary_bytes(&self, summary: &(HypotheticalsSummary, f64)) -> usize {
        summary.0.space_bytes()
    }
}

/// Exact divergence measurement on one dataset: `(union_distinct,
/// projected_f0)` for the same scenario/query.
pub fn model_divergence(data: &Dataset, cols: &ColumnSet) -> (u64, u64) {
    let union = HypotheticalsSummary::exact_union_distinct(data, cols);
    let f0 = FrequencyVector::compute(data, cols)
        .expect("codec fits")
        .f0();
    (union, f0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index_problem::run_trials;
    use pfe_stream::gen::{uniform_binary, uniform_qary};

    #[test]
    fn union_distinct_binary_is_at_most_two() {
        // The paper: "in the hypotheticals setting in the binary case, each
        // column only has 2 distinct values ... the union also only has 2."
        let data = uniform_binary(16, 5000, 1);
        let s = HypotheticalsSummary::build(&data, 64, 2);
        for mask in [0b1u64, 0b1111, (1 << 16) - 1] {
            let cols = ColumnSet::from_mask(16, mask).expect("valid");
            assert!(s.union_distinct(&cols) <= 2.0 + 1e-9);
            assert!(HypotheticalsSummary::exact_union_distinct(&data, &cols) <= 2);
        }
    }

    #[test]
    fn divergence_union_constant_f0_exponential() {
        // Same data, same column set: union-distinct stays <= Q while
        // projected F0 grows toward 2^{|C|}-scale.
        let data = uniform_qary(4, 14, 20_000, 3);
        let cols = ColumnSet::from_indices(14, &(0..10).collect::<Vec<_>>()).expect("valid");
        let (union, f0) = model_divergence(&data, &cols);
        assert!(union <= 4);
        assert!(f0 > 1000, "projected F0 {f0} not exponential-scale");
    }

    #[test]
    fn union_estimate_accurate_in_poly_space() {
        let data = uniform_qary(50, 10, 10_000, 4);
        let s = HypotheticalsSummary::build(&data, 256, 5);
        let cols = ColumnSet::from_indices(10, &[0, 3, 7]).expect("valid");
        let est = s.union_distinct(&cols);
        let truth = HypotheticalsSummary::exact_union_distinct(&data, &cols) as f64;
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.2, "union-distinct relative error {rel}");
        // Space is O(d * k), independent of n and of 2^d.
        assert!(s.space_bytes() < 10 * 256 * 8 + 4096);
    }

    #[test]
    fn hypotheticals_summary_cannot_decide_index() {
        // The contrast experiment: on Theorem 4.1 instances the union
        // statistic is identical in yes and no cases (all Q values appear
        // in every support column either way), so accuracy is one-sided
        // chance — while the projected-F0 exact oracle gets 1.0 on the
        // same instances (tested in f0.rs).
        let p = HypotheticalsProtocol::new(12, 3, 8, 16, 64, 1);
        let r = run_trials(&p, 40, 2);
        assert!(
            r.accuracy() <= 0.6,
            "union-distinct unexpectedly decides Index: {}",
            r.accuracy()
        );
        assert!(r.mean_summary_bytes < 50_000.0);
    }

    #[test]
    fn empty_scenario_is_zero() {
        let data = uniform_binary(8, 100, 6);
        let s = HypotheticalsSummary::build(&data, 16, 7);
        let cols = ColumnSet::empty(8).expect("valid");
        assert_eq!(s.union_distinct(&cols), 0.0);
    }
}
