//! Executable reduction of Theorem 5.5: projected `ℓ_p` sampling for
//! `p ≠ 1` solves Index.
//!
//! - `p > 1`: on the Theorem 5.3 instance, the empirical rate at which a
//!   sampler returns `0_S` distinguishes `y ∈ T` (constant rate) from
//!   `y ∉ T` (vanishing rate).
//! - `0 < p < 1`: on the Theorem 5.4 instance, Bob forms
//!   `M′ = {z ∈ star(y) : |supp(z)| ≥ εd/2}`. If `y ∈ T`, a constant
//!   fraction of the `F_p` mass sits on `M′` (each such pattern has count
//!   exactly 1 after set-union dedup, and `|M′| ≥ 2^{εd−1}`); if `y ∉ T`,
//!   no pattern of `M′` can occur at all, because any other codeword
//!   shares at most `cap < εd/2` support with `y`. So a single valid
//!   sample decides membership with constant advantage.
//!
//! The contrast the paper highlights: `ℓ_1` sampling *is* possible in small
//! space (a uniform row sample), and `pfe-core`'s `l1_sample` provides it;
//! these reductions show both `p`-sides away from 1 are not.

use pfe_codes::random_code::{RandomCode, RandomCodeParams};
use pfe_row::{ColumnSet, FrequencyVector, PatternKey};
use pfe_stream::adversarial::{FpInstance, HeavyHitterInstance};

use crate::index_problem::MembershipProtocol;

/// Membership via `ℓ_p` sampling, `p > 1` branch: Alice's summary is the
/// exact sampler state (the naïve solution); the experiment measures how
/// many draws Bob needs — and, by swapping in approximate samplers, how
/// accuracy collapses when the sampler cannot represent the instance.
pub struct SamplerLargeProtocol {
    /// The Lemma 3.2 random code.
    pub code: RandomCode,
    /// Moment order `p > 1`.
    pub p: f64,
    /// Draws Bob takes per decision.
    pub draws: usize,
    /// Decision threshold on the empirical `0_S` rate.
    pub rate_threshold: f64,
    /// Sampler seed.
    pub seed: u64,
}

impl SamplerLargeProtocol {
    /// Construct with `p > 1` and a draw budget.
    ///
    /// # Panics
    /// Panics unless `p > 1` and `draws > 0`.
    pub fn new(params: RandomCodeParams, p: f64, draws: usize, seed: u64) -> Self {
        assert!(p > 1.0, "this branch handles p > 1");
        assert!(draws > 0);
        let code = RandomCode::generate(params).expect("Lemma 3.2 code generates");
        Self {
            code,
            p,
            draws,
            // Yes-case rate ~ (2^{εd})^p / F_p = Θ(1); no-case rate near 0.
            rate_threshold: 0.05,
            seed,
        }
    }
}

impl MembershipProtocol for SamplerLargeProtocol {
    /// The summary is the exact frequency-vector state per possible query —
    /// here represented by the dataset itself (the naïve solution whose
    /// size *is* the point of the lower bound).
    type Summary = pfe_core::ExactSummary;

    fn universe(&self) -> usize {
        self.code.len()
    }

    fn alice(&self, held: &[usize]) -> pfe_core::ExactSummary {
        let inst = HeavyHitterInstance::build(self.code.clone(), held);
        pfe_core::ExactSummary::build(&inst.data)
    }

    fn bob(&self, summary: &pfe_core::ExactSummary, index: usize) -> bool {
        let d = self.code.params().d;
        let y = self.code.words()[index];
        let cols = ColumnSet::from_mask(d, ((1u64 << d) - 1) & !y).expect("valid");
        let mut sampler = summary
            .lp_sampler(&cols, self.p, self.seed ^ index as u64)
            .expect("valid query");
        let hits = (0..self.draws)
            .filter(|_| sampler.sample().key == PatternKey::new(0))
            .count();
        hits as f64 / self.draws as f64 >= self.rate_threshold
    }

    fn summary_bytes(&self, summary: &pfe_core::ExactSummary) -> usize {
        use pfe_sketch::traits::SpaceUsage;
        summary.space_bytes()
    }
}

/// Membership via `ℓ_p` sampling, `0 < p < 1` branch: Bob tests whether a
/// drawn pattern lands in `M′`.
pub struct SamplerSmallProtocol {
    /// The Lemma 3.2 random code.
    pub code: RandomCode,
    /// Moment order `0 < p < 1`.
    pub p: f64,
    /// Draws Bob takes per decision.
    pub draws: usize,
    /// Sampler seed.
    pub seed: u64,
}

impl SamplerSmallProtocol {
    /// Construct with `0 < p < 1` and a draw budget.
    ///
    /// # Panics
    /// Panics unless `0 < p < 1`, `draws > 0`, and `cap < εd/2` (the
    /// disjointness the proof's `M′` argument needs).
    pub fn new(params: RandomCodeParams, p: f64, draws: usize, seed: u64) -> Self {
        assert!(p > 0.0 && p < 1.0, "this branch handles 0 < p < 1");
        assert!(draws > 0);
        let code = RandomCode::generate(params).expect("Lemma 3.2 code generates");
        let cap = code.params().intersection_cap();
        let half_support = code.params().weight() as f64 / 2.0;
        assert!(
            (cap as f64) < half_support,
            "cap {cap} not below εd/2 = {half_support}; M′ would not be exclusive to y"
        );
        Self {
            code,
            p,
            draws,
            seed,
        }
    }

    /// Is a projected pattern (on `S = supp(y)`, little-endian packed) a
    /// member of `M′` — support at least `εd/2`?
    pub fn in_m_prime(&self, key: PatternKey) -> bool {
        let k = self.code.params().weight();
        (key.raw().count_ones()) as f64 >= k as f64 / 2.0
    }
}

impl MembershipProtocol for SamplerSmallProtocol {
    type Summary = pfe_core::ExactSummary;

    fn universe(&self) -> usize {
        self.code.len()
    }

    fn alice(&self, held: &[usize]) -> pfe_core::ExactSummary {
        let inst = FpInstance::build(self.code.clone(), held);
        pfe_core::ExactSummary::build(&inst.data)
    }

    fn bob(&self, summary: &pfe_core::ExactSummary, index: usize) -> bool {
        let d = self.code.params().d;
        let y = self.code.words()[index];
        let cols = ColumnSet::from_mask(d, y).expect("valid");
        let mut sampler = summary
            .lp_sampler(&cols, self.p, self.seed ^ index as u64)
            .expect("valid query");
        // If y ∈ T, the M′ mass is a constant fraction; if not, it is
        // exactly zero — one hit decides.
        (0..self.draws).any(|_| self.in_m_prime(sampler.sample().key))
    }

    fn summary_bytes(&self, summary: &pfe_core::ExactSummary) -> usize {
        use pfe_sketch::traits::SpaceUsage;
        summary.space_bytes()
    }
}

/// Measured `M′` mass for a concrete instance (the quantity the proof
/// lower-bounds by a constant in the yes case and pins to zero in the no
/// case).
pub fn m_prime_mass(code: &RandomCode, held: &[usize], y_index: usize, p: f64) -> f64 {
    let d = code.params().d;
    let k = code.params().weight();
    let y = code.words()[y_index];
    let cols = ColumnSet::from_mask(d, y).expect("valid");
    let inst = FpInstance::build(code.clone(), held);
    let f = FrequencyVector::compute(&inst.data, &cols).expect("fits");
    let fp = f.fp(p);
    if fp == 0.0 {
        return 0.0;
    }
    f.iter()
        .filter(|(key, _)| key.raw().count_ones() as f64 >= k as f64 / 2.0)
        .map(|(_, c)| (c as f64).powf(p))
        .sum::<f64>()
        / fp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index_problem::run_trials;

    fn params(seed: u64) -> RandomCodeParams {
        RandomCodeParams {
            d: 32,
            epsilon: 0.25,
            gamma: 0.03,
            target_size: 12,
            seed,
        }
    }

    #[test]
    fn large_p_sampler_solves_index() {
        let p = SamplerLargeProtocol::new(params(1), 2.0, 200, 7);
        let r = run_trials(&p, 20, 2);
        assert_eq!(r.accuracy(), 1.0, "p>1 sampler protocol failed");
    }

    #[test]
    fn small_p_sampler_solves_index() {
        let p = SamplerSmallProtocol::new(params(3), 0.5, 200, 8);
        let r = run_trials(&p, 20, 4);
        assert_eq!(r.accuracy(), 1.0, "p<1 sampler protocol failed");
    }

    #[test]
    fn m_prime_mass_constant_when_held_zero_otherwise() {
        let code = RandomCode::generate(params(5)).expect("code");
        let held_with = [0usize, 1, 2, 3];
        let held_without = [1usize, 2, 3];
        let yes = m_prime_mass(&code, &held_with, 0, 0.5);
        let no = m_prime_mass(&code, &held_without, 0, 0.5);
        // The proof's Case p<1: at least half of star(y) has support
        // >= εd/2, each counting once, so the mass is a constant fraction.
        assert!(yes > 0.1, "yes-case M′ mass {yes} not constant");
        assert_eq!(no, 0.0, "no-case M′ mass must be exactly zero");
    }

    #[test]
    fn m_prime_definition_matches_support_threshold() {
        let p = SamplerSmallProtocol::new(params(6), 0.5, 10, 0);
        let k = p.code.params().weight(); // 8
        assert!(p.in_m_prime(PatternKey::new(0b1111_0000)));
        assert!(p.in_m_prime(PatternKey::new(0b1111)));
        assert!(!p.in_m_prime(PatternKey::new(0b111)));
        assert!(!p.in_m_prime(PatternKey::new(0)));
        assert_eq!(k, 8);
    }

    #[test]
    #[should_panic(expected = "handles p > 1")]
    fn large_branch_rejects_small_p() {
        SamplerLargeProtocol::new(params(7), 0.9, 10, 0);
    }

    #[test]
    #[should_panic(expected = "handles 0 < p < 1")]
    fn small_branch_rejects_large_p() {
        SamplerSmallProtocol::new(params(8), 1.1, 10, 0);
    }
}
