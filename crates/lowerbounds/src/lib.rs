#![warn(missing_docs)]
//! Executable communication-complexity lower bounds.
//!
//! The paper's `2^{Ω(d)}` space bounds (Theorems 4.1, 5.3, 5.4, 5.5) all
//! reduce the one-way Index problem to projected frequency estimation over
//! carefully coded instances (Section 3.3). This crate makes each
//! reduction runnable:
//!
//! - [`index_problem`] — the Alice/Bob harness and accuracy reports;
//! - [`f0`] — Theorem 4.1 and the Table 1 corollaries (`F_0`);
//! - [`heavy_hitters`] — Theorem 5.3 (`ℓ_p` heavy hitters, `p > 1`);
//! - [`fp`] — Theorem 5.4 (`F_p` estimation, both branches of `p ≠ 1`);
//! - [`sampling`] — Theorem 5.5 (`ℓ_p` sampling, both branches).
//!
//! An exact oracle decides every instance perfectly (the reductions are
//! correct — tested); the bench binaries additionally run compressed
//! summaries whose guarantees are weaker than the constructed separations
//! and report the accuracy collapse, which is the lower bound in action.

pub mod f0;
pub mod fp;
pub mod heavy_hitters;
pub mod hypotheticals;
pub mod index_problem;
pub mod sampling;

pub use f0::{
    table1_corollary42, table1_corollary43, table1_corollary44, table1_theorem41, ExactF0Oracle,
    F0Oracle, F0Protocol, Table1Row,
};
pub use fp::{measure_fp_gap, ExactFpOracle, FpGap, FpLargeProtocol, FpOracle, FpSmallProtocol};
pub use heavy_hitters::{measure_case, CaseMeasurement, ExactHhOracle, HhOracle, HhProtocol};
pub use hypotheticals::{model_divergence, HypotheticalsProtocol, HypotheticalsSummary};
pub use index_problem::{run_trials, MembershipProtocol, TrialReport};
pub use sampling::{m_prime_mass, SamplerLargeProtocol, SamplerSmallProtocol};
