//! Executable reduction of Theorem 4.1 (and Corollaries 4.2–4.4):
//! projected `F_0` solves Index, so constant-factor `F_0` needs `2^{Ω(d)}`.
//!
//! Alice's codewords live in `B(d, k)`; her dataset is `star_Q(T)`; Bob
//! queries `S = supp(y)` and thresholds the reported `F_0` between the
//! "no" ceiling `k·Q^{k−1}` and the "yes" floor `Q^k`. With an exact `F_0`
//! oracle the decision is always correct — verified by tests — and any
//! oracle whose multiplicative guarantee is worse than `Δ = Q/k`
//! (Equation 3) provably cannot separate the two cases.
//!
//! Because `|B(d,k)|` is exponentially large, experiments run over a
//! *sampled sub-universe* of the code: a random subset of codewords plays
//! the role of the enumeration. This only weakens the instance (Alice
//! holds fewer words), so the verified separation is conservative.

use pfe_codes::constant_weight::ConstantWeightCode;
use pfe_hash::rng::Xoshiro256pp;
use pfe_row::{ColumnSet, Dataset};
use pfe_stream::adversarial::F0Instance;

use crate::index_problem::MembershipProtocol;

/// An `F_0` oracle under test: built once per Alice message, then queried
/// by Bob on arbitrary column sets.
pub trait F0Oracle {
    /// Ingest Alice's dataset.
    fn build(data: &Dataset) -> Self;

    /// Estimate projected `F_0` on `cols`.
    fn f0(&self, cols: &ColumnSet) -> f64;

    /// Summary size in bytes (the communication cost).
    fn bytes(&self) -> usize;
}

/// Exact oracle: retains everything (the `Θ(nd)` upper bound).
pub struct ExactF0Oracle(pfe_core::ExactSummary);

impl F0Oracle for ExactF0Oracle {
    fn build(data: &Dataset) -> Self {
        Self(pfe_core::ExactSummary::build(data))
    }

    fn f0(&self, cols: &ColumnSet) -> f64 {
        self.0.f0(cols).expect("valid query").value
    }

    fn bytes(&self) -> usize {
        use pfe_sketch::traits::SpaceUsage;
        self.0.space_bytes()
    }
}

/// The Theorem 4.1 protocol over a sampled sub-universe of `B(d, k)`.
pub struct F0Protocol<O: F0Oracle> {
    /// The code.
    pub code: ConstantWeightCode,
    /// Alphabet size `Q`.
    pub q: u32,
    /// The sampled universe of codewords.
    pub universe_words: Vec<u64>,
    _oracle: std::marker::PhantomData<O>,
}

impl<O: F0Oracle> F0Protocol<O> {
    /// Sample a `universe`-word sub-universe of `B(d, k)`.
    ///
    /// # Panics
    /// Panics if `universe` exceeds `|B(d, k)|` or `q < 2`.
    pub fn new(d: u32, k: u32, q: u32, universe: usize, seed: u64) -> Self {
        assert!(q >= 2, "need Q >= 2");
        let code = ConstantWeightCode::new(d, k);
        assert!(
            (universe as u128) <= code.size(),
            "universe {universe} exceeds |B({d},{k})| = {}",
            code.size()
        );
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut picked = std::collections::BTreeSet::new();
        while picked.len() < universe {
            // Rejection-sample ranks; the code is enormous so collisions
            // are rare.
            let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % code.size();
            picked.insert(code.unrank(r));
        }
        Self {
            code,
            q,
            universe_words: picked.into_iter().collect(),
            _oracle: std::marker::PhantomData,
        }
    }

    /// The decision threshold: the geometric mean of the "yes" floor `Q^k`
    /// and the "no" ceiling `k·Q^{k−1}`.
    pub fn threshold(&self) -> f64 {
        let yes = (self.q as f64).powi(self.code.weight() as i32);
        let no = self.code.weight() as f64 * (self.q as f64).powi(self.code.weight() as i32 - 1);
        (yes * no).sqrt()
    }

    /// The provable separation `Δ = Q/k`.
    pub fn separation(&self) -> f64 {
        self.q as f64 / self.code.weight() as f64
    }
}

impl<O: F0Oracle> MembershipProtocol for F0Protocol<O> {
    type Summary = (O, usize);

    fn universe(&self) -> usize {
        self.universe_words.len()
    }

    fn alice(&self, held: &[usize]) -> (O, usize) {
        let words: Vec<u64> = held.iter().map(|&i| self.universe_words[i]).collect();
        let inst = F0Instance::build(self.code, self.q, &words);
        let oracle = O::build(&inst.data);
        let bytes = oracle.bytes();
        (oracle, bytes)
    }

    fn bob(&self, summary: &(O, usize), index: usize) -> bool {
        let y = self.universe_words[index];
        let cols = ColumnSet::from_mask(self.code.dimension(), y).expect("support in range");
        summary.0.f0(&cols) >= self.threshold()
    }

    fn summary_bytes(&self, summary: &(O, usize)) -> usize {
        summary.1
    }
}

/// The analytic Table 1 rows: instance shape and approximation factor for
/// Theorem 4.1 and Corollaries 4.2–4.4.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Which result this row describes.
    pub label: &'static str,
    /// Number of rows of the instance `A` (log2, since counts explode).
    pub log2_rows: f64,
    /// Number of columns of the instance.
    pub columns: f64,
    /// Alphabet the instance is written over.
    pub alphabet: f64,
    /// The approximation factor the bound rules out.
    pub approx_factor: f64,
    /// log2 of the code size = the space lower bound in bits (up to
    /// constants).
    pub log2_code_size: f64,
}

/// Theorem 4.1 row: instance `(d/k)^k × d` over `[Q]`, factor `Q/k`.
pub fn table1_theorem41(d: u32, k: u32, q: u32) -> Table1Row {
    assert!(k >= 1 && k < d.div_ceil(2), "Theorem 4.1 needs k < d/2");
    assert!(q > k, "Theorem 4.1 needs Q > k");
    let code = ConstantWeightCode::new(d, k);
    Table1Row {
        label: "Theorem 4.1",
        // Rows: |star_Q(C)| <= |C| * Q^k; the paper's Table 1 quotes the
        // code-size bound (d/k)^k for the row count.
        log2_rows: (d as f64 / k as f64).log2() * k as f64,
        columns: d as f64,
        alphabet: q as f64,
        approx_factor: q as f64 / k as f64,
        log2_code_size: (code.size() as f64).log2(),
    }
}

/// Corollary 4.2 row: instance `2^d Q^{d/2} × d` over `[Q]`, factor `2Q/d`.
pub fn table1_corollary42(d: u32, q: u32) -> Table1Row {
    assert!(d.is_multiple_of(2), "Corollary 4.2 uses k = d/2");
    assert!(q as f64 >= d as f64 / 2.0, "Corollary 4.2 needs Q >= d/2");
    let code = ConstantWeightCode::new(d, d / 2);
    Table1Row {
        label: "Corollary 4.2",
        log2_rows: d as f64 + (d as f64 / 2.0) * (q as f64).log2(),
        columns: d as f64,
        alphabet: q as f64,
        approx_factor: 2.0 * q as f64 / d as f64,
        log2_code_size: (code.size() as f64).log2(),
    }
}

/// Corollary 4.3 row: `Q = d`, factor exactly 2.
pub fn table1_corollary43(d: u32) -> Table1Row {
    let mut row = table1_corollary42(d, d);
    row.label = "Corollary 4.3";
    row
}

/// Corollary 4.4 row: alphabet reduced to `[q]`, dimension grown to
/// `d·log_q Q`; factor unchanged at `2Q/d`.
pub fn table1_corollary44(d: u32, big_q: u32, small_q: u32) -> Table1Row {
    assert!(small_q >= 2 && small_q <= big_q);
    let mut row = table1_corollary42(d, big_q);
    row.label = "Corollary 4.4";
    row.columns = d as f64 * (big_q as f64).log(small_q as f64);
    row.alphabet = small_q as f64;
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index_problem::run_trials;

    #[test]
    fn exact_oracle_solves_index_perfectly() {
        // d=12, k=3, Q=8: separation 8/3 ~ 2.7.
        let p: F0Protocol<ExactF0Oracle> = F0Protocol::new(12, 3, 8, 24, 1);
        let r = run_trials(&p, 60, 2);
        assert_eq!(r.accuracy(), 1.0, "exact oracle must decide Index exactly");
    }

    #[test]
    fn separation_formula_and_threshold_ordering() {
        let p: F0Protocol<ExactF0Oracle> = F0Protocol::new(16, 4, 16, 8, 3);
        assert!((p.separation() - 4.0).abs() < 1e-12);
        let yes = 16f64.powi(4);
        let no = 4.0 * 16f64.powi(3);
        assert!(p.threshold() > no && p.threshold() < yes);
    }

    #[test]
    fn yes_case_f0_reaches_floor_no_case_below_ceiling() {
        // Verify the combinatorial counts behind Equation (3) directly.
        let d = 12;
        let k = 3;
        let q = 6;
        let code = ConstantWeightCode::new(d, k);
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let words: Vec<u64> = (0..16)
            .map(|_| {
                let r = (rng.next_u64() as u128) % code.size();
                code.unrank(r)
            })
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let inst = F0Instance::build(code, q, &words);
        let oracle = ExactF0Oracle::build(&inst.data);
        // Yes case: query a held word's support.
        let cols = ColumnSet::from_mask(d, words[0]).expect("valid");
        assert!(oracle.f0(&cols) >= inst.yes_threshold() as f64);
        // No case: find a codeword not held.
        let absent = (0..code.size())
            .map(|r| code.unrank(r))
            .find(|w| !words.contains(w))
            .expect("code has unheld words");
        let cols = ColumnSet::from_mask(d, absent).expect("valid");
        assert!(oracle.f0(&cols) <= inst.no_ceiling() as f64);
    }

    #[test]
    fn table1_rows_match_paper() {
        // Theorem 4.1 with k = ad/2 (a in [0,1)): code size >= 2^{ad/2}.
        let row = table1_theorem41(16, 4, 16);
        assert_eq!(row.approx_factor, 4.0);
        assert_eq!(row.columns, 16.0);
        // (d/k)^k = 4^4 = 256 -> log2 = 8.
        assert!((row.log2_rows - 8.0).abs() < 1e-9);
        // C(16,4) = 1820 -> log2 ~ 10.8 >= 8 (the (d/k)^k bound).
        assert!(row.log2_code_size >= row.log2_rows - 1e-9);

        let row = table1_corollary42(12, 16);
        assert!((row.approx_factor - 32.0 / 12.0).abs() < 1e-9);
        // 2^d Q^{d/2}: log2 = 12 + 6*4 = 36.
        assert!((row.log2_rows - 36.0).abs() < 1e-9);

        let row = table1_corollary43(12);
        assert_eq!(row.approx_factor, 2.0);
        assert_eq!(row.alphabet, 12.0);

        let row = table1_corollary44(12, 16, 2);
        assert_eq!(row.alphabet, 2.0);
        // Columns grow to d log_2 16 = 12 * 4 = 48.
        assert!((row.columns - 48.0).abs() < 1e-9);
        // Factor unchanged.
        assert!((row.approx_factor - 32.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn corollary43_central_binomial_space() {
        // Cor 4.3's code is B(d, d/2): size >= 2^d / sqrt(2d).
        let row = table1_corollary43(16);
        let floor = 16.0 - 0.5 * (32.0f64).log2();
        assert!(row.log2_code_size >= floor - 1e-9);
    }

    use pfe_hash::rng::Xoshiro256pp;

    #[test]
    #[should_panic(expected = "needs k < d/2")]
    fn theorem41_rejects_large_k() {
        table1_theorem41(8, 4, 16);
    }
}
