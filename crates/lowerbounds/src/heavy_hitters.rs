//! Executable reduction of Theorem 5.3: projected `ℓ_p` heavy hitters for
//! `p > 1` solve Index over a Lemma 3.2 random code, so they need
//! `2^{Ω(d)}` space.
//!
//! The instance: `2^{εd}` copies of the all-ones row plus `star_2(T)`. Bob
//! queries `S = [d] \ supp(y)` — the *complement* of his word's support —
//! and asks whether the all-zero pattern `0_S` is a `φ`-`ℓ_p` heavy
//! hitter. If `y ∈ T`, all `2^{εd}` children of `y` project to `0_S`; if
//! not, only the bounded cross-talk from other codewords does (at most
//! `2^{(ε²+γ)d}` per codeword), which the code's intersection cap keeps
//! exponentially smaller.

use pfe_codes::random_code::{RandomCode, RandomCodeParams};
use pfe_row::{ColumnSet, Dataset, FrequencyVector, PatternKey};
use pfe_stream::adversarial::HeavyHitterInstance;

use crate::index_problem::MembershipProtocol;

/// A heavy-hitter oracle under test: decides whether a pattern is a
/// `φ`-`ℓ_p` heavy hitter of the projection.
pub trait HhOracle {
    /// Ingest Alice's dataset.
    fn build(data: &Dataset) -> Self;

    /// Is `key` a `φ`-`ℓ_p` heavy hitter of `f(A, cols)`?
    fn is_heavy(&self, cols: &ColumnSet, key: PatternKey, phi: f64, p: f64) -> bool;

    /// Summary size in bytes.
    fn bytes(&self) -> usize;
}

/// Exact heavy-hitter oracle (retains everything).
pub struct ExactHhOracle(pfe_core::ExactSummary);

impl HhOracle for ExactHhOracle {
    fn build(data: &Dataset) -> Self {
        Self(pfe_core::ExactSummary::build(data))
    }

    fn is_heavy(&self, cols: &ColumnSet, key: PatternKey, phi: f64, p: f64) -> bool {
        self.0
            .heavy_hitters(cols, phi, p)
            .expect("valid query")
            .iter()
            .any(|h| h.key == key)
    }

    fn bytes(&self) -> usize {
        use pfe_sketch::traits::SpaceUsage;
        self.0.space_bytes()
    }
}

/// The Theorem 5.3 protocol.
pub struct HhProtocol<O: HhOracle> {
    /// The Lemma 3.2 random code.
    pub code: RandomCode,
    /// Moment order `p > 1`.
    pub p: f64,
    /// Heaviness threshold `φ` (the proof uses a small constant; 1/4 in
    /// the Case-2 calculation).
    pub phi: f64,
    _oracle: std::marker::PhantomData<O>,
}

impl<O: HhOracle> HhProtocol<O> {
    /// Generate the code and fix `(p, φ)`.
    ///
    /// # Panics
    /// Panics if `p <= 1` or code generation fails.
    pub fn new(params: RandomCodeParams, p: f64, phi: f64) -> Self {
        let code = RandomCode::generate(params).expect("Lemma 3.2 code generates");
        Self::with_code(code, p, phi)
    }

    /// Use an externally constructed (e.g. greedy, deterministic) code.
    ///
    /// # Panics
    /// Panics if `p <= 1` or `phi` is out of range.
    pub fn with_code(code: RandomCode, p: f64, phi: f64) -> Self {
        assert!(p > 1.0, "Theorem 5.3 concerns p > 1");
        assert!(phi > 0.0 && phi < 1.0);
        Self {
            code,
            p,
            phi,
            _oracle: std::marker::PhantomData,
        }
    }

    /// Bob's query for universe index `i`: the complement of `supp(y_i)`.
    pub fn query_for(&self, index: usize) -> ColumnSet {
        let d = self.code.params().d;
        let y = self.code.words()[index];
        ColumnSet::from_mask(d, ((1u64 << d) - 1) & !y).expect("complement in range")
    }
}

impl<O: HhOracle> MembershipProtocol for HhProtocol<O> {
    type Summary = (O, usize);

    fn universe(&self) -> usize {
        self.code.len()
    }

    fn alice(&self, held: &[usize]) -> (O, usize) {
        let inst = HeavyHitterInstance::build(self.code.clone(), held);
        let oracle = O::build(&inst.data);
        let bytes = oracle.bytes();
        (oracle, bytes)
    }

    fn bob(&self, summary: &(O, usize), index: usize) -> bool {
        let cols = self.query_for(index);
        // 0_S is the all-zero pattern: key 0.
        summary
            .0
            .is_heavy(&cols, PatternKey::new(0), self.phi, self.p)
    }

    fn summary_bytes(&self, summary: &(O, usize)) -> usize {
        summary.1
    }
}

/// The two case quantities from the Theorem 5.3 proof, measured exactly on
/// a concrete instance: the frequency of `0_S` and the total `F_p`.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseMeasurement {
    /// `f_{e(0_S)}`.
    pub zero_pattern_count: u64,
    /// `F_p(A, S)`.
    pub fp_value: f64,
    /// The heaviness ratio `f_{e(0_S)} / F_p^{1/p}`.
    pub heaviness: f64,
}

/// Measure the proof's case quantities for a given held set and test word.
pub fn measure_case(code: &RandomCode, held: &[usize], y_index: usize, p: f64) -> CaseMeasurement {
    let inst = HeavyHitterInstance::build(code.clone(), held);
    let d = code.params().d;
    let y = code.words()[y_index];
    let cols = ColumnSet::from_mask(d, ((1u64 << d) - 1) & !y).expect("valid");
    let f = FrequencyVector::compute(&inst.data, &cols).expect("fits");
    let zero = f.frequency(PatternKey::new(0));
    let fp = f.fp(p);
    CaseMeasurement {
        zero_pattern_count: zero,
        fp_value: fp,
        heaviness: zero as f64 / fp.powf(1.0 / p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index_problem::run_trials;

    /// d=32, ε=0.25 (weight 8), γ=0.03 (intersection cap 2): parameters in
    /// the finite-d separating regime (no-case crosstalk `|C|·2^cap = 48`
    /// stays far below the yes-case floor `2^{εd} = 256`).
    fn test_params(seed: u64) -> RandomCodeParams {
        RandomCodeParams {
            d: 32,
            epsilon: 0.25,
            gamma: 0.03,
            target_size: 12,
            seed,
        }
    }

    #[test]
    fn exact_oracle_solves_index() {
        let p: HhProtocol<ExactHhOracle> = HhProtocol::new(test_params(1), 2.0, 0.25);
        let r = run_trials(&p, 30, 2);
        assert_eq!(
            r.accuracy(),
            1.0,
            "exact heavy-hitter oracle must decide Index exactly"
        );
    }

    #[test]
    fn yes_case_heaviness_dominates_no_case() {
        let code = RandomCode::generate(test_params(3)).expect("code");
        let p = 2.0;
        // Case 1: Alice holds y (index 0) among others.
        let with_y = measure_case(&code, &[0, 1, 2, 3], 0, p);
        // Case 2: same set without y.
        let without_y = measure_case(&code, &[1, 2, 3], 0, p);
        assert!(
            with_y.zero_pattern_count >= 1 << code.params().weight(),
            "yes case: 0_S count {} below 2^(eps d)",
            with_y.zero_pattern_count
        );
        assert!(
            with_y.heaviness > 4.0 * without_y.heaviness,
            "heaviness gap too small: {} vs {}",
            with_y.heaviness,
            without_y.heaviness
        );
    }

    #[test]
    fn no_case_zero_count_bounded_by_crosstalk() {
        let code = RandomCode::generate(test_params(4)).expect("code");
        // The proof's bound: without y, f(0_S) <= |T| * 2^{(eps^2+gamma)d}.
        let held: Vec<usize> = (1..code.len()).collect();
        let m = measure_case(&code, &held, 0, 2.0);
        let cap = code.params().intersection_cap();
        let bound = held.len() as u64 * (1u64 << cap);
        assert!(
            m.zero_pattern_count <= bound,
            "no-case 0_S count {} above crosstalk bound {bound}",
            m.zero_pattern_count
        );
    }

    #[test]
    fn padding_rows_guarantee_fp_floor() {
        // F_p >= (2^{eps d})^p from the all-ones block, in both cases.
        let code = RandomCode::generate(test_params(5)).expect("code");
        let k = code.params().weight();
        let m = measure_case(&code, &[1, 2], 0, 2.0);
        let floor = (1u64 << k) as f64;
        assert!(
            m.fp_value >= floor.powi(2),
            "F_p {} below padding floor",
            m.fp_value
        );
    }

    #[test]
    #[should_panic(expected = "concerns p > 1")]
    fn rejects_small_p() {
        let _: HhProtocol<ExactHhOracle> = HhProtocol::new(test_params(6), 0.5, 0.25);
    }
}
