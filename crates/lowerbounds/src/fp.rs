//! Executable reduction of Theorem 5.4: projected `F_p` estimation for
//! `p ≠ 1` solves Index.
//!
//! - `p > 1`: the Theorem 5.3 instance works unchanged — Bob monitors
//!   `F_p(A, S)` on the complement query instead of the heavy-hitter list.
//! - `0 < p < 1`: Alice encodes `star_2(T)` only; Bob queries
//!   `S = supp(y)` and thresholds `F_p(A, S)` at `2^{εd}`: if `y ∈ T`
//!   every one of the `2^{εd}` children of `y` contributes at least 1, and
//!   if not, the code's intersection cap plus concavity (Equation 5 /
//!   Lemma A.2) keeps `F_p` at `2^{(1−α)εd}` for a constant `α > 0`.

use pfe_codes::random_code::{RandomCode, RandomCodeParams};
use pfe_row::{ColumnSet, Dataset, FrequencyVector};
use pfe_stream::adversarial::{FpInstance, HeavyHitterInstance};

use crate::index_problem::MembershipProtocol;

/// An `F_p` oracle under test.
pub trait FpOracle {
    /// Ingest Alice's dataset.
    fn build(data: &Dataset) -> Self;

    /// Estimate projected `F_p` on `cols`.
    fn fp(&self, cols: &ColumnSet, p: f64) -> f64;

    /// Summary size in bytes.
    fn bytes(&self) -> usize;
}

/// Exact `F_p` oracle.
pub struct ExactFpOracle(pfe_core::ExactSummary);

impl FpOracle for ExactFpOracle {
    fn build(data: &Dataset) -> Self {
        Self(pfe_core::ExactSummary::build(data))
    }

    fn fp(&self, cols: &ColumnSet, p: f64) -> f64 {
        self.0.fp(cols, p).expect("valid query").value
    }

    fn bytes(&self) -> usize {
        use pfe_sketch::traits::SpaceUsage;
        self.0.space_bytes()
    }
}

/// The Theorem 5.4 protocol, `0 < p < 1` branch.
pub struct FpSmallProtocol<O: FpOracle> {
    /// The Lemma 3.2 random code.
    pub code: RandomCode,
    /// Moment order `0 < p < 1`.
    pub p: f64,
    _oracle: std::marker::PhantomData<O>,
}

impl<O: FpOracle> FpSmallProtocol<O> {
    /// Generate the code and fix `p`, checking that the parameters are in
    /// the separating regime (the finite-`d` analogue of the proof's
    /// "choose `c` small enough": [`Self::no_case_ceiling`] must fall below
    /// the yes-case floor `2^{εd}`).
    ///
    /// # Panics
    /// Panics unless `0 < p < 1` and the parameters separate.
    pub fn new(params: RandomCodeParams, p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "this branch handles 0 < p < 1");
        let code = RandomCode::generate(params).expect("Lemma 3.2 code generates");
        Self::with_code(code, p)
    }

    /// Use an externally constructed (e.g. greedy, deterministic) code.
    ///
    /// # Panics
    /// Panics unless `0 < p < 1` and the parameters separate.
    pub fn with_code(code: RandomCode, p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "this branch handles 0 < p < 1");
        let s = Self {
            code,
            p,
            _oracle: std::marker::PhantomData,
        };
        assert!(
            s.no_case_ceiling() < s.yes_case_floor(),
            "parameters do not separate: no-case ceiling {} >= yes-case floor {} \
             (increase d, shrink gamma, or lower p)",
            s.no_case_ceiling(),
            s.yes_case_floor()
        );
        s
    }

    /// Yes-case floor: `2^{εd}` — each of the `2^{εd}` children of `y`
    /// contributes at least `1^p = 1` to `F_p(A, supp(y))`.
    pub fn yes_case_floor(&self) -> f64 {
        2f64.powi(self.code.params().weight() as i32)
    }

    /// No-case ceiling (the finite-`d` form of Equation (5)): each held
    /// `y′` projects its `2^{εd}` children onto at most `2^{cap}` patterns
    /// supported in `supp(y′) ∩ supp(y)`, each with multiplicity at most
    /// `2^{εd − |∩|}`; for `p < 1` the exponent `|∩| + (εd − |∩|)p` is
    /// maximized at `|∩| = cap`, and subadditivity of `x^p` lets parents
    /// be summed. Ceiling: `|C| · 2^{cap + (εd − cap)p}`.
    pub fn no_case_ceiling(&self) -> f64 {
        let k = self.code.params().weight() as f64;
        let cap = self.code.params().intersection_cap() as f64;
        self.code.len() as f64 * 2f64.powf(cap + (k - cap) * self.p)
    }

    /// Decision threshold: the geometric mean of the ceiling and floor.
    pub fn threshold(&self) -> f64 {
        (self.no_case_ceiling() * self.yes_case_floor()).sqrt()
    }
}

impl<O: FpOracle> MembershipProtocol for FpSmallProtocol<O> {
    type Summary = (O, usize);

    fn universe(&self) -> usize {
        self.code.len()
    }

    fn alice(&self, held: &[usize]) -> (O, usize) {
        let inst = FpInstance::build(self.code.clone(), held);
        let oracle = O::build(&inst.data);
        let bytes = oracle.bytes();
        (oracle, bytes)
    }

    fn bob(&self, summary: &(O, usize), index: usize) -> bool {
        let d = self.code.params().d;
        let y = self.code.words()[index];
        let cols = ColumnSet::from_mask(d, y).expect("support in range");
        summary.0.fp(&cols, self.p) >= self.threshold()
    }

    fn summary_bytes(&self, summary: &(O, usize)) -> usize {
        summary.1
    }
}

/// The Theorem 5.4 protocol, `p > 1` branch (the Theorem 5.3 instance with
/// an `F_p` decision).
pub struct FpLargeProtocol<O: FpOracle> {
    /// The Lemma 3.2 random code.
    pub code: RandomCode,
    /// Moment order `p > 1`.
    pub p: f64,
    _oracle: std::marker::PhantomData<O>,
}

impl<O: FpOracle> FpLargeProtocol<O> {
    /// Generate the code and fix `p`.
    ///
    /// # Panics
    /// Panics unless `p > 1`.
    pub fn new(params: RandomCodeParams, p: f64) -> Self {
        assert!(p > 1.0, "this branch handles p > 1");
        let code = RandomCode::generate(params).expect("Lemma 3.2 code generates");
        Self {
            code,
            p,
            _oracle: std::marker::PhantomData,
        }
    }
}

impl<O: FpOracle> FpLargeProtocol<O> {
    /// Calibrated threshold: midpoint (in log space) between the measured
    /// yes-case and no-case `F_p`, computed from the *construction* (not
    /// Alice's actual set): with `y ∈ T` the pattern `0_S` gains `2^{εd}`
    /// occurrences, raising `F_p` by ~`(2^{εd})^p` over the all-ones
    /// block's contribution, which is present either way.
    pub fn threshold(&self) -> f64 {
        let k = self.code.params().weight();
        let block = (1u64 << k) as f64; // 2^{εd} all-ones rows
                                        // Both cases contain the all-ones block: F_p >= block^p. The yes
                                        // case adds another ~block^p from 0_S. Separate at 1.5x block^p.
        1.5 * block.powf(self.p)
    }
}

impl<O: FpOracle> MembershipProtocol for FpLargeProtocol<O> {
    type Summary = (O, usize);

    fn universe(&self) -> usize {
        self.code.len()
    }

    fn alice(&self, held: &[usize]) -> (O, usize) {
        let inst = HeavyHitterInstance::build(self.code.clone(), held);
        let oracle = O::build(&inst.data);
        let bytes = oracle.bytes();
        (oracle, bytes)
    }

    fn bob(&self, summary: &(O, usize), index: usize) -> bool {
        let d = self.code.params().d;
        let y = self.code.words()[index];
        let cols = ColumnSet::from_mask(d, ((1u64 << d) - 1) & !y).expect("valid");
        summary.0.fp(&cols, self.p) >= self.threshold()
    }

    fn summary_bytes(&self, summary: &(O, usize)) -> usize {
        summary.1
    }
}

/// Measured yes/no `F_p` values for a concrete small-`p` instance
/// (the quantities Equation (5) bounds).
#[derive(Debug, Clone, PartialEq)]
pub struct FpGap {
    /// `F_p(A, supp(y))` when `y ∈ T`.
    pub yes_fp: f64,
    /// `F_p(A, supp(y))` when `y ∉ T` (same `T \ {y}`).
    pub no_fp: f64,
}

/// Measure the Theorem 5.4 gap for word `y_index` against held set
/// `others` (which must not contain `y_index`).
pub fn measure_fp_gap(code: &RandomCode, others: &[usize], y_index: usize, p: f64) -> FpGap {
    assert!(!others.contains(&y_index), "others must exclude y");
    let d = code.params().d;
    let y = code.words()[y_index];
    let cols = ColumnSet::from_mask(d, y).expect("valid");
    let mut with_y = others.to_vec();
    with_y.push(y_index);
    let inst_yes = FpInstance::build(code.clone(), &with_y);
    let inst_no = FpInstance::build(code.clone(), others);
    let f_yes = FrequencyVector::compute(&inst_yes.data, &cols).expect("fits");
    let f_no = FrequencyVector::compute(&inst_no.data, &cols).expect("fits");
    FpGap {
        yes_fp: f_yes.fp(p),
        no_fp: f_no.fp(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index_problem::run_trials;

    /// d=32, ε=0.25 (weight 8), γ=0.03 (intersection cap 2): the smallest
    /// configuration where the finite-d ceilings separate cleanly.
    fn params(seed: u64) -> RandomCodeParams {
        RandomCodeParams {
            d: 32,
            epsilon: 0.25,
            gamma: 0.03,
            target_size: 12,
            seed,
        }
    }

    #[test]
    fn small_p_exact_oracle_solves_index() {
        let p: FpSmallProtocol<ExactFpOracle> = FpSmallProtocol::new(params(1), 0.25);
        let r = run_trials(&p, 30, 2);
        assert_eq!(r.accuracy(), 1.0);
    }

    #[test]
    fn separating_regime_checked() {
        let p: FpSmallProtocol<ExactFpOracle> = FpSmallProtocol::new(params(9), 0.25);
        assert!(p.no_case_ceiling() < p.threshold());
        assert!(p.threshold() < p.yes_case_floor());
    }

    #[test]
    fn large_p_exact_oracle_solves_index() {
        let p: FpLargeProtocol<ExactFpOracle> = FpLargeProtocol::new(params(3), 2.0);
        let r = run_trials(&p, 30, 4);
        assert_eq!(r.accuracy(), 1.0);
    }

    #[test]
    fn measured_gap_exceeds_constant() {
        let code = RandomCode::generate(params(5)).expect("code");
        let others: Vec<usize> = (1..8).collect();
        let gap = measure_fp_gap(&code, &others, 0, 0.25);
        // Yes case: F_p >= 2^{εd} = 2^8 = 256 (every child of y counts >= 1).
        assert!(gap.yes_fp >= 256.0, "yes F_p {}", gap.yes_fp);
        // The separation is at least a constant factor.
        assert!(
            gap.yes_fp / gap.no_fp > 1.5,
            "gap {} / {} too small",
            gap.yes_fp,
            gap.no_fp
        );
    }

    #[test]
    fn gap_widens_with_smaller_p() {
        // Equation (5): for smaller p the no-case mass spreads thinner, so
        // the yes/no ratio grows as p decreases.
        let code = RandomCode::generate(params(6)).expect("code");
        let others: Vec<usize> = (1..8).collect();
        let g_quarter = measure_fp_gap(&code, &others, 0, 0.25);
        let g_09 = measure_fp_gap(&code, &others, 0, 0.9);
        let ratio_quarter = g_quarter.yes_fp / g_quarter.no_fp;
        let ratio_09 = g_09.yes_fp / g_09.no_fp;
        assert!(
            ratio_quarter >= ratio_09,
            "p=0.25 ratio {ratio_quarter} below p=0.9 ratio {ratio_09}"
        );
    }

    #[test]
    #[should_panic(expected = "handles 0 < p < 1")]
    fn small_branch_rejects_large_p() {
        let _: FpSmallProtocol<ExactFpOracle> = FpSmallProtocol::new(params(7), 1.5);
    }

    #[test]
    #[should_panic(expected = "handles p > 1")]
    fn large_branch_rejects_small_p() {
        let _: FpLargeProtocol<ExactFpOracle> = FpLargeProtocol::new(params(8), 0.5);
    }
}
