//! Weighted reservoir sampling (Efraimidis–Spirakis A-Res).
//!
//! Keeps the `k` items with the largest keys `u_i^{1/w_i}`
//! (`u_i ~ U(0,1)`), which yields a without-replacement sample where the
//! probability of inclusion is proportional to weight — the substrate for
//! `ℓ_p`-sampling experiments: sampling patterns with weight `f_i^p` from a
//! materialized frequency vector realizes the "naïve" exact `ℓ_p` sampler
//! the paper's Theorem 5.5 shows cannot be compressed for `p ≠ 1`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::traits::SpaceUsage;
use pfe_hash::rng::Xoshiro256pp;

/// Heap entry: (key, insertion index, item). Min-heap by key via reversed
/// ordering so the root is the weakest survivor.
#[derive(Debug, Clone)]
struct Entry<T> {
    key: f64,
    tie: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.tie == other.tie
    }
}

impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: smaller key = "greater" for BinaryHeap max-root, making
        // the root the minimum-key entry. Ties broken by insertion index.
        other
            .key
            .partial_cmp(&self.key)
            .expect("keys are finite")
            .then(other.tie.cmp(&self.tie))
    }
}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Weighted without-replacement reservoir of capacity `k`.
#[derive(Debug, Clone)]
pub struct WeightedReservoir<T> {
    heap: BinaryHeap<Entry<T>>,
    k: usize,
    seen: u64,
    total_weight: f64,
    rng: Xoshiro256pp,
}

impl<T> WeightedReservoir<T> {
    /// Create with capacity `k`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0, "weighted reservoir capacity must be positive");
        Self {
            heap: BinaryHeap::with_capacity(k + 1),
            k,
            seen: 0,
            total_weight: 0.0,
            rng: Xoshiro256pp::seed_from_u64(seed),
        }
    }

    /// Capacity `k`.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Items observed.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Total weight observed.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Observe `item` with `weight > 0` (zero/negative weights are skipped —
    /// they have zero inclusion probability by definition).
    pub fn insert(&mut self, item: T, weight: f64) {
        self.seen += 1;
        if !weight.is_finite() || weight <= 0.0 {
            return;
        }
        self.total_weight += weight;
        // A-Res key: u^(1/w); computed in log space for numerical range.
        let u = self.rng.f64_open_zero();
        let key = u.ln() / weight; // monotone transform of u^(1/w); larger is better
        if self.heap.len() < self.k {
            self.heap.push(Entry {
                key,
                tie: self.seen,
                item,
            });
            return;
        }
        let weakest = self.heap.peek().expect("nonempty at capacity");
        if key > weakest.key {
            self.heap.pop();
            self.heap.push(Entry {
                key,
                tie: self.seen,
                item,
            });
        }
    }

    /// Current sample (order unspecified).
    pub fn sample(&self) -> Vec<&T> {
        self.heap.iter().map(|e| &e.item).collect()
    }

    /// Consume and return the sampled items.
    pub fn into_sample(self) -> Vec<T> {
        self.heap.into_iter().map(|e| e.item).collect()
    }
}

impl<T> SpaceUsage for WeightedReservoir<T> {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.heap.capacity() * std::mem::size_of::<Entry<T>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_respected() {
        let mut r = WeightedReservoir::new(5, 1);
        for i in 0..100u64 {
            r.insert(i, 1.0);
        }
        assert_eq!(r.sample().len(), 5);
    }

    #[test]
    fn heavy_weight_dominates_k1() {
        // One item with weight 1000 among 100 items of weight 1: a k=1
        // sample picks it with probability ~1000/1100 ~ 0.91.
        let runs = 2000;
        let mut hits = 0;
        for seed in 0..runs {
            let mut r = WeightedReservoir::new(1, seed);
            for i in 0..100u64 {
                r.insert(i, 1.0);
            }
            r.insert(999, 1000.0);
            if *r.sample()[0] == 999u64 {
                hits += 1;
            }
        }
        let frac = hits as f64 / runs as f64;
        assert!(
            (frac - 1000.0 / 1100.0).abs() < 0.04,
            "inclusion fraction {frac}"
        );
    }

    #[test]
    fn uniform_weights_match_plain_reservoir_marginals() {
        let (k, n, runs) = (4usize, 40u64, 4000u64);
        let mut hits = vec![0u32; n as usize];
        for seed in 0..runs {
            let mut r = WeightedReservoir::new(k, seed);
            for i in 0..n {
                r.insert(i, 1.0);
            }
            for &x in &r.into_sample() {
                hits[x as usize] += 1;
            }
        }
        let expect = runs as f64 * k as f64 / n as f64;
        for (i, &h) in hits.iter().enumerate() {
            let dev = (h as f64 - expect).abs() / expect;
            assert!(dev < 0.3, "item {i} inclusion deviates {dev}");
        }
    }

    #[test]
    fn zero_and_negative_weights_skipped() {
        let mut r = WeightedReservoir::new(3, 2);
        r.insert(1u64, 0.0);
        r.insert(2, -5.0);
        r.insert(3, f64::NAN);
        assert!(r.sample().is_empty());
        r.insert(4, 1.0);
        assert_eq!(r.sample().len(), 1);
    }

    #[test]
    fn total_weight_tracked() {
        let mut r = WeightedReservoir::new(2, 3);
        r.insert(1u64, 2.0);
        r.insert(2, 3.0);
        r.insert(3, 0.0);
        assert!((r.total_weight() - 5.0).abs() < 1e-12);
        assert_eq!(r.seen(), 3);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut r = WeightedReservoir::new(3, seed);
            for i in 0..50u64 {
                r.insert(i, (i + 1) as f64);
            }
            let mut s = r.into_sample();
            s.sort_unstable();
            s
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        WeightedReservoir::<u64>::new(0, 0);
    }
}
