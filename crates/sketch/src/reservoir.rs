//! Uniform reservoir sampling (Vitter's Algorithm R).
//!
//! Maintains a uniform sample of `t` items from a stream of unknown length —
//! the entire machinery behind the paper's Theorem 5.1 upper bound: a
//! uniform row sample taken *before* the query `C` arrives supports
//! `ε‖f‖_1`-additive frequency estimates for every later projection. The
//! sampler is generic over the item type so `pfe-core` can store full rows.

use crate::traits::SpaceUsage;
use pfe_hash::rng::Xoshiro256pp;

/// Uniform reservoir sampler of capacity `t`.
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    items: Vec<T>,
    t: usize,
    seen: u64,
    rng: Xoshiro256pp,
}

impl<T> Reservoir<T> {
    /// Create with capacity `t`.
    ///
    /// # Panics
    /// Panics if `t == 0`.
    pub fn new(t: usize, seed: u64) -> Self {
        assert!(t > 0, "reservoir capacity must be positive");
        Self {
            items: Vec::with_capacity(t.min(1 << 20)),
            t,
            seen: 0,
            rng: Xoshiro256pp::seed_from_u64(seed),
        }
    }

    /// Capacity `t`.
    pub fn capacity(&self) -> usize {
        self.t
    }

    /// Stream length observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Current sample (length `min(t, seen)`).
    pub fn sample(&self) -> &[T] {
        &self.items
    }

    /// The sampling rate `min(t, seen)/seen` used to scale estimates
    /// (Theorem 5.1's `α = t/n`); 1.0 while under-full, 0 on an empty
    /// stream.
    pub fn rate(&self) -> f64 {
        if self.seen == 0 {
            0.0
        } else {
            self.items.len() as f64 / self.seen as f64
        }
    }

    /// Observe one item.
    pub fn insert(&mut self, item: T) {
        self.seen += 1;
        if self.items.len() < self.t {
            self.items.push(item);
            return;
        }
        // Algorithm R: replace slot j with probability t/seen.
        let j = self.rng.range_u64(self.seen);
        if (j as usize) < self.t {
            self.items[j as usize] = item;
        }
    }

    /// Estimate the stream frequency of items matching `pred`:
    /// `(matching in sample) / rate` (the `ĝ/α` estimator of Theorem 5.1).
    pub fn estimate_count<F: Fn(&T) -> bool>(&self, pred: F) -> f64 {
        if self.seen == 0 {
            return 0.0;
        }
        let g = self.items.iter().filter(|x| pred(x)).count() as f64;
        g / self.rate()
    }
}

impl<T> SpaceUsage for Reservoir<T> {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.items.capacity() * std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn underfull_keeps_everything() {
        let mut r = Reservoir::new(100, 1);
        for i in 0..50u64 {
            r.insert(i);
        }
        assert_eq!(r.sample().len(), 50);
        assert_eq!(r.rate(), 1.0);
        let mut s: Vec<u64> = r.sample().to_vec();
        s.sort_unstable();
        assert_eq!(s, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn capacity_respected() {
        let mut r = Reservoir::new(10, 2);
        for i in 0..10_000u64 {
            r.insert(i);
        }
        assert_eq!(r.sample().len(), 10);
        assert_eq!(r.seen(), 10_000);
    }

    #[test]
    fn uniformity_over_positions() {
        // Each stream position should land in the final sample with
        // probability t/n; aggregate over many independent runs.
        let (t, n, runs) = (10usize, 100u64, 3000u64);
        let mut hits = vec![0u32; n as usize];
        for seed in 0..runs {
            let mut r = Reservoir::new(t, seed);
            for i in 0..n {
                r.insert(i);
            }
            for &x in r.sample() {
                hits[x as usize] += 1;
            }
        }
        let expect = runs as f64 * t as f64 / n as f64;
        for (i, &h) in hits.iter().enumerate() {
            let dev = (h as f64 - expect).abs() / expect;
            assert!(dev < 0.30, "position {i} inclusion deviates {dev}");
        }
    }

    #[test]
    fn count_estimation_unbiased() {
        // Stream: 30% of items match; estimate should track 0.3 * n.
        let n = 50_000u64;
        let mut r = Reservoir::new(2000, 7);
        for i in 0..n {
            r.insert(i % 10);
        }
        let est = r.estimate_count(|&x| x < 3);
        let truth = 0.3 * n as f64;
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.1, "relative error {rel}");
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut r = Reservoir::new(5, seed);
            for i in 0..1000u64 {
                r.insert(i);
            }
            r.sample().to_vec()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn space_bounded_by_capacity() {
        let mut r = Reservoir::new(64, 0);
        for i in 0..1_000_000u64 {
            r.insert(i);
        }
        assert!(r.space_bytes() < 64 * 8 + 256);
    }

    #[test]
    fn empty_stream_estimates_zero() {
        let r: Reservoir<u64> = Reservoir::new(4, 0);
        assert_eq!(r.estimate_count(|_| true), 0.0);
        assert_eq!(r.rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        Reservoir::<u64>::new(0, 0);
    }
}
