//! Uniform reservoir sampling (Vitter's Algorithm R).
//!
//! Maintains a uniform sample of `t` items from a stream of unknown length —
//! the entire machinery behind the paper's Theorem 5.1 upper bound: a
//! uniform row sample taken *before* the query `C` arrives supports
//! `ε‖f‖_1`-additive frequency estimates for every later projection. The
//! sampler is generic over the item type so `pfe-core` can store full rows.

use crate::traits::SpaceUsage;
use pfe_hash::rng::Xoshiro256pp;
use pfe_persist::Persist;

/// Uniform reservoir sampler of capacity `t`.
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    items: Vec<T>,
    t: usize,
    seen: u64,
    rng: Xoshiro256pp,
}

impl<T> Reservoir<T> {
    /// Create with capacity `t`.
    ///
    /// # Panics
    /// Panics if `t == 0`.
    pub fn new(t: usize, seed: u64) -> Self {
        assert!(t > 0, "reservoir capacity must be positive");
        Self {
            items: Vec::with_capacity(t.min(1 << 20)),
            t,
            seen: 0,
            rng: Xoshiro256pp::seed_from_u64(seed),
        }
    }

    /// Capacity `t`.
    pub fn capacity(&self) -> usize {
        self.t
    }

    /// Stream length observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Current sample (length `min(t, seen)`).
    pub fn sample(&self) -> &[T] {
        &self.items
    }

    /// The sampling rate `min(t, seen)/seen` used to scale estimates
    /// (Theorem 5.1's `α = t/n`); 1.0 while under-full, 0 on an empty
    /// stream.
    pub fn rate(&self) -> f64 {
        if self.seen == 0 {
            0.0
        } else {
            self.items.len() as f64 / self.seen as f64
        }
    }

    /// Observe one item.
    pub fn insert(&mut self, item: T) {
        self.seen += 1;
        if self.items.len() < self.t {
            self.items.push(item);
            return;
        }
        // Algorithm R: replace slot j with probability t/seen.
        let j = self.rng.range_u64(self.seen);
        if (j as usize) < self.t {
            self.items[j as usize] = item;
        }
    }

    /// Merge another reservoir over a disjoint stream segment, producing a
    /// uniform sample of the concatenated stream.
    ///
    /// The number of output items taken from each side follows the
    /// multivariate hypergeometric law of a uniform `t`-subset of the
    /// concatenated stream, realized sequentially: each draw picks side A
    /// with probability `remaining_A / (remaining_A + remaining_B)` over
    /// *stream positions* (decremented by one per draw), then moves a
    /// uniformly chosen unused item from that side's sample. A uniform
    /// `j`-subset of a uniform sample is a uniform `j`-subset of the
    /// stream, so every stream position is equally likely in the result.
    /// Randomness comes from `self`'s seeded generator, so merges are
    /// deterministic per seed.
    ///
    /// # Panics
    /// Panics on capacity mismatch.
    pub fn merge(&mut self, other: &Self)
    where
        T: Clone,
    {
        assert_eq!(self.t, other.t, "reservoir merge: capacity mismatch");
        if other.seen == 0 {
            return;
        }
        if self.seen == 0 {
            self.items = other.items.clone();
            self.seen = other.seen;
            return;
        }
        // Fast path: both sides retained their entire stream and the union
        // still fits — the union is itself the entire stream.
        if self.items.len() as u64 == self.seen
            && other.items.len() as u64 == other.seen
            && self.items.len() + other.items.len() <= self.t
        {
            self.items.extend(other.items.iter().cloned());
            self.seen += other.seen;
            return;
        }
        let mut pool_a = std::mem::take(&mut self.items);
        let mut pool_b = other.items.clone();
        let mut rem_a = self.seen;
        let mut rem_b = other.seen;
        let mut out = Vec::with_capacity(self.t);
        while out.len() < self.t && (!pool_a.is_empty() || !pool_b.is_empty()) {
            // A sample can run dry before its side's positions do (the side
            // held more than t items); the forced draws from the other side
            // are the standard truncation of the hypergeometric tail.
            let take_a = if pool_b.is_empty() {
                true
            } else if pool_a.is_empty() {
                false
            } else {
                self.rng.range_u64(rem_a + rem_b) < rem_a
            };
            if take_a {
                let i = self.rng.range_u64(pool_a.len() as u64) as usize;
                out.push(pool_a.swap_remove(i));
                rem_a -= 1;
            } else {
                let i = self.rng.range_u64(pool_b.len() as u64) as usize;
                out.push(pool_b.swap_remove(i));
                rem_b -= 1;
            }
        }
        self.items = out;
        self.seen += other.seen;
    }

    /// Estimate the stream frequency of items matching `pred`:
    /// `(matching in sample) / rate` (the `ĝ/α` estimator of Theorem 5.1).
    pub fn estimate_count<F: Fn(&T) -> bool>(&self, pred: F) -> f64 {
        if self.seen == 0 {
            return 0.0;
        }
        let g = self.items.iter().filter(|x| pred(x)).count() as f64;
        g / self.rate()
    }
}

impl<T: Persist> Persist for Reservoir<T> {
    fn encode(&self, enc: &mut pfe_persist::Encoder) {
        enc.put_u64(self.t as u64);
        enc.put_u64(self.seen);
        self.rng.encode(enc);
        self.items.encode(enc);
    }

    fn decode(dec: &mut pfe_persist::Decoder<'_>) -> Result<Self, pfe_persist::PersistError> {
        use pfe_persist::PersistError;
        let t = dec.take_u64()? as usize;
        if t == 0 {
            return Err(PersistError::Malformed(
                "reservoir capacity must be positive".into(),
            ));
        }
        let seen = dec.take_u64()?;
        let rng = Xoshiro256pp::decode(dec)?;
        let items = Vec::<T>::decode(dec)?;
        // The Algorithm R invariant: the sample holds min(t, seen) items.
        let expected = (t as u64).min(seen);
        if items.len() as u64 != expected {
            return Err(PersistError::Malformed(format!(
                "reservoir holds {} item(s), expected min(t={t}, seen={seen}) = {expected}",
                items.len()
            )));
        }
        Ok(Self {
            items,
            t,
            seen,
            rng,
        })
    }
}

impl<T> SpaceUsage for Reservoir<T> {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.items.capacity() * std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn underfull_keeps_everything() {
        let mut r = Reservoir::new(100, 1);
        for i in 0..50u64 {
            r.insert(i);
        }
        assert_eq!(r.sample().len(), 50);
        assert_eq!(r.rate(), 1.0);
        let mut s: Vec<u64> = r.sample().to_vec();
        s.sort_unstable();
        assert_eq!(s, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn capacity_respected() {
        let mut r = Reservoir::new(10, 2);
        for i in 0..10_000u64 {
            r.insert(i);
        }
        assert_eq!(r.sample().len(), 10);
        assert_eq!(r.seen(), 10_000);
    }

    #[test]
    fn uniformity_over_positions() {
        // Each stream position should land in the final sample with
        // probability t/n; aggregate over many independent runs.
        let (t, n, runs) = (10usize, 100u64, 3000u64);
        let mut hits = vec![0u32; n as usize];
        for seed in 0..runs {
            let mut r = Reservoir::new(t, seed);
            for i in 0..n {
                r.insert(i);
            }
            for &x in r.sample() {
                hits[x as usize] += 1;
            }
        }
        let expect = runs as f64 * t as f64 / n as f64;
        for (i, &h) in hits.iter().enumerate() {
            let dev = (h as f64 - expect).abs() / expect;
            assert!(dev < 0.30, "position {i} inclusion deviates {dev}");
        }
    }

    #[test]
    fn count_estimation_unbiased() {
        // Stream: 30% of items match; estimate should track 0.3 * n.
        let n = 50_000u64;
        let mut r = Reservoir::new(2000, 7);
        for i in 0..n {
            r.insert(i % 10);
        }
        let est = r.estimate_count(|&x| x < 3);
        let truth = 0.3 * n as f64;
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.1, "relative error {rel}");
    }

    #[test]
    fn merge_underfull_is_concatenation() {
        let mut a = Reservoir::new(100, 1);
        let mut b = Reservoir::new(100, 2);
        for i in 0..30u64 {
            a.insert(i);
        }
        for i in 30..60u64 {
            b.insert(i);
        }
        a.merge(&b);
        assert_eq!(a.seen(), 60);
        assert_eq!(a.rate(), 1.0);
        let mut s: Vec<u64> = a.sample().to_vec();
        s.sort_unstable();
        assert_eq!(s, (0..60).collect::<Vec<_>>());
    }

    #[test]
    fn merge_respects_capacity_and_seen() {
        let mut a = Reservoir::new(50, 3);
        let mut b = Reservoir::new(50, 4);
        for i in 0..5000u64 {
            a.insert(i);
        }
        for i in 5000..12_000u64 {
            b.insert(i);
        }
        a.merge(&b);
        assert_eq!(a.seen(), 12_000);
        assert_eq!(a.sample().len(), 50);
    }

    #[test]
    fn merge_weighting_is_uniform_over_segments() {
        // Segment A holds 1/4 of the stream, B holds 3/4; merged samples
        // must draw from each in proportion. Aggregate over many seeds.
        let (t, runs) = (40usize, 800u64);
        let mut from_a = 0u64;
        for seed in 0..runs {
            let mut a = Reservoir::new(t, seed * 2 + 1);
            let mut b = Reservoir::new(t, seed * 2 + 2);
            for i in 0..2500u64 {
                a.insert(i);
            }
            for i in 2500..10_000u64 {
                b.insert(i);
            }
            a.merge(&b);
            from_a += a.sample().iter().filter(|&&x| x < 2500).count() as u64;
        }
        let frac = from_a as f64 / (runs * t as u64) as f64;
        assert!((frac - 0.25).abs() < 0.02, "segment A fraction {frac}");
    }

    #[test]
    fn merge_asymmetric_fullness() {
        // A underfull (sample == stream), B overflowed: weights differ.
        let (t, runs) = (32usize, 1200u64);
        let mut from_a = 0u64;
        for seed in 0..runs {
            let mut a = Reservoir::new(t, seed * 2 + 1);
            let mut b = Reservoir::new(t, seed * 2 + 2);
            for i in 0..20u64 {
                a.insert(i);
            }
            for i in 20..2000u64 {
                b.insert(i);
            }
            a.merge(&b);
            from_a += a.sample().iter().filter(|&&x| x < 20).count() as u64;
        }
        // E[items from A per merge] = t * 20/2000 = 0.32.
        let per_merge = from_a as f64 / runs as f64;
        assert!(
            (per_merge - 0.32).abs() < 0.08,
            "items from A per merge {per_merge}"
        );
    }

    #[test]
    fn merge_empty_sides() {
        let mut a: Reservoir<u64> = Reservoir::new(8, 1);
        let b: Reservoir<u64> = Reservoir::new(8, 2);
        a.merge(&b);
        assert_eq!(a.seen(), 0);
        let mut c = Reservoir::new(8, 3);
        c.insert(7);
        a.merge(&c);
        assert_eq!(a.seen(), 1);
        assert_eq!(a.sample(), &[7]);
    }

    #[test]
    fn merge_deterministic_per_seed() {
        let run = |seed| {
            let mut a = Reservoir::new(16, seed);
            let mut b = Reservoir::new(16, seed ^ 0xff);
            for i in 0..500u64 {
                a.insert(i);
            }
            for i in 500..900u64 {
                b.insert(i);
            }
            a.merge(&b);
            a.sample().to_vec()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn merge_rejects_capacity_mismatch() {
        let mut a: Reservoir<u64> = Reservoir::new(8, 1);
        let b: Reservoir<u64> = Reservoir::new(9, 2);
        a.merge(&b);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut r = Reservoir::new(5, seed);
            for i in 0..1000u64 {
                r.insert(i);
            }
            r.sample().to_vec()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn space_bounded_by_capacity() {
        let mut r = Reservoir::new(64, 0);
        for i in 0..1_000_000u64 {
            r.insert(i);
        }
        assert!(r.space_bytes() < 64 * 8 + 256);
    }

    #[test]
    fn empty_stream_estimates_zero() {
        let r: Reservoir<u64> = Reservoir::new(4, 0);
        assert_eq!(r.estimate_count(|_| true), 0.0);
        assert_eq!(r.rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        Reservoir::<u64>::new(0, 0);
    }
}
