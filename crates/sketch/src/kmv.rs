//! KMV (k-minimum values) distinct-count sketch.
//!
//! Keep the `k` smallest distinct hash values seen; if the `k`-th smallest,
//! normalized to `(0,1)`, is `v_k`, then `(k-1)/v_k` is an unbiased distinct
//! count estimate with relative standard error `≈ 1/√(k-2)` (Bar-Yossef et
//! al.). This is the default `β`-approximate `F_0` plug-in for the α-net
//! summary: its accuracy depends only on `k`, never on the pattern domain,
//! matching the `O(ε^{-2} + log n')` sketches cited in Section 6.

use crate::traits::{vec_bytes, DistinctSketch, SpaceUsage};
use pfe_hash::hash_u64;
use pfe_persist::Persist;

/// KMV sketch with capacity `k`.
///
/// ```
/// use pfe_sketch::kmv::Kmv;
/// use pfe_sketch::traits::DistinctSketch;
///
/// let mut sketch = Kmv::new(256, 42);
/// for item in 0..100_000u64 {
///     sketch.insert(item);
/// }
/// let estimate = sketch.estimate();
/// assert!((estimate - 100_000.0).abs() / 100_000.0 < 0.25);
/// ```
#[derive(Debug, Clone)]
pub struct Kmv {
    /// Ascending sorted distinct hash values; at most `k` of them.
    minima: Vec<u64>,
    k: usize,
    seed: u64,
}

impl Kmv {
    /// Create a sketch keeping the `k` minimum hash values.
    ///
    /// # Panics
    /// Panics if `k < 2` (the estimator needs at least 2 minima).
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 2, "KMV requires k >= 2, got {k}");
        Self {
            minima: Vec::with_capacity(k.min(1024)),
            k,
            seed,
        }
    }

    /// Capacity `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Seed (merging requires equal seeds).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The expected relative standard error `1/√(k-2)`.
    pub fn relative_error(&self) -> f64 {
        1.0 / ((self.k as f64 - 2.0).max(1.0)).sqrt()
    }

    /// Insert a pre-hashed value (for callers that already hold a uniform
    /// 64-bit fingerprint).
    pub fn insert_hash(&mut self, h: u64) {
        if self.minima.len() == self.k {
            let last = *self.minima.last().expect("nonempty at capacity");
            if h >= last {
                return;
            }
        }
        match self.minima.binary_search(&h) {
            Ok(_) => {} // duplicate hash = duplicate item (hash is injective per seed)
            Err(pos) => {
                self.minima.insert(pos, h);
                if self.minima.len() > self.k {
                    self.minima.pop();
                }
            }
        }
    }
}

impl SpaceUsage for Kmv {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + vec_bytes(&self.minima)
    }
}

impl DistinctSketch for Kmv {
    fn insert(&mut self, item: u64) {
        self.insert_hash(hash_u64(item, self.seed));
    }

    fn estimate(&self) -> f64 {
        if self.minima.len() < self.k {
            // Under-full: every distinct hash was kept, so the count is exact
            // (up to hash collisions, negligible at 64 bits).
            return self.minima.len() as f64;
        }
        let vk = (*self.minima.last().expect("k >= 2") as f64 + 1.0) / (u64::MAX as f64 + 1.0);
        (self.k as f64 - 1.0) / vk
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(self.k, other.k, "KMV merge: k mismatch");
        assert_eq!(self.seed, other.seed, "KMV merge: seed mismatch");
        for &h in &other.minima {
            self.insert_hash(h);
        }
    }
}

impl Persist for Kmv {
    fn encode(&self, enc: &mut pfe_persist::Encoder) {
        enc.put_u64(self.k as u64);
        enc.put_u64(self.seed);
        self.minima.encode(enc);
    }

    fn decode(dec: &mut pfe_persist::Decoder<'_>) -> Result<Self, pfe_persist::PersistError> {
        use pfe_persist::PersistError;
        let k = dec.take_u64()? as usize;
        if k < 2 {
            return Err(PersistError::Malformed(format!("KMV k={k} below 2")));
        }
        let seed = dec.take_u64()?;
        let minima = Vec::<u64>::decode(dec)?;
        if minima.len() > k {
            return Err(PersistError::Malformed(format!(
                "KMV holds {} minima above capacity {k}",
                minima.len()
            )));
        }
        if !minima.windows(2).all(|w| w[0] < w[1]) {
            return Err(PersistError::Malformed(
                "KMV minima must be strictly ascending".into(),
            ));
        }
        Ok(Self { minima, k, seed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_when_underfull() {
        let mut s = Kmv::new(64, 1);
        for i in 0..40u64 {
            s.insert(i);
            s.insert(i); // duplicates must not count
        }
        assert_eq!(s.estimate(), 40.0);
    }

    #[test]
    fn estimates_within_expected_error() {
        let k = 256;
        let mut s = Kmv::new(k, 7);
        let n = 100_000u64;
        for i in 0..n {
            s.insert(i);
        }
        let est = s.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        // 4 standard errors: 4/sqrt(254) ~ 0.25.
        assert!(rel < 4.0 * s.relative_error(), "relative error {rel}");
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut s = Kmv::new(64, 3);
        for _ in 0..1000 {
            for i in 0..10u64 {
                s.insert(i);
            }
        }
        assert_eq!(s.estimate(), 10.0);
    }

    #[test]
    fn merge_equals_union_build() {
        let (k, seed) = (128, 9);
        let mut a = Kmv::new(k, seed);
        let mut b = Kmv::new(k, seed);
        let mut u = Kmv::new(k, seed);
        for i in 0..5000u64 {
            a.insert(i);
            u.insert(i);
        }
        for i in 2500..7500u64 {
            b.insert(i);
            u.insert(i);
        }
        a.merge(&b);
        assert_eq!(a.estimate(), u.estimate());
    }

    #[test]
    #[should_panic(expected = "seed mismatch")]
    fn merge_rejects_seed_mismatch() {
        let mut a = Kmv::new(16, 1);
        let b = Kmv::new(16, 2);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn rejects_tiny_k() {
        Kmv::new(1, 0);
    }

    #[test]
    fn space_bounded_by_k() {
        let mut s = Kmv::new(64, 5);
        for i in 0..100_000u64 {
            s.insert(i);
        }
        // 64 u64s plus struct overhead; must stay well under 2 KiB.
        assert!(s.space_bytes() < 2048, "space {}", s.space_bytes());
    }

    #[test]
    fn deterministic() {
        let build = || {
            let mut s = Kmv::new(32, 11);
            for i in 0..1000u64 {
                s.insert(i * 3);
            }
            s.estimate()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn seed_changes_estimate_noise_not_scale() {
        let n = 50_000u64;
        for seed in 0..5 {
            let mut s = Kmv::new(128, seed);
            for i in 0..n {
                s.insert(i);
            }
            let rel = (s.estimate() - n as f64).abs() / n as f64;
            assert!(rel < 0.5, "seed {seed} relative error {rel}");
        }
    }
}
