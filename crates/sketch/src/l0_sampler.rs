//! ℓ₀-sampler: draw a (near-)uniform element of the *support* of a
//! dynamic (insert/delete) frequency vector.
//!
//! Classic level-set construction: level `l` retains items whose hash has
//! at least `l` trailing zero bits, in a 1-sparse recovery cell
//! `(count, key-sum, checksum)`. On query, the lowest level that is exactly
//! 1-sparse yields a uniform support element w.h.p. `ℓ_0` sampling is the
//! `p → 0` end of the `ℓ_p`-sampling family the paper studies; the
//! projected version inherits Theorem 5.5's hardness (`p ≠ 1`), and this
//! substrate is what a classical (non-projected) streaming system would
//! use — included to make the dichotomy comparisons concrete.

use crate::traits::SpaceUsage;
use pfe_hash::hash_u64;

/// One 1-sparse recovery cell.
#[derive(Debug, Clone, Copy, Default)]
struct Cell {
    /// Net count of updates routed here.
    count: i64,
    /// Sum of `key·delta`.
    key_sum: i128,
    /// Sum of `hash(key)·delta` (verification fingerprint).
    check_sum: i128,
}

impl Cell {
    fn update(&mut self, key: u64, delta: i64, seed: u64) {
        self.count += delta;
        self.key_sum += key as i128 * delta as i128;
        self.check_sum += hash_u64(key, seed) as i128 * delta as i128;
    }

    /// If the cell holds exactly one key with net count > 0, recover it.
    fn recover(&self, seed: u64) -> Option<u64> {
        if self.count <= 0 {
            return None;
        }
        let key = self.key_sum / self.count as i128;
        if key < 0 || key > u64::MAX as i128 {
            return None;
        }
        let key = key as u64;
        // Verify: key_sum and check_sum must both be consistent.
        if self.key_sum == key as i128 * self.count as i128
            && self.check_sum == hash_u64(key, seed) as i128 * self.count as i128
        {
            Some(key)
        } else {
            None
        }
    }

    fn is_empty(&self) -> bool {
        self.count == 0 && self.key_sum == 0 && self.check_sum == 0
    }
}

/// One independent level-set repetition.
#[derive(Debug, Clone)]
struct Repetition {
    levels: Vec<Cell>,
    seed: u64,
}

impl Repetition {
    fn new(seed: u64) -> Self {
        Self {
            levels: vec![Cell::default(); 65],
            seed,
        }
    }

    fn update(&mut self, item: u64, delta: i64) {
        let h = hash_u64(item, self.seed ^ 0x10_5a3b);
        let tz = h.trailing_zeros().min(64);
        for l in 0..=tz {
            self.levels[l as usize].update(item, delta, self.seed);
        }
    }

    /// Scan from the deepest non-empty level upward; the first recoverable
    /// cell yields the sample. A single repetition fails with constant
    /// probability (no level is exactly 1-sparse).
    fn sample(&self) -> Option<u64> {
        for cell in self.levels.iter().rev() {
            if cell.is_empty() {
                continue;
            }
            if let Some(key) = cell.recover(self.seed) {
                return Some(key);
            }
        }
        None
    }

    fn is_empty(&self) -> bool {
        self.levels.iter().all(Cell::is_empty)
    }
}

/// Level-set ℓ₀-sampler over 64-bit items with insert/delete support.
///
/// Runs `reps` independent level-set structures; a query returns the first
/// repetition that recovers, driving the failure probability to
/// `q^reps` for a constant per-repetition failure rate `q < 1`.
#[derive(Debug, Clone)]
pub struct L0Sampler {
    reps: Vec<Repetition>,
}

impl L0Sampler {
    /// Create with the default 16 repetitions (failure rate well below
    /// 1%).
    pub fn new(seed: u64) -> Self {
        Self::with_repetitions(16, seed)
    }

    /// Create with an explicit repetition count.
    ///
    /// # Panics
    /// Panics if `reps == 0`.
    pub fn with_repetitions(reps: usize, seed: u64) -> Self {
        assert!(reps > 0, "need at least one repetition");
        Self {
            reps: (0..reps)
                .map(|j| Repetition::new(hash_u64(j as u64, seed ^ 0x10ad_5eed)))
                .collect(),
        }
    }

    /// Number of independent repetitions.
    pub fn repetitions(&self) -> usize {
        self.reps.len()
    }

    /// Apply an update `(item, delta)`; deletions must match insertions
    /// for the recovery to stay sound (the strict-turnstile model).
    pub fn update(&mut self, item: u64, delta: i64) {
        for rep in &mut self.reps {
            rep.update(item, delta);
        }
    }

    /// Draw a near-uniform support element, or `None` if the vector is
    /// empty (or, with probability exponentially small in the repetition
    /// count, every repetition failed to recover).
    pub fn sample(&self) -> Option<u64> {
        self.reps.iter().find_map(Repetition::sample)
    }

    /// True if every cell of every repetition is empty (no net content).
    pub fn is_empty(&self) -> bool {
        self.reps.iter().all(Repetition::is_empty)
    }
}

impl SpaceUsage for L0Sampler {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .reps
                .iter()
                .map(|r| {
                    r.levels.capacity() * std::mem::size_of::<Cell>()
                        + std::mem::size_of::<Repetition>()
                })
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_recovered_exactly() {
        let mut s = L0Sampler::new(1);
        s.update(42, 3);
        assert_eq!(s.sample(), Some(42));
    }

    #[test]
    fn deletions_cancel() {
        let mut s = L0Sampler::new(2);
        s.update(7, 5);
        s.update(9, 2);
        s.update(7, -5);
        assert_eq!(s.sample(), Some(9));
        s.update(9, -2);
        assert!(s.is_empty());
        assert_eq!(s.sample(), None);
    }

    #[test]
    fn samples_are_support_members() {
        let mut s = L0Sampler::new(3);
        for i in 100..200u64 {
            s.update(i, 1);
        }
        let got = s.sample().expect("support nonempty");
        assert!((100..200).contains(&got));
    }

    #[test]
    fn near_uniform_over_seeds() {
        // Over many independent samplers, each of 8 items should be drawn
        // roughly equally often.
        let items: Vec<u64> = (0..8).map(|i| 1000 + i * 13).collect();
        let mut counts = std::collections::HashMap::new();
        let runs = 4000;
        let mut failures = 0;
        for seed in 0..runs {
            let mut s = L0Sampler::new(seed);
            for &it in &items {
                s.update(it, 1);
            }
            match s.sample() {
                Some(got) => *counts.entry(got).or_insert(0u32) += 1,
                None => failures += 1,
            }
        }
        assert!(
            failures < runs / 20,
            "too many recovery failures: {failures}"
        );
        let expect = (runs - failures) as f64 / items.len() as f64;
        for &it in &items {
            let c = counts.get(&it).copied().unwrap_or(0) as f64;
            let dev = (c - expect).abs() / expect;
            assert!(dev < 0.35, "item {it} drawn with deviation {dev}");
        }
    }

    #[test]
    fn survives_heavy_multiplicity() {
        let mut s = L0Sampler::new(9);
        for _ in 0..1000 {
            s.update(5, 1);
        }
        assert_eq!(s.sample(), Some(5));
    }

    #[test]
    fn space_constant() {
        let mut s = L0Sampler::new(11);
        for i in 0..100_000u64 {
            s.update(i, 1);
        }
        // 16 reps x 65 cells x 48 bytes plus struct overhead.
        assert!(s.space_bytes() < 16 * 65 * 64 + 1024);
    }

    #[test]
    fn repetitions_drive_failure_down() {
        // With 16 reps, recovery over 100-item supports should virtually
        // never fail.
        let mut failures = 0;
        for seed in 0..300u64 {
            let mut s = L0Sampler::new(seed);
            for i in 0..100u64 {
                s.update(i, 1);
            }
            if s.sample().is_none() {
                failures += 1;
            }
        }
        assert!(failures <= 1, "failures {failures} with 16 reps");
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn rejects_zero_reps() {
        L0Sampler::with_repetitions(0, 0);
    }
}
