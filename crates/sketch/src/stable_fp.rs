//! Indyk-style `F_p` sketch via symmetric p-stable projections, `0 < p < 2`.
//!
//! Estimator `j` maintains `Z_j = Σ_i f_i · X_{i,j}` where `X_{i,j}` is a
//! p-stable variate derived deterministically from `(item, j, seed)`. By
//! p-stability, `Z_j ~ ‖f‖_p · S_p`, so
//! `median_j |Z_j| / median(|S_p|)` estimates `‖f‖_p`, and raising to the
//! `p` gives `F_p`. The scale constant `median(|S_p|)` is calibrated once
//! by a deterministic Monte-Carlo draw (documented error < 1%). Together
//! with [`AmsF2`](crate::ams_f2::AmsF2) (`p = 2`) and any
//! [`DistinctSketch`](crate::traits::DistinctSketch) (`p = 0`), this covers
//! the `0 ≤ p ≤ 2` sketch range the paper's Section 6 invokes.

use crate::traits::{vec_bytes, MomentSketch, SpaceUsage};
use pfe_hash::hash_u64;
use pfe_hash::rng::Xoshiro256pp;
use pfe_persist::Persist;

/// Number of Monte-Carlo samples for the scale-constant calibration.
const CALIBRATION_SAMPLES: usize = 200_001;

/// `median(|S_p|)` for the symmetric p-stable distribution, by
/// deterministic Monte-Carlo (fixed internal seed). For `p = 1` this is
/// `tan(π/4) = 1` exactly; the MC estimate is validated against that in
/// tests. Memoized per `p` — the α-net summary constructs one sketch per
/// net subset, and recalibrating thousands of times would dominate build
/// time.
pub fn stable_median_abs(p: f64) -> f64 {
    use std::sync::Mutex;
    static CACHE: Mutex<Option<std::collections::HashMap<u64, f64>>> = Mutex::new(None);
    assert!(p > 0.0 && p < 2.0, "stable_median_abs needs p in (0,2)");
    let key = p.to_bits();
    {
        let cache = CACHE.lock().expect("calibration cache poisoned");
        if let Some(map) = cache.as_ref() {
            if let Some(&v) = map.get(&key) {
                return v;
            }
        }
    }
    let mut rng = Xoshiro256pp::seed_from_u64(0xca11_b0b5);
    let mut samples: Vec<f64> = (0..CALIBRATION_SAMPLES)
        .map(|_| rng.stable(p).abs())
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let median = samples[samples.len() / 2];
    CACHE
        .lock()
        .expect("calibration cache poisoned")
        .get_or_insert_with(std::collections::HashMap::new)
        .insert(key, median);
    median
}

/// p-stable `F_p` sketch with `t` estimators.
#[derive(Debug, Clone)]
pub struct StableFp {
    sums: Vec<f64>,
    p: f64,
    seed: u64,
    scale: f64,
}

impl StableFp {
    /// Create with `t` estimators for moment order `p ∈ (0, 2)`.
    ///
    /// # Panics
    /// Panics if `t == 0` or `p` is outside `(0, 2)`.
    pub fn new(t: usize, p: f64, seed: u64) -> Self {
        assert!(t > 0, "need at least one estimator");
        assert!(p > 0.0 && p < 2.0, "StableFp supports p in (0,2), got {p}");
        Self {
            sums: vec![0.0; t],
            p,
            seed,
            scale: stable_median_abs(p),
        }
    }

    /// Number of estimators.
    pub fn estimators(&self) -> usize {
        self.sums.len()
    }

    /// Estimate the norm `‖f‖_p` (the `1/p`-th power of `F_p`).
    pub fn lp_norm_estimate(&self) -> f64 {
        let mut mags: Vec<f64> = self.sums.iter().map(|z| z.abs()).collect();
        mags.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        mags[mags.len() / 2] / self.scale
    }

    /// Merge a compatible sketch (same `t`, `p`, `seed`).
    ///
    /// # Panics
    /// Panics on mismatch.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.sums.len(),
            other.sums.len(),
            "StableFp merge: t mismatch"
        );
        assert_eq!(
            self.p.to_bits(),
            other.p.to_bits(),
            "StableFp merge: p mismatch"
        );
        assert_eq!(self.seed, other.seed, "StableFp merge: seed mismatch");
        for (a, &b) in self.sums.iter_mut().zip(&other.sums) {
            *a += b;
        }
    }

    /// The p-stable variate for `(item, estimator j)` — deterministic.
    #[inline]
    fn variate(&self, item: u64, j: usize) -> f64 {
        let mut rng = Xoshiro256pp::seed_from_u64(hash_u64(item, self.seed.wrapping_add(j as u64)));
        rng.stable(self.p)
    }
}

impl SpaceUsage for StableFp {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + vec_bytes(&self.sums)
    }
}

impl MomentSketch for StableFp {
    fn p(&self) -> f64 {
        self.p
    }

    fn update(&mut self, item: u64, delta: i64) {
        for j in 0..self.sums.len() {
            self.sums[j] += delta as f64 * self.variate(item, j);
        }
    }

    fn estimate(&self) -> f64 {
        self.lp_norm_estimate().powf(self.p)
    }

    fn merge_with(&mut self, other: &Self) {
        self.merge(other);
    }
}

impl Persist for StableFp {
    fn encode(&self, enc: &mut pfe_persist::Encoder) {
        // `scale` is derived deterministically from `p` and recomputed on
        // decode (the calibration is memoized, so this is cheap in the
        // α-net's many-sketches case too).
        enc.put_f64(self.p);
        enc.put_u64(self.seed);
        self.sums.encode(enc);
    }

    fn decode(dec: &mut pfe_persist::Decoder<'_>) -> Result<Self, pfe_persist::PersistError> {
        use pfe_persist::PersistError;
        let p = dec.take_f64()?;
        if !(p.is_finite() && p > 0.0 && p < 2.0) {
            return Err(PersistError::Malformed(format!(
                "StableFp moment order p={p} outside (0,2)"
            )));
        }
        let seed = dec.take_u64()?;
        let sums = Vec::<f64>::decode(dec)?;
        if sums.is_empty() {
            return Err(PersistError::Malformed(
                "StableFp needs at least one estimator".into(),
            ));
        }
        Ok(Self {
            sums,
            p,
            seed,
            scale: stable_median_abs(p),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_p1_is_one() {
        // |Cauchy| has median exactly tan(pi/4) = 1.
        let m = stable_median_abs(1.0);
        assert!((m - 1.0).abs() < 0.01, "median |Cauchy| calibration {m}");
    }

    #[test]
    fn calibration_deterministic() {
        assert_eq!(stable_median_abs(0.5), stable_median_abs(0.5));
    }

    #[test]
    fn f1_of_uniform_stream() {
        // p close to 1: F_p ~ n for a stream of distinct items.
        let mut s = StableFp::new(101, 1.0 - 1e-9, 1);
        for item in 0..400u64 {
            s.update(item, 1);
        }
        let est = s.estimate();
        let rel = (est - 400.0).abs() / 400.0;
        assert!(rel < 0.35, "F_1 relative error {rel}");
    }

    #[test]
    fn fp_half_of_known_vector() {
        // f = (4, 4, 4, 4): F_0.5 = 4 * 2 = 8; norm^(1/0.5): ||f||_0.5 = 64.
        let p = 0.5;
        let mut s = StableFp::new(201, p, 2);
        for item in 0..4u64 {
            s.update(item, 4);
        }
        let est = s.estimate();
        let rel = (est - 8.0).abs() / 8.0;
        assert!(rel < 0.4, "F_0.5 estimate {est}, relative error {rel}");
    }

    #[test]
    fn p_1_5_accuracy() {
        // f_i = 3 for 100 items: F_1.5 = 100 * 3^1.5 ~ 519.6.
        let mut s = StableFp::new(201, 1.5, 3);
        for item in 0..100u64 {
            s.update(item, 3);
        }
        let truth = 100.0 * 3f64.powf(1.5);
        let rel = (s.estimate() - truth).abs() / truth;
        assert!(rel < 0.35, "F_1.5 relative error {rel}");
    }

    #[test]
    fn deletions_cancel() {
        let mut s = StableFp::new(51, 1.2, 4);
        s.update(10, 6);
        s.update(10, -6);
        assert!(
            s.estimate() < 1e-9,
            "estimate {} after cancel",
            s.estimate()
        );
    }

    #[test]
    fn merge_equals_combined() {
        let mut a = StableFp::new(21, 0.8, 5);
        let mut b = StableFp::new(21, 0.8, 5);
        let mut c = StableFp::new(21, 0.8, 5);
        for item in 0..20u64 {
            a.update(item, 2);
            c.update(item, 2);
        }
        for item in 10..30u64 {
            b.update(item, 1);
            c.update(item, 1);
        }
        a.merge(&b);
        assert!((a.estimate() - c.estimate()).abs() < 1e-9);
    }

    #[test]
    fn scale_invariance_of_norm() {
        // ||c.f||_p = c.||f||_p: doubling all frequencies doubles the norm.
        let build = |scale: i64| {
            let mut s = StableFp::new(101, 0.7, 6);
            for item in 0..50u64 {
                s.update(item, scale);
            }
            s.lp_norm_estimate()
        };
        let (one, two) = (build(1), build(2));
        let ratio = two / one;
        assert!((ratio - 2.0).abs() < 0.01, "scaling ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "p in (0,2)")]
    fn rejects_p_two() {
        StableFp::new(8, 2.0, 0);
    }
}
