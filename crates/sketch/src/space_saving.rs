//! SpaceSaving heavy-hitter summary (Metwally–Agrawal–El Abbadi).
//!
//! Keeps exactly `k` monitored items with (count, error) pairs; on overflow
//! the minimum-count item is replaced, inheriting its count as error. Every
//! item with true frequency `> n/k` is monitored, and estimates satisfy
//! `f_i ≤ est_i ≤ f_i + n/k`. Complements Misra–Gries (which underestimates)
//! so examples can show both one-sided guarantees.

use crate::traits::SpaceUsage;
use pfe_hash::builder::{seeded_map, SeededHashMap};

/// A monitored item's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    count: u64,
    /// Overestimation bound inherited at takeover.
    error: u64,
}

/// SpaceSaving summary with `k` monitored slots.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    slots: SeededHashMap<u64, Slot>,
    k: usize,
    n: u64,
}

impl SpaceSaving {
    /// Create with `k` monitored slots.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "SpaceSaving needs k >= 1");
        Self {
            slots: seeded_map(0x5553),
            k,
            n: 0,
        }
    }

    /// Slot budget `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Stream length so far.
    pub fn stream_len(&self) -> u64 {
        self.n
    }

    /// Observe one occurrence of `item`.
    pub fn insert(&mut self, item: u64) {
        self.n += 1;
        if let Some(s) = self.slots.get_mut(&item) {
            s.count += 1;
            return;
        }
        if self.slots.len() < self.k {
            self.slots.insert(item, Slot { count: 1, error: 0 });
            return;
        }
        // Replace the minimum-count item (ties broken by key for
        // determinism); O(k) scan — k is small by design.
        let (&victim, &vslot) = self
            .slots
            .iter()
            .min_by(|a, b| a.1.count.cmp(&b.1.count).then(a.0.cmp(b.0)))
            .expect("k >= 1 slots");
        self.slots.remove(&victim);
        self.slots.insert(
            item,
            Slot {
                count: vslot.count + 1,
                error: vslot.count,
            },
        );
    }

    /// Overestimate of `item`'s frequency (0 if unmonitored).
    pub fn estimate(&self, item: u64) -> u64 {
        self.slots.get(&item).map(|s| s.count).unwrap_or(0)
    }

    /// Guaranteed lower bound: count minus inherited error.
    pub fn estimate_lower(&self, item: u64) -> u64 {
        self.slots
            .get(&item)
            .map(|s| s.count - s.error)
            .unwrap_or(0)
    }

    /// Monitored items with estimate at least `threshold`, sorted by
    /// descending estimate (then key).
    pub fn candidates(&self, threshold: u64) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = self
            .slots
            .iter()
            .filter(|(_, s)| s.count >= threshold)
            .map(|(&i, s)| (i, s.count))
            .collect();
        out.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// The worst-case overestimate `n/k`.
    pub fn error_bound(&self) -> u64 {
        self.n / self.k as u64
    }
}

impl SpaceUsage for SpaceSaving {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.slots.capacity()
                * (std::mem::size_of::<u64>()
                    + std::mem::size_of::<Slot>()
                    + std::mem::size_of::<usize>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfe_hash::rng::{Xoshiro256pp, ZipfTable};

    #[test]
    fn estimates_bracket_truth() {
        let mut ss = SpaceSaving::new(20);
        let mut truth = std::collections::HashMap::new();
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let zipf = ZipfTable::new(200, 1.4);
        for _ in 0..20_000 {
            let item = zipf.sample(&mut rng) as u64;
            *truth.entry(item).or_insert(0u64) += 1;
            ss.insert(item);
        }
        for (&item, &count) in &truth {
            let est = ss.estimate(item);
            if est > 0 {
                assert!(est >= count.min(est), "bracket violated");
                assert!(est <= count + ss.error_bound(), "over by too much");
                assert!(ss.estimate_lower(item) <= count, "lower bound above truth");
            }
        }
    }

    #[test]
    fn majority_item_monitored() {
        let mut ss = SpaceSaving::new(3);
        for i in 0..999u64 {
            ss.insert(if i % 3 != 2 { 7 } else { 1000 + i });
        }
        // Item 7 has frequency 666 > n/k = 333: must be monitored.
        assert!(ss.estimate(7) >= 666);
    }

    #[test]
    fn exact_when_few_distinct() {
        let mut ss = SpaceSaving::new(8);
        for _ in 0..50 {
            for item in 0..4u64 {
                ss.insert(item);
            }
        }
        for item in 0..4u64 {
            assert_eq!(ss.estimate(item), 50);
            assert_eq!(ss.estimate_lower(item), 50);
        }
    }

    #[test]
    fn always_k_slots_at_most() {
        let mut ss = SpaceSaving::new(5);
        for i in 0..10_000u64 {
            ss.insert(i);
        }
        assert!(ss.candidates(0).len() <= 5);
    }

    #[test]
    fn candidates_sorted_desc() {
        let mut ss = SpaceSaving::new(10);
        for (item, reps) in [(1u64, 30), (2, 20), (3, 10)] {
            for _ in 0..reps {
                ss.insert(item);
            }
        }
        let c = ss.candidates(1);
        assert_eq!(c[0].0, 1);
        assert!(c.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn deterministic_under_ties() {
        let run = || {
            let mut ss = SpaceSaving::new(3);
            for i in 0..100u64 {
                ss.insert(i % 7);
            }
            ss.candidates(0)
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn rejects_zero_k() {
        SpaceSaving::new(0);
    }
}
