//! Misra–Gries deterministic heavy-hitter summary.
//!
//! Keeps at most `k` counters; every item with frequency `> n/(k+1)` is
//! guaranteed present, and each kept estimate underestimates the true count
//! by at most `n/(k+1)` (more precisely, by the number of decrement steps).
//! This is the deterministic counterpart to the sampling-based heavy hitters
//! of Theorem 5.1 and is used by examples as the classical-streaming
//! baseline.

use crate::traits::SpaceUsage;
use pfe_hash::builder::{seeded_map, SeededHashMap};

/// Misra–Gries summary with at most `k` counters.
#[derive(Debug, Clone)]
pub struct MisraGries {
    counters: SeededHashMap<u64, u64>,
    k: usize,
    n: u64,
    decrements: u64,
}

impl MisraGries {
    /// Create with capacity `k` (counter budget).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "MisraGries needs k >= 1");
        Self {
            counters: seeded_map(0x4d47),
            k,
            n: 0,
            decrements: 0,
        }
    }

    /// Counter budget `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Stream length so far.
    pub fn stream_len(&self) -> u64 {
        self.n
    }

    /// Observe one occurrence of `item`.
    pub fn insert(&mut self, item: u64) {
        self.n += 1;
        if let Some(c) = self.counters.get_mut(&item) {
            *c += 1;
            return;
        }
        if self.counters.len() < self.k {
            self.counters.insert(item, 1);
            return;
        }
        // Decrement phase: all counters drop by one; zeros evicted.
        self.decrements += 1;
        self.counters.retain(|_, c| {
            *c -= 1;
            *c > 0
        });
    }

    /// Lower-bound estimate of `item`'s frequency (0 if not tracked).
    pub fn estimate(&self, item: u64) -> u64 {
        self.counters.get(&item).copied().unwrap_or(0)
    }

    /// Upper-bound estimate: tracked count plus the global decrement total.
    pub fn estimate_upper(&self, item: u64) -> u64 {
        self.estimate(item) + self.decrements
    }

    /// The maximum possible undercount (`= #decrement phases ≤ n/(k+1)`).
    pub fn error_bound(&self) -> u64 {
        self.decrements
    }

    /// Candidate heavy hitters with estimated count at least `threshold`
    /// under the *upper* bound (no false negatives for true counts
    /// `≥ threshold`), sorted by descending lower estimate.
    pub fn candidates(&self, threshold: u64) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = self
            .counters
            .iter()
            .filter(|(_, &c)| c + self.decrements >= threshold)
            .map(|(&i, &c)| (i, c))
            .collect();
        out.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Merge another summary (Agarwal et al. mergeable-summaries scheme:
    /// add counters, then reduce to the top `k` by subtracting the
    /// `(k+1)`-th largest value).
    pub fn merge(&mut self, other: &Self) {
        for (&item, &c) in &other.counters {
            *self.counters.entry(item).or_insert(0) += c;
        }
        self.n += other.n;
        self.decrements += other.decrements;
        if self.counters.len() > self.k {
            let mut counts: Vec<u64> = self.counters.values().copied().collect();
            counts.sort_unstable_by(|a, b| b.cmp(a));
            let cut = counts[self.k]; // (k+1)-th largest
            self.decrements += cut;
            self.counters.retain(|_, c| {
                *c = c.saturating_sub(cut);
                *c > 0
            });
        }
    }
}

impl SpaceUsage for MisraGries {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.counters.capacity()
                * (std::mem::size_of::<u64>() * 2 + std::mem::size_of::<usize>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfe_hash::rng::{Xoshiro256pp, ZipfTable};

    #[test]
    fn guarantees_undercount_bounded() {
        let mut mg = MisraGries::new(9);
        let mut truth = std::collections::HashMap::new();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let zipf = ZipfTable::new(100, 1.5);
        for _ in 0..10_000 {
            let item = zipf.sample(&mut rng) as u64;
            *truth.entry(item).or_insert(0u64) += 1;
            mg.insert(item);
        }
        let bound = mg.stream_len() / 10; // n/(k+1)
        assert!(mg.error_bound() <= bound);
        for (&item, &count) in &truth {
            let est = mg.estimate(item);
            assert!(est <= count, "overestimate for {item}");
            assert!(
                count - est <= mg.error_bound(),
                "undercount beyond bound for {item}: {count} vs {est}"
            );
        }
    }

    #[test]
    fn frequent_items_never_missed() {
        let mut mg = MisraGries::new(4);
        // Item 0 occupies 60% of a length-1000 stream: must be tracked.
        for i in 0..1000u64 {
            mg.insert(if i % 5 < 3 { 0 } else { i });
        }
        assert!(mg.estimate(0) > 0, "majority item evicted");
        let cands = mg.candidates(200);
        assert!(cands.iter().any(|&(i, _)| i == 0));
    }

    #[test]
    fn exact_when_few_distinct() {
        let mut mg = MisraGries::new(10);
        for _ in 0..100 {
            for item in 0..5u64 {
                mg.insert(item);
            }
        }
        for item in 0..5u64 {
            assert_eq!(mg.estimate(item), 100);
        }
        assert_eq!(mg.error_bound(), 0);
    }

    #[test]
    fn merge_preserves_guarantee() {
        let mut a = MisraGries::new(5);
        let mut b = MisraGries::new(5);
        let mut truth = std::collections::HashMap::new();
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        for _ in 0..2000 {
            let item = rng.range_u64(20);
            *truth.entry(item).or_insert(0u64) += 1;
            a.insert(item);
        }
        for _ in 0..2000 {
            let item = rng.range_u64(20);
            *truth.entry(item).or_insert(0u64) += 1;
            b.insert(item);
        }
        a.merge(&b);
        for (&item, &count) in &truth {
            let est = a.estimate(item);
            assert!(est <= count);
            assert!(count - est <= a.error_bound());
        }
    }

    #[test]
    fn space_bounded_by_k() {
        let mut mg = MisraGries::new(16);
        for i in 0..100_000u64 {
            mg.insert(i);
        }
        assert!(mg.space_bytes() < 16 * 64 + 1024);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn rejects_zero_k() {
        MisraGries::new(0);
    }
}
