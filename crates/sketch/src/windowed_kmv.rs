//! Sliding-window distinct counting: timestamped KMV.
//!
//! The paper's problem definitions cite sliding-window distinct elements
//! (Braverman et al., \[4\]) as part of the classical-streaming landscape
//! the projected model builds on. This substrate answers `F_0` over *any
//! suffix window* of the stream: for each hash value we keep the **most
//! recent** arrival time, and retain a value only if its hash is among the
//! `k` smallest of items seen after it — equivalently, we keep the
//! ascending-hash "staircase" of recent items. A query for window `w`
//! takes the ≤ `k` smallest retained hashes with timestamp inside the
//! window and applies the standard KMV estimator.
//!
//! Space is `O(k log(n/k))` in expectation (the staircase property);
//! the structure is exact for under-full windows, like plain KMV.

use crate::traits::{vec_bytes, SpaceUsage};
use pfe_hash::hash_u64;

/// Timestamped-KMV sliding-window distinct counter.
#[derive(Debug, Clone)]
pub struct WindowedKmv {
    /// Retained (hash, last-seen time), sorted by hash ascending; the
    /// timestamps form a staircase: each retained entry is more recent
    /// than every retained entry with a smaller hash... (inverse — see
    /// `insert` invariant note).
    entries: Vec<(u64, u64)>,
    k: usize,
    seed: u64,
    now: u64,
    /// Lazy-prune trigger: prune when `entries.len()` exceeds this.
    prune_at: usize,
}

impl WindowedKmv {
    /// Create with KMV capacity `k` per window query.
    ///
    /// # Panics
    /// Panics if `k < 2`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 2, "WindowedKmv requires k >= 2");
        Self {
            entries: Vec::new(),
            k,
            seed,
            now: 0,
            prune_at: (4 * k).max(64),
        }
    }

    /// Stream length so far.
    pub fn len_stream(&self) -> u64 {
        self.now
    }

    /// Retained entry count (the space the structure actually uses).
    pub fn retained(&self) -> usize {
        self.entries.len()
    }

    /// Observe one item (time advances by 1).
    ///
    /// Invariant maintained: an entry `(h, t)` is retained iff fewer than
    /// `k` retained hashes smaller than `h` have timestamp `≥ t` — i.e.
    /// `h` would be among the `k` minima of some suffix window.
    pub fn insert(&mut self, item: u64) {
        self.now += 1;
        let h = hash_u64(item, self.seed);
        match self.entries.binary_search_by_key(&h, |&(eh, _)| eh) {
            Ok(pos) => {
                // Same item (hash injective per seed): refresh its time.
                self.entries[pos].1 = self.now;
            }
            Err(pos) => {
                self.entries.insert(pos, (h, self.now));
            }
        }
        // Lazy amortized prune: dead entries (>= k smaller-hash entries at
        // least as recent) can never be among any window's k minima, so
        // deferring their removal does not change query answers.
        if self.entries.len() > self.prune_at {
            self.prune();
            self.prune_at = (2 * self.entries.len()).max(4 * self.k).max(64);
        }
    }

    /// Remove dead entries: walk ascending hashes; an entry is dead if `k`
    /// entries with smaller hash are at least as recent.
    fn prune(&mut self) {
        let mut kept: Vec<(u64, u64)> = Vec::with_capacity(self.entries.len());
        // Sorted timestamps of kept (smaller-hash) entries, to query
        // "how many >= t" by binary search.
        let mut ts_sorted: Vec<u64> = Vec::with_capacity(self.entries.len());
        for &(h, t) in &self.entries {
            let newer = ts_sorted.len() - ts_sorted.partition_point(|&x| x < t);
            if newer < self.k {
                kept.push((h, t));
                let ins = ts_sorted.partition_point(|&x| x < t);
                ts_sorted.insert(ins, t);
            }
        }
        self.entries = kept;
    }

    /// Estimate the number of distinct items among the last `window` stream
    /// positions (`window >= 1`; clamped to the stream length).
    pub fn estimate_window(&self, window: u64) -> f64 {
        if self.now == 0 {
            return 0.0;
        }
        let window = window.min(self.now).max(1);
        let cutoff = self.now - window; // times > cutoff are inside
        let mut minima = 0usize;
        let mut kth: Option<u64> = None;
        for &(h, t) in &self.entries {
            if t > cutoff {
                minima += 1;
                if minima == self.k {
                    kth = Some(h);
                    break;
                }
            }
        }
        match kth {
            None => minima as f64, // under-full: exact distinct count
            Some(h) => {
                let vk = (h as f64 + 1.0) / (u64::MAX as f64 + 1.0);
                (self.k as f64 - 1.0) / vk
            }
        }
    }

    /// Estimate over the whole stream (window = everything).
    pub fn estimate_all(&self) -> f64 {
        self.estimate_window(self.now.max(1))
    }
}

impl SpaceUsage for WindowedKmv {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + vec_bytes(&self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfe_hash::rng::Xoshiro256pp;

    #[test]
    fn underfull_windows_exact() {
        let mut s = WindowedKmv::new(64, 1);
        for i in 0..40u64 {
            s.insert(i);
        }
        assert_eq!(s.estimate_window(40), 40.0);
        assert_eq!(s.estimate_window(10), 10.0);
        assert_eq!(s.estimate_window(1), 1.0);
    }

    #[test]
    fn distinct_in_window_not_stream() {
        // Stream: 0..50 then 0..50 again. Window of 50 sees 50 distinct;
        // whole stream also 50 distinct.
        let mut s = WindowedKmv::new(128, 2);
        for _ in 0..2 {
            for i in 0..50u64 {
                s.insert(i);
            }
        }
        assert_eq!(s.estimate_window(50), 50.0);
        assert_eq!(s.estimate_all(), 50.0);
    }

    #[test]
    fn window_estimates_track_truth() {
        let mut s = WindowedKmv::new(256, 3);
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let stream: Vec<u64> = (0..50_000).map(|_| rng.range_u64(5_000)).collect();
        for &x in &stream {
            s.insert(x);
        }
        for &w in &[100u64, 1000, 20_000] {
            let truth: std::collections::HashSet<u64> = stream[(stream.len() - w as usize)..]
                .iter()
                .copied()
                .collect();
            let est = s.estimate_window(w);
            let rel = (est - truth.len() as f64).abs() / truth.len() as f64;
            assert!(
                rel < 0.3,
                "window {w}: est {est} vs {} (rel {rel})",
                truth.len()
            );
        }
    }

    #[test]
    fn retained_space_logarithmic() {
        let mut s = WindowedKmv::new(32, 5);
        for i in 0..100_000u64 {
            s.insert(i);
        }
        // O(k log(n/k)) after a prune; lazy pruning at most doubles it.
        let envelope = 2.0 * 32.0 * ((100_000f64 / 32.0).log2() + 4.0);
        assert!(
            (s.retained() as f64) < envelope,
            "retained {} above staircase envelope {envelope}",
            s.retained()
        );
    }

    #[test]
    fn refreshing_an_item_keeps_it_alive() {
        let mut s = WindowedKmv::new(4, 6);
        // Insert a burst, then keep refreshing item 7 only.
        for i in 0..100u64 {
            s.insert(i);
        }
        for _ in 0..100 {
            s.insert(7);
        }
        // A window of the last 50 positions has exactly one distinct item.
        assert_eq!(s.estimate_window(50), 1.0);
    }

    #[test]
    fn empty_stream() {
        let s = WindowedKmv::new(8, 7);
        assert_eq!(s.estimate_window(10), 0.0);
        assert_eq!(s.estimate_all(), 0.0);
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn rejects_tiny_k() {
        WindowedKmv::new(1, 0);
    }
}
