//! BJKST distinct-elements sketch (Bar-Yossef–Jayram–Kumar–Sivakumar–
//! Trevisan, algorithm 2).
//!
//! Keep only items whose hash has at least `z` trailing zero bits; when the
//! kept set exceeds the budget, raise `z` and prune. The estimate is
//! `|S|·2^z`. With budget `O(1/ε²)` this is an `(1±ε)` approximation with
//! constant probability — the textbook predecessor of the optimal
//! Kane–Nelson–Woodruff algorithm the paper cites as \[11\], and a fourth
//! `F_0` plug-in for the α-net ablation.

use crate::traits::{DistinctSketch, SpaceUsage};
use pfe_hash::builder::{seeded_set, SeededHashSet};
use pfe_hash::hash_u64;

/// BJKST sketch with a fixed bucket budget.
#[derive(Debug, Clone)]
pub struct Bjkst {
    kept: SeededHashSet<u64>,
    budget: usize,
    z: u32,
    seed: u64,
}

impl Bjkst {
    /// Create with a `budget` on retained hashes (`>= 16` for sane
    /// accuracy; the estimator error is `~1/√budget`).
    ///
    /// # Panics
    /// Panics if `budget < 2`.
    pub fn new(budget: usize, seed: u64) -> Self {
        assert!(budget >= 2, "BJKST budget must be >= 2");
        Self {
            kept: seeded_set(seed ^ b1k_magic()),
            budget,
            z: 0,
            seed,
        }
    }

    /// Current level `z`.
    pub fn level(&self) -> u32 {
        self.z
    }

    /// Expected relative standard error `~1/√budget`.
    pub fn relative_error(&self) -> f64 {
        1.0 / (self.budget as f64).sqrt()
    }
}

/// Seed-mixing constant (function instead of const to sidestep identifier
/// rules on the digit-containing name).
#[inline]
fn b1k_magic() -> u64 {
    0x1b1b_5757_2020_4242
}

impl SpaceUsage for Bjkst {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.kept.capacity() * (std::mem::size_of::<u64>() + std::mem::size_of::<usize>())
    }
}

impl DistinctSketch for Bjkst {
    fn insert(&mut self, item: u64) {
        let h = hash_u64(item, self.seed);
        if h.trailing_zeros() < self.z {
            return;
        }
        self.kept.insert(h);
        while self.kept.len() > self.budget {
            self.z += 1;
            let z = self.z;
            self.kept.retain(|&x| x.trailing_zeros() >= z);
        }
    }

    fn estimate(&self) -> f64 {
        self.kept.len() as f64 * 2f64.powi(self.z as i32)
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(self.seed, other.seed, "BJKST merge: seed mismatch");
        assert_eq!(self.budget, other.budget, "BJKST merge: budget mismatch");
        // Merge at the coarser level, then re-prune to the budget.
        self.z = self.z.max(other.z);
        let z = self.z;
        self.kept.retain(|&x| x.trailing_zeros() >= z);
        for &h in &other.kept {
            if h.trailing_zeros() >= z {
                self.kept.insert(h);
            }
        }
        while self.kept.len() > self.budget {
            self.z += 1;
            let z = self.z;
            self.kept.retain(|&x| x.trailing_zeros() >= z);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_when_under_budget() {
        let mut s = Bjkst::new(1024, 1);
        for i in 0..500u64 {
            s.insert(i);
            s.insert(i);
        }
        assert_eq!(s.level(), 0);
        assert_eq!(s.estimate(), 500.0);
    }

    #[test]
    fn estimates_large_cardinalities() {
        let mut s = Bjkst::new(256, 2);
        let n = 200_000u64;
        for i in 0..n {
            s.insert(i);
        }
        let rel = (s.estimate() - n as f64).abs() / n as f64;
        assert!(rel < 5.0 * s.relative_error(), "relative error {rel}");
        assert!(s.level() > 0, "level never rose");
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut a = Bjkst::new(64, 3);
        let mut b = Bjkst::new(64, 3);
        for i in 0..10_000u64 {
            a.insert(i);
        }
        for _ in 0..3 {
            for i in 0..10_000u64 {
                b.insert(i);
            }
        }
        assert_eq!(a.estimate(), b.estimate());
    }

    #[test]
    fn space_bounded_by_budget() {
        let mut s = Bjkst::new(128, 4);
        for i in 0..1_000_000u64 {
            s.insert(i);
        }
        // Kept set stays <= budget; hash-set capacity may double it.
        assert!(
            s.space_bytes() < 128 * 48 + 512,
            "space {}",
            s.space_bytes()
        );
    }

    #[test]
    fn merge_equals_union_build() {
        let mut a = Bjkst::new(128, 5);
        let mut b = Bjkst::new(128, 5);
        let mut u = Bjkst::new(128, 5);
        for i in 0..30_000u64 {
            a.insert(i);
            u.insert(i);
        }
        for i in 15_000..60_000u64 {
            b.insert(i);
            u.insert(i);
        }
        a.merge(&b);
        // Levels may differ by pruning order but the estimates must agree
        // within the estimator's own error.
        let rel = (a.estimate() - u.estimate()).abs() / u.estimate();
        assert!(rel < 0.2, "merge drift {rel}");
    }

    #[test]
    #[should_panic(expected = "budget must be >= 2")]
    fn rejects_tiny_budget() {
        Bjkst::new(1, 0);
    }

    #[test]
    fn empty_estimates_zero() {
        assert_eq!(Bjkst::new(16, 7).estimate(), 0.0);
    }
}
