//! AMS `F_2` sketch (Alon–Matias–Szegedy, \[1\] in the paper).
//!
//! Each elementary estimator keeps `Z = Σ_i s(i)·f_i` for a 4-wise
//! independent sign hash `s`; `Z²` is an unbiased `F_2` estimate with
//! `Var[Z²] ≤ 2F_2²`. Averaging `s1` estimators and taking the median of
//! `s2` groups gives an `(ε, δ)` guarantee with `s1 = O(1/ε²)`,
//! `s2 = O(log 1/δ)`. This is the `β`-approximate `F_2` plug-in for the
//! α-net `F_p` summary at `p = 2`.

use crate::traits::{vec_bytes, MomentSketch, SpaceUsage};
use pfe_hash::kwise::SignHash;
use pfe_persist::Persist;

/// AMS `F_2` sketch: `groups × per_group` elementary estimators.
#[derive(Debug, Clone)]
pub struct AmsF2 {
    sums: Vec<i64>,
    signs: Vec<SignHash>,
    per_group: usize,
}

impl AmsF2 {
    /// Create with `groups` median groups of `per_group` averaged
    /// estimators. `groups` is rounded up to odd.
    ///
    /// # Panics
    /// Panics if either parameter is zero.
    pub fn new(groups: usize, per_group: usize, seed: u64) -> Self {
        assert!(groups > 0 && per_group > 0, "AMS needs positive shape");
        let groups = if groups.is_multiple_of(2) {
            groups + 1
        } else {
            groups
        };
        let t = groups * per_group;
        Self {
            sums: vec![0i64; t],
            signs: (0..t)
                .map(|j| SignHash::new(seed.wrapping_add(j as u64).wrapping_mul(0x2545_f491)))
                .collect(),
            per_group,
        }
    }

    /// Create from accuracy targets: relative error `ε`, failure `δ`.
    ///
    /// # Panics
    /// Panics if `eps` or `delta` are outside `(0, 1)`.
    pub fn with_error(eps: f64, delta: f64, seed: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0);
        assert!(delta > 0.0 && delta < 1.0);
        let per_group = (8.0 / (eps * eps)).ceil() as usize;
        let groups = (4.0 * (1.0 / delta).ln()).ceil().max(1.0) as usize;
        Self::new(groups, per_group, seed)
    }

    /// Number of median groups.
    pub fn groups(&self) -> usize {
        self.sums.len() / self.per_group
    }

    /// Estimators per group.
    pub fn per_group(&self) -> usize {
        self.per_group
    }

    /// Merge a compatible sketch (same shape and seed).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.sums.len(),
            other.sums.len(),
            "AMS merge: shape mismatch"
        );
        assert_eq!(self.per_group, other.per_group, "AMS merge: shape mismatch");
        for (a, &b) in self.sums.iter_mut().zip(&other.sums) {
            *a += b;
        }
    }
}

impl SpaceUsage for AmsF2 {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + vec_bytes(&self.sums)
            + self.signs.len() * std::mem::size_of::<SignHash>()
    }
}

impl MomentSketch for AmsF2 {
    fn p(&self) -> f64 {
        2.0
    }

    fn update(&mut self, item: u64, delta: i64) {
        for (z, s) in self.sums.iter_mut().zip(&self.signs) {
            *z += s.sign(item) * delta;
        }
    }

    fn estimate(&self) -> f64 {
        let mut medians: Vec<f64> = self
            .sums
            .chunks_exact(self.per_group)
            .map(|group| {
                group.iter().map(|&z| (z as f64) * (z as f64)).sum::<f64>() / group.len() as f64
            })
            .collect();
        medians.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        medians[medians.len() / 2]
    }

    fn merge_with(&mut self, other: &Self) {
        self.merge(other);
    }
}

impl Persist for AmsF2 {
    fn encode(&self, enc: &mut pfe_persist::Encoder) {
        enc.put_u64(self.per_group as u64);
        self.sums.encode(enc);
        self.signs.encode(enc);
    }

    fn decode(dec: &mut pfe_persist::Decoder<'_>) -> Result<Self, pfe_persist::PersistError> {
        use pfe_persist::PersistError;
        let per_group = dec.take_u64()? as usize;
        if per_group == 0 {
            return Err(PersistError::Malformed("AMS per_group must be >= 1".into()));
        }
        let sums = Vec::<i64>::decode(dec)?;
        let signs = Vec::<SignHash>::decode(dec)?;
        if sums.len() != signs.len() {
            return Err(PersistError::Malformed(format!(
                "AMS has {} sums but {} sign hashes",
                sums.len(),
                signs.len()
            )));
        }
        if sums.is_empty() || sums.len() % per_group != 0 {
            return Err(PersistError::Malformed(format!(
                "AMS estimator count {} is not a positive multiple of per_group {per_group}",
                sums.len()
            )));
        }
        if (sums.len() / per_group).is_multiple_of(2) {
            return Err(PersistError::Malformed(
                "AMS group count must be odd (median of groups)".into(),
            ));
        }
        Ok(Self {
            sums,
            signs,
            per_group,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfe_hash::rng::Xoshiro256pp;

    #[test]
    fn uniform_stream_accuracy() {
        let mut s = AmsF2::new(5, 64, 1);
        // 200 items, each frequency 50: F2 = 200 * 2500 = 500_000.
        for item in 0..200u64 {
            s.update(item, 50);
        }
        let est = s.estimate();
        let rel = (est - 500_000.0).abs() / 500_000.0;
        assert!(rel < 0.3, "relative error {rel}");
    }

    #[test]
    fn skewed_stream_accuracy() {
        let mut s = AmsF2::with_error(0.2, 0.05, 2);
        let mut truth = std::collections::HashMap::new();
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        for _ in 0..30_000 {
            let item = rng.range_u64(50);
            *truth.entry(item).or_insert(0i64) += 1;
            s.update(item, 1);
        }
        let f2: f64 = truth.values().map(|&c| (c as f64) * (c as f64)).sum();
        let rel = (s.estimate() - f2).abs() / f2;
        assert!(rel < 0.2, "relative error {rel}");
    }

    #[test]
    fn deletions_supported() {
        let mut s = AmsF2::new(3, 32, 4);
        s.update(1, 10);
        s.update(2, 5);
        s.update(1, -10); // remove item 1 entirely
                          // Remaining F2 = 25.
        let est = s.estimate();
        assert!((est - 25.0).abs() < 15.0, "estimate {est}");
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(AmsF2::new(3, 8, 0).estimate(), 0.0);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = AmsF2::new(5, 16, 9);
        let mut b = AmsF2::new(5, 16, 9);
        let mut c = AmsF2::new(5, 16, 9);
        for item in 0..30u64 {
            a.update(item, 3);
            c.update(item, 3);
        }
        for item in 15..45u64 {
            b.update(item, 2);
            c.update(item, 2);
        }
        a.merge(&b);
        assert_eq!(a.estimate(), c.estimate());
    }

    #[test]
    fn single_item_exact_shape() {
        // One item with frequency f: every estimator is (±f)², so the
        // estimate is exactly f².
        let mut s = AmsF2::new(3, 8, 5);
        s.update(99, 7);
        assert_eq!(s.estimate(), 49.0);
    }

    #[test]
    fn groups_rounded_odd() {
        assert_eq!(AmsF2::new(4, 8, 0).groups(), 5);
    }
}
