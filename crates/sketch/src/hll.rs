//! HyperLogLog distinct-count sketch (Flajolet et al.), 64-bit variant.
//!
//! `m = 2^b` byte registers; item hash splits into a register index (top
//! `b` bits) and a rank `ρ` (leading zeros of the remaining bits + 1).
//! Estimate is the bias-corrected harmonic mean with the linear-counting
//! small-range correction. Relative standard error `≈ 1.04/√m`. Offered as
//! an alternative α-net `F_0` plug-in (constant space per subset, smaller
//! than KMV at equal error) and exercised by the ablation experiment E-A2.

use crate::traits::{vec_bytes, DistinctSketch, SpaceUsage};
use pfe_hash::hash_u64;

/// HyperLogLog with `2^b` registers.
#[derive(Debug, Clone)]
pub struct HyperLogLog {
    registers: Vec<u8>,
    b: u32,
    seed: u64,
}

impl HyperLogLog {
    /// Create a sketch with `2^b` registers, `4 ≤ b ≤ 18`.
    ///
    /// # Panics
    /// Panics if `b` is outside `[4, 18]`.
    pub fn new(b: u32, seed: u64) -> Self {
        assert!((4..=18).contains(&b), "HLL precision b={b} outside [4,18]");
        Self {
            registers: vec![0u8; 1 << b],
            b,
            seed,
        }
    }

    /// Number of registers `m = 2^b`.
    pub fn num_registers(&self) -> usize {
        self.registers.len()
    }

    /// Expected relative standard error `1.04/√m`.
    pub fn relative_error(&self) -> f64 {
        1.04 / (self.num_registers() as f64).sqrt()
    }

    fn alpha(m: usize) -> f64 {
        match m {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            m => 0.7213 / (1.0 + 1.079 / m as f64),
        }
    }
}

impl SpaceUsage for HyperLogLog {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + vec_bytes(&self.registers)
    }
}

impl DistinctSketch for HyperLogLog {
    fn insert(&mut self, item: u64) {
        let h = hash_u64(item, self.seed);
        let idx = (h >> (64 - self.b)) as usize;
        // Rank over the remaining 64-b bits; cap keeps the rank in a u8 and
        // handles the all-zero remainder.
        let rest = h << self.b;
        let rho = (rest.leading_zeros() + 1).min(64 - self.b + 1) as u8;
        if rho > self.registers[idx] {
            self.registers[idx] = rho;
        }
    }

    fn estimate(&self) -> f64 {
        let m = self.num_registers() as f64;
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = Self::alpha(self.num_registers()) * m * m / sum;
        if raw <= 2.5 * m {
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                // Linear-counting small-range correction.
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(self.b, other.b, "HLL merge: precision mismatch");
        assert_eq!(self.seed, other.seed, "HLL merge: seed mismatch");
        for (a, &b) in self.registers.iter_mut().zip(&other.registers) {
            *a = (*a).max(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_counts_near_exact() {
        let mut s = HyperLogLog::new(10, 1);
        for i in 0..100u64 {
            s.insert(i);
        }
        let est = s.estimate();
        assert!((est - 100.0).abs() < 10.0, "estimate {est}");
    }

    #[test]
    fn large_counts_within_error() {
        let mut s = HyperLogLog::new(12, 2); // m=4096, rse ~ 1.6%
        let n = 1_000_000u64;
        for i in 0..n {
            s.insert(i);
        }
        let rel = (s.estimate() - n as f64).abs() / n as f64;
        assert!(rel < 5.0 * s.relative_error(), "relative error {rel}");
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut s = HyperLogLog::new(8, 3);
        for _ in 0..100 {
            for i in 0..50u64 {
                s.insert(i);
            }
        }
        let est = s.estimate();
        assert!((est - 50.0).abs() < 15.0, "estimate {est}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = HyperLogLog::new(10, 4);
        let mut b = HyperLogLog::new(10, 4);
        let mut u = HyperLogLog::new(10, 4);
        for i in 0..20_000u64 {
            a.insert(i);
            u.insert(i);
        }
        for i in 10_000..30_000u64 {
            b.insert(i);
            u.insert(i);
        }
        a.merge(&b);
        assert_eq!(a.estimate(), u.estimate());
    }

    #[test]
    fn space_is_m_plus_overhead() {
        let s = HyperLogLog::new(12, 0);
        assert!(s.space_bytes() >= 4096);
        assert!(s.space_bytes() < 4096 + 128);
    }

    #[test]
    #[should_panic(expected = "outside [4,18]")]
    fn rejects_bad_precision() {
        HyperLogLog::new(3, 0);
    }

    #[test]
    #[should_panic(expected = "precision mismatch")]
    fn merge_rejects_mismatch() {
        let mut a = HyperLogLog::new(8, 0);
        let b = HyperLogLog::new(9, 0);
        a.merge(&b);
    }

    #[test]
    fn empty_estimates_zero() {
        let s = HyperLogLog::new(6, 9);
        assert_eq!(s.estimate(), 0.0);
    }
}
