//! Linear (probabilistic) counting — Whang et al.
//!
//! A bitmap of `m` bits; each item sets the bit at `h(item) mod m`. The
//! distinct count estimate is `m · ln(m / z)` where `z` is the number of
//! zero bits. Accurate while the load factor is moderate; saturates as
//! `z → 0`. Included as the third `F_0` plug-in for the α-net ablation
//! (cheapest per-sketch memory at low cardinalities, degrades predictably —
//! the E-A2 experiment shows the crossover against KMV/HLL).

use crate::traits::{vec_bytes, DistinctSketch, SpaceUsage};
use pfe_hash::hash_u64;

/// Linear counting sketch with an `m`-bit bitmap.
#[derive(Debug, Clone)]
pub struct LinearCounting {
    bits: Vec<u64>,
    m: usize,
    seed: u64,
}

impl LinearCounting {
    /// Create a sketch with `m` bits.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn new(m: usize, seed: u64) -> Self {
        assert!(m > 0, "bitmap size must be positive");
        Self {
            bits: vec![0u64; m.div_ceil(64)],
            m,
            seed,
        }
    }

    /// Bitmap size in bits.
    pub fn num_bits(&self) -> usize {
        self.m
    }

    /// Number of zero bits.
    pub fn zeros(&self) -> usize {
        let ones: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        self.m - ones as usize
    }

    /// True once every bit is set (the estimator is saturated).
    pub fn is_saturated(&self) -> bool {
        self.zeros() == 0
    }
}

impl SpaceUsage for LinearCounting {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + vec_bytes(&self.bits)
    }
}

impl DistinctSketch for LinearCounting {
    fn insert(&mut self, item: u64) {
        let h = hash_u64(item, self.seed) as usize % self.m;
        self.bits[h / 64] |= 1u64 << (h % 64);
    }

    fn estimate(&self) -> f64 {
        let z = self.zeros();
        if z == 0 {
            // Saturated: report the (finite) estimate for half a zero bit —
            // a documented convention so downstream math never sees inf.
            return self.m as f64 * (2.0 * self.m as f64).ln();
        }
        self.m as f64 * (self.m as f64 / z as f64).ln()
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(self.m, other.m, "LinearCounting merge: size mismatch");
        assert_eq!(self.seed, other.seed, "LinearCounting merge: seed mismatch");
        for (a, &b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_load_accurate() {
        let mut s = LinearCounting::new(4096, 1);
        for i in 0..500u64 {
            s.insert(i);
        }
        let est = s.estimate();
        assert!((est - 500.0).abs() < 50.0, "estimate {est}");
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut s = LinearCounting::new(1024, 2);
        for _ in 0..100 {
            for i in 0..100u64 {
                s.insert(i);
            }
        }
        let est = s.estimate();
        assert!((est - 100.0).abs() < 20.0, "estimate {est}");
    }

    #[test]
    fn saturation_is_finite_and_flagged() {
        let mut s = LinearCounting::new(64, 3);
        for i in 0..10_000u64 {
            s.insert(i);
        }
        assert!(s.is_saturated());
        assert!(s.estimate().is_finite());
        assert!(s.estimate() > 64.0);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = LinearCounting::new(2048, 4);
        let mut b = LinearCounting::new(2048, 4);
        let mut u = LinearCounting::new(2048, 4);
        for i in 0..300u64 {
            a.insert(i);
            u.insert(i);
        }
        for i in 200..500u64 {
            b.insert(i);
            u.insert(i);
        }
        a.merge(&b);
        assert_eq!(a.estimate(), u.estimate());
    }

    #[test]
    fn space_tracks_bitmap() {
        let s = LinearCounting::new(8192, 0);
        assert!(s.space_bytes() >= 1024);
        assert!(s.space_bytes() < 1024 + 128);
    }

    #[test]
    fn empty_estimates_zero() {
        let s = LinearCounting::new(256, 7);
        assert_eq!(s.estimate(), 0.0);
        assert_eq!(s.zeros(), 256);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn merge_rejects_mismatch() {
        let mut a = LinearCounting::new(64, 0);
        let b = LinearCounting::new(128, 0);
        a.merge(&b);
    }

    #[test]
    fn non_multiple_of_64_bits() {
        let mut s = LinearCounting::new(100, 5);
        for i in 0..30u64 {
            s.insert(i);
        }
        let est = s.estimate();
        assert!((est - 30.0).abs() < 12.0, "estimate {est}");
        assert_eq!(s.zeros() + 30, 100.max(s.zeros() + 30)); // zeros <= 100-… sanity
    }
}
