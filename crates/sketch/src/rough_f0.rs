//! Rough `F_0` estimator: median-of-max-rank (the "rough estimator" stage of
//! Kane–Nelson–Woodruff's optimal distinct-elements algorithm, \[11\] in the
//! paper).
//!
//! Each of `t` independent repetitions tracks the maximum number of leading
//! zeros `ρ` of the hashed stream; `2^{ρ_max}` is a constant-factor `F_0`
//! estimate per repetition, and the median over repetitions concentrates.
//! This gives O(t) words for an O(1)-factor approximation — exactly the kind
//! of coarse sketch the α-net scheme can afford to keep per subset when only
//! an `N^α`-factor answer is needed.

use crate::traits::{vec_bytes, DistinctSketch, SpaceUsage};
use pfe_hash::hash_u64;

/// Median-of-max-rank rough distinct-count estimator.
#[derive(Debug, Clone)]
pub struct RoughF0 {
    /// Max rank per repetition (0 = nothing seen).
    max_rank: Vec<u8>,
    seed: u64,
}

impl RoughF0 {
    /// Create with `t` independent repetitions.
    ///
    /// # Panics
    /// Panics if `t == 0`.
    pub fn new(t: usize, seed: u64) -> Self {
        assert!(t > 0, "need at least one repetition");
        Self {
            max_rank: vec![0u8; t],
            seed,
        }
    }

    /// Number of repetitions.
    pub fn repetitions(&self) -> usize {
        self.max_rank.len()
    }
}

impl SpaceUsage for RoughF0 {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + vec_bytes(&self.max_rank)
    }
}

impl DistinctSketch for RoughF0 {
    fn insert(&mut self, item: u64) {
        for (j, slot) in self.max_rank.iter_mut().enumerate() {
            let h = hash_u64(item, self.seed.wrapping_add(j as u64));
            // rank = leading zeros + 1 in [1, 65].
            let rank = (h.leading_zeros() + 1).min(64) as u8;
            if rank > *slot {
                *slot = rank;
            }
        }
    }

    fn estimate(&self) -> f64 {
        let mut ranks = self.max_rank.clone();
        ranks.sort_unstable();
        let med = ranks[ranks.len() / 2];
        if med == 0 {
            return 0.0;
        }
        // E[max rank] ~ log2(n) + gamma-ish constant; 2^(med-1) keeps the
        // estimator within a small constant factor (validated in tests).
        2f64.powi(med as i32 - 1)
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(self.seed, other.seed, "RoughF0 merge: seed mismatch");
        assert_eq!(
            self.max_rank.len(),
            other.max_rank.len(),
            "RoughF0 merge: repetition mismatch"
        );
        for (a, &b) in self.max_rank.iter_mut().zip(&other.max_rank) {
            *a = (*a).max(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_constant_factor_across_scales() {
        for &n in &[100u64, 10_000, 1_000_000] {
            let mut s = RoughF0::new(31, 5);
            for i in 0..n {
                s.insert(i);
            }
            let est = s.estimate();
            let ratio = est / n as f64;
            assert!(
                (0.1..=10.0).contains(&ratio),
                "n={n}: estimate {est} off by {ratio}x"
            );
        }
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut a = RoughF0::new(15, 1);
        let mut b = RoughF0::new(15, 1);
        for i in 0..1000u64 {
            a.insert(i);
        }
        for _ in 0..50 {
            for i in 0..1000u64 {
                b.insert(i);
            }
        }
        assert_eq!(a.estimate(), b.estimate());
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(RoughF0::new(7, 0).estimate(), 0.0);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = RoughF0::new(9, 2);
        let mut b = RoughF0::new(9, 2);
        let mut u = RoughF0::new(9, 2);
        for i in 0..500u64 {
            a.insert(i);
            u.insert(i);
        }
        for i in 300..900u64 {
            b.insert(i);
            u.insert(i);
        }
        a.merge(&b);
        assert_eq!(a.estimate(), u.estimate());
    }

    #[test]
    fn space_is_t_bytes_plus_overhead() {
        let s = RoughF0::new(100, 0);
        assert!(s.space_bytes() < 200);
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn rejects_zero_repetitions() {
        RoughF0::new(0, 0);
    }
}
