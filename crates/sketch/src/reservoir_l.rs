//! Reservoir sampling, Algorithm L (Li 1994): skip-ahead optimization.
//!
//! Statistically equivalent to Algorithm R (each stream position kept with
//! probability `t/n`) but O(t·(1 + log(n/t))) random draws instead of one
//! per item: after the reservoir fills, the number of items to *skip*
//! before the next replacement is drawn geometrically.
//!
//! Note on when this wins: the benefit is *fewer RNG draws*, which matters
//! when the generator is expensive (cryptographic, syscall-backed) or when
//! draws contend. With this workspace's inlined xoshiro, Algorithm R's
//! per-item draw is already ~1–2 ns and the measured wall-clock of L is
//! comparable, not better (see `benches/samplers.rs`); L is provided for
//! completeness and for swap-in use with costlier generators.

use crate::traits::SpaceUsage;
use pfe_hash::rng::Xoshiro256pp;

/// Skip-ahead uniform reservoir of capacity `t`.
#[derive(Debug, Clone)]
pub struct ReservoirL<T> {
    items: Vec<T>,
    t: usize,
    seen: u64,
    /// Items still to skip before the next replacement.
    skip: u64,
    /// The running `W` of Algorithm L.
    w: f64,
    rng: Xoshiro256pp,
}

impl<T> ReservoirL<T> {
    /// Create with capacity `t`.
    ///
    /// # Panics
    /// Panics if `t == 0`.
    pub fn new(t: usize, seed: u64) -> Self {
        assert!(t > 0, "reservoir capacity must be positive");
        Self {
            items: Vec::with_capacity(t.min(1 << 20)),
            t,
            seen: 0,
            skip: 0,
            w: 1.0,
            rng: Xoshiro256pp::seed_from_u64(seed),
        }
    }

    /// Capacity `t`.
    pub fn capacity(&self) -> usize {
        self.t
    }

    /// Stream length observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Current sample.
    pub fn sample(&self) -> &[T] {
        &self.items
    }

    fn draw_skip(&mut self) {
        // W *= U^(1/t); skip ~ floor(log(U') / log(1-W)).
        self.w *= self.rng.f64_open_zero().powf(1.0 / self.t as f64);
        let u = self.rng.f64_open_zero();
        let denom = (1.0 - self.w).ln();
        self.skip = if denom.abs() < 1e-300 {
            u64::MAX
        } else {
            (u.ln() / denom).floor() as u64
        };
    }

    /// Observe one item.
    pub fn insert(&mut self, item: T) {
        self.seen += 1;
        if self.items.len() < self.t {
            self.items.push(item);
            if self.items.len() == self.t {
                self.draw_skip();
            }
            return;
        }
        if self.skip > 0 {
            self.skip -= 1;
            return;
        }
        let j = self.rng.range_u64(self.t as u64) as usize;
        self.items[j] = item;
        self.draw_skip();
    }
}

impl<T> SpaceUsage for ReservoirL<T> {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.items.capacity() * std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn underfull_keeps_everything() {
        let mut r = ReservoirL::new(64, 1);
        for i in 0..40u64 {
            r.insert(i);
        }
        let mut s = r.sample().to_vec();
        s.sort_unstable();
        assert_eq!(s, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn capacity_respected() {
        let mut r = ReservoirL::new(16, 2);
        for i in 0..100_000u64 {
            r.insert(i);
        }
        assert_eq!(r.sample().len(), 16);
        assert_eq!(r.seen(), 100_000);
    }

    #[test]
    fn marginal_inclusion_matches_algorithm_r() {
        // Every position kept with probability t/n — same contract as the
        // plain reservoir; aggregate over independent runs.
        let (t, n, runs) = (8usize, 80u64, 4000u64);
        let mut hits = vec![0u32; n as usize];
        for seed in 0..runs {
            let mut r = ReservoirL::new(t, seed);
            for i in 0..n {
                r.insert(i);
            }
            for &x in r.sample() {
                hits[x as usize] += 1;
            }
        }
        let expect = runs as f64 * t as f64 / n as f64;
        for (i, &h) in hits.iter().enumerate() {
            let dev = (h as f64 - expect).abs() / expect;
            assert!(dev < 0.25, "position {i} inclusion deviates {dev}");
        }
    }

    #[test]
    fn long_stream_cheap_rng() {
        // The skip counter must actually skip: across a 1M stream with
        // t=16, replacements (and thus RNG draws) number O(t log(n/t)),
        // not O(n). We can't count draws directly; instead verify the
        // whole stream processes quickly and the sample stays valid.
        let mut r = ReservoirL::new(16, 3);
        for i in 0..1_000_000u64 {
            r.insert(i);
        }
        assert_eq!(r.sample().len(), 16);
        assert!(r.sample().iter().all(|&x| x < 1_000_000));
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut r = ReservoirL::new(4, seed);
            for i in 0..10_000u64 {
                r.insert(i);
            }
            r.sample().to_vec()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        ReservoirL::<u64>::new(0, 0);
    }
}
