//! Common sketch interfaces.
//!
//! Algorithm 1 of the paper is parameterized by "a β-approximate sketch" for
//! the underlying streaming problem; these traits are that plug-in point.
//! Items are `u64` fingerprints — projected pattern keys are hashed to 64
//! bits by the caller (`PatternKey::fingerprint64`), which keeps every
//! sketch oblivious to the pattern domain.

/// Heap + inline memory accounting, used for the space axis of every
/// experiment (Figure 1's "relative space", the Index-reduction space
/// reports).
pub trait SpaceUsage {
    /// Total bytes attributable to this structure (self + owned heap).
    fn space_bytes(&self) -> usize;
}

/// A distinct-count (`F_0`) sketch over a stream of 64-bit items.
pub trait DistinctSketch: SpaceUsage {
    /// Observe one item (duplicates allowed; only distinctness matters).
    fn insert(&mut self, item: u64);

    /// Estimate the number of distinct items observed.
    fn estimate(&self) -> f64;

    /// Merge another sketch built with identical parameters/seed.
    ///
    /// # Panics
    /// Implementations panic on parameter mismatch — merging incompatible
    /// sketches is a logic error, not a runtime condition.
    fn merge(&mut self, other: &Self)
    where
        Self: Sized;
}

/// A frequency (point-query) sketch over a stream of `(item, delta)` updates.
pub trait FrequencySketch: SpaceUsage {
    /// Apply an additive update (CountMin restricts to `delta >= 0`).
    fn update(&mut self, item: u64, delta: i64);

    /// Estimate the current frequency of `item`.
    fn estimate(&self, item: u64) -> f64;

    /// Total of all applied deltas (the stream length `‖f‖_1` for
    /// insert-only streams).
    fn total(&self) -> i64;
}

/// A frequency-moment sketch estimating `F_p = Σ f_i^p`.
pub trait MomentSketch: SpaceUsage {
    /// The moment order `p` this sketch targets.
    fn p(&self) -> f64;

    /// Apply an additive update.
    fn update(&mut self, item: u64, delta: i64);

    /// Estimate `F_p`.
    fn estimate(&self) -> f64;

    /// Merge another sketch built with identical parameters/seed.
    ///
    /// # Panics
    /// Implementations panic on parameter mismatch — merging incompatible
    /// sketches is a logic error, not a runtime condition.
    fn merge_with(&mut self, other: &Self)
    where
        Self: Sized;
}

/// Blanket helper: bytes of a `Vec`'s heap buffer.
pub(crate) fn vec_bytes<T>(v: &Vec<T>) -> usize {
    v.capacity() * std::mem::size_of::<T>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_bytes_counts_capacity() {
        let v: Vec<u64> = Vec::with_capacity(10);
        assert_eq!(vec_bytes(&v), 80);
        let w: Vec<u8> = Vec::new();
        assert_eq!(vec_bytes(&w), 0);
    }
}
