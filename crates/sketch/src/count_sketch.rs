//! CountSketch (Charikar–Chen–Farach-Colton) for signed frequency point
//! queries with `ℓ_2` error guarantees.
//!
//! `depth` rows of `width` signed counters; row `j` adds `s_j(x)·delta` at
//! bucket `h_j(x)`. The median over rows of `s_j(x)·C[j][h_j(x)]` estimates
//! `f_x` within `O(‖f‖_2/√width)` per row, boosted by the median. The
//! `ℓ_2` flavour is what the paper's heavy-hitter discussion (\[14\]) assumes
//! in the classical (non-projected) setting.

use crate::traits::{vec_bytes, FrequencySketch, SpaceUsage};
use pfe_hash::kwise::{SignHash, TwoWise};

/// CountSketch with signed counters.
#[derive(Debug, Clone)]
pub struct CountSketch {
    counters: Vec<i64>, // depth x width, row-major
    buckets: Vec<TwoWise>,
    signs: Vec<SignHash>,
    width: usize,
    total: i64,
}

impl CountSketch {
    /// Create a sketch with explicit `depth × width`. `depth` should be odd
    /// for an unambiguous median (enforced by rounding up).
    ///
    /// # Panics
    /// Panics if `depth == 0` or `width == 0`.
    pub fn new(depth: usize, width: usize, seed: u64) -> Self {
        assert!(
            depth > 0 && width > 0,
            "CountSketch needs positive depth/width"
        );
        let depth = if depth.is_multiple_of(2) {
            depth + 1
        } else {
            depth
        };
        Self {
            counters: vec![0i64; depth * width],
            buckets: (0..depth)
                .map(|j| {
                    TwoWise::new(
                        seed.wrapping_add(2 * j as u64 + 1)
                            .wrapping_mul(0xabcd_ef01),
                    )
                })
                .collect(),
            signs: (0..depth)
                .map(|j| SignHash::new(seed.wrapping_add(2 * j as u64).wrapping_mul(0x1357_9bdf)))
                .collect(),
            width,
            total: 0,
        }
    }

    /// Rows of the counter matrix (always odd).
    pub fn depth(&self) -> usize {
        self.buckets.len()
    }

    /// Columns of the counter matrix.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Merge a compatible sketch.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.width, other.width, "CountSketch merge: width mismatch");
        assert_eq!(
            self.depth(),
            other.depth(),
            "CountSketch merge: depth mismatch"
        );
        for (a, &b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
        self.total += other.total;
    }

    /// The `F_2` estimate from the median row's squared-counter sum — a
    /// bonus of CountSketch's structure (each row's `Σ C²` is an unbiased
    /// `F_2` estimator, as in AMS).
    pub fn f2_estimate(&self) -> f64 {
        let mut row_sums: Vec<f64> = (0..self.depth())
            .map(|j| {
                self.counters[j * self.width..(j + 1) * self.width]
                    .iter()
                    .map(|&c| (c as f64) * (c as f64))
                    .sum()
            })
            .collect();
        row_sums.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        row_sums[row_sums.len() / 2]
    }
}

impl SpaceUsage for CountSketch {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + vec_bytes(&self.counters)
            + self.buckets.len() * std::mem::size_of::<TwoWise>()
            + self.signs.len() * std::mem::size_of::<SignHash>()
    }
}

impl FrequencySketch for CountSketch {
    fn update(&mut self, item: u64, delta: i64) {
        for j in 0..self.depth() {
            let idx = j * self.width + self.buckets[j].bucket(item, self.width);
            self.counters[idx] += self.signs[j].sign(item) * delta;
        }
        self.total += delta;
    }

    fn estimate(&self, item: u64) -> f64 {
        let mut ests: Vec<i64> = (0..self.depth())
            .map(|j| {
                let idx = j * self.width + self.buckets[j].bucket(item, self.width);
                self.signs[j].sign(item) * self.counters[idx]
            })
            .collect();
        ests.sort_unstable();
        ests[ests.len() / 2] as f64
    }

    fn total(&self) -> i64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfe_hash::rng::{Xoshiro256pp, ZipfTable};

    #[test]
    fn heavy_items_recovered_on_zipf() {
        let mut s = CountSketch::new(7, 512, 1);
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let zipf = ZipfTable::new(1000, 1.3);
        let mut truth = vec![0i64; 1000];
        for _ in 0..100_000 {
            let item = zipf.sample(&mut rng) as u64;
            truth[item as usize] += 1;
            s.update(item, 1);
        }
        // The top item's estimate should be within 10% of truth.
        let top = (0..1000).max_by_key(|&i| truth[i]).expect("nonempty");
        let est = s.estimate(top as u64);
        let rel = (est - truth[top] as f64).abs() / truth[top] as f64;
        assert!(rel < 0.1, "top-item relative error {rel}");
    }

    #[test]
    fn signed_updates_cancel() {
        let mut s = CountSketch::new(5, 128, 2);
        s.update(42, 10);
        s.update(42, -10);
        assert_eq!(s.estimate(42), 0.0);
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn depth_made_odd() {
        assert_eq!(CountSketch::new(4, 16, 0).depth(), 5);
        assert_eq!(CountSketch::new(5, 16, 0).depth(), 5);
    }

    #[test]
    fn merge_adds() {
        let mut a = CountSketch::new(5, 256, 3);
        let mut b = CountSketch::new(5, 256, 3);
        a.update(9, 50);
        b.update(9, 25);
        a.merge(&b);
        let est = a.estimate(9);
        assert!((est - 75.0).abs() <= 1.0, "estimate {est}");
    }

    #[test]
    fn f2_estimate_reasonable() {
        let mut s = CountSketch::new(9, 1024, 4);
        // 100 items with frequency 10: F2 = 100 * 100 = 10_000.
        for item in 0..100u64 {
            s.update(item, 10);
        }
        let f2 = s.f2_estimate();
        let rel = (f2 - 10_000.0).abs() / 10_000.0;
        assert!(rel < 0.25, "F2 relative error {rel}");
    }

    #[test]
    fn unseen_item_near_zero_on_light_load() {
        let mut s = CountSketch::new(7, 512, 5);
        for item in 0..20u64 {
            s.update(item, 5);
        }
        let est = s.estimate(10_000);
        assert!(est.abs() <= 5.0, "unseen estimate {est}");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn merge_rejects_mismatch() {
        let mut a = CountSketch::new(3, 64, 0);
        let b = CountSketch::new(3, 128, 0);
        a.merge(&b);
    }
}
