#![warn(missing_docs)]
//! Streaming sketch substrate.
//!
//! The α-net meta-algorithm of the paper's Section 6 keeps one
//! "β-approximate sketch" per net subset; this crate supplies those
//! plug-ins, plus the classical-streaming baselines the paper contrasts
//! with, all implemented from scratch on the `pfe-hash` substrate:
//!
//! | family | sketches |
//! |---|---|
//! | distinct count (`F_0`) | [`Kmv`], [`HyperLogLog`], [`LinearCounting`], [`RoughF0`], [`Bjkst`] |
//! | point frequency | [`CountMin`], [`CountSketch`] |
//! | deterministic heavy hitters | [`MisraGries`], [`SpaceSaving`] |
//! | frequency moments | [`AmsF2`] (`p = 2`), [`StableFp`] (`0 < p < 2`) |
//! | sampling | [`Reservoir`] (uniform — Theorem 5.1), [`ReservoirL`] (skip-ahead), [`WeightedReservoir`], [`L0Sampler`] (turnstile support sampling) |
//!
//! All sketches take explicit seeds, support merging where the structure
//! permits, and report their memory through [`SpaceUsage`].

pub mod ams_f2;
pub mod bjkst;
pub mod count_min;
pub mod count_sketch;
pub mod hll;
pub mod kmv;
pub mod l0_sampler;
pub mod linear_counting;
pub mod misra_gries;
pub mod reservoir;
pub mod reservoir_l;
pub mod rough_f0;
pub mod space_saving;
pub mod stable_fp;
pub mod traits;
pub mod weighted_reservoir;
pub mod windowed_kmv;

pub use ams_f2::AmsF2;
pub use bjkst::Bjkst;
pub use count_min::CountMin;
pub use count_sketch::CountSketch;
pub use hll::HyperLogLog;
pub use kmv::Kmv;
pub use l0_sampler::L0Sampler;
pub use linear_counting::LinearCounting;
pub use misra_gries::MisraGries;
pub use reservoir::Reservoir;
pub use reservoir_l::ReservoirL;
pub use rough_f0::RoughF0;
pub use space_saving::SpaceSaving;
pub use stable_fp::{stable_median_abs, StableFp};
pub use traits::{DistinctSketch, FrequencySketch, MomentSketch, SpaceUsage};
pub use weighted_reservoir::WeightedReservoir;
pub use windowed_kmv::WindowedKmv;
