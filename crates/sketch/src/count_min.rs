//! CountMin sketch (Cormode & Muthukrishnan) for nonnegative frequency
//! point queries.
//!
//! `depth` rows of `width` counters with pairwise-independent row hashes;
//! a point query returns the minimum counter, overestimating by at most
//! `ε‖f‖_1` with probability `1 - δ` for `width = ⌈e/ε⌉`,
//! `depth = ⌈ln(1/δ)⌉`. Used as the classical-streaming frequency baseline
//! the paper contrasts with, and as an α-net plug-in for projected
//! `ℓ_1`-style frequency queries.

use crate::traits::{vec_bytes, FrequencySketch, SpaceUsage};
use pfe_hash::kwise::TwoWise;
use pfe_persist::Persist;

/// CountMin sketch. Updates must be nonnegative.
#[derive(Debug, Clone)]
pub struct CountMin {
    counters: Vec<u64>, // depth x width, row-major
    hashes: Vec<TwoWise>,
    width: usize,
    total: i64,
}

impl CountMin {
    /// Create a sketch with explicit `depth × width`.
    ///
    /// # Panics
    /// Panics if `depth == 0` or `width == 0`.
    pub fn new(depth: usize, width: usize, seed: u64) -> Self {
        assert!(
            depth > 0 && width > 0,
            "CountMin needs positive depth/width"
        );
        Self {
            counters: vec![0u64; depth * width],
            hashes: (0..depth)
                .map(|j| TwoWise::new(seed.wrapping_add(j as u64).wrapping_mul(0x9e37_79b9)))
                .collect(),
            width,
            total: 0,
        }
    }

    /// Create from accuracy targets: `ε` (additive error fraction of
    /// `‖f‖_1`) and failure probability `δ`.
    ///
    /// # Panics
    /// Panics if `eps` or `delta` are outside `(0, 1)`.
    pub fn with_error(eps: f64, delta: f64, seed: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps {eps} outside (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta {delta} outside (0,1)");
        let width = (std::f64::consts::E / eps).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        Self::new(depth, width, seed)
    }

    /// Rows of the counter matrix.
    pub fn depth(&self) -> usize {
        self.hashes.len()
    }

    /// Columns of the counter matrix.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Guaranteed additive overestimate bound `e/width × ‖f‖_1` (per row).
    pub fn epsilon(&self) -> f64 {
        std::f64::consts::E / self.width as f64
    }

    /// Merge a compatible sketch (same shape and seed-derived hashes).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.width, other.width, "CountMin merge: width mismatch");
        assert_eq!(
            self.depth(),
            other.depth(),
            "CountMin merge: depth mismatch"
        );
        for (a, &b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
        self.total += other.total;
    }
}

impl SpaceUsage for CountMin {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + vec_bytes(&self.counters)
            + self.hashes.len() * std::mem::size_of::<TwoWise>()
    }
}

impl FrequencySketch for CountMin {
    /// # Panics
    /// Panics if `delta < 0` — CountMin counters are monotone.
    fn update(&mut self, item: u64, delta: i64) {
        assert!(delta >= 0, "CountMin requires nonnegative updates");
        for (j, h) in self.hashes.iter().enumerate() {
            let idx = j * self.width + h.bucket(item, self.width);
            self.counters[idx] += delta as u64;
        }
        self.total += delta;
    }

    fn estimate(&self, item: u64) -> f64 {
        self.hashes
            .iter()
            .enumerate()
            .map(|(j, h)| self.counters[j * self.width + h.bucket(item, self.width)])
            .min()
            .unwrap_or(0) as f64
    }

    fn total(&self) -> i64 {
        self.total
    }
}

impl Persist for CountMin {
    fn encode(&self, enc: &mut pfe_persist::Encoder) {
        enc.put_u64(self.width as u64);
        enc.put_i64(self.total);
        self.hashes.encode(enc);
        self.counters.encode(enc);
    }

    fn decode(dec: &mut pfe_persist::Decoder<'_>) -> Result<Self, pfe_persist::PersistError> {
        use pfe_persist::PersistError;
        let width = dec.take_u64()? as usize;
        if width == 0 {
            return Err(PersistError::Malformed(
                "CountMin width must be >= 1".into(),
            ));
        }
        let total = dec.take_i64()?;
        let hashes = Vec::<TwoWise>::decode(dec)?;
        if hashes.is_empty() {
            return Err(PersistError::Malformed(
                "CountMin depth must be >= 1".into(),
            ));
        }
        let counters = Vec::<u64>::decode(dec)?;
        let expected = hashes.len().checked_mul(width).ok_or_else(|| {
            PersistError::Malformed(format!(
                "CountMin {} x {width} counter matrix overflows usize",
                hashes.len()
            ))
        })?;
        if counters.len() != expected {
            return Err(PersistError::Malformed(format!(
                "CountMin counter matrix has {} cells, expected {} x {width}",
                counters.len(),
                hashes.len()
            )));
        }
        Ok(Self {
            counters,
            hashes,
            width,
            total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfe_hash::rng::Xoshiro256pp;

    #[test]
    fn never_underestimates() {
        let mut s = CountMin::new(4, 64, 1);
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..5000 {
            let item = rng.range_u64(200);
            *truth.entry(item).or_insert(0i64) += 1;
            s.update(item, 1);
        }
        for (&item, &count) in &truth {
            assert!(s.estimate(item) >= count as f64, "underestimate for {item}");
        }
    }

    #[test]
    fn error_bound_holds_mostly() {
        let mut s = CountMin::with_error(0.01, 0.01, 2);
        let n = 20_000u64;
        for i in 0..n {
            s.update(i % 100, 1);
        }
        let eps = s.epsilon();
        let mut violations = 0;
        for item in 0..100u64 {
            let est = s.estimate(item);
            let true_count = (n / 100) as f64;
            if est - true_count > eps * n as f64 {
                violations += 1;
            }
        }
        assert!(
            violations <= 2,
            "too many error-bound violations: {violations}"
        );
    }

    #[test]
    fn absent_items_small_estimates() {
        let mut s = CountMin::with_error(0.001, 0.001, 3);
        for i in 0..1000u64 {
            s.update(i, 10);
        }
        // An item never inserted can only collide; with width ~2718 the
        // expected collision mass is tiny.
        let est = s.estimate(1_000_000);
        assert!(est <= 0.01 * s.total() as f64, "absent estimate {est}");
    }

    #[test]
    fn weighted_updates() {
        let mut s = CountMin::new(5, 272, 4);
        s.update(7, 100);
        s.update(8, 1);
        assert!(s.estimate(7) >= 100.0);
        assert!(s.estimate(8) >= 1.0);
        assert_eq!(s.total(), 101);
    }

    #[test]
    fn merge_adds() {
        let mut a = CountMin::new(3, 128, 5);
        let mut b = CountMin::new(3, 128, 5);
        a.update(1, 4);
        b.update(1, 6);
        b.update(2, 3);
        a.merge(&b);
        assert!(a.estimate(1) >= 10.0);
        assert!(a.estimate(2) >= 3.0);
        assert_eq!(a.total(), 13);
    }

    #[test]
    #[should_panic(expected = "nonnegative updates")]
    fn rejects_negative() {
        CountMin::new(2, 16, 0).update(1, -1);
    }

    #[test]
    fn shape_from_error_params() {
        let s = CountMin::with_error(0.1, 0.05, 0);
        assert!(s.width() >= 27);
        assert!(s.depth() >= 3);
        assert!(s.epsilon() <= 0.1 + 1e-9);
    }

    #[test]
    fn space_scales_with_shape() {
        let small = CountMin::new(2, 32, 0);
        let large = CountMin::new(8, 1024, 0);
        assert!(large.space_bytes() > 50 * small.space_bytes());
    }
}
