//! Property tests for the sketch wire formats: decode(encode(s)) must be
//! behaviourally identical to `s` — same estimates, same future updates,
//! same merges — and corrupted payloads must fail typed, never panic.

use pfe_persist::{Decoder, Encoder, Persist, PersistError};
use pfe_sketch::ams_f2::AmsF2;
use pfe_sketch::count_min::CountMin;
use pfe_sketch::kmv::Kmv;
use pfe_sketch::reservoir::Reservoir;
use pfe_sketch::stable_fp::StableFp;
use pfe_sketch::traits::{DistinctSketch, FrequencySketch, MomentSketch};
use proptest::prelude::*;

fn encode_to_vec<T: Persist>(value: &T) -> Vec<u8> {
    let mut enc = Encoder::new();
    value.encode(&mut enc);
    enc.into_bytes()
}

fn decode_all<T: Persist>(bytes: &[u8]) -> Result<T, PersistError> {
    let mut dec = Decoder::new(bytes);
    let v = T::decode(&mut dec)?;
    dec.expect_end()?;
    Ok(v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn kmv_roundtrip_preserves_behaviour(
        seed in 0u64..1_000,
        k in 2usize..96,
        n in 0u64..600,
    ) {
        let mut original = Kmv::new(k, seed);
        for i in 0..n {
            original.insert(i.wrapping_mul(0x9e37) ^ seed);
        }
        let bytes = encode_to_vec(&original);
        let mut restored: Kmv = decode_all(&bytes).expect("roundtrip");
        prop_assert_eq!(restored.estimate(), original.estimate());
        // Canonical encoding: re-encoding reproduces the exact bytes.
        prop_assert_eq!(encode_to_vec(&restored), bytes);
        // The restored sketch keeps evolving identically.
        for i in 0..50u64 {
            original.insert(i ^ 0xabcd);
            restored.insert(i ^ 0xabcd);
        }
        prop_assert_eq!(restored.estimate(), original.estimate());
    }

    #[test]
    fn count_min_roundtrip_preserves_behaviour(
        seed in 0u64..1_000,
        depth in 1usize..6,
        width in 1usize..128,
        n in 0u64..400,
    ) {
        let mut original = CountMin::new(depth, width, seed);
        for i in 0..n {
            original.update(i % 37, (i % 5) as i64);
        }
        let bytes = encode_to_vec(&original);
        let mut restored: CountMin = decode_all(&bytes).expect("roundtrip");
        prop_assert_eq!(restored.total(), original.total());
        for item in 0..40u64 {
            prop_assert_eq!(restored.estimate(item), original.estimate(item));
        }
        prop_assert_eq!(encode_to_vec(&restored), bytes);
        // Updates and merges continue identically (the hash functions
        // travelled with the sketch).
        let mut other = CountMin::new(depth, width, seed);
        other.update(7, 3);
        original.merge(&other);
        restored.merge(&other);
        for item in 0..40u64 {
            prop_assert_eq!(restored.estimate(item), original.estimate(item));
        }
    }

    #[test]
    fn ams_roundtrip_preserves_behaviour(
        seed in 0u64..1_000,
        groups in 1usize..6,
        per_group in 1usize..24,
        n in 0u64..300,
    ) {
        let mut original = AmsF2::new(groups, per_group, seed);
        for i in 0..n {
            original.update(i % 23, 1);
        }
        let bytes = encode_to_vec(&original);
        let mut restored: AmsF2 = decode_all(&bytes).expect("roundtrip");
        prop_assert_eq!(restored.estimate(), original.estimate());
        prop_assert_eq!(encode_to_vec(&restored), bytes);
        original.update(5, 2);
        restored.update(5, 2);
        prop_assert_eq!(restored.estimate(), original.estimate());
    }

    #[test]
    fn stable_fp_roundtrip_preserves_behaviour(
        seed in 0u64..1_000,
        t in 1usize..16,
        n in 0u64..120,
    ) {
        let mut original = StableFp::new(t, 1.0, seed);
        for i in 0..n {
            original.update(i % 17, 1);
        }
        let bytes = encode_to_vec(&original);
        let mut restored: StableFp = decode_all(&bytes).expect("roundtrip");
        prop_assert_eq!(restored.estimate(), original.estimate());
        prop_assert_eq!(encode_to_vec(&restored), bytes);
        original.update(3, 1);
        restored.update(3, 1);
        prop_assert_eq!(restored.estimate(), original.estimate());
    }

    #[test]
    fn reservoir_roundtrip_resumes_exact_stream(
        seed in 0u64..1_000,
        t in 1usize..64,
        n in 0u64..2_000,
    ) {
        let mut original: Reservoir<u64> = Reservoir::new(t, seed);
        for i in 0..n {
            original.insert(i);
        }
        let bytes = encode_to_vec(&original);
        let mut restored: Reservoir<u64> = decode_all(&bytes).expect("roundtrip");
        prop_assert_eq!(restored.sample(), original.sample());
        prop_assert_eq!(restored.seen(), original.seen());
        prop_assert_eq!(encode_to_vec(&restored), bytes);
        // The RNG state travelled too: future replacement decisions are
        // bit-identical, which is what makes resumed merges exact.
        for i in n..n + 500 {
            original.insert(i);
            restored.insert(i);
        }
        prop_assert_eq!(restored.sample(), original.sample());
    }

    #[test]
    fn qary_reservoir_roundtrip(
        seed in 0u64..1_000,
        n in 0u64..200,
    ) {
        let mut original: Reservoir<Box<[u16]>> = Reservoir::new(16, seed);
        for i in 0..n {
            original.insert(vec![(i % 5) as u16, (i % 3) as u16].into());
        }
        let bytes = encode_to_vec(&original);
        let restored: Reservoir<Box<[u16]>> = decode_all(&bytes).expect("roundtrip");
        prop_assert_eq!(restored.sample(), original.sample());
        prop_assert_eq!(encode_to_vec(&restored), bytes);
    }

    #[test]
    fn kmv_random_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..200)) {
        // Arbitrary input must decode or fail typed — panics fail the test.
        let _ = decode_all::<Kmv>(&bytes);
        let _ = decode_all::<CountMin>(&bytes);
        let _ = decode_all::<AmsF2>(&bytes);
        let _ = decode_all::<Reservoir<u64>>(&bytes);
    }
}

#[test]
fn malformed_sketches_rejected_with_typed_errors() {
    // KMV with minima out of order.
    let mut enc = Encoder::new();
    enc.put_u64(4); // k
    enc.put_u64(9); // seed
    vec![3u64, 1].encode(&mut enc); // not ascending
    assert!(matches!(
        decode_all::<Kmv>(&enc.into_bytes()),
        Err(PersistError::Malformed(_))
    ));
    // CountMin whose counter matrix disagrees with depth x width.
    let cm = CountMin::new(2, 8, 1);
    let mut bytes = encode_to_vec(&cm);
    // Shrink the trailing counter vector length field is hard to hit
    // blindly; instead decode a truncated prefix.
    bytes.truncate(bytes.len() - 3);
    assert!(decode_all::<CountMin>(&bytes).is_err());
    // Reservoir claiming more items than seen.
    let mut enc = Encoder::new();
    enc.put_u64(8); // t
    enc.put_u64(1); // seen
    pfe_hash::rng::Xoshiro256pp::seed_from_u64(0).encode(&mut enc);
    vec![1u64, 2, 3].encode(&mut enc); // 3 items but seen = 1
    assert!(matches!(
        decode_all::<Reservoir<u64>>(&enc.into_bytes()),
        Err(PersistError::Malformed(_))
    ));
}
