//! Property tests for sketch merge semantics and estimator invariants —
//! the "mergeable summaries" contracts the α-net relies on when summaries
//! are built distributed and combined.

use pfe_sketch::traits::{DistinctSketch, FrequencySketch, MomentSketch, SpaceUsage};
use pfe_sketch::{AmsF2, Bjkst, CountMin, HyperLogLog, Kmv, LinearCounting};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// KMV merge is exactly union-equivalent, for any split of any stream.
    #[test]
    fn kmv_merge_union(
        items in proptest::collection::vec(any::<u64>(), 1..500),
        split in 0usize..500,
    ) {
        let split = split.min(items.len());
        let (left, right) = items.split_at(split);
        let mut a = Kmv::new(32, 7);
        let mut b = Kmv::new(32, 7);
        let mut u = Kmv::new(32, 7);
        for &x in left {
            a.insert(x);
            u.insert(x);
        }
        for &x in right {
            b.insert(x);
            u.insert(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.estimate(), u.estimate());
    }

    /// HLL merge is exactly union-equivalent.
    #[test]
    fn hll_merge_union(
        items in proptest::collection::vec(any::<u64>(), 1..500),
        split in 0usize..500,
    ) {
        let split = split.min(items.len());
        let (left, right) = items.split_at(split);
        let mut a = HyperLogLog::new(6, 3);
        let mut b = HyperLogLog::new(6, 3);
        let mut u = HyperLogLog::new(6, 3);
        for &x in left {
            a.insert(x);
            u.insert(x);
        }
        for &x in right {
            b.insert(x);
            u.insert(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.estimate(), u.estimate());
    }

    /// LinearCounting merge is exactly union-equivalent.
    #[test]
    fn lc_merge_union(
        items in proptest::collection::vec(any::<u64>(), 1..300),
        split in 0usize..300,
    ) {
        let split = split.min(items.len());
        let (left, right) = items.split_at(split);
        let mut a = LinearCounting::new(1024, 5);
        let mut b = LinearCounting::new(1024, 5);
        let mut u = LinearCounting::new(1024, 5);
        for &x in left {
            a.insert(x);
            u.insert(x);
        }
        for &x in right {
            b.insert(x);
            u.insert(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.estimate(), u.estimate());
    }

    /// Distinct sketches are insensitive to duplication and order.
    #[test]
    fn distinct_sketches_order_and_duplicate_insensitive(
        mut items in proptest::collection::vec(0u64..1000, 1..200),
    ) {
        let build_kmv = |xs: &[u64]| {
            let mut s = Kmv::new(64, 11);
            for &x in xs {
                s.insert(x);
            }
            s.estimate()
        };
        let forward = build_kmv(&items);
        items.reverse();
        let backward = build_kmv(&items);
        let doubled: Vec<u64> = items.iter().chain(items.iter()).copied().collect();
        let dup = build_kmv(&doubled);
        prop_assert_eq!(forward, backward);
        prop_assert_eq!(forward, dup);
    }

    /// CountMin merge adds estimates; estimates never underestimate.
    #[test]
    fn count_min_merge_and_one_sidedness(
        updates in proptest::collection::vec((0u64..64, 1i64..50), 1..200),
        split in 0usize..200,
    ) {
        let split = split.min(updates.len());
        let mut a = CountMin::new(4, 128, 9);
        let mut b = CountMin::new(4, 128, 9);
        let mut truth = std::collections::HashMap::new();
        for (i, &(item, delta)) in updates.iter().enumerate() {
            *truth.entry(item).or_insert(0i64) += delta;
            if i < split {
                a.update(item, delta);
            } else {
                b.update(item, delta);
            }
        }
        a.merge(&b);
        for (&item, &count) in &truth {
            prop_assert!(a.estimate(item) >= count as f64, "CountMin underestimated");
        }
        prop_assert_eq!(a.total(), updates.iter().map(|&(_, d)| d).sum::<i64>());
    }

    /// AMS F2 merge equals the combined stream exactly (linear sketch).
    #[test]
    fn ams_merge_linear(
        updates in proptest::collection::vec((0u64..32, -20i64..20), 1..150),
        split in 0usize..150,
    ) {
        let split = split.min(updates.len());
        let mut a = AmsF2::new(3, 16, 13);
        let mut b = AmsF2::new(3, 16, 13);
        let mut c = AmsF2::new(3, 16, 13);
        for (i, &(item, delta)) in updates.iter().enumerate() {
            c.update(item, delta);
            if i < split {
                a.update(item, delta);
            } else {
                b.update(item, delta);
            }
        }
        a.merge(&b);
        prop_assert_eq!(a.estimate(), c.estimate());
    }

    /// BJKST never exceeds its budget's space envelope and stays within a
    /// loose factor of the truth on adversarial (clustered) item sets.
    #[test]
    fn bjkst_bounded_space_and_sane_estimates(
        base in any::<u64>(),
        n in 1usize..5000,
    ) {
        let mut s = Bjkst::new(128, 17);
        for i in 0..n as u64 {
            // Clustered IDs: sequential from a random base.
            s.insert(base.wrapping_add(i));
        }
        let est = s.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        prop_assert!(rel < 0.9, "BJKST relative error {rel} at n={n}");
        prop_assert!(s.space_bytes() < 16 * 1024);
    }
}
