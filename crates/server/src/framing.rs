//! The resumable line-framing state machine: raw socket bytes in,
//! complete protocol lines out, in arbitrary chunkings.
//!
//! The event-loop server reads whatever the kernel has — one byte, half a
//! request, twelve requests and a partial — and feeds it here.
//! [`LineFramer`] buffers across calls, so a request split over dozens of
//! TCP segments reassembles exactly, and a burst of pipelined requests
//! yields every line in order. Invalid UTF-8 passes through untouched
//! (lines are byte vectors; the session layer lossy-decodes, matching the
//! blocking server's historical semantics).
//!
//! Oversized lines are the one failure mode: a line longer than
//! `max_line` yields [`FrameEvent::Oversized`] once, then the framer
//! discards bytes until the next newline and resyncs — the session can
//! answer with a typed error and keep serving instead of buffering an
//! unbounded request (or desyncing onto the middle of it).

use std::collections::VecDeque;

/// Default per-line cap (1 MiB): comfortably above the largest documented
/// request (a 2000-row ingest batch is ~50 KiB) while bounding what one
/// connection can pin in memory.
pub const DEFAULT_MAX_LINE: usize = 1 << 20;

/// One framing outcome from [`LineFramer::pop_event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameEvent {
    /// A complete line, newline stripped (may be empty or non-UTF-8; the
    /// session layer trims and skips blanks).
    Line(Vec<u8>),
    /// The line in progress exceeded the cap; its buffered prefix was
    /// discarded and the framer is skipping to the next newline. Emitted
    /// exactly once per oversized line.
    Oversized {
        /// The configured cap the line overran.
        limit: usize,
    },
}

/// Incremental splitter of a byte stream into newline-terminated frames.
#[derive(Debug)]
pub struct LineFramer {
    buf: Vec<u8>,
    /// Bytes of `buf` already scanned for `\n` — restarts from here so N
    /// tiny reads of one long line stay O(N), not O(N²).
    scanned: usize,
    max_line: usize,
    /// Inside an oversized line: drop bytes until the next newline.
    discarding: bool,
    ready: VecDeque<FrameEvent>,
}

impl LineFramer {
    /// A framer rejecting lines longer than `max_line` bytes (newline
    /// excluded). `max_line` must be nonzero; [`DEFAULT_MAX_LINE`] is the
    /// server's default.
    pub fn new(max_line: usize) -> Self {
        assert!(max_line > 0, "line cap must be nonzero");
        Self {
            buf: Vec::new(),
            scanned: 0,
            max_line,
            discarding: false,
            ready: VecDeque::new(),
        }
    }

    /// Feed freshly read bytes; complete frames become pending events.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
        self.drain_buf();
    }

    /// Pop the next pending frame event, if any.
    pub fn pop_event(&mut self) -> Option<FrameEvent> {
        self.ready.pop_front()
    }

    /// Number of frame events ready to pop.
    pub fn pending(&self) -> usize {
        self.ready.len()
    }

    /// Bytes buffered for the line still in progress (0 while
    /// discarding an oversized line).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    fn drain_buf(&mut self) {
        loop {
            match self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
                Some(rel) => {
                    let end = self.scanned + rel;
                    let rest = self.buf.split_off(end + 1);
                    let mut line = std::mem::replace(&mut self.buf, rest);
                    line.pop(); // the newline
                    self.scanned = 0;
                    if self.discarding {
                        // The tail of an oversized line: swallow it and
                        // resync on the bytes that follow.
                        self.discarding = false;
                    } else if line.len() > self.max_line {
                        // The whole oversized line arrived in one chunk,
                        // newline included — reject it without entering
                        // discard mode (there is no tail to skip).
                        self.ready.push_back(FrameEvent::Oversized {
                            limit: self.max_line,
                        });
                    } else {
                        self.ready.push_back(FrameEvent::Line(line));
                    }
                }
                None => {
                    self.scanned = self.buf.len();
                    if self.discarding {
                        // Still mid-oversized-line: nothing to keep.
                        self.buf.clear();
                        self.scanned = 0;
                    } else if self.buf.len() > self.max_line {
                        self.buf.clear();
                        self.scanned = 0;
                        self.discarding = true;
                        self.ready.push_back(FrameEvent::Oversized {
                            limit: self.max_line,
                        });
                    }
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(framer: &mut LineFramer) -> Vec<FrameEvent> {
        std::iter::from_fn(|| framer.pop_event()).collect()
    }

    #[test]
    fn reassembles_across_arbitrary_chunks() {
        let mut f = LineFramer::new(64);
        for &chunk in &[&b"{\"op\""[..], b":\"quit", b"\"}\n{\"op\"", b":\"x\"}\n"] {
            f.push(chunk);
        }
        assert_eq!(
            lines(&mut f),
            vec![
                FrameEvent::Line(b"{\"op\":\"quit\"}".to_vec()),
                FrameEvent::Line(b"{\"op\":\"x\"}".to_vec()),
            ]
        );
        assert_eq!(f.buffered(), 0);
    }

    #[test]
    fn byte_at_a_time_is_linear_and_exact() {
        let mut f = LineFramer::new(1024);
        let msg = b"hello world\nsecond\n";
        for &b in msg.iter() {
            f.push(&[b]);
        }
        assert_eq!(
            lines(&mut f),
            vec![
                FrameEvent::Line(b"hello world".to_vec()),
                FrameEvent::Line(b"second".to_vec()),
            ]
        );
    }

    #[test]
    fn oversized_line_reports_once_and_resyncs() {
        let mut f = LineFramer::new(8);
        f.push(b"0123456789"); // over the cap, no newline yet
        assert_eq!(f.pop_event(), Some(FrameEvent::Oversized { limit: 8 }));
        assert_eq!(f.pop_event(), None);
        f.push(b"more garbage without end");
        assert_eq!(f.pop_event(), None, "one oversized event per line");
        assert_eq!(f.buffered(), 0, "discarded bytes are not retained");
        f.push(b"tail\nok\n");
        assert_eq!(lines(&mut f), vec![FrameEvent::Line(b"ok".to_vec())]);
    }

    #[test]
    fn exactly_at_the_cap_is_allowed() {
        let mut f = LineFramer::new(4);
        f.push(b"abcd\nabcde\nz\n");
        assert_eq!(
            lines(&mut f),
            vec![
                FrameEvent::Line(b"abcd".to_vec()),
                FrameEvent::Oversized { limit: 4 },
                FrameEvent::Line(b"z".to_vec()),
            ]
        );
    }

    #[test]
    fn empty_lines_and_crlf_pass_through() {
        let mut f = LineFramer::new(64);
        f.push(b"\n\r\na\r\n");
        assert_eq!(
            lines(&mut f),
            vec![
                FrameEvent::Line(b"".to_vec()),
                FrameEvent::Line(b"\r".to_vec()),
                FrameEvent::Line(b"a\r".to_vec()),
            ]
        );
    }

    #[test]
    fn non_utf8_bytes_survive_framing() {
        let mut f = LineFramer::new(64);
        f.push(&[0xFF, 0xFE, b'\n']);
        assert_eq!(lines(&mut f), vec![FrameEvent::Line(vec![0xFF, 0xFE])]);
    }
}
