//! A small synchronous client for the line-delimited JSON protocol: one
//! request line out, one response line back, in order. Used by
//! `examples/client.rs`, the integration tests, and the server benchmark.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use pfe_engine::Json;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write).
    Io(std::io::Error),
    /// The server closed the connection before answering.
    ServerClosed,
    /// The response line was not valid JSON.
    BadResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "client io error: {e}"),
            Self::ServerClosed => write!(f, "server closed the connection"),
            Self::BadResponse(m) => write!(f, "unparseable response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// One connection to a `pfe-server`, speaking the wire protocol
/// synchronously (`docs/PROTOCOL.md` is the op reference).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a listening server.
    ///
    /// # Errors
    /// Socket-level failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: stream,
        })
    }

    /// Bound how long [`request`](Self::request) blocks on the response
    /// (`None` restores blocking forever). Useful in tests and probes
    /// that must not hang on a stalled server.
    ///
    /// # Errors
    /// Socket-level failures.
    pub fn set_timeout(&mut self, timeout: Option<std::time::Duration>) -> Result<(), ClientError> {
        // reader and writer share one file description (`try_clone`), so
        // setting the option on either side covers both.
        self.writer.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Send one request object, wait for its response object.
    ///
    /// # Errors
    /// `Io` on socket failures, `ServerClosed` on EOF (including the
    /// saturation rejection path, where the server answers then closes),
    /// `BadResponse` if the response line is not JSON.
    pub fn request(&mut self, req: &Json) -> Result<Json, ClientError> {
        self.request_line(&req.to_string())
    }

    /// Send one pre-serialized request line, wait for its response.
    ///
    /// # Errors
    /// As [`request`](Self::request).
    pub fn request_line(&mut self, line: &str) -> Result<Json, ClientError> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Read one response line without sending anything — for the
    /// rejection line the server writes before closing a saturated
    /// connection.
    ///
    /// # Errors
    /// As [`request`](Self::request).
    pub fn read_response(&mut self) -> Result<Json, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::ServerClosed);
        }
        Json::parse(line.trim()).map_err(|e| ClientError::BadResponse(e.to_string()))
    }
}
