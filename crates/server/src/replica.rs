//! Snapshot-shipping replication: a writer periodically checkpoints its
//! plain engine into a snapshot directory; read replicas watch one or
//! more of those directories, merge the newest snapshot from each
//! (`merge_snapshot_files` — snapshot merge is associative and
//! commutative, so fanning several writers into one replica is the same
//! operation as loading one), and atomically swap the result in while
//! serving.
//!
//! The directory is the replication protocol:
//!
//! * Files are named `snap-<epoch:016x>.pfes`, so lexicographic order is
//!   epoch order and "the newest snapshot" is one sorted scan.
//! * A snapshot is written to a dotted temp name and `rename(2)`d into
//!   place — readers never observe a partial file through the protocol.
//!   (A *corrupt* file — truncated by a crashed writer before the
//!   rename, say — is still detected by the snapshot checksum on load;
//!   the replica keeps serving its previous epoch and logs a typed
//!   slow-log entry.)
//! * Shipped epochs strictly increase: the writer skips shipping when no
//!   rows arrived since the last ship, and every actual ship cuts a
//!   fresh snapshot (which bumps the engine epoch). That makes the
//!   replica's epoch-keyed answer cache safe across in-place swaps.
//!
//! Both roles run as plain threads beside the event loop, communicating
//! with sessions only through the [`Dispatcher`]'s atomics — replication
//! never blocks serving.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pfe_engine::{merge_snapshot_files, EngineConfig};

use crate::proto::Dispatcher;

/// Writer-side replication config: where to ship snapshots, and how
/// often to check for new rows.
#[derive(Debug, Clone)]
pub struct ShipSpec {
    /// The snapshot directory (created if missing). Point replicas at it.
    pub dir: PathBuf,
    /// How often to consider shipping (a ship only happens when rows
    /// arrived since the last one).
    pub interval: Duration,
}

/// Replica-side replication config: which directories to watch, how
/// often, and the engine parameters the snapshots were built with.
#[derive(Debug, Clone)]
pub struct ReplicaSpec {
    /// Snapshot directories to watch — one per writer; several merge.
    pub dirs: Vec<PathBuf>,
    /// Directory poll interval.
    pub poll: Duration,
    /// Engine parameters (`alpha`, `kmv_k`, `sample_t`, `seed`, …) —
    /// must match the writer's, exactly as `Engine::resume` requires;
    /// verified against every loaded snapshot.
    pub engine: EngineConfig,
}

/// How many shipped snapshots the writer retains per directory: enough
/// that a replica mid-download of epoch N survives N+1 landing, without
/// the directory growing forever.
const SHIPPED_RETAIN: usize = 4;

/// Sleep granularity for the shipper/watcher loops, so a stop request is
/// honored promptly even under long intervals.
const NAP: Duration = Duration::from_millis(20);

fn snapshot_file_name(epoch: u64) -> String {
    format!("snap-{epoch:016x}.pfes")
}

/// Parse the epoch out of a shipped snapshot filename; `None` for
/// anything that is not a `snap-<16 hex digits>.pfes` name (temp files,
/// stray editors droppings).
pub fn parse_epoch(file_name: &str) -> Option<u64> {
    let hex = file_name.strip_prefix("snap-")?.strip_suffix(".pfes")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// The newest shipped snapshot in `dir`: `(path, epoch)` of the highest
/// epoch-named file, or `None` for an empty/unreadable directory.
pub fn newest_snapshot(dir: &Path) -> Option<(PathBuf, u64)> {
    let mut best: Option<(PathBuf, u64)> = None;
    for entry in std::fs::read_dir(dir).ok()? {
        let entry = entry.ok()?;
        let name = entry.file_name();
        let Some(epoch) = parse_epoch(&name.to_string_lossy()) else {
            continue;
        };
        if best.as_ref().map(|&(_, e)| epoch > e).unwrap_or(true) {
            best = Some((entry.path(), epoch));
        }
    }
    best
}

/// Ship one snapshot if the engine grew since `last_rows`: cut a fresh
/// snapshot (bumping the epoch), write it to a temp file, and rename it
/// to its epoch name. Returns the shipped epoch, or `None` when there is
/// nothing to ship (no backend yet, or no new rows).
///
/// # Errors
/// A windowed backend (snapshots describe whole-stream state only), or
/// stringified engine/IO failures. The caller keeps serving either way.
pub fn ship_once(
    dispatcher: &Dispatcher,
    dir: &Path,
    last_rows: &mut Option<u64>,
) -> Result<Option<u64>, String> {
    match dispatcher.backend_kind() {
        None => return Ok(None), // nothing started yet
        Some("plain") => {}
        Some(_) => {
            return Err("snapshot shipping requires a plain (whole-stream) engine".to_string())
        }
    }
    let shipped = dispatcher
        .with_plain_engine(|engine| -> Result<Option<u64>, String> {
            let rows = engine.stats().rows_ingested;
            if *last_rows == Some(rows) {
                return Ok(None);
            }
            let snap = engine.refresh().map_err(|e| e.to_string())?;
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
            let final_path = dir.join(snapshot_file_name(snap.epoch()));
            let tmp_path = dir.join(format!(".snap-{:016x}.tmp", snap.epoch()));
            snap.save_to(&tmp_path).map_err(|e| e.to_string())?;
            std::fs::rename(&tmp_path, &final_path).map_err(|e| e.to_string())?;
            *last_rows = Some(rows);
            Ok(Some(snap.epoch()))
        })
        .unwrap_or(Ok(None))?; // backend raced away between kind check and use
    if let Some(epoch) = shipped {
        let recorder = dispatcher.recorder();
        recorder.counter("server_snapshots_shipped").inc();
        recorder.gauge("server_shipped_epoch").set(epoch);
        prune_shipped(dir);
    }
    Ok(shipped)
}

/// Drop all but the newest [`SHIPPED_RETAIN`] shipped snapshots.
fn prune_shipped(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut epochs: Vec<(u64, PathBuf)> = entries
        .flatten()
        .filter_map(|e| {
            parse_epoch(&e.file_name().to_string_lossy()).map(|epoch| (epoch, e.path()))
        })
        .collect();
    epochs.sort_by_key(|&(e, _)| std::cmp::Reverse(e));
    for (_, path) in epochs.into_iter().skip(SHIPPED_RETAIN) {
        let _ = std::fs::remove_file(path);
    }
}

/// Writer role: a thread shipping a snapshot every `spec.interval` while
/// rows keep arriving. Ship failures land in the slow log (once per
/// distinct error, not once per tick) and never stop the thread.
pub fn spawn_shipper(
    dispatcher: Arc<Dispatcher>,
    spec: ShipSpec,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let _ = std::fs::create_dir_all(&spec.dir);
        let mut last_rows: Option<u64> = None;
        let mut last_error: Option<String> = None;
        while !stop.load(Ordering::SeqCst) {
            // Nap towards the next tick, stopping promptly on request.
            let tick = Instant::now();
            while tick.elapsed() < spec.interval && !stop.load(Ordering::SeqCst) {
                std::thread::sleep(NAP.min(spec.interval));
            }
            if stop.load(Ordering::SeqCst) {
                break;
            }
            match ship_once(&dispatcher, &spec.dir, &mut last_rows) {
                Ok(_) => last_error = None,
                Err(e) => {
                    if last_error.as_deref() != Some(e.as_str()) {
                        dispatcher.recorder().slow_log().note(
                            "ship",
                            vec![
                                ("code".to_string(), "ship_failed".to_string()),
                                ("dir".to_string(), spec.dir.display().to_string()),
                                ("error".to_string(), e.clone()),
                            ],
                        );
                        last_error = Some(e);
                    }
                }
            }
        }
    })
}

/// Replica role: a thread polling the snapshot directories and swapping
/// newer merged snapshots into the dispatcher. A failed apply (corrupt,
/// truncated, incompatible) is recorded and *pinned*: that exact set of
/// source epochs is not retried, so a bad file cannot hot-loop the
/// watcher — the replica keeps serving its previous epoch until a writer
/// ships something new.
pub fn spawn_watcher(
    dispatcher: Arc<Dispatcher>,
    spec: ReplicaSpec,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        // Per-source epoch fingerprints of the last successful and the
        // last failed apply attempts.
        let mut applied: Option<Vec<u64>> = None;
        let mut failed: Option<Vec<u64>> = None;
        loop {
            watch_tick(&dispatcher, &spec, &mut applied, &mut failed);
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let tick = Instant::now();
            while tick.elapsed() < spec.poll && !stop.load(Ordering::SeqCst) {
                std::thread::sleep(NAP.min(spec.poll));
            }
            if stop.load(Ordering::SeqCst) {
                break;
            }
        }
    })
}

/// One watcher scan: find the newest snapshot per source directory and,
/// if the combination is new, merge and swap it in.
fn watch_tick(
    dispatcher: &Dispatcher,
    spec: &ReplicaSpec,
    applied: &mut Option<Vec<u64>>,
    failed: &mut Option<Vec<u64>>,
) {
    let mut files = Vec::with_capacity(spec.dirs.len());
    let mut fingerprint = Vec::with_capacity(spec.dirs.len());
    for dir in &spec.dirs {
        match newest_snapshot(dir) {
            Some((path, epoch)) => {
                files.push(path);
                fingerprint.push(epoch);
            }
            // A source with nothing shipped yet: wait for all writers
            // rather than serve a partial merge.
            None => return,
        }
    }
    if applied.as_ref() == Some(&fingerprint) || failed.as_ref() == Some(&fingerprint) {
        return;
    }
    // The mtime of the newest source file is the writer-side timestamp
    // replication lag is measured against. Captured before the (slow)
    // load so lag is never under-reported.
    let newest_mtime = files
        .iter()
        .filter_map(|p| std::fs::metadata(p).and_then(|m| m.modified()).ok())
        .max();
    let outcome = merge_snapshot_files(&files)
        .map_err(|e| e.to_string())
        .and_then(|snap| dispatcher.adopt_snapshot(snap, &spec.engine));
    match outcome {
        Ok(epoch) => {
            *applied = Some(fingerprint.clone());
            *failed = None;
            dispatcher.record_replica_apply(epoch, fingerprint, newest_mtime);
        }
        Err(e) => {
            *failed = Some(fingerprint);
            let shown = files
                .iter()
                .map(|p| p.display().to_string())
                .collect::<Vec<_>>()
                .join(",");
            dispatcher.record_replica_failure(&shown, &e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_filenames_roundtrip_and_sort_lexicographically() {
        assert_eq!(parse_epoch(&snapshot_file_name(7)), Some(7));
        assert_eq!(parse_epoch(&snapshot_file_name(u64::MAX)), Some(u64::MAX));
        assert_eq!(parse_epoch("snap-0000000000000010.pfes"), Some(16));
        assert_eq!(parse_epoch(".snap-0000000000000010.tmp"), None);
        assert_eq!(parse_epoch("snap-10.pfes"), None, "unpadded names rejected");
        assert_eq!(parse_epoch("other.pfes"), None);
        // Zero-padded hex means max-by-epoch == max-by-name.
        let (a, b) = (snapshot_file_name(9), snapshot_file_name(10));
        assert!(b > a);
    }

    #[test]
    fn newest_snapshot_picks_the_highest_epoch_and_skips_temp_files() {
        let dir = std::env::temp_dir().join(format!("pfe-replica-scan-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        assert_eq!(newest_snapshot(&dir), None, "empty dir");
        for name in [
            &snapshot_file_name(3),
            &snapshot_file_name(11),
            ".snap-00000000000000ff.tmp",
            "README",
        ] {
            std::fs::write(dir.join(name), b"x").expect("write");
        }
        let (path, epoch) = newest_snapshot(&dir).expect("found");
        assert_eq!(epoch, 11);
        assert_eq!(path, dir.join(snapshot_file_name(11)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_keeps_the_newest_retained_snapshots() {
        let dir = std::env::temp_dir().join(format!("pfe-replica-prune-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        for epoch in 1..=7u64 {
            std::fs::write(dir.join(snapshot_file_name(epoch)), b"x").expect("write");
        }
        prune_shipped(&dir);
        let mut left: Vec<u64> = std::fs::read_dir(&dir)
            .expect("read dir")
            .flatten()
            .filter_map(|e| parse_epoch(&e.file_name().to_string_lossy()))
            .collect();
        left.sort_unstable();
        assert_eq!(left, vec![4, 5, 6, 7]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
