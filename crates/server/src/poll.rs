//! A small, hand-rolled readiness poller (no external deps): epoll on
//! Linux, `poll(2)` on other Unix platforms — the minimal mio-style
//! surface the event-loop server needs.
//!
//! Registration is token-based: each file descriptor is registered with a
//! caller-chosen `u64` token and an interest set ([`Interest`]), and
//! [`Poller::wait`] reports `(token, readiness)` pairs. Interests are
//! *level-triggered*: a socket with unread bytes (or writable space, when
//! write interest is armed) keeps reporting ready, so a handler that
//! drains partially is re-driven on the next wait instead of stalling.
//! The server manages interest explicitly — read interest is dropped
//! while a session is backpressured, write interest is armed only while
//! an output buffer is non-empty — which is what makes an idle connection
//! genuinely free: no timer, no speculative read, no wakeup.
//!
//! Platform notes: on Linux this is `epoll_create1`/`epoll_ctl`/
//! `epoll_wait` declared directly against libc (std already links it; the
//! same technique as the server's `signal(2)` handler). `epoll_event` is
//! `repr(C, packed)` on x86-64 only — a kernel ABI quirk worth spelling
//! out because getting it wrong corrupts every second event. On non-Unix
//! platforms [`Poller::new`] returns `Unsupported`.

#![allow(unsafe_code)]

use std::io;
use std::time::Duration;

/// Raw file descriptor alias (kept local so the module signature exists
/// on every platform).
pub type RawFd = i32;

/// What a registration wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub read: bool,
    /// Wake when the fd is writable.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Read + write interest.
    pub const READ_WRITE: Interest = Interest {
        read: true,
        write: true,
    };
    /// No interest — the fd stays registered but wakes for errors/hangup
    /// only (used while a session is backpressured).
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd has bytes to read (or EOF to observe).
    pub readable: bool,
    /// The fd can accept writes.
    pub writable: bool,
    /// The peer hung up or the fd errored; the owner should read to EOF
    /// or close.
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Interest, RawFd};
    use std::io;
    use std::os::raw::c_int;
    use std::time::Duration;

    // epoll_event carries a 32-bit mask and a 64-bit user datum. On
    // x86-64 the kernel ABI declares it packed (12 bytes, no padding);
    // every other architecture uses natural alignment (16 bytes).
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.read {
            m |= EPOLLIN;
        }
        if interest.write {
            m |= EPOLLOUT;
        }
        m
    }

    pub struct Poller {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new(capacity: usize) -> io::Result<Self> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Self {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; capacity.max(64)],
            })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let ms: c_int = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(i32::MAX as u128) as c_int,
            };
            // EINTR is surfaced as an empty wait (a plain timer tick);
            // the caller's loop comes straight back here.
            let n = match cvt(unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as c_int,
                    ms,
                )
            }) {
                Ok(n) => n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => return Ok(()),
                Err(e) => return Err(e),
            };
            for ev in &self.buf[..n] {
                // Copy out of the (possibly packed) struct before use.
                let events = ev.events;
                let data = ev.data;
                out.push(Event {
                    token: data,
                    readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: events & EPOLLOUT != 0,
                    hangup: events & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::{Event, Interest, RawFd};
    use std::collections::BTreeMap;
    use std::io;
    use std::os::raw::{c_int, c_short};
    use std::time::Duration;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
    }

    /// `poll(2)` fallback: O(n) per wait, fine for the connection counts
    /// a non-Linux dev box sees; production-scale serving targets Linux.
    pub struct Poller {
        registered: BTreeMap<RawFd, (u64, Interest)>,
    }

    impl Poller {
        pub fn new(_capacity: usize) -> io::Result<Self> {
            Ok(Self {
                registered: BTreeMap::new(),
            })
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.registered.insert(fd, (token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.registered.insert(fd, (token, interest));
            Ok(())
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.registered.remove(&fd);
            Ok(())
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let mut fds: Vec<PollFd> = self
                .registered
                .iter()
                .map(|(&fd, &(_, interest))| PollFd {
                    fd,
                    events: if interest.read { POLLIN } else { 0 }
                        | if interest.write { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let ms: c_int = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(i32::MAX as u128) as c_int,
            };
            let ret = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, ms) };
            if ret < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for pfd in &fds {
                if pfd.revents == 0 {
                    continue;
                }
                let (token, _) = self.registered[&pfd.fd];
                out.push(Event {
                    token,
                    readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    hangup: pfd.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use super::{Event, Interest, RawFd};
    use std::io;
    use std::time::Duration;

    /// Stub so the crate compiles off Unix; [`Poller::new`] fails and the
    /// server reports the platform as unsupported.
    pub struct Poller;

    impl Poller {
        pub fn new(_capacity: usize) -> io::Result<Self> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "readiness polling requires a unix platform (epoll/poll)",
            ))
        }
        pub fn register(&mut self, _: RawFd, _: u64, _: Interest) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }
        pub fn modify(&mut self, _: RawFd, _: u64, _: Interest) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }
        pub fn deregister(&mut self, _: RawFd) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }
        pub fn wait(&mut self, _: &mut Vec<Event>, _: Option<Duration>) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }
    }
}

/// The readiness poller: level-triggered, token-addressed, std-only.
pub struct Poller {
    inner: sys::Poller,
}

impl Poller {
    /// A poller sized for roughly `capacity` simultaneous registrations
    /// (a hint for the per-wait event buffer, not a limit).
    ///
    /// # Errors
    /// `Unsupported` off Unix; otherwise the underlying syscall error.
    pub fn new(capacity: usize) -> io::Result<Self> {
        Ok(Self {
            inner: sys::Poller::new(capacity)?,
        })
    }

    /// Start watching `fd` under `token` with the given interest.
    ///
    /// # Errors
    /// The underlying syscall error (e.g. an already-registered fd).
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.register(fd, token, interest)
    }

    /// Change the interest set (and token) of a registered fd.
    ///
    /// # Errors
    /// The underlying syscall error (e.g. an unregistered fd).
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.modify(fd, token, interest)
    }

    /// Stop watching `fd`. Must be called *before* closing the fd —
    /// epoll auto-deregisters on close, but only once every duplicate
    /// descriptor is gone, and relying on that invites stale events.
    ///
    /// # Errors
    /// The underlying syscall error.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.inner.deregister(fd)
    }

    /// Block until at least one registered fd is ready or `timeout`
    /// elapses (`None` blocks indefinitely), appending readiness reports
    /// to `out`. A signal interruption returns `Ok` with no events.
    ///
    /// # Errors
    /// The underlying syscall error.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.wait(out, timeout)
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Duration;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let a = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        a.set_nonblocking(true).expect("nonblocking");
        b.set_nonblocking(true).expect("nonblocking");
        (a, b)
    }

    #[test]
    fn reports_readable_when_bytes_arrive_and_idle_otherwise() {
        let (mut a, b) = pair();
        let mut poller = Poller::new(8).expect("poller");
        poller
            .register(b.as_raw_fd(), 7, Interest::READ)
            .expect("register");
        // Idle: a short wait returns no events.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(events.is_empty(), "idle fd produced events: {events:?}");
        // Bytes arrive: readable under the registered token.
        a.write_all(b"x").expect("write");
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn write_interest_is_level_triggered_and_modifiable() {
        let (a, mut b) = pair();
        let mut poller = Poller::new(8).expect("poller");
        poller
            .register(b.as_raw_fd(), 1, Interest::READ_WRITE)
            .expect("register");
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .expect("wait");
        assert!(
            events.iter().any(|e| e.token == 1 && e.writable),
            "fresh socket should be writable: {events:?}"
        );
        // Drop write interest: an idle socket goes quiet again.
        poller
            .modify(b.as_raw_fd(), 1, Interest::READ)
            .expect("modify");
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(events.is_empty(), "read-only idle fd woke: {events:?}");
        // EOF reports as readable (read() will observe 0).
        drop(a);
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .expect("wait");
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        let mut sink = [0u8; 8];
        assert_eq!(b.read(&mut sink).expect("eof read"), 0);
    }

    #[test]
    fn deregistered_fds_stop_reporting() {
        let (mut a, b) = pair();
        let mut poller = Poller::new(8).expect("poller");
        poller
            .register(b.as_raw_fd(), 3, Interest::READ)
            .expect("register");
        poller.deregister(b.as_raw_fd()).expect("deregister");
        a.write_all(b"x").expect("write");
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .expect("wait");
        assert!(events.is_empty(), "deregistered fd woke: {events:?}");
    }
}
