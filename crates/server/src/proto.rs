//! The protocol dispatcher: one definition of the line-delimited JSON
//! surface, shared by stdin (pipe) mode, TCP sessions, and tests.
//!
//! A [`Dispatcher`] owns the serving backend (whole-stream
//! [`Engine`] or sliding-window
//! [`WindowedEngine`], selected by the
//! `start` request) plus the server-level counters, and turns one request
//! line into one response [`Reply`]. Statistic requests and responses are
//! the canonical `pfe-query` types serialized by `pfe_engine::wire`, so
//! the Rust API, the cache keys, and every transport speak one language.
//! The full request/response reference lives in `docs/PROTOCOL.md`
//! (checked against [`OPS`] by CI).
//!
//! ```
//! use pfe_server::proto::{Control, Dispatcher};
//! use pfe_engine::Json;
//!
//! let dispatcher = Dispatcher::new(None);
//! let reply = dispatcher.handle_line(r#"{"op":"start","d":8,"q":2,"shards":2}"#);
//! assert_eq!(reply.json.get("ok"), Some(&Json::Bool(true)));
//! let reply = dispatcher.handle_line(r#"{"op":"ingest","rows":[[0,1,0,0,1,0,1,1]]}"#);
//! assert_eq!(reply.json.get("rows").and_then(Json::as_f64), Some(1.0));
//! dispatcher.handle_line(r#"{"op":"snapshot"}"#);
//! let reply = dispatcher.handle_line(r#"{"op":"f0","cols":[0,1,2]}"#);
//! assert!(reply.json.get("estimate").is_some());
//! assert!(matches!(reply.control, Control::Continue));
//! ```

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Instant, SystemTime};

use pfe_engine::{wire, Engine, EngineConfig, EngineError, EngineStats, Json, Query, Snapshot};
use pfe_obs::{
    chrome_trace_json, AttrValue, CompletedTrace, Counter, Gauge, Histogram, Recorder, SpanRecord,
    TraceContext, TraceHandle,
};
use pfe_window::{wire as window_wire, WindowConfig, WindowedEngine};

/// Every op name the dispatcher recognizes, aliases included.
///
/// This is the single registry the `match` in [`Dispatcher::handle_line`]
/// is built from; `scripts/check_protocol_docs.sh` (CI) fails if any name
/// listed here is missing from `docs/PROTOCOL.md`.
pub const OPS: &[&str] = &[
    // OPS_START — one op per line; greppable by the docs-drift check.
    "start",
    "ingest",
    "snapshot",
    "f0",
    "frequency",
    "freq",
    "heavy_hitters",
    "hh",
    "l1_sample",
    "fp",
    "batch",
    "stats",
    "window_stats",
    "server_stats",
    "metrics",
    "slow_log",
    "set_slow_ms",
    "trace",
    "replica_stats",
    "checkpoint",
    "shutdown",
    "quit",
    // OPS_END
];

/// Build an `{"ok":false,"error":msg}` payload.
pub fn err(msg: impl Into<String>) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::Str(msg.into()))])
}

/// Error payload for an unrecognized op name: the offending op string is
/// echoed in its own field so clients can match it programmatically
/// instead of parsing the message.
pub fn err_unknown_op(op: &str, context: &str) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::Str(format!("unknown {context} op '{op}'"))),
        ("op", Json::Str(op.to_string())),
    ])
}

/// The typed saturation rejection a client receives when the worker pool
/// cannot take its connection (`"code":"saturated"` is the stable,
/// machine-matchable field).
pub fn err_saturated(workers: usize, queue: usize) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::Str(format!(
                "server saturated: all {workers} workers busy and the \
                 {queue}-connection queue is full; retry later"
            )),
        ),
        ("code", Json::Str("saturated".to_string())),
    ])
}

/// The typed rejection a read-replica answers to any mutating op
/// (`"code":"read_only"` is the stable, machine-matchable field).
pub fn err_read_only(op: &str) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::Str(format!(
                "replica is read-only: '{op}' must run on the writer"
            )),
        ),
        ("code", Json::Str("read_only".to_string())),
        ("op", Json::Str(op.to_string())),
    ])
}

/// The typed rejection for a request line over the configured cap
/// (`"code":"line_too_long"`). The session survives: the server discards
/// to the next newline and keeps answering.
pub fn err_line_too_long(limit: usize) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::Str(format!(
                "request line exceeds the {limit}-byte cap; request discarded"
            )),
        ),
        ("code", Json::Str("line_too_long".to_string())),
    ])
}

/// Replication lag: milliseconds elapsed since the writer produced the
/// snapshot (its file mtime). `None` when the clock went backwards.
fn lag_ms_since(mtime: SystemTime) -> Option<u64> {
    SystemTime::now()
        .duration_since(mtime)
        .ok()
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
}

/// Parse the optional `"trace"` field of a request: a bare hex string
/// (the trace id) or `{"id": hex, "parent": hex}`. Returns a typed error
/// payload on a malformed value, `Ok(None)` when absent.
fn trace_context_from(req: &Json) -> Result<Option<TraceContext>, Json> {
    let bad = |what: &str| err(format!("bad 'trace' field: {what}"));
    match req.get("trace") {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => {
            let trace_id =
                TraceContext::parse_id(s).ok_or_else(|| bad("expected a hex trace id"))?;
            Ok(Some(TraceContext {
                trace_id,
                parent: None,
            }))
        }
        Some(obj @ Json::Obj(_)) => {
            let id = obj
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("object form requires a hex 'id'"))?;
            let trace_id = TraceContext::parse_id(id).ok_or_else(|| bad("'id' must be hex"))?;
            let parent = match obj.get("parent") {
                None | Some(Json::Null) => None,
                Some(p) => Some(
                    p.as_str()
                        .and_then(TraceContext::parse_id)
                        .filter(|&v| v <= u64::MAX as u128)
                        .ok_or_else(|| bad("'parent' must be a hex span id"))?
                        as u64,
                ),
            };
            Ok(Some(TraceContext { trace_id, parent }))
        }
        Some(_) => Err(bad("expected a hex string or an object")),
    }
}

/// One completed trace as a span-tree JSON object: spans nest under
/// their parents (`children` arrays), roots in start order.
fn trace_to_json(t: &CompletedTrace) -> Json {
    fn span_json(
        t: &CompletedTrace,
        s: &SpanRecord,
        by_parent: &BTreeMap<u64, Vec<&SpanRecord>>,
    ) -> Json {
        let children: Vec<Json> = by_parent
            .get(&s.id)
            .map(|kids| kids.iter().map(|k| span_json(t, k, by_parent)).collect())
            .unwrap_or_default();
        Json::obj([
            ("name", Json::Str(s.name.to_string())),
            ("span", Json::Num(s.id as f64)),
            ("start_ns", Json::Num(s.start_ns as f64)),
            ("end_ns", Json::Num(s.end_ns as f64)),
            (
                "attrs",
                Json::Obj(
                    t.attrs_of(s)
                        .iter()
                        .map(|(k, v)| {
                            let value = match v {
                                AttrValue::Str(s) => Json::Str((*s).to_string()),
                                AttrValue::Text(s) => Json::Str(s.clone()),
                                // f64 holds integers exactly up to 2^53;
                                // larger ids (fingerprints) go as strings.
                                AttrValue::U64(n) if *n <= (1u64 << 53) => Json::Num(*n as f64),
                                AttrValue::U64(n) => Json::Str(n.to_string()),
                                AttrValue::Hex(n) => Json::Str(format!("{n:#x}")),
                                AttrValue::I64(n) => Json::Num(*n as f64),
                                AttrValue::F64(n) => Json::Num(*n),
                                AttrValue::Bool(b) => Json::Bool(*b),
                            };
                            (k.to_string(), value)
                        })
                        .collect(),
                ),
            ),
            ("children", Json::Arr(children)),
        ])
    }
    let known: std::collections::BTreeSet<u64> = t.spans.iter().map(|s| s.id).collect();
    let mut by_parent: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    for s in &t.spans {
        match s.parent {
            // A parent id the trace never recorded (e.g. a span still
            // open at finish) degrades to a root, not a lost span.
            Some(p) if known.contains(&p) => by_parent.entry(p).or_default().push(s),
            _ => roots.push(s),
        }
    }
    for list in by_parent.values_mut() {
        list.sort_by_key(|s| s.start_ns);
    }
    roots.sort_by_key(|s| s.start_ns);
    Json::obj([
        ("trace_id", Json::Str(TraceContext::format_id(t.trace_id))),
        ("slow", Json::Bool(t.slow)),
        (
            "spans",
            Json::Arr(roots.iter().map(|r| span_json(t, r, &by_parent)).collect()),
        ),
    ])
}

/// Whole-stream or sliding-window serving, behind one protocol.
pub enum Backend {
    /// Whole-stream serving ([`Engine`]).
    Plain(Engine),
    /// Sliding-window serving ([`WindowedEngine`]).
    Windowed(WindowedEngine),
}

impl Backend {
    /// Answer a batch through whichever engine is live.
    pub fn query_batch(&self, queries: &[Query]) -> Vec<Result<pfe_engine::Answer, EngineError>> {
        match self {
            Backend::Plain(e) => e.query_batch(queries),
            Backend::Windowed(e) => e.query_batch(queries),
        }
    }

    /// [`query_batch`](Self::query_batch) under a request trace: the
    /// engine stages record spans on `trace`, and `Ok` answers echo
    /// the trace id when the client supplied it (or the request turned
    /// slow). Identical to the untraced path with a disabled handle.
    pub fn query_batch_traced(
        &self,
        queries: &[Query],
        trace: &TraceHandle,
    ) -> Vec<Result<pfe_engine::Answer, EngineError>> {
        match self {
            Backend::Plain(e) => e.query_batch_traced(queries, trace),
            Backend::Windowed(e) => e.query_batch_traced(queries, trace),
        }
    }

    /// Route one dense row.
    ///
    /// # Errors
    /// Shape violations or a closed pipeline.
    pub fn push_dense(&self, row: &[u16]) -> Result<(), EngineError> {
        match self {
            Backend::Plain(e) => e.push_dense(row),
            Backend::Windowed(e) => e.push_dense(row),
        }
    }

    /// Engine-level counters under the one documented `stats` schema: the
    /// windowed engine maps its ring counters onto it (ingested =
    /// retained + evicted, "snapshot" fields describe the live ring,
    /// epoch 0) and serves ring-specific detail under `window_stats`.
    pub fn stats(&self) -> EngineStats {
        match self {
            Backend::Plain(e) => e.stats(),
            Backend::Windowed(e) => {
                let w = e.window_stats();
                EngineStats {
                    rows_ingested: w.retained_rows + w.evicted_rows,
                    snapshot_epoch: 0,
                    snapshot_rows: w.retained_rows,
                    snapshot_bytes: w.ring_bytes,
                    cache: w.cache,
                    shards: 1,
                    queries_served: w.queries_served,
                    queries: w.queries,
                }
            }
        }
    }

    /// Write a durable checkpoint: the merged snapshot for a plain
    /// engine, the whole bucket ring for a windowed one.
    ///
    /// # Errors
    /// Persistence/IO failures, or `NoSnapshot` on an empty plain engine
    /// that was already shut down.
    pub fn checkpoint(&self, path: &Path) -> Result<(), EngineError> {
        match self {
            Backend::Plain(e) => e.checkpoint(path).map(|_| ()),
            Backend::Windowed(e) => e.checkpoint(path),
        }
    }
}

/// What the transport should do after writing a [`Reply`]'s response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep reading requests on this session.
    Continue,
    /// Close this session (the `quit` op); the server keeps running.
    CloseSession,
    /// Stop the whole server (the `shutdown` op): sessions drain — each
    /// finishes its in-flight request — and then the transport writes
    /// the shutdown checkpoint via [`Dispatcher::shutdown_checkpoint`],
    /// so every request acknowledged before exit is included.
    ShutdownServer,
}

/// One response line plus the transport action that follows it.
pub struct Reply {
    /// The response object (always carries `"ok"`).
    pub json: Json,
    /// What the session should do after sending `json`.
    pub control: Control,
}

impl Reply {
    fn cont(json: Json) -> Self {
        Self {
            json,
            control: Control::Continue,
        }
    }
}

/// Connection/request counters served by `server_stats`. The TCP layer
/// owns the connection-shaped ones; the dispatcher maintains the request
/// and per-op counters on every transport (in pipe mode the connection
/// counters simply stay 0).
///
/// Every field is a handle into the dispatcher's shared
/// [`Recorder`] (`server_*` names), so `server_stats`, the `metrics` op,
/// and the Prometheus endpoint all read the same series. Per-op handles
/// are pre-resolved for all of [`OPS`] at construction — the hot path
/// never takes the registry lock.
#[derive(Debug)]
pub struct ServerCounters {
    /// Connections accepted since start.
    pub connections_accepted: Arc<Counter>,
    /// Connections currently open (accepted, not yet closed).
    pub connections_open: Arc<Gauge>,
    /// Connections rejected with the typed saturation error.
    pub rejected_saturated: Arc<Counter>,
    /// Requests handled to completion across all sessions.
    pub requests_handled: Arc<Counter>,
    /// Requests currently being dispatched.
    pub in_flight: Arc<Gauge>,
    /// `op name -> (request counter, latency histogram)`; unrecognized
    /// names share the `unknown` slot.
    ops: BTreeMap<&'static str, (Arc<Counter>, Arc<Histogram>)>,
}

impl ServerCounters {
    fn new(recorder: &Recorder) -> Self {
        let mut ops = BTreeMap::new();
        for &op in OPS.iter().chain(std::iter::once(&"unknown")) {
            ops.insert(
                op,
                (
                    recorder.counter(&format!("server_op_requests_{op}")),
                    recorder.histogram(&format!("server_op_latency_ns_{op}")),
                ),
            );
        }
        Self {
            connections_accepted: recorder.counter("server_connections_accepted"),
            connections_open: recorder.gauge("server_connections_open"),
            rejected_saturated: recorder.counter("server_rejected_saturated"),
            requests_handled: recorder.counter("server_requests_handled"),
            in_flight: recorder.gauge("server_in_flight"),
            ops,
        }
    }

    fn op_handles(&self, op: &str) -> &(Arc<Counter>, Arc<Histogram>) {
        self.ops.get(op).unwrap_or_else(|| &self.ops["unknown"])
    }

    /// Per-op request counts — ops with traffic only (unrecognized names
    /// land under `unknown`).
    pub fn ops(&self) -> BTreeMap<String, u64> {
        self.ops
            .iter()
            .filter(|(_, (count, _))| count.get() > 0)
            .map(|(&op, (count, _))| (op.to_string(), count.get()))
            .collect()
    }
}

struct Started {
    backend: Backend,
    q: u32,
}

/// Replica-role bookkeeping: where snapshots come from, how many swaps
/// landed or failed, and what the last applied epoch looks like. Present
/// only on dispatchers serving in `--replica-of` mode.
struct ReplicaState {
    sources: Vec<PathBuf>,
    applies: Arc<Counter>,
    failures: Arc<Counter>,
    epoch_gauge: Arc<Gauge>,
    lag_gauge: Arc<Gauge>,
    last: Mutex<ReplicaLast>,
}

#[derive(Default)]
struct ReplicaLast {
    epoch: u64,
    /// Per-source epochs folded into the applied snapshot.
    source_epochs: Vec<u64>,
    /// Modification time of the newest snapshot file applied — the
    /// writer-side timestamp replication lag is measured against.
    snapshot_mtime: Option<SystemTime>,
    applied: bool,
    last_error: Option<String>,
}

/// The shared protocol state machine: owns the backend, the counters, and
/// the shutdown-checkpoint path; `handle_line` is safe to call from many
/// session threads at once (ingest serializes inside the engine, queries
/// are wait-free against the published snapshot).
pub struct Dispatcher {
    started: RwLock<Option<Started>>,
    recorder: Arc<Recorder>,
    counters: ServerCounters,
    checkpoint_path: Option<PathBuf>,
    checkpointed: AtomicBool,
    /// `(workers, queue)` reported by `server_stats`; `(0, 0)` until the
    /// TCP layer announces its pool shape.
    pool_shape: RwLock<(usize, usize)>,
    /// Process start, for `process_uptime_seconds`.
    started_at: Instant,
    /// `process_uptime_seconds` gauge, refreshed on every metrics read.
    uptime: Arc<Gauge>,
    /// `Some` when serving as a read replica (set once at bind, before
    /// any session exists).
    replica: RwLock<Option<ReplicaState>>,
}

impl Dispatcher {
    /// A fresh dispatcher with no backend. `checkpoint_path` is where the
    /// `shutdown` op (and the TCP server's signal-driven shutdown) writes
    /// the durable state; `None` disables shutdown checkpointing.
    pub fn new(checkpoint_path: Option<PathBuf>) -> Self {
        let recorder = Arc::new(Recorder::new());
        let counters = ServerCounters::new(&recorder);
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        recorder.set_info(
            "build_info",
            &[
                ("version", env!("CARGO_PKG_VERSION")),
                ("statistics", "f0|frequency|heavy_hitters|l1_sample|fp"),
                ("cores", &cores.to_string()),
            ],
        );
        let uptime = recorder.gauge("process_uptime_seconds");
        Self {
            started: RwLock::new(None),
            recorder,
            counters,
            checkpoint_path,
            checkpointed: AtomicBool::new(false),
            pool_shape: RwLock::new((0, 0)),
            started_at: Instant::now(),
            uptime,
            replica: RwLock::new(None),
        }
    }

    /// Mark this dispatcher as a read replica fed from `sources` (snapshot
    /// directories): mutating ops (`start`, `ingest`, `snapshot`,
    /// `checkpoint`) answer the typed `read_only` rejection, and
    /// `replica_stats` reports replication health. Called once at bind,
    /// before any session is served.
    pub fn set_replica_sources(&self, sources: Vec<PathBuf>) {
        let state = ReplicaState {
            sources,
            applies: self.recorder.counter("replica_applies"),
            failures: self.recorder.counter("replica_apply_failures"),
            epoch_gauge: self.recorder.gauge("replica_epoch"),
            lag_gauge: self.recorder.gauge("replica_lag_ms"),
            last: Mutex::new(ReplicaLast::default()),
        };
        *self.replica.write().expect("replica lock") = Some(state);
    }

    /// Whether this dispatcher serves in read-replica mode.
    pub fn is_replica(&self) -> bool {
        self.replica.read().expect("replica lock").is_some()
    }

    /// Which backend flavor is live: `Some("plain")`, `Some("windowed")`,
    /// or `None` before any `start`/install.
    pub fn backend_kind(&self) -> Option<&'static str> {
        let guard = self.started.read().expect("backend lock");
        guard.as_ref().map(|s| match s.backend {
            Backend::Plain(_) => "plain",
            Backend::Windowed(_) => "windowed",
        })
    }

    /// Swap a freshly loaded snapshot in as the serving state (replica
    /// apply path). Tries the in-place [`Engine::install_snapshot`] swap
    /// first (keeps the warm answer cache); where that is not legal —
    /// first load, a non-increasing merged epoch, or a non-plain backend —
    /// it rebuilds a fresh engine around the snapshot. Returns the epoch
    /// now serving.
    ///
    /// # Errors
    /// The engine error, stringified, when the snapshot is incompatible
    /// with `cfg`; the previous state keeps serving untouched.
    pub fn adopt_snapshot(&self, snap: Snapshot, cfg: &EngineConfig) -> Result<u64, String> {
        let epoch = snap.epoch();
        let snap = Arc::new(snap);
        {
            let guard = self.started.read().expect("backend lock");
            if let Some(Started {
                backend: Backend::Plain(e),
                ..
            }) = guard.as_ref()
            {
                if e.install_snapshot(Arc::clone(&snap)).is_ok() {
                    return Ok(epoch);
                }
            }
        }
        let (engine, q) = Engine::from_snapshot(snap, cfg.clone(), Arc::clone(&self.recorder))
            .map_err(|e| e.to_string())?;
        self.install(Backend::Plain(engine), q);
        Ok(epoch)
    }

    /// Record a successful replica apply (watcher thread): bump counters,
    /// publish the epoch and lag gauges, clear any sticky error.
    pub fn record_replica_apply(
        &self,
        epoch: u64,
        source_epochs: Vec<u64>,
        snapshot_mtime: Option<SystemTime>,
    ) {
        let guard = self.replica.read().expect("replica lock");
        let Some(state) = guard.as_ref() else {
            return;
        };
        state.applies.inc();
        state.epoch_gauge.set(epoch);
        if let Some(ms) = snapshot_mtime.and_then(lag_ms_since) {
            state.lag_gauge.set(ms);
        }
        let mut last = state.last.lock().expect("replica last lock");
        last.epoch = epoch;
        last.source_epochs = source_epochs;
        last.snapshot_mtime = snapshot_mtime;
        last.applied = true;
        last.last_error = None;
    }

    /// Record a failed replica apply (truncated/corrupt/incompatible
    /// snapshot): bump the failure counter and write a typed slow-log
    /// entry. The previously applied epoch keeps serving.
    pub fn record_replica_failure(&self, file: &str, error: &str) {
        let guard = self.replica.read().expect("replica lock");
        let Some(state) = guard.as_ref() else {
            return;
        };
        state.failures.inc();
        state.last.lock().expect("replica last lock").last_error = Some(error.to_string());
        self.recorder.slow_log().note(
            "replica",
            vec![
                ("code".to_string(), "replica_apply_failed".to_string()),
                ("file".to_string(), file.to_string()),
                ("error".to_string(), error.to_string()),
            ],
        );
    }

    /// Response body for the `replica_stats` op.
    fn replica_stats_op(&self) -> Json {
        let guard = self.replica.read().expect("replica lock");
        let Some(state) = guard.as_ref() else {
            return Json::obj([("ok", Json::Bool(true)), ("replica", Json::Bool(false))]);
        };
        let last = state.last.lock().expect("replica last lock");
        let lag = last.snapshot_mtime.and_then(lag_ms_since);
        if let Some(ms) = lag {
            state.lag_gauge.set(ms);
        }
        Json::obj([
            ("ok", Json::Bool(true)),
            ("replica", Json::Bool(true)),
            (
                "sources",
                Json::Arr(
                    state
                        .sources
                        .iter()
                        .map(|p| Json::Str(p.display().to_string()))
                        .collect(),
                ),
            ),
            (
                "epoch",
                if last.applied {
                    Json::Num(last.epoch as f64)
                } else {
                    Json::Null
                },
            ),
            (
                "source_epochs",
                Json::Arr(
                    last.source_epochs
                        .iter()
                        .map(|&e| Json::Num(e as f64))
                        .collect(),
                ),
            ),
            ("applies", Json::Num(state.applies.get() as f64)),
            ("failures", Json::Num(state.failures.get() as f64)),
            (
                "lag_ms",
                lag.map(|ms| Json::Num(ms as f64)).unwrap_or(Json::Null),
            ),
            (
                "last_error",
                last.last_error
                    .as_ref()
                    .map(|e| Json::Str(e.clone()))
                    .unwrap_or(Json::Null),
            ),
        ])
    }

    /// Install a pre-built backend (e.g. one resumed from a checkpoint by
    /// the CLI) so sessions can query immediately without a `start` op.
    /// `q` is the stream alphabet — it scopes wire-level answer encoding
    /// exactly as the `start` op's `q` parameter does. A later `start`
    /// op replaces the installed backend, same as restarting.
    ///
    /// For metrics to flow into this dispatcher's registry, build the
    /// backend with [`recorder`](Self::recorder) (the `*_with_recorder`
    /// engine constructors).
    pub fn install(&self, backend: Backend, q: u32) {
        *self.started.write().expect("backend lock") = Some(Started { backend, q });
    }

    /// Announce the worker-pool shape reported by `server_stats`.
    pub fn set_pool_shape(&self, workers: usize, queue: usize) {
        *self.pool_shape.write().expect("pool shape lock") = (workers, queue);
    }

    /// The live counters (the TCP layer increments the connection ones).
    pub fn counters(&self) -> &ServerCounters {
        &self.counters
    }

    /// The shared metrics registry: server, engine, and window series all
    /// live here (the `start` op threads it into whichever backend it
    /// builds), so `metrics`, `slow_log`, and the Prometheus endpoint
    /// expose one coherent view.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// Mirror backend-derived values into their gauges so a metrics read
    /// reflects the live state, not the state at the last `stats` call.
    fn sync_gauges(&self) {
        self.uptime.set(self.started_at.elapsed().as_secs());
        let guard = self.started.read().expect("backend lock");
        if let Some(s) = guard.as_ref() {
            match &s.backend {
                Backend::Plain(e) => {
                    let _ = e.stats();
                }
                Backend::Windowed(e) => {
                    let _ = e.window_stats();
                }
            }
        }
    }

    /// The full registry in Prometheus text-exposition format (metric
    /// prefix `pfe`), gauges synced first. This is what the optional
    /// `--metrics` HTTP endpoint serves.
    pub fn render_prometheus(&self) -> String {
        self.sync_gauges();
        self.recorder.render_prometheus("pfe")
    }

    /// The configured shutdown-checkpoint path, if any.
    pub fn checkpoint_path(&self) -> Option<&Path> {
        self.checkpoint_path.as_deref()
    }

    /// Handle one request line: parse, count, dispatch, and answer. Never
    /// panics on malformed input — every failure is an `"ok":false`
    /// response.
    pub fn handle_line(&self, line: &str) -> Reply {
        self.handle_line_with_session(line, None)
    }

    /// [`handle_line`](Self::handle_line) with the transport's session id
    /// attached: the request's `session` root span carries it, so a span
    /// tree names the TCP connection it was served on. Pipe mode and
    /// tests pass `None`.
    pub fn handle_line_with_session(&self, line: &str, session: Option<u64>) -> Reply {
        self.counters.in_flight.add(1);
        let reply = self.handle_inner(line, session);
        self.counters.in_flight.sub(1);
        self.counters.requests_handled.inc();
        reply
    }

    fn handle_inner(&self, line: &str, session: Option<u64>) -> Reply {
        let req = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => return Reply::cont(err(e.to_string())),
        };
        let op = match req.get("op").and_then(Json::as_str) {
            Some(op) => op.to_string(),
            None => return Reply::cont(err("missing 'op'")),
        };
        // Resolve the op to its interned name so per-op labels (metric
        // handles, trace attrs) borrow 'static strings.
        let canonical: &'static str = OPS.iter().copied().find(|o| *o == op).unwrap_or("unknown");
        let ctx = match trace_context_from(&req) {
            Ok(ctx) => ctx,
            Err(e) => return Reply::cont(e),
        };
        // Per-request trace: a `session` root span (one per request,
        // carrying the connection id) over a `dispatch` span the op
        // handlers hang their stage spans under. Disabled (all no-ops)
        // when `--trace-sample 0` turned tracing off and the client sent
        // no context.
        let trace = self.recorder.begin_trace(ctx);
        let mut session_span = trace.span("session");
        if session_span.is_enabled() {
            session_span.attr("transport", if session.is_some() { "tcp" } else { "pipe" });
            if let Some(id) = session {
                session_span.attr("session", id);
            }
        }
        let dispatch_parent = session_span.handle();
        let mut dispatch_span = dispatch_parent.span("dispatch");
        dispatch_span.attr(
            "op",
            if canonical == op {
                AttrValue::Str(canonical)
            } else {
                AttrValue::Text(op.clone())
            },
        );
        let stage_trace = dispatch_span.handle();
        let (count, latency) = self.counters.op_handles(canonical);
        count.inc();
        let begin = Instant::now();
        let mut reply = match self.dispatch(&op, &req, &stage_trace) {
            Ok(reply) => reply,
            Err(json) => Reply::cont(json),
        };
        let elapsed = begin.elapsed();
        drop(dispatch_span);
        drop(session_span);
        // Release the derived handles so `finish` holds the last
        // reference and can drain the trace without locking.
        drop(stage_trace);
        drop(dispatch_parent);
        latency.record_duration(elapsed);
        let logged = self
            .recorder
            .slow_log()
            .record(&format!("op:{canonical}"), elapsed, || {
                let mut detail = vec![("op".to_string(), op.clone())];
                if let Some(id) = trace.trace_id() {
                    detail.push(("trace_id".to_string(), TraceContext::format_id(id)));
                }
                detail
            });
        if logged {
            trace.mark_slow();
        }
        // Echo the trace id on the reply when the client asked for the
        // trace (supplied its id) or the request turned out slow — the
        // two cases where the caller will want to drill in. Fast
        // server-initiated traces skip the echo: the extra wire field
        // costs more than the whole span-recording path, and those ids
        // stay discoverable via `{"op":"trace","last":N}` and the slow
        // log.
        if trace.client_supplied() || trace.is_slow() {
            if let Some(id) = trace.trace_id() {
                if let Json::Obj(map) = &mut reply.json {
                    if !map.contains_key("trace_id") {
                        map.insert(
                            "trace_id".to_string(),
                            Json::Str(TraceContext::format_id(id)),
                        );
                    }
                }
            }
        }
        self.recorder.trace_store().finish(trace);
        reply
    }

    /// Run `f` against the live plain engine; `None` when no backend is
    /// installed or the backend is windowed. (Snapshot shipping needs the
    /// engine surface — epoch, refresh — not the wire surface.)
    pub(crate) fn with_plain_engine<T>(&self, f: impl FnOnce(&Engine) -> T) -> Option<T> {
        let guard = self.started.read().expect("backend lock");
        match guard.as_ref() {
            Some(Started {
                backend: Backend::Plain(e),
                ..
            }) => Some(f(e)),
            _ => None,
        }
    }

    fn with_backend<T>(&self, f: impl FnOnce(&Backend, u32) -> Result<T, Json>) -> Result<T, Json> {
        let guard = self.started.read().expect("backend lock");
        match guard.as_ref() {
            Some(s) => f(&s.backend, s.q),
            None => Err(err("no engine: send 'start' first")),
        }
    }

    /// Serve one statistic request through the canonical query types.
    fn serve_query(&self, req: &Json, trace: &TraceHandle) -> Result<Json, Json> {
        let query = wire::query_from_json(req).map_err(err)?;
        self.with_backend(|backend, q| {
            let answer = backend
                .query_batch_traced(std::slice::from_ref(&query), trace)
                .pop()
                .expect("one answer per query")
                .map_err(|e| err(e.to_string()))?;
            Ok(wire::answer_to_json(&answer, q))
        })
    }

    /// Serve a whole batch through the mask-sharing planner; per-query
    /// failures — parse errors included — come back as error objects in
    /// their slots, never batch-fatal.
    fn serve_batch(&self, req: &Json, trace: &TraceHandle) -> Result<Json, Json> {
        let items = req
            .get("queries")
            .and_then(Json::as_arr)
            .ok_or_else(|| err("missing 'queries'"))?;
        let parsed: Vec<Result<Query, Json>> = items
            .iter()
            .map(|item| {
                wire::query_from_json(item).map_err(|e| {
                    // Echo an unrecognized statistic op by name; other
                    // parse failures keep their field-naming message.
                    match item.get("op").and_then(Json::as_str) {
                        Some(op) if e.contains("unknown statistic op") => {
                            err_unknown_op(op, "statistic")
                        }
                        _ => err(e),
                    }
                })
            })
            .collect();
        let valid: Vec<Query> = parsed.iter().filter_map(|p| p.clone().ok()).collect();
        self.with_backend(|backend, q| {
            let mut served = backend.query_batch_traced(&valid, trace).into_iter();
            let answers = parsed
                .iter()
                .map(|p| match p {
                    Err(e) => e.clone(),
                    Ok(_) => match served.next().expect("one answer per valid query") {
                        Ok(answer) => wire::answer_to_json(&answer, q),
                        Err(e) => err(e.to_string()),
                    },
                })
                .collect();
            Ok(Json::obj([
                ("ok", Json::Bool(true)),
                ("answers", Json::Arr(answers)),
            ]))
        })
    }

    fn start(&self, req: &Json) -> Result<Json, Json> {
        let d = req.get("d").and_then(Json::as_f64).unwrap_or(0.0) as u32;
        let q = req.get("q").and_then(Json::as_f64).unwrap_or(2.0) as u32;
        let mut cfg = EngineConfig::default();
        if let Some(s) = req.get("shards").and_then(Json::as_f64) {
            cfg.shards = s as usize;
        }
        if let Some(a) = req.get("alpha").and_then(Json::as_f64) {
            cfg.alpha = a;
        }
        if let Some(t) = req.get("sample_t").and_then(Json::as_f64) {
            cfg.sample_t = t as usize;
        }
        if let Some(k) = req.get("kmv_k").and_then(Json::as_f64) {
            cfg.kmv_k = k as usize;
        }
        if let Some(s) = req.get("seed").and_then(Json::as_f64) {
            cfg.seed = s as u64;
        }
        match req.get("fp") {
            None | Some(Json::Null) => {}
            Some(fp) => {
                let orders = fp
                    .get("orders")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| err("'fp' requires an 'orders' array"))?
                    .iter()
                    .map(|v| v.as_f64().ok_or_else(|| err("'orders' must be numbers")))
                    .collect::<Result<Vec<f64>, Json>>()?;
                let mut fp_cfg = pfe_engine::FpConfig::with_orders(orders);
                if let Some(v) = fp.get("stable_t").and_then(Json::as_f64) {
                    fp_cfg.stable_t = v as usize;
                }
                if let Some(v) = fp.get("ams_groups").and_then(Json::as_f64) {
                    fp_cfg.ams_groups = v as usize;
                }
                if let Some(v) = fp.get("ams_per_group").and_then(Json::as_f64) {
                    fp_cfg.ams_per_group = v as usize;
                }
                cfg.fp = Some(fp_cfg);
            }
        }
        if let Some(ms) = req.get("slow_ms").and_then(Json::as_f64) {
            self.recorder.slow_log().set_threshold_ms(ms as u64);
        }
        let backend = match req.get("window") {
            None | Some(Json::Null) => Backend::Plain(
                Engine::start_with_recorder(d, q, cfg, Arc::clone(&self.recorder))
                    .map_err(|e| err(e.to_string()))?,
            ),
            Some(win) => {
                let mut wcfg = WindowConfig::default();
                if let Some(v) = win.get("bucket_rows").and_then(Json::as_f64) {
                    wcfg.bucket_rows = v as u64;
                }
                if let Some(v) = win.get("tier_cap").and_then(Json::as_f64) {
                    wcfg.tier_cap = v as usize;
                }
                if let Some(v) = win.get("max_tiers").and_then(Json::as_f64) {
                    wcfg.max_tiers = v as u32;
                }
                if let Some(v) = win.get("merged_cache").and_then(Json::as_f64) {
                    wcfg.merged_cache = v as usize;
                }
                Backend::Windowed(
                    WindowedEngine::start_with_recorder(
                        d,
                        q,
                        cfg,
                        wcfg,
                        Arc::clone(&self.recorder),
                    )
                    .map_err(|e| err(e.to_string()))?,
                )
            }
        };
        let windowed = matches!(backend, Backend::Windowed(_));
        // Last start wins (operator action): sessions already in flight
        // keep their answers consistent — the swap happens between
        // requests, never inside one.
        *self.started.write().expect("backend lock") = Some(Started { backend, q });
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("windowed", Json::Bool(windowed)),
        ]))
    }

    /// Response body for the `server_stats` op.
    fn server_stats(&self) -> Json {
        let (workers, queue) = *self.pool_shape.read().expect("pool shape lock");
        let c = &self.counters;
        let engine = {
            let guard = self.started.read().expect("backend lock");
            match guard.as_ref() {
                Some(s) => wire::stats_to_json(&s.backend.stats()),
                None => Json::Null,
            }
        };
        Json::obj([
            ("ok", Json::Bool(true)),
            (
                "connections_accepted",
                Json::Num(c.connections_accepted.get() as f64),
            ),
            (
                "connections_open",
                Json::Num(c.connections_open.get() as f64),
            ),
            (
                "rejected_saturated",
                Json::Num(c.rejected_saturated.get() as f64),
            ),
            (
                "requests_handled",
                Json::Num(c.requests_handled.get() as f64),
            ),
            ("in_flight", Json::Num(c.in_flight.get() as f64)),
            ("workers", Json::Num(workers as f64)),
            ("queue_capacity", Json::Num(queue as f64)),
            (
                "ops",
                Json::Obj(
                    c.ops()
                        .into_iter()
                        .map(|(k, v)| (k, Json::Num(v as f64)))
                        .collect(),
                ),
            ),
            ("engine", engine),
        ])
    }

    /// Response body for the `metrics` op: the full registry as JSON, or
    /// Prometheus text exposition when the request carries
    /// `"format":"prometheus"`.
    fn metrics_op(&self, req: &Json) -> Json {
        if req.get("format").and_then(Json::as_str) == Some("prometheus") {
            return Json::obj([
                ("ok", Json::Bool(true)),
                ("format", Json::Str("prometheus".to_string())),
                ("text", Json::Str(self.render_prometheus())),
            ]);
        }
        self.sync_gauges();
        let counters: BTreeMap<String, Json> = self
            .recorder
            .counters_snapshot()
            .into_iter()
            .map(|(k, v)| (k, Json::Num(v as f64)))
            .collect();
        let gauges: BTreeMap<String, Json> = self
            .recorder
            .gauges_snapshot()
            .into_iter()
            .map(|(k, v)| (k, Json::Num(v as f64)))
            .collect();
        let histograms: BTreeMap<String, Json> = self
            .recorder
            .histograms_snapshot()
            .into_iter()
            .map(|(k, s)| {
                (
                    k,
                    Json::obj([
                        ("count", Json::Num(s.count as f64)),
                        ("sum", Json::Num(s.sum as f64)),
                        ("max", Json::Num(s.max as f64)),
                        ("p50", Json::Num(s.p50 as f64)),
                        ("p90", Json::Num(s.p90 as f64)),
                        ("p99", Json::Num(s.p99 as f64)),
                    ]),
                )
            })
            .collect();
        let info: BTreeMap<String, Json> = self
            .recorder
            .infos_snapshot()
            .into_iter()
            .map(|(name, labels)| {
                (
                    name,
                    Json::Obj(labels.into_iter().map(|(k, v)| (k, Json::Str(v))).collect()),
                )
            })
            .collect();
        Json::obj([
            ("ok", Json::Bool(true)),
            ("counters", Json::Obj(counters)),
            ("gauges", Json::Obj(gauges)),
            ("histograms", Json::Obj(histograms)),
            ("info", Json::Obj(info)),
        ])
    }

    /// Response body for the `slow_log` op: optionally set the threshold,
    /// then return the retained entries (oldest first).
    fn slow_log_op(&self, req: &Json) -> Json {
        let log = self.recorder.slow_log();
        if let Some(ms) = req.get("threshold_ms").and_then(Json::as_f64) {
            log.set_threshold_ms(ms as u64);
        }
        let entries: Vec<Json> = log
            .entries()
            .into_iter()
            .map(|e| {
                let detail: BTreeMap<String, Json> = e
                    .detail
                    .into_iter()
                    .map(|(k, v)| (k, Json::Str(v)))
                    .collect();
                Json::obj([
                    ("what", Json::Str(e.what)),
                    ("micros", Json::Num(e.micros as f64)),
                    ("detail", Json::Obj(detail)),
                ])
            })
            .collect();
        Json::obj([
            ("ok", Json::Bool(true)),
            ("threshold_ms", Json::Num(log.threshold_ms() as f64)),
            ("entries", Json::Arr(entries)),
        ])
    }

    /// Response body for the `set_slow_ms` op: retune the slow-log
    /// threshold on a live server (0 disables capture).
    fn set_slow_ms_op(&self, req: &Json) -> Result<Json, Json> {
        let ms = req
            .get("ms")
            .and_then(Json::as_f64)
            .ok_or_else(|| err("missing 'ms'"))? as u64;
        self.recorder.slow_log().set_threshold_ms(ms);
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("threshold_ms", Json::Num(ms as f64)),
        ]))
    }

    /// Response body for the `trace` op: fetch one retained trace by id,
    /// or the last `n` completed traces, as span trees — or as Chrome
    /// trace-event JSON when the request carries `"format":"chrome"`.
    fn trace_op(&self, req: &Json) -> Result<Json, Json> {
        let store = self.recorder.trace_store();
        let selected: Vec<CompletedTrace> = match req.get("id").and_then(Json::as_str) {
            Some(s) => {
                let id = TraceContext::parse_id(s)
                    .ok_or_else(|| err(format!("bad trace id '{s}': expected hex")))?;
                store
                    .lookup(id)
                    .map(|t| vec![t])
                    .ok_or_else(|| err(format!("no retained trace with id '{s}'")))?
            }
            None => {
                let n = req.get("last").and_then(Json::as_f64).unwrap_or(8.0) as usize;
                store.last(n)
            }
        };
        if req.get("format").and_then(Json::as_str) == Some("chrome") {
            let text = chrome_trace_json(&selected);
            let events = Json::parse(&text).expect("chrome trace JSON is well-formed");
            return Ok(Json::obj([
                ("ok", Json::Bool(true)),
                ("format", Json::Str("chrome".to_string())),
                ("events", events),
            ]));
        }
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            (
                "traces",
                Json::Arr(selected.iter().map(trace_to_json).collect()),
            ),
        ]))
    }

    /// Write the shutdown checkpoint (configured path) exactly once —
    /// called by the transport *after* sessions drain, so acknowledged
    /// requests are always included. Returns the path written, `None`
    /// when unconfigured, no backend is live, or an earlier call already
    /// checkpointed.
    ///
    /// # Errors
    /// The persistence error, stringified for the wire.
    pub fn shutdown_checkpoint(&self) -> Result<Option<PathBuf>, String> {
        let Some(path) = self.checkpoint_path.clone() else {
            return Ok(None);
        };
        if self.checkpointed.swap(true, Ordering::SeqCst) {
            return Ok(None);
        }
        let guard = self.started.read().expect("backend lock");
        match guard.as_ref() {
            Some(s) => {
                s.backend.checkpoint(&path).map_err(|e| e.to_string())?;
                Ok(Some(path))
            }
            None => Ok(None),
        }
    }

    fn checkpoint_op(&self, req: &Json) -> Result<Json, Json> {
        let path: PathBuf = match req.get("path").and_then(Json::as_str) {
            Some(p) => PathBuf::from(p),
            None => self
                .checkpoint_path
                .clone()
                .ok_or_else(|| err("no checkpoint path: pass 'path' or configure one"))?,
        };
        self.with_backend(|backend, _| {
            backend.checkpoint(&path).map_err(|e| err(e.to_string()))?;
            Ok(Json::obj([
                ("ok", Json::Bool(true)),
                ("path", Json::Str(path.display().to_string())),
            ]))
        })
    }

    fn dispatch(&self, op: &str, req: &Json, trace: &TraceHandle) -> Result<Reply, Json> {
        // A replica's state is whatever the writer shipped: the mutating
        // ops are rejected up front with a typed error. (`snapshot` is
        // mutating here — republishing the local pipeline would clobber
        // the swapped-in snapshot with the stale base it was built on.)
        if matches!(op, "start" | "ingest" | "snapshot" | "checkpoint") && self.is_replica() {
            return Err(err_read_only(op));
        }
        match op {
            "start" => self.start(req).map(Reply::cont),
            "ingest" => {
                let rows = req
                    .get("rows")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| err("missing 'rows'"))?;
                // Parse every row before pushing any, so a malformed
                // symbol rejects the request with nothing ingested.
                let dense: Vec<Vec<u16>> = rows
                    .iter()
                    .map(|row| wire::u16s(Some(row)).map_err(err))
                    .collect::<Result<_, _>>()?;
                let mut ingest_span = trace.span("ingest");
                ingest_span.attr("rows", dense.len());
                self.with_backend(|backend, _| {
                    for (accepted, row) in dense.iter().enumerate() {
                        // A mid-batch engine rejection (e.g. a wrong-arity
                        // row) reports how many rows landed, so a client
                        // can resume without double-ingesting.
                        backend.push_dense(row).map_err(|e| {
                            Json::obj([
                                ("ok", Json::Bool(false)),
                                ("error", Json::Str(e.to_string())),
                                ("rows_ingested", Json::Num(accepted as f64)),
                            ])
                        })?;
                    }
                    Ok(Reply::cont(Json::obj([
                        ("ok", Json::Bool(true)),
                        ("rows", Json::Num(dense.len() as f64)),
                    ])))
                })
            }
            "snapshot" => self.with_backend(|backend, _| match backend {
                Backend::Plain(e) => {
                    let snap = e.refresh().map_err(|e| err(e.to_string()))?;
                    Ok(Reply::cont(Json::obj([
                        ("ok", Json::Bool(true)),
                        ("epoch", Json::Num(snap.epoch() as f64)),
                        ("rows", Json::Num(snap.n() as f64)),
                    ])))
                }
                // The windowed engine serves the live ring directly —
                // there is nothing to publish; report what is retained.
                Backend::Windowed(e) => Ok(Reply::cont(Json::obj([
                    ("ok", Json::Bool(true)),
                    ("rows", Json::Num(e.retained_rows() as f64)),
                ]))),
            }),
            "f0" | "frequency" | "freq" | "heavy_hitters" | "hh" | "l1_sample" | "fp" => {
                self.serve_query(req, trace).map(Reply::cont)
            }
            "batch" => self.serve_batch(req, trace).map(Reply::cont),
            "stats" => self
                .with_backend(|backend, _| Ok(wire::stats_to_json(&backend.stats())))
                .map(Reply::cont),
            "window_stats" => self
                .with_backend(|backend, _| match backend {
                    Backend::Windowed(e) => {
                        Ok(window_wire::window_stats_to_json(&e.window_stats()))
                    }
                    Backend::Plain(_) => Err(err(
                        "window_stats requires a windowed engine: start with a 'window' object",
                    )),
                })
                .map(Reply::cont),
            "server_stats" => Ok(Reply::cont(self.server_stats())),
            "metrics" => Ok(Reply::cont(self.metrics_op(req))),
            "slow_log" => Ok(Reply::cont(self.slow_log_op(req))),
            "set_slow_ms" => self.set_slow_ms_op(req).map(Reply::cont),
            "trace" => self.trace_op(req).map(Reply::cont),
            "replica_stats" => Ok(Reply::cont(self.replica_stats_op())),
            "checkpoint" => self.checkpoint_op(req).map(Reply::cont),
            // The checkpoint itself is NOT written here: it happens after
            // every session drains (`Server::run`, or the pipe-mode loop),
            // so rows acknowledged by in-flight ingests during the drain
            // window are always included. The reply announces the path the
            // drain will write.
            "shutdown" => Ok(Reply {
                json: Json::obj([
                    ("ok", Json::Bool(true)),
                    ("shutdown", Json::Bool(true)),
                    (
                        "checkpoint",
                        self.checkpoint_path
                            .as_ref()
                            .map(|p| Json::Str(p.display().to_string()))
                            .unwrap_or(Json::Null),
                    ),
                ]),
                control: Control::ShutdownServer,
            }),
            "quit" => Ok(Reply {
                json: Json::obj([("ok", Json::Bool(true)), ("bye", Json::Bool(true))]),
                control: Control::CloseSession,
            }),
            other => Err(err_unknown_op(other, "request")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn started() -> Dispatcher {
        let d = Dispatcher::new(None);
        let r = d.handle_line(r#"{"op":"start","d":8,"q":2,"shards":2,"sample_t":256,"kmv_k":32}"#);
        assert_eq!(r.json.get("ok"), Some(&Json::Bool(true)));
        d
    }

    #[test]
    fn every_match_arm_is_registered_in_ops() {
        // Any op the dispatcher serves must answer without the
        // unknown-op error; any name not in OPS must get it. This pins
        // the OPS registry to the match arms.
        let d = started();
        for op in OPS {
            let r = d.handle_line(&format!(r#"{{"op":"{op}"}}"#));
            assert_ne!(
                r.json.get("error").and_then(Json::as_str),
                Some(format!("unknown request op '{op}'").as_str()),
                "op '{op}' is listed in OPS but not dispatched"
            );
        }
        let r = d.handle_line(r#"{"op":"definitely_not_an_op"}"#);
        assert_eq!(
            r.json.get("op").and_then(Json::as_str),
            Some("definitely_not_an_op")
        );
    }

    #[test]
    fn lifecycle_and_errors() {
        let d = Dispatcher::new(None);
        // Before start, statistic ops are typed failures.
        let r = d.handle_line(r#"{"op":"f0","cols":[0]}"#);
        assert_eq!(r.json.get("ok"), Some(&Json::Bool(false)));
        // Unparseable JSON never panics.
        let r = d.handle_line("{nope");
        assert_eq!(r.json.get("ok"), Some(&Json::Bool(false)));
        let r = d.handle_line(r#"{"cols":[0]}"#);
        assert!(r.json.get("error").is_some());
        // Full happy path.
        let r = d.handle_line(r#"{"op":"start","d":8,"q":2,"shards":2}"#);
        assert_eq!(r.json.get("windowed"), Some(&Json::Bool(false)));
        d.handle_line(r#"{"op":"ingest","rows":[[0,1,0,0,1,0,1,1],[1,1,0,0,0,0,1,1]]}"#);
        let r = d.handle_line(r#"{"op":"snapshot"}"#);
        assert_eq!(r.json.get("rows").and_then(Json::as_f64), Some(2.0));
        let r = d.handle_line(r#"{"op":"f0","cols":[0,1,2]}"#);
        assert!(r.json.get("estimate").is_some());
        let r = d.handle_line(
            r#"{"op":"batch","queries":[{"op":"f0","cols":[0,1]},{"op":"bogus","cols":[0]}]}"#,
        );
        let answers = r
            .json
            .get("answers")
            .and_then(Json::as_arr)
            .expect("answers");
        assert_eq!(answers[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(answers[1].get("op").and_then(Json::as_str), Some("bogus"));
        // quit closes the session, not the server.
        let r = d.handle_line(r#"{"op":"quit"}"#);
        assert!(matches!(r.control, Control::CloseSession));
        // stats and server_stats serve on the shared schema.
        let r = d.handle_line(r#"{"op":"stats"}"#);
        assert_eq!(
            r.json.get("rows_ingested").and_then(Json::as_f64),
            Some(2.0)
        );
        let r = d.handle_line(r#"{"op":"server_stats"}"#);
        assert!(r.json.get("ops").is_some());
        assert!(r
            .json
            .get("engine")
            .and_then(|e| e.get("rows_ingested"))
            .is_some());
    }

    #[test]
    fn fp_op_serves_with_guarantee_when_configured() {
        let d = Dispatcher::new(None);
        let r = d.handle_line(
            r#"{"op":"start","d":8,"q":2,"shards":2,"sample_t":256,"kmv_k":32,
                "fp":{"orders":[2.0,1.5],"stable_t":4,"ams_groups":3,"ams_per_group":4}}"#,
        );
        assert_eq!(r.json.get("ok"), Some(&Json::Bool(true)));
        for _ in 0..8 {
            d.handle_line(r#"{"op":"ingest","rows":[[0,1,0,0,1,0,1,1],[1,1,0,0,0,0,1,1]]}"#);
        }
        d.handle_line(r#"{"op":"snapshot"}"#);
        for p in ["2.0", "1.5"] {
            let r = d.handle_line(&format!(r#"{{"op":"fp","cols":[0,1],"p":{p}}}"#));
            assert_eq!(r.json.get("ok"), Some(&Json::Bool(true)), "p={p}");
            assert!(r.json.get("estimate").and_then(Json::as_f64).expect("num") > 0.0);
            let g = r.json.get("guarantee").expect("guarantee travels");
            assert_eq!(g.get("source").and_then(Json::as_str), Some("alpha_net"));
            assert!(g.get("alpha").and_then(Json::as_f64).expect("num") > 1.0);
        }
        // Unmaterialized order: typed per-request error, session stays up.
        let r = d.handle_line(r#"{"op":"fp","cols":[0,1],"p":0.7}"#);
        assert_eq!(r.json.get("ok"), Some(&Json::Bool(false)));
        // A malformed fp config is a typed start failure.
        let r = d.handle_line(r#"{"op":"start","d":8,"q":2,"fp":{"orders":[2.5]}}"#);
        assert_eq!(r.json.get("ok"), Some(&Json::Bool(false)));
        let r = d.handle_line(r#"{"op":"start","d":8,"q":2,"fp":{}}"#);
        assert_eq!(r.json.get("ok"), Some(&Json::Bool(false)));
    }

    #[test]
    fn windowed_backend_over_the_same_protocol() {
        let d = Dispatcher::new(None);
        let r = d.handle_line(
            r#"{"op":"start","d":8,"q":2,"window":{"bucket_rows":64,"tier_cap":2,"max_tiers":3}}"#,
        );
        assert_eq!(r.json.get("windowed"), Some(&Json::Bool(true)));
        for _ in 0..4 {
            d.handle_line(r#"{"op":"ingest","rows":[[0,1,0,0,1,0,1,1],[1,1,0,0,0,0,1,1]]}"#);
        }
        let r = d.handle_line(r#"{"op":"f0","cols":[0,1,2],"window":4}"#);
        let w = r.json.get("window").expect("coverage");
        assert_eq!(w.get("requested_rows").and_then(Json::as_f64), Some(4.0));
        let r = d.handle_line(r#"{"op":"window_stats"}"#);
        assert!(r.json.get("buckets_per_tier").is_some());
        // stats keeps the plain schema on windowed engines.
        let r = d.handle_line(r#"{"op":"stats"}"#);
        assert_eq!(
            r.json.get("rows_ingested").and_then(Json::as_f64),
            Some(8.0)
        );
    }

    #[test]
    fn shutdown_checkpoints_once_to_configured_path() {
        let dir = std::env::temp_dir().join("pfe-server-proto-shutdown");
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("proto-shutdown.pfes");
        std::fs::remove_file(&path).ok();
        let d = Dispatcher::new(Some(path.clone()));
        d.handle_line(r#"{"op":"start","d":8,"q":2,"shards":1}"#);
        d.handle_line(r#"{"op":"ingest","rows":[[0,1,0,0,1,0,1,1]]}"#);
        // The op announces the path but does NOT write it — the write
        // belongs to the transport's post-drain step, so rows ingested by
        // other sessions during the drain are never lost.
        let r = d.handle_line(r#"{"op":"shutdown"}"#);
        assert!(matches!(r.control, Control::ShutdownServer));
        assert_eq!(
            r.json.get("checkpoint").and_then(Json::as_str),
            Some(path.display().to_string().as_str())
        );
        assert!(!path.exists(), "the op itself must not checkpoint");
        // The transport's drain writes it exactly once.
        assert_eq!(d.shutdown_checkpoint(), Ok(Some(path.clone())));
        assert!(path.exists());
        assert_eq!(d.shutdown_checkpoint(), Ok(None), "second write is a no-op");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn protocol_doc_covers_every_registered_op() {
        // Belt and braces with scripts/check_protocol_docs.sh: the wire
        // reference must name every op the dispatcher serves.
        let doc = include_str!("../../../docs/PROTOCOL.md");
        for op in OPS {
            assert!(
                doc.contains(&format!("\"{op}\"")),
                "docs/PROTOCOL.md does not document op '{op}'"
            );
        }
    }

    #[test]
    fn metrics_op_serves_the_shared_registry() {
        let d = started();
        d.handle_line(r#"{"op":"ingest","rows":[[0,1,0,0,1,0,1,1]]}"#);
        d.handle_line(r#"{"op":"snapshot"}"#);
        d.handle_line(r#"{"op":"f0","cols":[0,1,2]}"#);
        let r = d.handle_line(r#"{"op":"metrics"}"#);
        assert_eq!(r.json.get("ok"), Some(&Json::Bool(true)));
        // Engine and server series live in one registry.
        let counters = r.json.get("counters").expect("counters");
        assert_eq!(
            counters.get("engine_queries_f0").and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(
            counters
                .get("server_op_requests_ingest")
                .and_then(Json::as_f64),
            Some(1.0)
        );
        // Gauges are synced from the live backend at read time.
        let gauges = r.json.get("gauges").expect("gauges");
        assert_eq!(
            gauges.get("engine_rows_ingested").and_then(Json::as_f64),
            Some(1.0)
        );
        // The latency histogram counted the query.
        let hist = r
            .json
            .get("histograms")
            .and_then(|h| h.get("engine_query_latency_ns_f0"))
            .expect("f0 latency histogram");
        assert_eq!(hist.get("count").and_then(Json::as_f64), Some(1.0));
        assert!(hist.get("p99").and_then(Json::as_f64).is_some());
        // Prometheus form is the same registry as text.
        let r = d.handle_line(r#"{"op":"metrics","format":"prometheus"}"#);
        let text = r.json.get("text").and_then(Json::as_str).expect("text");
        assert!(text.contains("# TYPE pfe_engine_queries_f0_total counter"));
        assert!(text.contains("pfe_engine_queries_f0_total 1"));
        assert!(text.contains("pfe_server_requests_handled_total"));
    }

    #[test]
    fn slow_log_op_sets_threshold_and_lists_entries() {
        let d = started();
        // Default: disabled, empty.
        let r = d.handle_line(r#"{"op":"slow_log"}"#);
        assert_eq!(r.json.get("threshold_ms").and_then(Json::as_f64), Some(0.0));
        assert_eq!(
            r.json
                .get("entries")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(0)
        );
        // Setting the threshold through the op sticks (and is shared with
        // the engine's slow log — one ring for the whole process).
        let r = d.handle_line(r#"{"op":"slow_log","threshold_ms":250}"#);
        assert_eq!(
            r.json.get("threshold_ms").and_then(Json::as_f64),
            Some(250.0)
        );
        assert_eq!(d.recorder().slow_log().threshold_ms(), 250);
        // `start` accepts slow_ms too.
        d.handle_line(r#"{"op":"start","d":8,"q":2,"shards":1,"slow_ms":9}"#);
        assert_eq!(d.recorder().slow_log().threshold_ms(), 9);
    }

    #[test]
    fn checkpoint_op_with_explicit_path() {
        let dir = std::env::temp_dir().join("pfe-server-proto-ckpt");
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("explicit.pfes");
        std::fs::remove_file(&path).ok();
        let d = started();
        d.handle_line(r#"{"op":"ingest","rows":[[0,1,0,0,1,0,1,1]]}"#);
        // No configured path and none given: typed error.
        let r = d.handle_line(r#"{"op":"checkpoint"}"#);
        assert_eq!(r.json.get("ok"), Some(&Json::Bool(false)));
        let r = d.handle_line(&format!(
            r#"{{"op":"checkpoint","path":"{}"}}"#,
            path.display()
        ));
        assert_eq!(r.json.get("ok"), Some(&Json::Bool(true)));
        assert!(path.exists());
        std::fs::remove_file(&path).ok();
    }
}
