//! The protocol dispatcher: one definition of the line-delimited JSON
//! surface, shared by stdin (pipe) mode, TCP sessions, and tests.
//!
//! A [`Dispatcher`] owns the serving backend (whole-stream
//! [`Engine`] or sliding-window
//! [`WindowedEngine`], selected by the
//! `start` request) plus the server-level counters, and turns one request
//! line into one response [`Reply`]. Statistic requests and responses are
//! the canonical `pfe-query` types serialized by `pfe_engine::wire`, so
//! the Rust API, the cache keys, and every transport speak one language.
//! The full request/response reference lives in `docs/PROTOCOL.md`
//! (checked against [`OPS`] by CI).
//!
//! ```
//! use pfe_server::proto::{Control, Dispatcher};
//! use pfe_engine::Json;
//!
//! let dispatcher = Dispatcher::new(None);
//! let reply = dispatcher.handle_line(r#"{"op":"start","d":8,"q":2,"shards":2}"#);
//! assert_eq!(reply.json.get("ok"), Some(&Json::Bool(true)));
//! let reply = dispatcher.handle_line(r#"{"op":"ingest","rows":[[0,1,0,0,1,0,1,1]]}"#);
//! assert_eq!(reply.json.get("rows").and_then(Json::as_f64), Some(1.0));
//! dispatcher.handle_line(r#"{"op":"snapshot"}"#);
//! let reply = dispatcher.handle_line(r#"{"op":"f0","cols":[0,1,2]}"#);
//! assert!(reply.json.get("estimate").is_some());
//! assert!(matches!(reply.control, Control::Continue));
//! ```

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

use pfe_engine::{wire, Engine, EngineConfig, EngineError, EngineStats, Json, Query};
use pfe_window::{wire as window_wire, WindowConfig, WindowedEngine};

/// Every op name the dispatcher recognizes, aliases included.
///
/// This is the single registry the `match` in [`Dispatcher::handle_line`]
/// is built from; `scripts/check_protocol_docs.sh` (CI) fails if any name
/// listed here is missing from `docs/PROTOCOL.md`.
pub const OPS: &[&str] = &[
    // OPS_START — one op per line; greppable by the docs-drift check.
    "start",
    "ingest",
    "snapshot",
    "f0",
    "frequency",
    "freq",
    "heavy_hitters",
    "hh",
    "l1_sample",
    "batch",
    "stats",
    "window_stats",
    "server_stats",
    "checkpoint",
    "shutdown",
    "quit",
    // OPS_END
];

/// Build an `{"ok":false,"error":msg}` payload.
pub fn err(msg: impl Into<String>) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::Str(msg.into()))])
}

/// Error payload for an unrecognized op name: the offending op string is
/// echoed in its own field so clients can match it programmatically
/// instead of parsing the message.
pub fn err_unknown_op(op: &str, context: &str) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::Str(format!("unknown {context} op '{op}'"))),
        ("op", Json::Str(op.to_string())),
    ])
}

/// The typed saturation rejection a client receives when the worker pool
/// cannot take its connection (`"code":"saturated"` is the stable,
/// machine-matchable field).
pub fn err_saturated(workers: usize, queue: usize) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::Str(format!(
                "server saturated: all {workers} workers busy and the \
                 {queue}-connection queue is full; retry later"
            )),
        ),
        ("code", Json::Str("saturated".to_string())),
    ])
}

/// Whole-stream or sliding-window serving, behind one protocol.
pub enum Backend {
    /// Whole-stream serving ([`Engine`]).
    Plain(Engine),
    /// Sliding-window serving ([`WindowedEngine`]).
    Windowed(WindowedEngine),
}

impl Backend {
    /// Answer a batch through whichever engine is live.
    pub fn query_batch(&self, queries: &[Query]) -> Vec<Result<pfe_engine::Answer, EngineError>> {
        match self {
            Backend::Plain(e) => e.query_batch(queries),
            Backend::Windowed(e) => e.query_batch(queries),
        }
    }

    /// Route one dense row.
    ///
    /// # Errors
    /// Shape violations or a closed pipeline.
    pub fn push_dense(&self, row: &[u16]) -> Result<(), EngineError> {
        match self {
            Backend::Plain(e) => e.push_dense(row),
            Backend::Windowed(e) => e.push_dense(row),
        }
    }

    /// Engine-level counters under the one documented `stats` schema: the
    /// windowed engine maps its ring counters onto it (ingested =
    /// retained + evicted, "snapshot" fields describe the live ring,
    /// epoch 0) and serves ring-specific detail under `window_stats`.
    pub fn stats(&self) -> EngineStats {
        match self {
            Backend::Plain(e) => e.stats(),
            Backend::Windowed(e) => {
                let w = e.window_stats();
                EngineStats {
                    rows_ingested: w.retained_rows + w.evicted_rows,
                    snapshot_epoch: 0,
                    snapshot_rows: w.retained_rows,
                    snapshot_bytes: w.ring_bytes,
                    cache: w.cache,
                    shards: 1,
                    queries_served: w.queries_served,
                    queries: w.queries,
                }
            }
        }
    }

    /// Write a durable checkpoint: the merged snapshot for a plain
    /// engine, the whole bucket ring for a windowed one.
    ///
    /// # Errors
    /// Persistence/IO failures, or `NoSnapshot` on an empty plain engine
    /// that was already shut down.
    pub fn checkpoint(&self, path: &Path) -> Result<(), EngineError> {
        match self {
            Backend::Plain(e) => e.checkpoint(path).map(|_| ()),
            Backend::Windowed(e) => e.checkpoint(path),
        }
    }
}

/// What the transport should do after writing a [`Reply`]'s response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep reading requests on this session.
    Continue,
    /// Close this session (the `quit` op); the server keeps running.
    CloseSession,
    /// Stop the whole server (the `shutdown` op): sessions drain — each
    /// finishes its in-flight request — and then the transport writes
    /// the shutdown checkpoint via [`Dispatcher::shutdown_checkpoint`],
    /// so every request acknowledged before exit is included.
    ShutdownServer,
}

/// One response line plus the transport action that follows it.
pub struct Reply {
    /// The response object (always carries `"ok"`).
    pub json: Json,
    /// What the session should do after sending `json`.
    pub control: Control,
}

impl Reply {
    fn cont(json: Json) -> Self {
        Self {
            json,
            control: Control::Continue,
        }
    }
}

/// Connection/request counters served by `server_stats`. The TCP layer
/// owns the connection-shaped ones; the dispatcher maintains the request
/// and per-op counters on every transport (in pipe mode the connection
/// counters simply stay 0).
#[derive(Debug, Default)]
pub struct ServerCounters {
    /// Connections accepted since start.
    pub connections_accepted: AtomicU64,
    /// Connections currently open (accepted, not yet closed).
    pub connections_open: AtomicU64,
    /// Connections rejected with the typed saturation error.
    pub rejected_saturated: AtomicU64,
    /// Requests handled to completion across all sessions.
    pub requests_handled: AtomicU64,
    /// Requests currently being dispatched.
    pub in_flight: AtomicU64,
    ops: Mutex<BTreeMap<String, u64>>,
}

impl ServerCounters {
    fn count_op(&self, op: &str) {
        let mut ops = self.ops.lock().expect("ops lock");
        *ops.entry(op.to_string()).or_insert(0) += 1;
    }

    /// Per-op request counts (unrecognized names land under `unknown`).
    pub fn ops(&self) -> BTreeMap<String, u64> {
        self.ops.lock().expect("ops lock").clone()
    }
}

struct Started {
    backend: Backend,
    q: u32,
}

/// The shared protocol state machine: owns the backend, the counters, and
/// the shutdown-checkpoint path; `handle_line` is safe to call from many
/// session threads at once (ingest serializes inside the engine, queries
/// are wait-free against the published snapshot).
pub struct Dispatcher {
    started: RwLock<Option<Started>>,
    counters: ServerCounters,
    checkpoint_path: Option<PathBuf>,
    checkpointed: AtomicBool,
    /// `(workers, queue)` reported by `server_stats`; `(0, 0)` until the
    /// TCP layer announces its pool shape.
    pool_shape: RwLock<(usize, usize)>,
}

impl Dispatcher {
    /// A fresh dispatcher with no backend. `checkpoint_path` is where the
    /// `shutdown` op (and the TCP server's signal-driven shutdown) writes
    /// the durable state; `None` disables shutdown checkpointing.
    pub fn new(checkpoint_path: Option<PathBuf>) -> Self {
        Self {
            started: RwLock::new(None),
            counters: ServerCounters::default(),
            checkpoint_path,
            checkpointed: AtomicBool::new(false),
            pool_shape: RwLock::new((0, 0)),
        }
    }

    /// Announce the worker-pool shape reported by `server_stats`.
    pub fn set_pool_shape(&self, workers: usize, queue: usize) {
        *self.pool_shape.write().expect("pool shape lock") = (workers, queue);
    }

    /// The live counters (the TCP layer increments the connection ones).
    pub fn counters(&self) -> &ServerCounters {
        &self.counters
    }

    /// The configured shutdown-checkpoint path, if any.
    pub fn checkpoint_path(&self) -> Option<&Path> {
        self.checkpoint_path.as_deref()
    }

    /// Handle one request line: parse, count, dispatch, and answer. Never
    /// panics on malformed input — every failure is an `"ok":false`
    /// response.
    pub fn handle_line(&self, line: &str) -> Reply {
        self.counters.in_flight.fetch_add(1, Ordering::Relaxed);
        let reply = self.handle_inner(line);
        self.counters.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.counters
            .requests_handled
            .fetch_add(1, Ordering::Relaxed);
        reply
    }

    fn handle_inner(&self, line: &str) -> Reply {
        let req = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => return Reply::cont(err(e.to_string())),
        };
        let op = match req.get("op").and_then(Json::as_str) {
            Some(op) => op.to_string(),
            None => return Reply::cont(err("missing 'op'")),
        };
        self.counters.count_op(if OPS.contains(&op.as_str()) {
            &op
        } else {
            "unknown"
        });
        match self.dispatch(&op, &req) {
            Ok(reply) => reply,
            Err(json) => Reply::cont(json),
        }
    }

    fn with_backend<T>(&self, f: impl FnOnce(&Backend, u32) -> Result<T, Json>) -> Result<T, Json> {
        let guard = self.started.read().expect("backend lock");
        match guard.as_ref() {
            Some(s) => f(&s.backend, s.q),
            None => Err(err("no engine: send 'start' first")),
        }
    }

    /// Serve one statistic request through the canonical query types.
    fn serve_query(&self, req: &Json) -> Result<Json, Json> {
        let query = wire::query_from_json(req).map_err(err)?;
        self.with_backend(|backend, q| {
            let answer = backend
                .query_batch(std::slice::from_ref(&query))
                .pop()
                .expect("one answer per query")
                .map_err(|e| err(e.to_string()))?;
            Ok(wire::answer_to_json(&answer, q))
        })
    }

    /// Serve a whole batch through the mask-sharing planner; per-query
    /// failures — parse errors included — come back as error objects in
    /// their slots, never batch-fatal.
    fn serve_batch(&self, req: &Json) -> Result<Json, Json> {
        let items = req
            .get("queries")
            .and_then(Json::as_arr)
            .ok_or_else(|| err("missing 'queries'"))?;
        let parsed: Vec<Result<Query, Json>> = items
            .iter()
            .map(|item| {
                wire::query_from_json(item).map_err(|e| {
                    // Echo an unrecognized statistic op by name; other
                    // parse failures keep their field-naming message.
                    match item.get("op").and_then(Json::as_str) {
                        Some(op) if e.contains("unknown statistic op") => {
                            err_unknown_op(op, "statistic")
                        }
                        _ => err(e),
                    }
                })
            })
            .collect();
        let valid: Vec<Query> = parsed.iter().filter_map(|p| p.clone().ok()).collect();
        self.with_backend(|backend, q| {
            let mut served = backend.query_batch(&valid).into_iter();
            let answers = parsed
                .iter()
                .map(|p| match p {
                    Err(e) => e.clone(),
                    Ok(_) => match served.next().expect("one answer per valid query") {
                        Ok(answer) => wire::answer_to_json(&answer, q),
                        Err(e) => err(e.to_string()),
                    },
                })
                .collect();
            Ok(Json::obj([
                ("ok", Json::Bool(true)),
                ("answers", Json::Arr(answers)),
            ]))
        })
    }

    fn start(&self, req: &Json) -> Result<Json, Json> {
        let d = req.get("d").and_then(Json::as_f64).unwrap_or(0.0) as u32;
        let q = req.get("q").and_then(Json::as_f64).unwrap_or(2.0) as u32;
        let mut cfg = EngineConfig::default();
        if let Some(s) = req.get("shards").and_then(Json::as_f64) {
            cfg.shards = s as usize;
        }
        if let Some(a) = req.get("alpha").and_then(Json::as_f64) {
            cfg.alpha = a;
        }
        if let Some(t) = req.get("sample_t").and_then(Json::as_f64) {
            cfg.sample_t = t as usize;
        }
        if let Some(k) = req.get("kmv_k").and_then(Json::as_f64) {
            cfg.kmv_k = k as usize;
        }
        if let Some(s) = req.get("seed").and_then(Json::as_f64) {
            cfg.seed = s as u64;
        }
        let backend = match req.get("window") {
            None | Some(Json::Null) => {
                Backend::Plain(Engine::start(d, q, cfg).map_err(|e| err(e.to_string()))?)
            }
            Some(win) => {
                let mut wcfg = WindowConfig::default();
                if let Some(v) = win.get("bucket_rows").and_then(Json::as_f64) {
                    wcfg.bucket_rows = v as u64;
                }
                if let Some(v) = win.get("tier_cap").and_then(Json::as_f64) {
                    wcfg.tier_cap = v as usize;
                }
                if let Some(v) = win.get("max_tiers").and_then(Json::as_f64) {
                    wcfg.max_tiers = v as u32;
                }
                if let Some(v) = win.get("merged_cache").and_then(Json::as_f64) {
                    wcfg.merged_cache = v as usize;
                }
                Backend::Windowed(
                    WindowedEngine::start(d, q, cfg, wcfg).map_err(|e| err(e.to_string()))?,
                )
            }
        };
        let windowed = matches!(backend, Backend::Windowed(_));
        // Last start wins (operator action): sessions already in flight
        // keep their answers consistent — the swap happens between
        // requests, never inside one.
        *self.started.write().expect("backend lock") = Some(Started { backend, q });
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("windowed", Json::Bool(windowed)),
        ]))
    }

    /// Response body for the `server_stats` op.
    fn server_stats(&self) -> Json {
        let (workers, queue) = *self.pool_shape.read().expect("pool shape lock");
        let c = &self.counters;
        let engine = {
            let guard = self.started.read().expect("backend lock");
            match guard.as_ref() {
                Some(s) => wire::stats_to_json(&s.backend.stats()),
                None => Json::Null,
            }
        };
        Json::obj([
            ("ok", Json::Bool(true)),
            (
                "connections_accepted",
                Json::Num(c.connections_accepted.load(Ordering::Relaxed) as f64),
            ),
            (
                "connections_open",
                Json::Num(c.connections_open.load(Ordering::Relaxed) as f64),
            ),
            (
                "rejected_saturated",
                Json::Num(c.rejected_saturated.load(Ordering::Relaxed) as f64),
            ),
            (
                "requests_handled",
                Json::Num(c.requests_handled.load(Ordering::Relaxed) as f64),
            ),
            (
                "in_flight",
                Json::Num(c.in_flight.load(Ordering::Relaxed) as f64),
            ),
            ("workers", Json::Num(workers as f64)),
            ("queue_capacity", Json::Num(queue as f64)),
            (
                "ops",
                Json::Obj(
                    c.ops()
                        .into_iter()
                        .map(|(k, v)| (k, Json::Num(v as f64)))
                        .collect(),
                ),
            ),
            ("engine", engine),
        ])
    }

    /// Write the shutdown checkpoint (configured path) exactly once —
    /// called by the transport *after* sessions drain, so acknowledged
    /// requests are always included. Returns the path written, `None`
    /// when unconfigured, no backend is live, or an earlier call already
    /// checkpointed.
    ///
    /// # Errors
    /// The persistence error, stringified for the wire.
    pub fn shutdown_checkpoint(&self) -> Result<Option<PathBuf>, String> {
        let Some(path) = self.checkpoint_path.clone() else {
            return Ok(None);
        };
        if self.checkpointed.swap(true, Ordering::SeqCst) {
            return Ok(None);
        }
        let guard = self.started.read().expect("backend lock");
        match guard.as_ref() {
            Some(s) => {
                s.backend.checkpoint(&path).map_err(|e| e.to_string())?;
                Ok(Some(path))
            }
            None => Ok(None),
        }
    }

    fn checkpoint_op(&self, req: &Json) -> Result<Json, Json> {
        let path: PathBuf = match req.get("path").and_then(Json::as_str) {
            Some(p) => PathBuf::from(p),
            None => self
                .checkpoint_path
                .clone()
                .ok_or_else(|| err("no checkpoint path: pass 'path' or configure one"))?,
        };
        self.with_backend(|backend, _| {
            backend.checkpoint(&path).map_err(|e| err(e.to_string()))?;
            Ok(Json::obj([
                ("ok", Json::Bool(true)),
                ("path", Json::Str(path.display().to_string())),
            ]))
        })
    }

    fn dispatch(&self, op: &str, req: &Json) -> Result<Reply, Json> {
        match op {
            "start" => self.start(req).map(Reply::cont),
            "ingest" => {
                let rows = req
                    .get("rows")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| err("missing 'rows'"))?;
                // Parse every row before pushing any, so a malformed
                // symbol rejects the request with nothing ingested.
                let dense: Vec<Vec<u16>> = rows
                    .iter()
                    .map(|row| wire::u16s(Some(row)).map_err(err))
                    .collect::<Result<_, _>>()?;
                self.with_backend(|backend, _| {
                    for (accepted, row) in dense.iter().enumerate() {
                        // A mid-batch engine rejection (e.g. a wrong-arity
                        // row) reports how many rows landed, so a client
                        // can resume without double-ingesting.
                        backend.push_dense(row).map_err(|e| {
                            Json::obj([
                                ("ok", Json::Bool(false)),
                                ("error", Json::Str(e.to_string())),
                                ("rows_ingested", Json::Num(accepted as f64)),
                            ])
                        })?;
                    }
                    Ok(Reply::cont(Json::obj([
                        ("ok", Json::Bool(true)),
                        ("rows", Json::Num(dense.len() as f64)),
                    ])))
                })
            }
            "snapshot" => self.with_backend(|backend, _| match backend {
                Backend::Plain(e) => {
                    let snap = e.refresh().map_err(|e| err(e.to_string()))?;
                    Ok(Reply::cont(Json::obj([
                        ("ok", Json::Bool(true)),
                        ("epoch", Json::Num(snap.epoch() as f64)),
                        ("rows", Json::Num(snap.n() as f64)),
                    ])))
                }
                // The windowed engine serves the live ring directly —
                // there is nothing to publish; report what is retained.
                Backend::Windowed(e) => Ok(Reply::cont(Json::obj([
                    ("ok", Json::Bool(true)),
                    ("rows", Json::Num(e.retained_rows() as f64)),
                ]))),
            }),
            "f0" | "frequency" | "freq" | "heavy_hitters" | "hh" | "l1_sample" => {
                self.serve_query(req).map(Reply::cont)
            }
            "batch" => self.serve_batch(req).map(Reply::cont),
            "stats" => self
                .with_backend(|backend, _| Ok(wire::stats_to_json(&backend.stats())))
                .map(Reply::cont),
            "window_stats" => self
                .with_backend(|backend, _| match backend {
                    Backend::Windowed(e) => {
                        Ok(window_wire::window_stats_to_json(&e.window_stats()))
                    }
                    Backend::Plain(_) => Err(err(
                        "window_stats requires a windowed engine: start with a 'window' object",
                    )),
                })
                .map(Reply::cont),
            "server_stats" => Ok(Reply::cont(self.server_stats())),
            "checkpoint" => self.checkpoint_op(req).map(Reply::cont),
            // The checkpoint itself is NOT written here: it happens after
            // every session drains (`Server::run`, or the pipe-mode loop),
            // so rows acknowledged by in-flight ingests during the drain
            // window are always included. The reply announces the path the
            // drain will write.
            "shutdown" => Ok(Reply {
                json: Json::obj([
                    ("ok", Json::Bool(true)),
                    ("shutdown", Json::Bool(true)),
                    (
                        "checkpoint",
                        self.checkpoint_path
                            .as_ref()
                            .map(|p| Json::Str(p.display().to_string()))
                            .unwrap_or(Json::Null),
                    ),
                ]),
                control: Control::ShutdownServer,
            }),
            "quit" => Ok(Reply {
                json: Json::obj([("ok", Json::Bool(true)), ("bye", Json::Bool(true))]),
                control: Control::CloseSession,
            }),
            other => Err(err_unknown_op(other, "request")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn started() -> Dispatcher {
        let d = Dispatcher::new(None);
        let r = d.handle_line(r#"{"op":"start","d":8,"q":2,"shards":2,"sample_t":256,"kmv_k":32}"#);
        assert_eq!(r.json.get("ok"), Some(&Json::Bool(true)));
        d
    }

    #[test]
    fn every_match_arm_is_registered_in_ops() {
        // Any op the dispatcher serves must answer without the
        // unknown-op error; any name not in OPS must get it. This pins
        // the OPS registry to the match arms.
        let d = started();
        for op in OPS {
            let r = d.handle_line(&format!(r#"{{"op":"{op}"}}"#));
            assert_ne!(
                r.json.get("error").and_then(Json::as_str),
                Some(format!("unknown request op '{op}'").as_str()),
                "op '{op}' is listed in OPS but not dispatched"
            );
        }
        let r = d.handle_line(r#"{"op":"definitely_not_an_op"}"#);
        assert_eq!(
            r.json.get("op").and_then(Json::as_str),
            Some("definitely_not_an_op")
        );
    }

    #[test]
    fn lifecycle_and_errors() {
        let d = Dispatcher::new(None);
        // Before start, statistic ops are typed failures.
        let r = d.handle_line(r#"{"op":"f0","cols":[0]}"#);
        assert_eq!(r.json.get("ok"), Some(&Json::Bool(false)));
        // Unparseable JSON never panics.
        let r = d.handle_line("{nope");
        assert_eq!(r.json.get("ok"), Some(&Json::Bool(false)));
        let r = d.handle_line(r#"{"cols":[0]}"#);
        assert!(r.json.get("error").is_some());
        // Full happy path.
        let r = d.handle_line(r#"{"op":"start","d":8,"q":2,"shards":2}"#);
        assert_eq!(r.json.get("windowed"), Some(&Json::Bool(false)));
        d.handle_line(r#"{"op":"ingest","rows":[[0,1,0,0,1,0,1,1],[1,1,0,0,0,0,1,1]]}"#);
        let r = d.handle_line(r#"{"op":"snapshot"}"#);
        assert_eq!(r.json.get("rows").and_then(Json::as_f64), Some(2.0));
        let r = d.handle_line(r#"{"op":"f0","cols":[0,1,2]}"#);
        assert!(r.json.get("estimate").is_some());
        let r = d.handle_line(
            r#"{"op":"batch","queries":[{"op":"f0","cols":[0,1]},{"op":"bogus","cols":[0]}]}"#,
        );
        let answers = r
            .json
            .get("answers")
            .and_then(Json::as_arr)
            .expect("answers");
        assert_eq!(answers[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(answers[1].get("op").and_then(Json::as_str), Some("bogus"));
        // quit closes the session, not the server.
        let r = d.handle_line(r#"{"op":"quit"}"#);
        assert!(matches!(r.control, Control::CloseSession));
        // stats and server_stats serve on the shared schema.
        let r = d.handle_line(r#"{"op":"stats"}"#);
        assert_eq!(
            r.json.get("rows_ingested").and_then(Json::as_f64),
            Some(2.0)
        );
        let r = d.handle_line(r#"{"op":"server_stats"}"#);
        assert!(r.json.get("ops").is_some());
        assert!(r
            .json
            .get("engine")
            .and_then(|e| e.get("rows_ingested"))
            .is_some());
    }

    #[test]
    fn windowed_backend_over_the_same_protocol() {
        let d = Dispatcher::new(None);
        let r = d.handle_line(
            r#"{"op":"start","d":8,"q":2,"window":{"bucket_rows":64,"tier_cap":2,"max_tiers":3}}"#,
        );
        assert_eq!(r.json.get("windowed"), Some(&Json::Bool(true)));
        for _ in 0..4 {
            d.handle_line(r#"{"op":"ingest","rows":[[0,1,0,0,1,0,1,1],[1,1,0,0,0,0,1,1]]}"#);
        }
        let r = d.handle_line(r#"{"op":"f0","cols":[0,1,2],"window":4}"#);
        let w = r.json.get("window").expect("coverage");
        assert_eq!(w.get("requested_rows").and_then(Json::as_f64), Some(4.0));
        let r = d.handle_line(r#"{"op":"window_stats"}"#);
        assert!(r.json.get("buckets_per_tier").is_some());
        // stats keeps the plain schema on windowed engines.
        let r = d.handle_line(r#"{"op":"stats"}"#);
        assert_eq!(
            r.json.get("rows_ingested").and_then(Json::as_f64),
            Some(8.0)
        );
    }

    #[test]
    fn shutdown_checkpoints_once_to_configured_path() {
        let dir = std::env::temp_dir().join("pfe-server-proto-shutdown");
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("proto-shutdown.pfes");
        std::fs::remove_file(&path).ok();
        let d = Dispatcher::new(Some(path.clone()));
        d.handle_line(r#"{"op":"start","d":8,"q":2,"shards":1}"#);
        d.handle_line(r#"{"op":"ingest","rows":[[0,1,0,0,1,0,1,1]]}"#);
        // The op announces the path but does NOT write it — the write
        // belongs to the transport's post-drain step, so rows ingested by
        // other sessions during the drain are never lost.
        let r = d.handle_line(r#"{"op":"shutdown"}"#);
        assert!(matches!(r.control, Control::ShutdownServer));
        assert_eq!(
            r.json.get("checkpoint").and_then(Json::as_str),
            Some(path.display().to_string().as_str())
        );
        assert!(!path.exists(), "the op itself must not checkpoint");
        // The transport's drain writes it exactly once.
        assert_eq!(d.shutdown_checkpoint(), Ok(Some(path.clone())));
        assert!(path.exists());
        assert_eq!(d.shutdown_checkpoint(), Ok(None), "second write is a no-op");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn protocol_doc_covers_every_registered_op() {
        // Belt and braces with scripts/check_protocol_docs.sh: the wire
        // reference must name every op the dispatcher serves.
        let doc = include_str!("../../../docs/PROTOCOL.md");
        for op in OPS {
            assert!(
                doc.contains(&format!("\"{op}\"")),
                "docs/PROTOCOL.md does not document op '{op}'"
            );
        }
    }

    #[test]
    fn checkpoint_op_with_explicit_path() {
        let dir = std::env::temp_dir().join("pfe-server-proto-ckpt");
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("explicit.pfes");
        std::fs::remove_file(&path).ok();
        let d = started();
        d.handle_line(r#"{"op":"ingest","rows":[[0,1,0,0,1,0,1,1]]}"#);
        // No configured path and none given: typed error.
        let r = d.handle_line(r#"{"op":"checkpoint"}"#);
        assert_eq!(r.json.get("ok"), Some(&Json::Bool(false)));
        let r = d.handle_line(&format!(
            r#"{{"op":"checkpoint","path":"{}"}}"#,
            path.display()
        ));
        assert_eq!(r.json.get("ok"), Some(&Json::Bool(true)));
        assert!(path.exists());
        std::fs::remove_file(&path).ok();
    }
}
