#![deny(missing_docs)]
//! `pfe-server` — concurrent network serving of projected-frequency
//! queries: the line-delimited JSON protocol over TCP, served by a
//! nonblocking readiness loop (epoll, via a hand-rolled `std`-only
//! poller) so one process holds tens of thousands of mostly-idle
//! connections, with a bounded dispatch pool, typed saturation
//! rejection, graceful checkpoint-on-shutdown, and snapshot-shipping
//! read replicas for horizontal read scale. Zero external dependencies
//! (`std::net` + raw `epoll`/`poll` syscalls, per the repo's
//! offline-compat convention).
//!
//! The layers, each usable alone:
//!
//! 1. **[`proto`]** — the protocol dispatcher. One [`Dispatcher`] turns a
//!    request line into a response [`proto::Reply`]; it owns the backend
//!    (whole-stream [`Engine`](pfe_engine::Engine) or sliding-window
//!    [`WindowedEngine`](pfe_window::WindowedEngine)) and the
//!    `server_stats` counters. Stdin (pipe) mode, TCP sessions, and tests
//!    all share this one definition, so transports can never drift.
//!    [`proto::OPS`] is the op registry CI checks `docs/PROTOCOL.md`
//!    against.
//! 2. **[`poll`] + [`framing`]** — the event-loop building blocks: a
//!    mio-style readiness poller (epoll on Linux, `poll(2)` elsewhere on
//!    Unix) and a resumable line framer that reassembles requests from
//!    arbitrary TCP chunkings and rejects oversized lines with a typed
//!    error.
//! 3. **[`Server`]** — the TCP listener and readiness loop. Sessions are
//!    event-driven (an idle connection costs one fd, no thread); request
//!    execution fans out over a bounded [`pool::WorkerPool`], and
//!    `workers + queue` bounds concurrently open sessions — beyond it a
//!    connection gets the typed `"code":"saturated"` rejection. Shutdown
//!    — via [`ServerHandle::shutdown`], the wire `shutdown` op, or
//!    SIGINT/SIGTERM ([`install_signal_handlers`]) — stops accepting,
//!    drains in-flight requests, and checkpoints the backend durably via
//!    `pfe-persist`.
//! 4. **[`replica`]** — snapshot-shipping replication: a writer
//!    checkpoints into a snapshot directory (atomic rename, monotonic
//!    epoch filenames); read replicas watch it and atomically swap new
//!    epochs in while serving, answering bit-identically to the writer
//!    at the same epoch.
//! 5. **[`Client`]** — a small synchronous client (one request line out,
//!    one response line back), the library behind `examples/client.rs`.
//!
//! A full round trip, in process:
//!
//! ```
//! use pfe_server::{Client, Server, ServerConfig};
//! use pfe_engine::Json;
//!
//! let server = Server::bind(ServerConfig::default()).unwrap();
//! let addr = server.local_addr();
//! let handle = server.handle();
//! let running = std::thread::spawn(move || server.run().unwrap());
//!
//! let mut client = Client::connect(addr).unwrap();
//! let r = client.request_line(r#"{"op":"start","d":8,"q":2,"shards":2}"#).unwrap();
//! assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
//! client.request_line(r#"{"op":"ingest","rows":[[0,1,0,0,1,0,1,1],[1,1,0,0,0,0,1,1]]}"#).unwrap();
//! client.request_line(r#"{"op":"snapshot"}"#).unwrap();
//! let r = client.request_line(r#"{"op":"f0","cols":[0,1,2]}"#).unwrap();
//! assert!(r.get("estimate").and_then(Json::as_f64).unwrap() >= 1.0);
//!
//! handle.shutdown();
//! running.join().unwrap();
//! ```
//!
//! `examples/serve.rs` (workspace root) runs this server from the command
//! line (`--listen`), `benches/server.rs` and `benches/connections.rs`
//! measure throughput and connection scaling, `scripts/load_test.sh`
//! drives the writer + replica topology end to end, and `docs/GUIDE.md`
//! walks the whole install → ingest → query → serve → scale-out path.

pub mod client;
pub mod framing;
pub mod poll;
pub mod pool;
pub mod proto;
pub mod replica;
pub mod server;

pub use client::{Client, ClientError};
pub use framing::{FrameEvent, LineFramer};
pub use proto::{Control, Dispatcher};
pub use replica::{ReplicaSpec, ShipSpec};
pub use server::{
    install_signal_handlers, Server, ServerConfig, ServerError, ServerHandle, ShutdownReport,
};
