#![deny(missing_docs)]
//! `pfe-server` — concurrent network serving of projected-frequency
//! queries: the line-delimited JSON protocol over TCP, with a bounded
//! worker pool, typed saturation rejection, and graceful
//! checkpoint-on-shutdown. Zero external dependencies (`std::net` + a
//! hand-rolled pool, per the repo's offline-compat convention).
//!
//! Three layers, each usable alone:
//!
//! 1. **[`proto`]** — the protocol dispatcher. One [`Dispatcher`] turns a
//!    request line into a response [`proto::Reply`]; it owns the backend
//!    (whole-stream [`Engine`](pfe_engine::Engine) or sliding-window
//!    [`WindowedEngine`](pfe_window::WindowedEngine)) and the
//!    `server_stats` counters. Stdin (pipe) mode, TCP sessions, and tests
//!    all share this one definition, so transports can never drift.
//!    [`proto::OPS`] is the op registry CI checks `docs/PROTOCOL.md`
//!    against.
//! 2. **[`Server`]** — a TCP listener whose accepted connections are
//!    served by a bounded [`pool::WorkerPool`]. When every worker is busy
//!    and the queue is full, a new connection gets the typed
//!    `"code":"saturated"` rejection instead of queueing unboundedly.
//!    Shutdown — via [`ServerHandle::shutdown`], the wire `shutdown` op,
//!    or SIGINT/SIGTERM ([`install_signal_handlers`]) — stops accepting,
//!    drains in-flight requests, and checkpoints the backend durably via
//!    `pfe-persist`.
//! 3. **[`Client`]** — a small synchronous client (one request line out,
//!    one response line back), the library behind `examples/client.rs`.
//!
//! A full round trip, in process:
//!
//! ```
//! use pfe_server::{Client, Server, ServerConfig};
//! use pfe_engine::Json;
//!
//! let server = Server::bind(ServerConfig::default()).unwrap();
//! let addr = server.local_addr();
//! let handle = server.handle();
//! let running = std::thread::spawn(move || server.run().unwrap());
//!
//! let mut client = Client::connect(addr).unwrap();
//! let r = client.request_line(r#"{"op":"start","d":8,"q":2,"shards":2}"#).unwrap();
//! assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
//! client.request_line(r#"{"op":"ingest","rows":[[0,1,0,0,1,0,1,1],[1,1,0,0,0,0,1,1]]}"#).unwrap();
//! client.request_line(r#"{"op":"snapshot"}"#).unwrap();
//! let r = client.request_line(r#"{"op":"f0","cols":[0,1,2]}"#).unwrap();
//! assert!(r.get("estimate").and_then(Json::as_f64).unwrap() >= 1.0);
//!
//! handle.shutdown();
//! running.join().unwrap();
//! ```
//!
//! `examples/serve.rs` (workspace root) runs this server from the command
//! line (`--listen`), `benches/server.rs` measures throughput against
//! connection and worker counts, and `docs/GUIDE.md` walks the whole
//! install → ingest → query → serve path.

pub mod client;
pub mod pool;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError};
pub use proto::{Control, Dispatcher};
pub use server::{
    install_signal_handlers, Server, ServerConfig, ServerError, ServerHandle, ShutdownReport,
};
