//! A bounded, hand-rolled worker pool (no external deps): `N` threads
//! drain a `sync_channel` of work items, and submission *never blocks* —
//! when every worker is busy and the queue is full, the item comes
//! straight back to the caller so it can answer with a typed rejection
//! instead of queueing unboundedly.

use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Fixed-size thread pool over a bounded queue of `T` work items.
///
/// The handler runs on a worker thread once per submitted item. Dropping
/// (or [`join`](Self::join)ing) the pool closes the queue; workers finish
/// the items already accepted, then exit.
pub struct WorkerPool<T: Send + 'static> {
    tx: Option<SyncSender<T>>,
    workers: Vec<JoinHandle<()>>,
}

impl<T: Send + 'static> WorkerPool<T> {
    /// Spawn `workers` threads servicing a queue of capacity `queue`
    /// (capacity 0 is a rendezvous: an item is accepted only when a
    /// worker is ready to take it immediately).
    ///
    /// # Panics
    /// Panics if `workers == 0`.
    pub fn new(workers: usize, queue: usize, handler: impl Fn(T) + Send + Sync + 'static) -> Self {
        assert!(workers > 0, "worker pool needs at least one worker");
        let (tx, rx) = mpsc::sync_channel::<T>(queue);
        let rx: Arc<Mutex<Receiver<T>>> = Arc::new(Mutex::new(rx));
        let handler: Arc<dyn Fn(T) + Send + Sync> = Arc::new(handler);
        let workers = (0..workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                std::thread::spawn(move || loop {
                    // Hold the receiver lock only while waiting, never
                    // while handling: one slow item must not starve the
                    // other workers.
                    let item = rx.lock().expect("pool receiver lock").recv();
                    match item {
                        Ok(item) => handler(item),
                        Err(_) => break, // queue closed: drain complete
                    }
                })
            })
            .collect();
        Self {
            tx: Some(tx),
            workers,
        }
    }

    /// Hand an item to the pool without blocking.
    ///
    /// # Errors
    /// Returns the item back when the pool is saturated (all workers
    /// busy, queue full) or already closed, so the caller can reject it
    /// with a typed error.
    pub fn try_submit(&self, item: T) -> Result<(), T> {
        match self.tx.as_ref() {
            None => Err(item),
            Some(tx) => match tx.try_send(item) {
                Ok(()) => Ok(()),
                Err(TrySendError::Full(item)) | Err(TrySendError::Disconnected(item)) => Err(item),
            },
        }
    }

    /// Close the queue and wait for the workers to finish everything
    /// already accepted.
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        self.tx.take(); // close the queue: recv() starts erroring when drained
        for handle in self.workers.drain(..) {
            handle.join().expect("pool worker panicked");
        }
    }
}

impl<T: Send + 'static> Drop for WorkerPool<T> {
    fn drop(&mut self) {
        self.join_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::channel;

    #[test]
    fn handles_every_accepted_item() {
        let done = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&done);
        let pool = WorkerPool::new(3, 16, move |x: usize| {
            seen.fetch_add(x, Ordering::SeqCst);
        });
        for i in 0..100 {
            // Capacity 16 with 3 workers may saturate; retry until taken
            // — this test is about completion, not rejection.
            let mut item = i;
            while let Err(back) = pool.try_submit(item) {
                item = back;
                std::thread::yield_now();
            }
        }
        pool.join();
        assert_eq!(done.load(Ordering::SeqCst), (0..100).sum::<usize>());
    }

    #[test]
    fn saturation_returns_the_item() {
        // One worker, rendezvous queue: park the worker, then the next
        // submit must bounce.
        let (block_tx, block_rx) = channel::<()>();
        let block_rx = Arc::new(Mutex::new(block_rx));
        let (started_tx, started_rx) = channel::<()>();
        let started_tx = Arc::new(Mutex::new(started_tx));
        let pool = WorkerPool::new(1, 0, move |x: u32| {
            if x == 1 {
                started_tx.lock().expect("tx").send(()).ok();
                block_rx.lock().expect("rx").recv().ok();
            }
        });
        // Accepted once the worker is at the rendezvous.
        let mut item = 1;
        while let Err(back) = pool.try_submit(item) {
            item = back;
            std::thread::yield_now();
        }
        started_rx.recv().expect("worker started");
        // The worker is parked and there is no queue: saturated.
        assert_eq!(pool.try_submit(2), Err(2));
        block_tx.send(()).expect("unblock");
        pool.join();
    }
}
