//! The TCP server: many simultaneous line-protocol sessions over one
//! shared [`Dispatcher`], a bounded worker pool with typed saturation
//! rejection, and graceful shutdown (signal, handle, or the `shutdown`
//! op) that checkpoints via `pfe-persist` before exiting.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pfe_engine::Json;
use pfe_obs::Span;

use crate::pool::WorkerPool;
use crate::proto::{err_saturated, Control, Dispatcher};

/// How a TCP server is shaped.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads — the maximum number of connections served
    /// concurrently.
    pub workers: usize,
    /// Accepted connections allowed to wait for a worker; beyond this the
    /// server answers with the typed saturation rejection and closes.
    pub queue: usize,
    /// Where graceful shutdown checkpoints the backend (`None` disables
    /// shutdown checkpointing). Also the default path of the `checkpoint`
    /// op.
    pub checkpoint_path: Option<PathBuf>,
    /// Poll granularity for shutdown: how long a session blocks in a read
    /// before re-checking the stop flag, and how long the accept loop
    /// sleeps when idle.
    pub poll_interval: Duration,
    /// Optional address for the Prometheus scrape endpoint: any HTTP GET
    /// against it answers the full registry in text exposition format
    /// (`None` disables the endpoint). Port 0 picks an ephemeral port
    /// (see [`Server::metrics_addr`]).
    pub metrics_addr: Option<String>,
    /// Slow-query log threshold in milliseconds: requests taking at least
    /// this long land in the ring served by the `slow_log` op (`None`
    /// leaves the log disabled until a `slow_log`/`start` request sets a
    /// threshold).
    pub slow_ms: Option<u64>,
    /// Request-trace head-sampling: keep 1-in-`N` server-initiated traces
    /// (`0` disables tracing entirely; client-supplied trace contexts and
    /// slow-log-qualifying requests are always kept). `None` leaves the
    /// store's default of 1 — trace everything.
    pub trace_sample: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue: 16,
            checkpoint_path: None,
            poll_interval: Duration::from_millis(50),
            metrics_addr: None,
            slow_ms: None,
            trace_sample: None,
        }
    }
}

/// What a completed [`Server::run`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Where the shutdown checkpoint was written (`None`: no path
    /// configured, no backend started, or a `shutdown` op already wrote
    /// it — the op reports its own path on the wire).
    pub checkpointed: Option<PathBuf>,
    /// Connections accepted over the server's lifetime.
    pub connections_accepted: u64,
    /// Connections bounced with the saturation rejection.
    pub rejected_saturated: u64,
    /// Requests handled to completion.
    pub requests_handled: u64,
}

/// Errors from binding or running a [`Server`].
#[derive(Debug)]
pub enum ServerError {
    /// Socket-level failure (bind, accept, configure).
    Io(std::io::Error),
    /// The configuration is invalid.
    BadConfig(String),
    /// The shutdown checkpoint failed; the message carries the
    /// persistence error.
    Checkpoint(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "server io error: {e}"),
            Self::BadConfig(m) => write!(f, "bad server config: {m}"),
            Self::Checkpoint(m) => write!(f, "shutdown checkpoint failed: {m}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// A handle for stopping a running server from another thread (tests,
/// operator tooling). Cheap to clone.
#[derive(Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Ask the server to stop: the accept loop exits, sessions drain
    /// (each finishes its in-flight request), and the shutdown checkpoint
    /// is written before [`Server::run`] returns.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

// Process-wide SIGINT/SIGTERM flag. The handler may only touch
// async-signal-safe state, so it sets one static flag that every running
// accept loop polls alongside its own stop flag.
static SIGNAL_STOP: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_signal(_sig: i32) {
    SIGNAL_STOP.store(true, Ordering::SeqCst);
}

/// Install SIGINT/SIGTERM handlers that gracefully stop every running
/// [`Server`] in this process (ctrl-c → checkpoint → drain → exit).
///
/// Deliberately *not* called by [`Server::bind`]: embedding applications
/// and tests keep their own signal semantics unless they opt in. The
/// `serve --listen` CLI opts in.
#[cfg(unix)]
pub fn install_signal_handlers() {
    // `signal(2)` via the libc std already links; glibc gives BSD
    // semantics (the handler stays installed). SIGINT = 2, SIGTERM = 15.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler = on_signal as *const () as usize;
    unsafe {
        signal(2, handler);
        signal(15, handler);
    }
}

/// Install SIGINT/SIGTERM handlers (no-op off Unix).
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

/// A bound, not-yet-running TCP server: a listener, a shared
/// [`Dispatcher`], and a bounded session pool. [`run`](Self::run)
/// blocks; grab a [`handle`](Self::handle) first to stop it.
pub struct Server {
    listener: TcpListener,
    metrics_listener: Option<TcpListener>,
    dispatcher: Arc<Dispatcher>,
    cfg: ServerConfig,
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl Server {
    /// Bind the listen socket (and the metrics endpoint, when configured)
    /// and build the shared dispatcher.
    ///
    /// # Errors
    /// `BadConfig` for a zero-worker pool, `Io` for socket failures.
    pub fn bind(cfg: ServerConfig) -> Result<Self, ServerError> {
        if cfg.workers == 0 {
            return Err(ServerError::BadConfig("workers must be >= 1".into()));
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let metrics_listener = match &cfg.metrics_addr {
            Some(maddr) => {
                let l = TcpListener::bind(maddr)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let dispatcher = Arc::new(Dispatcher::new(cfg.checkpoint_path.clone()));
        dispatcher.set_pool_shape(cfg.workers, cfg.queue);
        if let Some(ms) = cfg.slow_ms {
            dispatcher.recorder().slow_log().set_threshold_ms(ms);
        }
        if let Some(n) = cfg.trace_sample {
            dispatcher.recorder().trace_store().set_sample(n);
        }
        Ok(Self {
            listener,
            metrics_listener,
            dispatcher,
            cfg,
            stop: Arc::new(AtomicBool::new(false)),
            addr,
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port picked).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound Prometheus endpoint address, when one is configured
    /// (resolves port 0 to the ephemeral port picked).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// A clonable handle that can stop this server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            stop: Arc::clone(&self.stop),
            addr: self.addr,
        }
    }

    /// The shared dispatcher (embedding applications can pre-`start` an
    /// engine or read counters without a connection).
    pub fn dispatcher(&self) -> &Arc<Dispatcher> {
        &self.dispatcher
    }

    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || SIGNAL_STOP.load(Ordering::SeqCst)
    }

    /// Serve until stopped (handle, `shutdown` op, or signal): accept
    /// connections, hand each to the bounded session pool (or reject with
    /// the typed saturation error), then drain sessions and write the
    /// shutdown checkpoint.
    ///
    /// # Errors
    /// `Io` on accept-loop failures, `Checkpoint` if the final checkpoint
    /// cannot be written (the server still drained).
    pub fn run(mut self) -> Result<ShutdownReport, ServerError> {
        let pool: WorkerPool<TcpStream> = {
            let dispatcher = Arc::clone(&self.dispatcher);
            let stop = Arc::clone(&self.stop);
            let poll = self.cfg.poll_interval;
            // Monotone per-connection session ids, so trace `session`
            // root spans name the connection they were served on.
            let next_session = Arc::new(std::sync::atomic::AtomicU64::new(1));
            WorkerPool::new(self.cfg.workers, self.cfg.queue, move |stream| {
                let session = next_session.fetch_add(1, Ordering::Relaxed);
                serve_session(stream, &dispatcher, &stop, poll, session);
            })
        };
        let metrics_thread = self.metrics_listener.take().map(|listener| {
            let dispatcher = Arc::clone(&self.dispatcher);
            let stop = Arc::clone(&self.stop);
            std::thread::spawn(move || serve_metrics(&listener, &dispatcher, &stop))
        });
        let mut accept_error: Option<std::io::Error> = None;
        while !self.stopping() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let counters = self.dispatcher.counters();
                    counters.connections_accepted.inc();
                    counters.connections_open.add(1);
                    if let Err(stream) = pool.try_submit(stream) {
                        counters.rejected_saturated.inc();
                        counters.connections_open.sub(1);
                        reject_saturated(stream, self.cfg.workers, self.cfg.queue);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // A short fixed sleep, not `poll_interval`: this is
                    // the accept latency a fresh connection pays, so it
                    // stays small while the stop flag is still checked
                    // often enough.
                    std::thread::sleep(Duration::from_millis(1).min(self.cfg.poll_interval));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                // A fatal accept error (e.g. EMFILE) must still fall
                // through to the drain: returning here would drop the
                // pool, whose join waits on sessions that never saw the
                // stop flag — a wedged server instead of an error.
                Err(e) => {
                    accept_error = Some(e);
                    break;
                }
            }
        }
        // Drain: sessions notice the stop flag at their next poll tick,
        // finish the request in flight, and close. Only then is the
        // shutdown checkpoint written, so every request acknowledged on
        // any session is included in the durable state.
        self.stop.store(true, Ordering::SeqCst);
        let drain_start = Instant::now();
        pool.join();
        self.dispatcher
            .recorder()
            .histogram("server_drain_ns")
            .record_duration(drain_start.elapsed());
        if let Some(t) = metrics_thread {
            let _ = t.join();
        }
        if let Some(e) = accept_error {
            // Best-effort durability even on the failure path.
            let _ = self.dispatcher.shutdown_checkpoint();
            return Err(ServerError::Io(e));
        }
        let checkpointed = self
            .dispatcher
            .shutdown_checkpoint()
            .map_err(ServerError::Checkpoint)?;
        let counters = self.dispatcher.counters();
        Ok(ShutdownReport {
            checkpointed,
            connections_accepted: counters.connections_accepted.get(),
            rejected_saturated: counters.rejected_saturated.get(),
            requests_handled: counters.requests_handled.get(),
        })
    }
}

/// The Prometheus scrape endpoint: a deliberately tiny HTTP/1.1 loop (one
/// route, no keep-alive — `GET`/`HEAD /metrics` gets the full registry
/// and a close, anything else a 404) so scraping needs nothing beyond the
/// standard library. It runs on its own thread and exits with the
/// server's stop flag.
fn serve_metrics(listener: &TcpListener, dispatcher: &Dispatcher, stop: &AtomicBool) {
    while !(stop.load(Ordering::SeqCst) || SIGNAL_STOP.load(Ordering::SeqCst)) {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                // Read the request head (method + path are all that's
                // routed on). Bounded by a read timeout so a stalled
                // scraper cannot wedge the endpoint.
                let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
                let mut head = Vec::new();
                let mut buf = [0u8; 1024];
                loop {
                    match stream.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            head.extend_from_slice(&buf[..n]);
                            if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
                                break;
                            }
                        }
                    }
                }
                let head_text = String::from_utf8_lossy(&head);
                let mut parts = head_text.split_whitespace();
                let method = parts.next().unwrap_or("");
                let path = parts.next().unwrap_or("");
                // HEAD answers the same headers (Content-Length included)
                // with no body, per RFC 9110.
                let is_head = method.eq_ignore_ascii_case("HEAD");
                let served = path.split('?').next().unwrap_or("") == "/metrics"
                    && (is_head || method.eq_ignore_ascii_case("GET"));
                let (status, body) = if served {
                    ("200 OK", dispatcher.render_prometheus())
                } else {
                    ("404 Not Found", "not found: try /metrics\n".to_string())
                };
                let _ = write!(
                    stream,
                    "HTTP/1.1 {}\r\n\
                     Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
                     Content-Length: {}\r\n\
                     Connection: close\r\n\r\n{}",
                    status,
                    body.len(),
                    if is_head { "" } else { body.as_str() }
                );
                let _ = stream.flush();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

fn reject_saturated(mut stream: TcpStream, workers: usize, queue: usize) {
    // Best-effort: the client may already be gone.
    let _ = writeln!(stream, "{}", err_saturated(workers, queue));
    let _ = stream.flush();
    // Let the rejection land before the close: a client that pipelined a
    // request has unread bytes in our receive buffer, and closing over
    // them sends RST — which can discard the rejection line in flight.
    // Half-close our side, then drain (bounded) what the client sent.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut sink = [0u8; 1024];
    for _ in 0..64 {
        match std::io::Read::read(&mut stream, &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// One session: read request lines, dispatch, write response lines, until
/// the peer closes, `quit`/`shutdown` arrives, or the server stops.
fn serve_session(
    stream: TcpStream,
    dispatcher: &Dispatcher,
    stop: &AtomicBool,
    poll: Duration,
    session: u64,
) {
    let _open = decrement_on_drop(dispatcher);
    // Records accept-to-close wall time into the lifetime histogram when
    // the session ends, however it ends.
    let _lifetime = Span::on(
        dispatcher
            .recorder()
            .histogram("server_connection_lifetime_ns"),
    );
    if session_loop(stream, dispatcher, stop, poll, session).is_err() {
        // Peer went away mid-session; nothing to report to it.
    }
}

/// Decrement `connections_open` when the session ends, however it ends.
fn decrement_on_drop(dispatcher: &Dispatcher) -> impl Drop + '_ {
    struct Guard<'a>(&'a Dispatcher);
    impl Drop for Guard<'_> {
        fn drop(&mut self) {
            self.0.counters().connections_open.sub(1);
        }
    }
    Guard(dispatcher)
}

fn session_loop(
    stream: TcpStream,
    dispatcher: &Dispatcher,
    stop: &AtomicBool,
    poll: Duration,
    session: u64,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    // Reads time out at the poll interval so a session blocked on an idle
    // connection still notices shutdown and drains.
    stream.set_read_timeout(Some(poll))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    // The line buffer survives timeouts: a read interrupted mid-line
    // keeps the partial data and the next read appends to it. Raw bytes,
    // not `read_line`: on a timeout `read_line` truncates a partial
    // multi-byte UTF-8 suffix back off the buffer even though the bytes
    // left the socket, desyncing the stream; `read_until` keeps them.
    let mut line: Vec<u8> = Vec::new();
    loop {
        if stop.load(Ordering::SeqCst) || SIGNAL_STOP.load(Ordering::SeqCst) {
            let _ = writeln!(writer, "{}", shutting_down());
            return Ok(());
        }
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => return Ok(()), // peer closed
            Ok(_) => {
                let control = {
                    // Invalid UTF-8 becomes U+FFFD and fails JSON parsing
                    // with an ordinary error response.
                    let text = String::from_utf8_lossy(&line);
                    let trimmed = text.trim();
                    if trimmed.is_empty() {
                        Control::Continue
                    } else {
                        let reply = dispatcher.handle_line_with_session(trimmed, Some(session));
                        writeln!(writer, "{}", reply.json)?;
                        writer.flush()?;
                        reply.control
                    }
                };
                line.clear();
                match control {
                    Control::Continue => {}
                    Control::CloseSession => return Ok(()),
                    Control::ShutdownServer => {
                        stop.store(true, Ordering::SeqCst);
                        return Ok(());
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle poll tick: loop around and re-check the stop flag.
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn shutting_down() -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::Str("server shutting down".to_string())),
        ("code", Json::Str("shutting_down".to_string())),
    ])
}

/// Connect-and-bind helper for tests and doctests: a default-config
/// server on an ephemeral port with the given worker/queue shape.
///
/// # Errors
/// See [`Server::bind`].
pub fn bind_ephemeral(workers: usize, queue: usize) -> Result<Server, ServerError> {
    Server::bind(ServerConfig {
        workers,
        queue,
        ..Default::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_rejects_zero_workers() {
        let cfg = ServerConfig {
            workers: 0,
            ..Default::default()
        };
        assert!(matches!(Server::bind(cfg), Err(ServerError::BadConfig(_))));
    }

    #[test]
    fn handle_stops_an_idle_server() {
        let server = bind_ephemeral(1, 1).expect("bind");
        let handle = server.handle();
        let t = std::thread::spawn(move || server.run().expect("run"));
        handle.shutdown();
        let report = t.join().expect("join");
        assert_eq!(report.connections_accepted, 0);
        assert_eq!(report.checkpointed, None);
        // The drain itself was timed.
        // (The server's recorder is gone with it, so assert via a fresh
        // bind below instead — here we only check the run completed.)
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let server = Server::bind(ServerConfig {
            metrics_addr: Some("127.0.0.1:0".to_string()),
            slow_ms: Some(7),
            workers: 1,
            queue: 1,
            ..Default::default()
        })
        .expect("bind");
        let maddr = server.metrics_addr().expect("metrics bound");
        assert_eq!(server.dispatcher().recorder().slow_log().threshold_ms(), 7);
        server
            .dispatcher()
            .handle_line(r#"{"op":"start","d":8,"q":2,"shards":1}"#);
        let handle = server.handle();
        let t = std::thread::spawn(move || server.run().expect("run"));
        // Plain HTTP GET against the scrape endpoint.
        let mut stream = TcpStream::connect(maddr).expect("connect metrics");
        write!(stream, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").expect("send");
        stream.flush().expect("flush");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("Content-Type: text/plain; version=0.0.4"));
        let body = response.split("\r\n\r\n").nth(1).expect("body");
        assert!(body.contains("# TYPE pfe_server_op_requests_start_total counter"));
        assert!(body.contains("pfe_server_op_requests_start_total 1"));
        handle.shutdown();
        t.join().expect("join");
    }
}
