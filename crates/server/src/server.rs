//! The TCP server: a nonblocking readiness loop (epoll via
//! [`crate::poll`]) holding many simultaneous line-protocol sessions over
//! one shared [`Dispatcher`], with per-session incremental read/write
//! buffers, a resumable line framer, a bounded dispatch worker pool with
//! typed saturation rejection, and graceful shutdown (signal, handle, or
//! the `shutdown` op) that checkpoints via `pfe-persist` before exiting.
//!
//! Sessions are event-driven: an idle connection costs one registered fd
//! and nothing else — no thread, no timer, no speculative read — so one
//! process holds tens of thousands of mostly-idle connections. Request
//! *execution* still runs on the worker pool (one in-flight request per
//! session preserves per-connection reply order), so multi-core boxes
//! dispatch in parallel exactly as before. `workers + queue` bounds the
//! concurrently open sessions; beyond it a fresh connection receives the
//! typed `"code":"saturated"` rejection and a close.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pfe_engine::Json;

use crate::proto::{err_saturated, Dispatcher};
use crate::replica::{ReplicaSpec, ShipSpec};

/// How a TCP server is shaped.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Dispatch worker threads — the maximum number of requests *executing*
    /// concurrently.
    pub workers: usize,
    /// Extra session headroom: `workers + queue` is the maximum number of
    /// concurrently open sessions; beyond it the server answers with the
    /// typed saturation rejection and closes. Size this to the connection
    /// count, not the parallelism — idle sessions are nearly free under
    /// the readiness loop.
    pub queue: usize,
    /// Where graceful shutdown checkpoints the backend (`None` disables
    /// shutdown checkpointing). Also the default path of the `checkpoint`
    /// op.
    pub checkpoint_path: Option<PathBuf>,
    /// Poll granularity for shutdown: the readiness-wait timeout, i.e. how
    /// long the loop sleeps with no socket activity before re-checking the
    /// stop flag.
    pub poll_interval: Duration,
    /// Optional address for the Prometheus scrape endpoint: any HTTP GET
    /// against it answers the full registry in text exposition format
    /// (`None` disables the endpoint). Port 0 picks an ephemeral port
    /// (see [`Server::metrics_addr`]).
    pub metrics_addr: Option<String>,
    /// Slow-query log threshold in milliseconds: requests taking at least
    /// this long land in the ring served by the `slow_log` op (`None`
    /// leaves the log disabled until a `slow_log`/`start` request sets a
    /// threshold).
    pub slow_ms: Option<u64>,
    /// Request-trace head-sampling: keep 1-in-`N` server-initiated traces
    /// (`0` disables tracing entirely; client-supplied trace contexts and
    /// slow-log-qualifying requests are always kept). `None` leaves the
    /// store's default of 1 — trace everything.
    pub trace_sample: Option<u64>,
    /// Per-request line cap in bytes: a longer line gets the typed
    /// `"code":"line_too_long"` error and is discarded to the next
    /// newline (the session survives and resyncs).
    pub max_line_bytes: usize,
    /// Writer role: periodically checkpoint the plain engine into this
    /// snapshot directory for read replicas (atomic rename, monotonic
    /// epoch filenames).
    pub ship: Option<ShipSpec>,
    /// Replica role: watch snapshot directories shipped by writers, load
    /// new epochs, and atomically swap them in while serving. Mutually
    /// exclusive with `ship`; makes the wire surface read-only.
    pub replica: Option<ReplicaSpec>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue: 16,
            checkpoint_path: None,
            poll_interval: Duration::from_millis(50),
            metrics_addr: None,
            slow_ms: None,
            trace_sample: None,
            max_line_bytes: crate::framing::DEFAULT_MAX_LINE,
            ship: None,
            replica: None,
        }
    }
}

/// What a completed [`Server::run`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Where the shutdown checkpoint was written (`None`: no path
    /// configured, no backend started, or a `shutdown` op already wrote
    /// it — the op reports its own path on the wire).
    pub checkpointed: Option<PathBuf>,
    /// Connections accepted over the server's lifetime.
    pub connections_accepted: u64,
    /// Connections bounced with the saturation rejection.
    pub rejected_saturated: u64,
    /// Requests handled to completion.
    pub requests_handled: u64,
}

/// Errors from binding or running a [`Server`].
#[derive(Debug)]
pub enum ServerError {
    /// Socket-level failure (bind, accept, configure).
    Io(std::io::Error),
    /// The configuration is invalid.
    BadConfig(String),
    /// The shutdown checkpoint failed; the message carries the
    /// persistence error.
    Checkpoint(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "server io error: {e}"),
            Self::BadConfig(m) => write!(f, "bad server config: {m}"),
            Self::Checkpoint(m) => write!(f, "shutdown checkpoint failed: {m}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// A handle for stopping a running server from another thread (tests,
/// operator tooling). Cheap to clone.
#[derive(Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Ask the server to stop: the loop stops accepting, sessions drain
    /// (each finishes its in-flight request), and the shutdown checkpoint
    /// is written before [`Server::run`] returns.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

// Process-wide SIGINT/SIGTERM flag. The handler may only touch
// async-signal-safe state, so it sets one static flag that every running
// event loop polls alongside its own stop flag.
static SIGNAL_STOP: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_signal(_sig: i32) {
    SIGNAL_STOP.store(true, Ordering::SeqCst);
}

/// Install SIGINT/SIGTERM handlers that gracefully stop every running
/// [`Server`] in this process (ctrl-c → checkpoint → drain → exit).
///
/// Deliberately *not* called by [`Server::bind`]: embedding applications
/// and tests keep their own signal semantics unless they opt in. The
/// `serve --listen` CLI opts in.
#[cfg(unix)]
pub fn install_signal_handlers() {
    // `signal(2)` via the libc std already links; glibc gives BSD
    // semantics (the handler stays installed). SIGINT = 2, SIGTERM = 15.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler = on_signal as *const () as usize;
    unsafe {
        signal(2, handler);
        signal(15, handler);
    }
}

/// Install SIGINT/SIGTERM handlers (no-op off Unix).
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

/// A bound, not-yet-running TCP server: a listener, a shared
/// [`Dispatcher`], and the readiness-loop session table. [`run`](Self::run)
/// blocks; grab a [`handle`](Self::handle) first to stop it.
pub struct Server {
    listener: TcpListener,
    metrics_listener: Option<TcpListener>,
    dispatcher: Arc<Dispatcher>,
    cfg: ServerConfig,
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl Server {
    /// Bind the listen socket (and the metrics endpoint, when configured)
    /// and build the shared dispatcher.
    ///
    /// # Errors
    /// `BadConfig` for a zero-worker pool, a zero line cap, or a config
    /// that is both writer (`ship`) and replica; `Io` for socket failures.
    pub fn bind(cfg: ServerConfig) -> Result<Self, ServerError> {
        if cfg.workers == 0 {
            return Err(ServerError::BadConfig("workers must be >= 1".into()));
        }
        if cfg.max_line_bytes == 0 {
            return Err(ServerError::BadConfig("max_line_bytes must be >= 1".into()));
        }
        if cfg.ship.is_some() && cfg.replica.is_some() {
            return Err(ServerError::BadConfig(
                "a server is a snapshot writer (ship) or a replica, not both".into(),
            ));
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let metrics_listener = match &cfg.metrics_addr {
            Some(maddr) => {
                let l = TcpListener::bind(maddr)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let dispatcher = Arc::new(Dispatcher::new(cfg.checkpoint_path.clone()));
        dispatcher.set_pool_shape(cfg.workers, cfg.queue);
        if let Some(ms) = cfg.slow_ms {
            dispatcher.recorder().slow_log().set_threshold_ms(ms);
        }
        if let Some(n) = cfg.trace_sample {
            dispatcher.recorder().trace_store().set_sample(n);
        }
        if let Some(replica) = &cfg.replica {
            dispatcher.set_replica_sources(replica.dirs.clone());
        }
        Ok(Self {
            listener,
            metrics_listener,
            dispatcher,
            cfg,
            stop: Arc::new(AtomicBool::new(false)),
            addr,
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port picked).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound Prometheus endpoint address, when one is configured
    /// (resolves port 0 to the ephemeral port picked).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// A clonable handle that can stop this server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            stop: Arc::clone(&self.stop),
            addr: self.addr,
        }
    }

    /// The shared dispatcher (embedding applications can pre-`start` an
    /// engine or read counters without a connection).
    pub fn dispatcher(&self) -> &Arc<Dispatcher> {
        &self.dispatcher
    }

    /// Serve until stopped (handle, `shutdown` op, or signal): run the
    /// readiness loop, accepting connections into the session table (or
    /// rejecting with the typed saturation error), then drain sessions
    /// and write the shutdown checkpoint.
    ///
    /// # Errors
    /// `Io` on loop failures, `Checkpoint` if the final checkpoint cannot
    /// be written (the server still drained).
    #[cfg(unix)]
    pub fn run(mut self) -> Result<ShutdownReport, ServerError> {
        let metrics_thread = self.metrics_listener.take().map(|listener| {
            let dispatcher = Arc::clone(&self.dispatcher);
            let stop = Arc::clone(&self.stop);
            std::thread::spawn(move || serve_metrics(&listener, &dispatcher, &stop))
        });
        let shipper = self.cfg.ship.clone().map(|spec| {
            crate::replica::spawn_shipper(
                Arc::clone(&self.dispatcher),
                spec,
                Arc::clone(&self.stop),
            )
        });
        let watcher = self.cfg.replica.clone().map(|spec| {
            crate::replica::spawn_watcher(
                Arc::clone(&self.dispatcher),
                spec,
                Arc::clone(&self.stop),
            )
        });
        let mut event_loop = event_loop::EventLoop::new(
            self.listener,
            Arc::clone(&self.dispatcher),
            Arc::clone(&self.stop),
            &self.cfg,
        )?;
        let loop_result = event_loop.run();
        // However the loop ended, everything downstream must still run:
        // stop the helper threads, ship a final snapshot, checkpoint.
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = metrics_thread {
            let _ = t.join();
        }
        if let Some(t) = watcher {
            let _ = t.join();
        }
        if let Some(t) = shipper {
            let _ = t.join();
            // One last ship so replicas converge on the writer's final
            // state (best-effort — the durable truth is the checkpoint).
            if let Some(spec) = &self.cfg.ship {
                let _ = crate::replica::ship_once(&self.dispatcher, &spec.dir, &mut None);
            }
        }
        if let Err(e) = loop_result {
            // Best-effort durability even on the failure path.
            let _ = self.dispatcher.shutdown_checkpoint();
            return Err(ServerError::Io(e));
        }
        let checkpointed = self
            .dispatcher
            .shutdown_checkpoint()
            .map_err(ServerError::Checkpoint)?;
        let counters = self.dispatcher.counters();
        Ok(ShutdownReport {
            checkpointed,
            connections_accepted: counters.connections_accepted.get(),
            rejected_saturated: counters.rejected_saturated.get(),
            requests_handled: counters.requests_handled.get(),
        })
    }

    /// Serve until stopped. The readiness loop needs a Unix platform
    /// (epoll/poll); off Unix this reports `BadConfig` immediately.
    ///
    /// # Errors
    /// Always `BadConfig` on this platform.
    #[cfg(not(unix))]
    pub fn run(self) -> Result<ShutdownReport, ServerError> {
        Err(ServerError::BadConfig(
            "the readiness-loop server requires a unix platform (epoll/poll)".into(),
        ))
    }
}

/// The Prometheus scrape endpoint: a deliberately tiny HTTP/1.1 loop (one
/// route, no keep-alive — `GET`/`HEAD /metrics` gets the full registry
/// and a close, anything else a 404) so scraping needs nothing beyond the
/// standard library. It runs on its own thread and exits with the
/// server's stop flag.
fn serve_metrics(listener: &TcpListener, dispatcher: &Dispatcher, stop: &AtomicBool) {
    while !(stop.load(Ordering::SeqCst) || SIGNAL_STOP.load(Ordering::SeqCst)) {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                // Read the request head (method + path are all that's
                // routed on). Bounded by a read timeout so a stalled
                // scraper cannot wedge the endpoint.
                let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
                let mut head = Vec::new();
                let mut buf = [0u8; 1024];
                loop {
                    match stream.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            head.extend_from_slice(&buf[..n]);
                            if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
                                break;
                            }
                        }
                    }
                }
                let head_text = String::from_utf8_lossy(&head);
                let mut parts = head_text.split_whitespace();
                let method = parts.next().unwrap_or("");
                let path = parts.next().unwrap_or("");
                // HEAD answers the same headers (Content-Length included)
                // with no body, per RFC 9110.
                let is_head = method.eq_ignore_ascii_case("HEAD");
                let served = path.split('?').next().unwrap_or("") == "/metrics"
                    && (is_head || method.eq_ignore_ascii_case("GET"));
                let (status, body) = if served {
                    ("200 OK", dispatcher.render_prometheus())
                } else {
                    ("404 Not Found", "not found: try /metrics\n".to_string())
                };
                let _ = write!(
                    stream,
                    "HTTP/1.1 {}\r\n\
                     Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
                     Content-Length: {}\r\n\
                     Connection: close\r\n\r\n{}",
                    status,
                    body.len(),
                    if is_head { "" } else { body.as_str() }
                );
                let _ = stream.flush();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

fn reject_saturated(mut stream: TcpStream, workers: usize, queue: usize) {
    // Best-effort: the client may already be gone. The accepted socket is
    // blocking (accept does not inherit the listener's nonblocking flag
    // on Linux), so plain writes work here.
    let _ = stream.set_nonblocking(false);
    let _ = writeln!(stream, "{}", err_saturated(workers, queue));
    let _ = stream.flush();
    // Let the rejection land before the close: a client that pipelined a
    // request has unread bytes in our receive buffer, and closing over
    // them sends RST — which can discard the rejection line in flight.
    // Half-close our side, then drain (bounded) what the client sent.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut sink = [0u8; 1024];
    for _ in 0..64 {
        match std::io::Read::read(&mut stream, &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

fn shutting_down() -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::Str("server shutting down".to_string())),
        ("code", Json::Str("shutting_down".to_string())),
    ])
}

#[cfg(unix)]
mod event_loop {
    use super::{reject_saturated, shutting_down, ServerConfig, SIGNAL_STOP};
    use std::collections::{HashMap, VecDeque};
    use std::io::{self, Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};

    use pfe_obs::{Counter, Histogram};

    use crate::framing::{FrameEvent, LineFramer};
    use crate::poll::{Interest, Poller};
    use crate::pool::WorkerPool;
    use crate::proto::{err_line_too_long, Control, Dispatcher, Reply};

    const TOKEN_LISTENER: u64 = 0;
    const TOKEN_WAKE: u64 = 1;
    const TOKEN_BASE: u64 = 2;

    /// Parsed requests queued per session before read interest is
    /// dropped (backpressure against a pipelining flood).
    const PENDING_CAP: usize = 128;
    /// Unflushed reply bytes per session before read interest is dropped
    /// (backpressure against a client that writes but never reads).
    const OUT_CAP: usize = 256 * 1024;
    /// How long flush-only sessions get at drain before being cut off.
    const DRAIN_FLUSH_DEADLINE: Duration = Duration::from_secs(5);

    /// One request handed to the dispatch pool.
    struct Job {
        token: u64,
        trace_id: u64,
        line: String,
    }

    enum Pending {
        Line(String),
        Oversized { limit: usize },
    }

    struct Session {
        stream: TcpStream,
        fd: i32,
        /// Monotone per-connection id carried by trace `session` spans.
        trace_id: u64,
        framer: LineFramer,
        pending: VecDeque<Pending>,
        out: Vec<u8>,
        out_pos: usize,
        in_flight: bool,
        read_closed: bool,
        /// Close once `out` flushes; no further reads or dispatches.
        closing: bool,
        /// Waiting in `submit_waiters` for a free pool slot.
        queued: bool,
        interest: Interest,
        opened: Instant,
    }

    impl Session {
        fn out_len(&self) -> usize {
            self.out.len() - self.out_pos
        }

        fn desired_interest(&self) -> Interest {
            let read = !self.read_closed
                && !self.closing
                && self.pending.len() < PENDING_CAP
                && self.out_len() < OUT_CAP;
            Interest {
                read,
                write: self.out_len() > 0,
            }
        }

        fn push_reply(&mut self, json: &pfe_engine::Json) {
            self.out.extend_from_slice(json.to_string().as_bytes());
            self.out.push(b'\n');
        }
    }

    pub(super) struct EventLoop {
        poller: Poller,
        listener: TcpListener,
        dispatcher: Arc<Dispatcher>,
        stop: Arc<AtomicBool>,
        poll_interval: Duration,
        max_line: usize,
        workers: usize,
        queue: usize,
        capacity: usize,
        sessions: HashMap<u64, Session>,
        next_token: u64,
        next_trace: u64,
        pool: Option<WorkerPool<Job>>,
        completions: Arc<Mutex<Vec<(u64, Reply)>>>,
        wake_rx: TcpStream,
        submit_waiters: VecDeque<u64>,
        draining: bool,
        drain_started: Option<Instant>,
        listener_registered: bool,
        wakeups: Arc<Counter>,
        ticks: Arc<Counter>,
        oversized: Arc<Counter>,
        accept_soft_errors: Arc<Counter>,
        lifetime_hist: Arc<Histogram>,
        drain_hist: Arc<Histogram>,
    }

    /// The wake channel: a loopback TCP pair (pure std, no `pipe(2)`
    /// declaration needed). Workers write one byte to `tx` after pushing
    /// a completion; the loop drains `rx`.
    fn wake_pair() -> io::Result<(TcpStream, TcpStream)> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let tx = TcpStream::connect(listener.local_addr()?)?;
        let (rx, _) = listener.accept()?;
        tx.set_nonblocking(true)?;
        tx.set_nodelay(true)?;
        rx.set_nonblocking(true)?;
        Ok((tx, rx))
    }

    impl EventLoop {
        pub(super) fn new(
            listener: TcpListener,
            dispatcher: Arc<Dispatcher>,
            stop: Arc<AtomicBool>,
            cfg: &ServerConfig,
        ) -> io::Result<Self> {
            let capacity = cfg.workers + cfg.queue;
            let mut poller = Poller::new(capacity + 2)?;
            poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
            let (wake_tx, wake_rx) = wake_pair()?;
            poller.register(wake_rx.as_raw_fd(), TOKEN_WAKE, Interest::READ)?;
            let completions: Arc<Mutex<Vec<(u64, Reply)>>> = Arc::new(Mutex::new(Vec::new()));
            let pool = {
                let dispatcher = Arc::clone(&dispatcher);
                let completions = Arc::clone(&completions);
                let wake_tx = Arc::new(wake_tx);
                WorkerPool::new(cfg.workers, cfg.queue, move |job: Job| {
                    let reply = dispatcher.handle_line_with_session(&job.line, Some(job.trace_id));
                    completions
                        .lock()
                        .expect("completions lock")
                        .push((job.token, reply));
                    // A failed wake write means the pipe already holds an
                    // unread wakeup — the loop will drain us regardless.
                    let _ = (&*wake_tx).write(&[1u8]);
                })
            };
            let recorder = dispatcher.recorder();
            let wakeups = recorder.counter("server_loop_wakeups");
            let ticks = recorder.counter("server_loop_ticks");
            let oversized = recorder.counter("server_lines_oversized");
            let accept_soft_errors = recorder.counter("server_accept_soft_errors");
            let lifetime_hist = recorder.histogram("server_connection_lifetime_ns");
            let drain_hist = recorder.histogram("server_drain_ns");
            Ok(Self {
                poller,
                listener,
                dispatcher,
                stop,
                poll_interval: cfg.poll_interval,
                max_line: cfg.max_line_bytes,
                workers: cfg.workers,
                queue: cfg.queue,
                capacity,
                sessions: HashMap::new(),
                next_token: TOKEN_BASE,
                next_trace: 1,
                pool: Some(pool),
                completions,
                wake_rx,
                submit_waiters: VecDeque::new(),
                draining: false,
                drain_started: None,
                listener_registered: true,
                wakeups,
                ticks,
                oversized,
                accept_soft_errors,
                lifetime_hist,
                drain_hist,
            })
        }

        fn stopping(&self) -> bool {
            self.stop.load(Ordering::SeqCst) || SIGNAL_STOP.load(Ordering::SeqCst)
        }

        /// Run until drained. On return every session is closed and the
        /// dispatch pool is joined (all acknowledged requests executed),
        /// so the caller can checkpoint.
        pub(super) fn run(&mut self) -> io::Result<()> {
            let mut fatal: Option<io::Error> = None;
            let mut events = Vec::with_capacity(256);
            loop {
                events.clear();
                // A broken poller is unrecoverable; `?` propagates and the
                // pool is still joined by the caller.
                self.poller.wait(&mut events, Some(self.poll_interval))?;
                if events.is_empty() {
                    // Pure timer tick: the honest idle count — an idle
                    // fleet of connections must not inflate `wakeups`.
                    self.ticks.inc();
                } else {
                    self.wakeups.inc();
                }
                if self.stopping() && !self.draining {
                    self.enter_drain();
                }
                let mut accept_ready = false;
                for ev in &events {
                    match ev.token {
                        TOKEN_LISTENER => accept_ready = true,
                        TOKEN_WAKE => self.drain_wake(),
                        token => {
                            if ev.readable {
                                self.do_read(token);
                            }
                            if ev.writable {
                                self.do_write(token);
                            }
                            if ev.hangup && self.sessions.contains_key(&token) {
                                // Error/hangup with nothing readable left:
                                // the peer is gone; reclaim the session.
                                let still_readable =
                                    self.sessions.get(&token).map(|s| s.read_closed);
                                if still_readable == Some(true) {
                                    self.close_session(token);
                                }
                            }
                            self.update_interest(token);
                        }
                    }
                }
                self.drain_completions();
                if accept_ready && !self.draining {
                    if let Err(e) = self.accept_ready() {
                        fatal = Some(e);
                        self.enter_drain();
                    }
                }
                self.pump_submissions();
                if self.draining {
                    self.enforce_drain_deadline();
                    let in_flight_left = self.sessions.values().any(|s| s.in_flight);
                    if self.sessions.is_empty() && !in_flight_left {
                        break;
                    }
                }
            }
            // Join the pool: workers finish every job already accepted, so
            // the checkpoint that follows includes all acknowledged work.
            if let Some(pool) = self.pool.take() {
                pool.join();
            }
            if let Some(t0) = self.drain_started {
                self.drain_hist.record_duration(t0.elapsed());
            }
            match fatal {
                Some(e) => Err(e),
                None => Ok(()),
            }
        }

        /// Accept everything pending. A resource-exhaustion error
        /// (EMFILE/ENFILE) sheds the connection and keeps serving; any
        /// other accept error is fatal and starts the drain.
        fn accept_ready(&mut self) -> io::Result<()> {
            loop {
                match self.listener.accept() {
                    Ok((stream, _peer)) => self.admit(stream),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) if matches!(e.raw_os_error(), Some(23) | Some(24)) => {
                        // ENFILE/EMFILE: out of descriptors. Back off so
                        // the still-readable listener doesn't spin the
                        // loop, and let closes free capacity.
                        self.accept_soft_errors.inc();
                        std::thread::sleep(Duration::from_millis(10));
                        return Ok(());
                    }
                    Err(e) => return Err(e),
                }
            }
        }

        fn admit(&mut self, stream: TcpStream) {
            let counters = self.dispatcher.counters();
            counters.connections_accepted.inc();
            counters.connections_open.add(1);
            if self.sessions.len() >= self.capacity {
                counters.rejected_saturated.inc();
                counters.connections_open.sub(1);
                reject_saturated(stream, self.workers, self.queue);
                return;
            }
            if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                counters.connections_open.sub(1);
                return;
            }
            let token = self.next_token;
            self.next_token += 1;
            let trace_id = self.next_trace;
            self.next_trace += 1;
            let fd = stream.as_raw_fd();
            if self.poller.register(fd, token, Interest::READ).is_err() {
                counters.connections_open.sub(1);
                return;
            }
            self.sessions.insert(
                token,
                Session {
                    stream,
                    fd,
                    trace_id,
                    framer: LineFramer::new(self.max_line),
                    pending: VecDeque::new(),
                    out: Vec::new(),
                    out_pos: 0,
                    in_flight: false,
                    read_closed: false,
                    closing: false,
                    queued: false,
                    interest: Interest::READ,
                    opened: Instant::now(),
                },
            );
        }

        fn drain_wake(&mut self) {
            let mut sink = [0u8; 256];
            loop {
                match (&self.wake_rx).read(&mut sink) {
                    Ok(0) => return, // wake writer gone (loop is exiting)
                    Ok(_) => {}
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return, // WouldBlock: drained
                }
            }
        }

        /// Read everything the kernel has for this session, frame it, and
        /// queue/submit the resulting requests.
        fn do_read(&mut self, token: u64) {
            let mut buf = [0u8; 16384];
            let mut dead = false;
            loop {
                let Some(sess) = self.sessions.get_mut(&token) else {
                    return;
                };
                if sess.closing || sess.read_closed {
                    break;
                }
                if sess.pending.len() >= PENDING_CAP || sess.out_len() >= OUT_CAP {
                    break; // backpressured: interest update mutes reads
                }
                match sess.stream.read(&mut buf) {
                    Ok(0) => {
                        // Half-open peer: it can still receive. Serve
                        // what was already framed, then close.
                        sess.read_closed = true;
                        break;
                    }
                    Ok(n) => {
                        sess.framer.push(&buf[..n]);
                        while let Some(ev) = sess.framer.pop_event() {
                            match ev {
                                FrameEvent::Line(bytes) => {
                                    // Invalid UTF-8 becomes U+FFFD and
                                    // fails JSON parsing with an ordinary
                                    // error response; blank lines are
                                    // ignored — both exactly as the old
                                    // blocking server behaved.
                                    let text = String::from_utf8_lossy(&bytes);
                                    let trimmed = text.trim();
                                    if !trimmed.is_empty() {
                                        sess.pending.push_back(Pending::Line(trimmed.to_string()));
                                    }
                                }
                                FrameEvent::Oversized { limit } => {
                                    sess.pending.push_back(Pending::Oversized { limit });
                                }
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if dead {
                self.close_session(token);
                return;
            }
            self.process_session(token);
        }

        /// Drive the per-session request pipeline: submit the next pending
        /// line when no request is in flight, answer oversized markers
        /// inline, and begin closing a drained half-open session.
        fn process_session(&mut self, token: u64) {
            loop {
                let Some(sess) = self.sessions.get_mut(&token) else {
                    return;
                };
                if sess.in_flight || sess.closing {
                    break;
                }
                match sess.pending.pop_front() {
                    None => {
                        if sess.read_closed {
                            // Everything the peer sent is answered (or
                            // nothing was): flush and close.
                            sess.closing = true;
                        }
                        break;
                    }
                    Some(Pending::Oversized { limit }) => {
                        sess.push_reply(&err_line_too_long(limit));
                        self.oversized.inc();
                    }
                    Some(Pending::Line(line)) => {
                        let job = Job {
                            token,
                            trace_id: sess.trace_id,
                            line,
                        };
                        let pool = self.pool.as_ref().expect("pool lives until drain");
                        match pool.try_submit(job) {
                            Ok(()) => {
                                sess.in_flight = true;
                            }
                            Err(job) => {
                                // Pool momentarily full: requeue the line
                                // and retry when a completion frees a slot.
                                sess.pending.push_front(Pending::Line(job.line));
                                if !sess.queued {
                                    sess.queued = true;
                                    self.submit_waiters.push_back(token);
                                }
                            }
                        }
                        break;
                    }
                }
            }
            self.try_flush(token);
            self.update_interest(token);
        }

        /// Retry sessions whose submissions bounced off a full pool.
        fn pump_submissions(&mut self) {
            for _ in 0..self.submit_waiters.len() {
                let Some(token) = self.submit_waiters.pop_front() else {
                    break;
                };
                if let Some(sess) = self.sessions.get_mut(&token) {
                    sess.queued = false;
                    self.process_session(token);
                }
            }
        }

        fn drain_completions(&mut self) {
            let done = std::mem::take(&mut *self.completions.lock().expect("completions lock"));
            for (token, reply) in done {
                let Some(sess) = self.sessions.get_mut(&token) else {
                    // The client vanished mid-request; the work still
                    // counted (and lands in the next checkpoint), there
                    // is just no one to answer.
                    continue;
                };
                sess.in_flight = false;
                sess.push_reply(&reply.json);
                match reply.control {
                    Control::Continue => {}
                    Control::CloseSession => {
                        sess.pending.clear();
                        sess.closing = true;
                    }
                    Control::ShutdownServer => {
                        sess.pending.clear();
                        sess.closing = true;
                        self.stop.store(true, Ordering::SeqCst);
                    }
                }
                if self.draining {
                    // Sessions learn about the drain as their in-flight
                    // request completes.
                    let Some(sess) = self.sessions.get_mut(&token) else {
                        continue;
                    };
                    if !sess.closing {
                        sess.push_reply(&shutting_down());
                        sess.pending.clear();
                        sess.closing = true;
                    }
                }
                self.process_session(token);
            }
            if self.stopping() && !self.draining {
                self.enter_drain();
            }
            self.pump_submissions();
        }

        /// Write as much buffered output as the socket takes; finish the
        /// close when a closing session fully flushes.
        fn do_write(&mut self, token: u64) {
            let mut dead = false;
            loop {
                let Some(sess) = self.sessions.get_mut(&token) else {
                    return;
                };
                if sess.out_len() == 0 {
                    sess.out.clear();
                    sess.out_pos = 0;
                    break;
                }
                match sess.stream.write(&sess.out[sess.out_pos..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        sess.out_pos += n;
                        if sess.out_pos == sess.out.len() {
                            sess.out.clear();
                            sess.out_pos = 0;
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if dead {
                self.close_session(token);
                return;
            }
            let finished = self
                .sessions
                .get(&token)
                .map(|s| s.closing && s.out_len() == 0 && !s.in_flight)
                .unwrap_or(false);
            if finished {
                self.close_session(token);
            }
        }

        fn try_flush(&mut self, token: u64) {
            let has_out = self
                .sessions
                .get(&token)
                .map(|s| s.out_len() > 0 || s.closing)
                .unwrap_or(false);
            if has_out {
                self.do_write(token);
            }
        }

        fn update_interest(&mut self, token: u64) {
            let Some(sess) = self.sessions.get(&token) else {
                return;
            };
            let desired = sess.desired_interest();
            if desired != sess.interest {
                let fd = sess.fd;
                if self.poller.modify(fd, token, desired).is_ok() {
                    if let Some(sess) = self.sessions.get_mut(&token) {
                        sess.interest = desired;
                    }
                } else {
                    self.close_session(token);
                }
            }
        }

        fn close_session(&mut self, token: u64) {
            if let Some(sess) = self.sessions.remove(&token) {
                let _ = self.poller.deregister(sess.fd);
                self.dispatcher.counters().connections_open.sub(1);
                self.lifetime_hist.record_duration(sess.opened.elapsed());
                // `sess.stream` drops here and closes the fd.
            }
        }

        /// Stop accepting and tell every session the server is going
        /// down. In-flight requests finish (their completions append the
        /// reply before the shutting-down notice); everything else queued
        /// is discarded — exactly the old thread-per-connection contract.
        fn enter_drain(&mut self) {
            self.draining = true;
            self.drain_started = Some(Instant::now());
            if self.listener_registered {
                let _ = self.poller.deregister(self.listener.as_raw_fd());
                self.listener_registered = false;
            }
            let tokens: Vec<u64> = self.sessions.keys().copied().collect();
            for token in tokens {
                if let Some(sess) = self.sessions.get_mut(&token) {
                    sess.pending.clear();
                    if !sess.in_flight && !sess.closing {
                        sess.push_reply(&shutting_down());
                        sess.closing = true;
                    }
                }
                self.try_flush(token);
                self.update_interest(token);
            }
        }

        /// A drain must not hang on a peer that never reads its last
        /// replies: past the deadline, flush-only sessions are cut off.
        /// Sessions with a request still executing are always awaited —
        /// their acknowledged work belongs in the checkpoint.
        fn enforce_drain_deadline(&mut self) {
            let Some(t0) = self.drain_started else {
                return;
            };
            if t0.elapsed() < DRAIN_FLUSH_DEADLINE {
                return;
            }
            let stuck: Vec<u64> = self
                .sessions
                .iter()
                .filter(|(_, s)| !s.in_flight)
                .map(|(&t, _)| t)
                .collect();
            for token in stuck {
                self.close_session(token);
            }
        }
    }
}

/// Connect-and-bind helper for tests and doctests: a default-config
/// server on an ephemeral port with the given worker/queue shape.
///
/// # Errors
/// See [`Server::bind`].
pub fn bind_ephemeral(workers: usize, queue: usize) -> Result<Server, ServerError> {
    Server::bind(ServerConfig {
        workers,
        queue,
        ..Default::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_rejects_zero_workers() {
        let cfg = ServerConfig {
            workers: 0,
            ..Default::default()
        };
        assert!(matches!(Server::bind(cfg), Err(ServerError::BadConfig(_))));
    }

    #[test]
    fn bind_rejects_writer_and_replica_roles_together() {
        let cfg = ServerConfig {
            ship: Some(ShipSpec {
                dir: std::env::temp_dir().join("pfe-ship-x"),
                interval: Duration::from_millis(100),
            }),
            replica: Some(ReplicaSpec {
                dirs: vec![std::env::temp_dir().join("pfe-ship-x")],
                poll: Duration::from_millis(100),
                engine: pfe_engine::EngineConfig::default(),
            }),
            ..Default::default()
        };
        assert!(matches!(Server::bind(cfg), Err(ServerError::BadConfig(_))));
    }

    #[test]
    fn handle_stops_an_idle_server() {
        let server = bind_ephemeral(1, 1).expect("bind");
        let handle = server.handle();
        let t = std::thread::spawn(move || server.run().expect("run"));
        handle.shutdown();
        let report = t.join().expect("join");
        assert_eq!(report.connections_accepted, 0);
        assert_eq!(report.checkpointed, None);
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let server = Server::bind(ServerConfig {
            metrics_addr: Some("127.0.0.1:0".to_string()),
            slow_ms: Some(7),
            workers: 1,
            queue: 1,
            ..Default::default()
        })
        .expect("bind");
        let maddr = server.metrics_addr().expect("metrics bound");
        assert_eq!(server.dispatcher().recorder().slow_log().threshold_ms(), 7);
        server
            .dispatcher()
            .handle_line(r#"{"op":"start","d":8,"q":2,"shards":1}"#);
        let handle = server.handle();
        let t = std::thread::spawn(move || server.run().expect("run"));
        // Plain HTTP GET against the scrape endpoint.
        let mut stream = TcpStream::connect(maddr).expect("connect metrics");
        write!(stream, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").expect("send");
        stream.flush().expect("flush");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("Content-Type: text/plain; version=0.0.4"));
        let body = response.split("\r\n\r\n").nth(1).expect("body");
        assert!(body.contains("# TYPE pfe_server_op_requests_start_total counter"));
        assert!(body.contains("pfe_server_op_requests_start_total 1"));
        handle.shutdown();
        t.join().expect("join");
    }
}
