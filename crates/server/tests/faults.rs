//! Deterministic fault injection against the readiness-loop server: the
//! network misbehaving in every way the framing layer claims to survive
//! — byte-at-a-time writes, requests shredded across dozens of TCP
//! segments, disconnects mid-request, half-open sockets, oversized
//! lines, and a slow-loris client — each asserting typed errors where an
//! error is due and that the session (and its neighbors) keep answering
//! bit-identically to direct engine calls afterwards.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pfe_engine::{wire, Engine, EngineConfig, Json};
use pfe_server::{Client, Server, ServerConfig, ServerHandle, ShutdownReport};
use pfe_stream::gen::uniform_binary;

const D: u32 = 8;
const ROWS: usize = 400;

fn test_cfg() -> EngineConfig {
    EngineConfig {
        shards: 2,
        sample_t: 128,
        kmv_k: 32,
        seed: 3,
        ..Default::default()
    }
}

fn start_line() -> String {
    let cfg = test_cfg();
    format!(
        r#"{{"op":"start","d":{D},"q":2,"shards":{},"sample_t":{},"kmv_k":{},"seed":{}}}"#,
        cfg.shards, cfg.sample_t, cfg.kmv_k, cfg.seed
    )
}

fn dense_rows() -> Vec<Vec<u16>> {
    let data = uniform_binary(D, ROWS, 11);
    let packed = match data {
        pfe_row::Dataset::Binary(m) => m.rows().to_vec(),
        pfe_row::Dataset::Qary(_) => unreachable!("generator yields binary data"),
    };
    packed
        .iter()
        .map(|row| (0..D).map(|i| ((row >> i) & 1) as u16).collect())
        .collect()
}

/// The statistic requests every parity check issues.
fn requests() -> Vec<String> {
    vec![
        r#"{"op":"f0","cols":[0,1,2,3]}"#.to_string(),
        r#"{"op":"frequency","cols":[0,1],"pattern":[1,1]}"#.to_string(),
        r#"{"op":"heavy_hitters","cols":[0,1,2],"phi":0.05}"#.to_string(),
    ]
}

/// What a fresh direct engine answers for [`requests`], stripped of
/// cache metadata.
fn direct_answers() -> Vec<Json> {
    let engine = Engine::start(D, 2, test_cfg()).expect("start");
    for row in &dense_rows() {
        engine.push_dense(row).expect("push");
    }
    engine.refresh().expect("refresh");
    requests()
        .iter()
        .map(|line| {
            let req = Json::parse(line).expect("valid");
            let q = wire::query_from_json(&req).expect("parse");
            strip_cost(&wire::answer_to_json(&engine.query(&q).expect("ok"), 2))
        })
        .collect()
}

fn strip_cost(json: &Json) -> Json {
    match json {
        Json::Obj(map) => Json::Obj(
            map.iter()
                .filter(|(k, _)| !matches!(k.as_str(), "cached" | "group_size" | "trace_id"))
                .map(|(k, v)| (k.clone(), strip_cost(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(strip_cost).collect()),
        other => other.clone(),
    }
}

/// A running server pre-loaded with the test stream (started, ingested,
/// snapshotted over the wire by a feeder session that then quits).
fn spawn_served(cfg: ServerConfig) -> (ServerHandle, JoinHandle<ShutdownReport>) {
    let server = Server::bind(cfg).expect("bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("run"));
    let mut feeder = Client::connect(handle.addr()).expect("connect feeder");
    feeder.request_line(&start_line()).expect("start");
    for chunk in dense_rows().chunks(200) {
        let body: Vec<String> = chunk
            .iter()
            .map(|r| {
                let syms: Vec<String> = r.iter().map(|s| s.to_string()).collect();
                format!("[{}]", syms.join(","))
            })
            .collect();
        let line = format!(r#"{{"op":"ingest","rows":[{}]}}"#, body.join(","));
        let r = feeder.request_line(&line).expect("ingest");
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "ingest failed: {r}");
    }
    feeder
        .request_line(r#"{"op":"snapshot"}"#)
        .expect("snapshot");
    feeder.request_line(r#"{"op":"quit"}"#).expect("quit");
    (handle, join)
}

fn quick_poll() -> ServerConfig {
    ServerConfig {
        poll_interval: Duration::from_millis(5),
        ..Default::default()
    }
}

/// A raw socket speaking the protocol with full control over write
/// boundaries (the library [`Client`] would coalesce).
struct RawSession {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl RawSession {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .expect("timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Self { stream, reader }
    }

    fn write_all(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("write");
        self.stream.flush().expect("flush");
    }

    fn read_reply(&mut self) -> Json {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read reply");
        assert!(n > 0, "server closed instead of answering");
        Json::parse(line.trim()).expect("reply is JSON")
    }

    fn read_eof(&mut self) {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read");
        assert_eq!(n, 0, "expected EOF, got {line:?}");
    }
}

#[test]
fn byte_at_a_time_requests_answer_bit_identically() {
    let expected = direct_answers();
    let (handle, join) = spawn_served(quick_poll());
    let mut raw = RawSession::connect(handle.addr());
    for (req, expect) in requests().iter().zip(&expected) {
        // Every byte its own TCP segment: the cruelest possible framing.
        for &b in req.as_bytes() {
            raw.write_all(&[b]);
        }
        raw.write_all(b"\n");
        let reply = raw.read_reply();
        assert_eq!(&strip_cost(&reply), expect, "diverged for {req}");
    }
    handle.shutdown();
    join.join().expect("server");
}

#[test]
fn pipelined_requests_shredded_across_segments_answer_in_order() {
    let expected = direct_answers();
    let (handle, join) = spawn_served(quick_poll());
    let mut raw = RawSession::connect(handle.addr());
    // All three requests in one buffer, then shredded into dozens of
    // 7-byte segments that land nowhere near line boundaries.
    let mut pipeline = String::new();
    for req in requests() {
        pipeline.push_str(&req);
        pipeline.push('\n');
    }
    for chunk in pipeline.as_bytes().chunks(7) {
        raw.write_all(chunk);
        std::thread::sleep(Duration::from_millis(1));
    }
    for (req, expect) in requests().iter().zip(&expected) {
        let reply = raw.read_reply();
        assert_eq!(
            &strip_cost(&reply),
            expect,
            "pipelined reply out of order or diverged for {req}"
        );
    }
    handle.shutdown();
    join.join().expect("server");
}

#[test]
fn disconnect_mid_request_leaves_the_server_serving() {
    let expected = direct_answers();
    let (handle, join) = spawn_served(quick_poll());

    // One client abandons a half-written request...
    let mut torn = RawSession::connect(handle.addr());
    torn.write_all(br#"{"op":"f0","cols":[0,1,"#);
    drop(torn);
    // ...another abandons a complete request without reading its reply
    // (the dispatch may still be in flight when the close lands).
    let mut unread = RawSession::connect(handle.addr());
    unread.write_all(b"{\"op\":\"f0\",\"cols\":[0,1,2,3]}\n");
    drop(unread);

    // Neither corpse affects a healthy session.
    let mut client = Client::connect(handle.addr()).expect("connect");
    for (req, expect) in requests().iter().zip(&expected) {
        let reply = client.request_line(req).expect("query");
        assert_eq!(&strip_cost(&reply), expect, "diverged for {req}");
    }
    // The abandoned sockets are reclaimed (no fd/session leak): open
    // connections settle back to just ours.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stats = client
            .request_line(r#"{"op":"server_stats"}"#)
            .expect("stats");
        if stats.get("connections_open").and_then(Json::as_f64) == Some(1.0) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "abandoned sessions never reclaimed: {stats}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.shutdown();
    join.join().expect("server");
}

#[test]
fn half_open_peer_still_receives_every_queued_reply() {
    let expected = direct_answers();
    let (handle, join) = spawn_served(quick_poll());
    let mut raw = RawSession::connect(handle.addr());
    // Pipeline every request, then close only our write side: the
    // server sees EOF but must still answer everything already sent
    // (half-open TCP — we can still receive).
    for req in requests() {
        raw.write_all(format!("{req}\n").as_bytes());
    }
    raw.stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    for (req, expect) in requests().iter().zip(&expected) {
        let reply = raw.read_reply();
        assert_eq!(&strip_cost(&reply), expect, "diverged for {req}");
    }
    // ...and then closes cleanly, not by RST or by hanging.
    raw.read_eof();
    handle.shutdown();
    join.join().expect("server");
}

#[test]
fn oversized_line_is_a_typed_error_and_the_session_resyncs() {
    let expected = direct_answers();
    // The cap must clear the feeder's ~3.5 KiB ingest lines but sit far
    // below the monster.
    let (handle, join) = spawn_served(ServerConfig {
        max_line_bytes: 8 * 1024,
        ..quick_poll()
    });
    let mut raw = RawSession::connect(handle.addr());
    // A 64 KiB monster against an 8 KiB cap, written in chunks so the
    // rejection triggers long before the newline arrives.
    let monster = vec![b'x'; 64 * 1024];
    for chunk in monster.chunks(4096) {
        raw.write_all(chunk);
    }
    raw.write_all(b"\n");
    let reply = raw.read_reply();
    assert_eq!(reply.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(
        reply.get("code").and_then(Json::as_str),
        Some("line_too_long"),
        "oversized rejection must be machine-matchable: {reply}"
    );
    // The same session resyncs onto the next line and serves it
    // bit-identically — no desync, no close.
    for (req, expect) in requests().iter().zip(&expected) {
        raw.write_all(format!("{req}\n").as_bytes());
        let reply = raw.read_reply();
        assert_eq!(&strip_cost(&reply), expect, "diverged after resync: {req}");
    }
    handle.shutdown();
    join.join().expect("server");
}

#[test]
fn idle_connections_cost_no_dispatches_and_no_wakeups() {
    // The busy-spin proof: a box holding a crowd of idle sessions must
    // sit in epoll_wait, not spin. Ticks keep counting (the loop times
    // out and rearms — that is its heartbeat), but wakeups only count
    // when events actually arrive, and the dispatcher must see nothing.
    let server = Server::bind(ServerConfig {
        queue: 64, // session capacity = workers + queue ≥ the idle crowd
        ..ServerConfig::default()
    })
    .expect("bind");
    let recorder = std::sync::Arc::clone(server.dispatcher().recorder());
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("run"));

    let conns: Vec<TcpStream> = (0..32)
        .map(|_| TcpStream::connect(handle.addr()).expect("connect"))
        .collect();
    // Let the accept churn fully settle before measuring.
    std::thread::sleep(Duration::from_millis(500));

    let wakeups = recorder.counter("server_loop_wakeups");
    let ticks = recorder.counter("server_loop_ticks");
    let requests = recorder.counter("server_requests_handled");
    let (w0, t0, r0) = (wakeups.get(), ticks.get(), requests.get());
    std::thread::sleep(Duration::from_secs(1));
    let (dw, dt, dr) = (wakeups.get() - w0, ticks.get() - t0, requests.get() - r0);

    assert_eq!(dr, 0, "idle connections reached the dispatcher");
    assert!(dt >= 2, "event loop stopped ticking ({dt} ticks in 1 s)");
    assert!(
        dw <= 2,
        "{dw} wakeups in 1 s of pure idleness — the loop is spinning on phantom events"
    );

    drop(conns);
    handle.shutdown();
    join.join().expect("server");
}

#[test]
fn slow_loris_does_not_stall_other_sessions() {
    // ONE worker: under the old thread-per-connection design a loris
    // dribbling a never-finished request would own it forever. Under the
    // readiness loop an incomplete line never reaches the dispatch pool,
    // so the lone worker stays free for everyone else.
    let expected = direct_answers();
    let (handle, join) = spawn_served(ServerConfig {
        workers: 1,
        queue: 4,
        ..quick_poll()
    });
    let addr = handle.addr();
    let loris_done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let loris_stop = std::sync::Arc::clone(&loris_done);
    let loris = std::thread::spawn(move || {
        let mut raw = RawSession::connect(addr);
        let payload = br#"{"op":"f0","cols":[0"#;
        let mut i = 0;
        while !loris_stop.load(std::sync::atomic::Ordering::SeqCst) {
            raw.write_all(&payload[i % payload.len()..][..1]);
            i += 1;
            std::thread::sleep(Duration::from_millis(10));
        }
    });

    let begin = Instant::now();
    let mut client = Client::connect(addr).expect("connect");
    for round in 0..10 {
        for (req, expect) in requests().iter().zip(&expected) {
            let reply = client.request_line(req).expect("query");
            assert_eq!(
                &strip_cost(&reply),
                expect,
                "diverged during loris round {round}: {req}"
            );
        }
    }
    // 30 round trips against a single worker while the loris dribbles:
    // anything near the loris' own timescale means it stalled us.
    assert!(
        begin.elapsed() < Duration::from_secs(10),
        "queries stalled behind the slow-loris client: {:?}",
        begin.elapsed()
    );
    loris_done.store(true, std::sync::atomic::Ordering::SeqCst);
    loris.join().expect("loris");
    handle.shutdown();
    join.join().expect("server");
}
