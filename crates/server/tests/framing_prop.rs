//! Property test: the incremental [`LineFramer`] is observationally
//! equivalent to the blocking server it replaced, under EVERY chunking.
//!
//! The reference model is what a blocking `BufReader::read_line` loop
//! sees when the whole stream is available at once: split on `\n`, each
//! complete line within the cap is a frame, each over-cap line is one
//! oversized rejection, and an unterminated over-cap tail rejects early.
//! The framer must produce the identical event sequence — nothing lost,
//! duplicated, or reordered — no matter how the kernel slices the bytes,
//! and byte-at-a-time must agree with any other slicing.

use pfe_server::{FrameEvent, LineFramer};
use proptest::prelude::*;

/// The blocking-read reference: frame the complete stream in one pass.
fn reference_events(stream: &[u8], cap: usize) -> Vec<FrameEvent> {
    let mut parts: Vec<&[u8]> = stream.split(|&b| b == b'\n').collect();
    // `split` always yields a final segment: the unterminated tail
    // (empty when the stream ends in a newline).
    let tail = parts.pop().expect("split is never empty");
    let mut events: Vec<FrameEvent> = parts
        .into_iter()
        .map(|line| {
            if line.len() > cap {
                FrameEvent::Oversized { limit: cap }
            } else {
                FrameEvent::Line(line.to_vec())
            }
        })
        .collect();
    if tail.len() > cap {
        // The framer need not wait for the newline to know the line in
        // progress is doomed.
        events.push(FrameEvent::Oversized { limit: cap });
    }
    events
}

/// Feed `stream` through a fresh framer in the given chunk sizes
/// (cycled), collecting events as they become ready — interleaved with
/// the pushes, the way the event loop consumes them.
fn framed(stream: &[u8], cap: usize, chunk_sizes: &[usize]) -> (Vec<FrameEvent>, usize) {
    let mut framer = LineFramer::new(cap);
    let mut events = Vec::new();
    let mut offset = 0;
    let mut i = 0;
    while offset < stream.len() {
        let want = chunk_sizes[i % chunk_sizes.len()].max(1);
        let end = (offset + want).min(stream.len());
        framer.push(&stream[offset..end]);
        offset = end;
        i += 1;
        while let Some(ev) = framer.pop_event() {
            events.push(ev);
        }
    }
    (events, framer.buffered())
}

/// Assemble a wire stream from generated line bodies (newline bytes
/// remapped — a body byte may not be the terminator).
fn build_stream(bodies: &[Vec<u8>], terminated: bool) -> Vec<u8> {
    let mut stream = Vec::new();
    for (i, body) in bodies.iter().enumerate() {
        stream.extend(body.iter().map(|&b| if b == b'\n' { b' ' } else { b }));
        if i + 1 < bodies.len() || terminated {
            stream.push(b'\n');
        }
    }
    stream
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Any chunking yields exactly the blocking reference's events, and
    /// the framer retains exactly the unterminated tail (or nothing,
    /// when the tail already overran the cap).
    #[test]
    fn prop_framer_matches_blocking_reference_under_any_chunking(
        bodies in proptest::collection::vec(
            proptest::collection::vec(0u8..255, 0..60), 0..16),
        terminated in any::<bool>(),
        cap in 1usize..48,
        chunk_sizes in proptest::collection::vec(1usize..17, 1..40),
    ) {
        let stream = build_stream(&bodies, terminated);
        let expected = reference_events(&stream, cap);

        let (events, buffered) = framed(&stream, cap, &chunk_sizes);
        prop_assert_eq!(&events, &expected, "chunked framing diverged");

        let tail_len = stream.split(|&b| b == b'\n').next_back().map_or(0, <[u8]>::len);
        let expect_buffered = if tail_len > cap { 0 } else { tail_len };
        prop_assert_eq!(buffered, expect_buffered, "retained tail wrong");

        // Byte-at-a-time — the degenerate chunking every fault matters
        // most for — agrees too.
        let (trickled, _) = framed(&stream, cap, &[1]);
        prop_assert_eq!(&trickled, &expected, "byte-at-a-time diverged");
    }

    /// Replies can never desync: the number of `Line` events equals the
    /// number of within-cap newline-terminated requests, regardless of
    /// how many oversized lines are interleaved.
    #[test]
    fn prop_line_count_is_chunking_invariant(
        bodies in proptest::collection::vec(
            proptest::collection::vec(0u8..255, 0..40), 1..12),
        cap in 1usize..32,
        a in 1usize..9,
        b in 1usize..9,
    ) {
        let stream = build_stream(&bodies, true);
        let (x, _) = framed(&stream, cap, &[a, b]);
        let (y, _) = framed(&stream, cap, &[b, a, 1]);
        prop_assert_eq!(&x, &y, "event sequence depends on chunking");
        let lines = x.iter().filter(|e| matches!(e, FrameEvent::Line(_))).count();
        let ok_bodies = bodies.iter().filter(|l| l.len() <= cap).count();
        prop_assert_eq!(lines, ok_bodies, "lost or duplicated a request");
    }
}
