//! Replication end-to-end: a writer shipping snapshots into a directory,
//! a read replica watching it — answers must be bit-identical to the
//! writer at the same epoch, mutation ops must be the typed `read_only`
//! rejection, and a corrupt snapshot must leave the replica serving its
//! previous epoch with a typed slow-log entry, never crash it.

use std::path::{Path, PathBuf};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pfe_engine::{EngineConfig, Json};
use pfe_server::{
    Client, ReplicaSpec, Server, ServerConfig, ServerHandle, ShipSpec, ShutdownReport,
};
use pfe_stream::gen::uniform_binary;

const D: u32 = 8;
const ROWS: usize = 400;

fn test_cfg() -> EngineConfig {
    EngineConfig {
        shards: 2,
        sample_t: 128,
        kmv_k: 32,
        seed: 3,
        ..Default::default()
    }
}

fn start_line() -> String {
    let cfg = test_cfg();
    format!(
        r#"{{"op":"start","d":{D},"q":2,"shards":{},"sample_t":{},"kmv_k":{},"seed":{}}}"#,
        cfg.shards, cfg.sample_t, cfg.kmv_k, cfg.seed
    )
}

fn dense_rows(rows: usize, seed: u64) -> Vec<Vec<u16>> {
    let data = uniform_binary(D, rows, seed);
    let packed = match data {
        pfe_row::Dataset::Binary(m) => m.rows().to_vec(),
        pfe_row::Dataset::Qary(_) => unreachable!("generator yields binary data"),
    };
    packed
        .iter()
        .map(|row| (0..D).map(|i| ((row >> i) & 1) as u16).collect())
        .collect()
}

fn ingest(client: &mut Client, rows: &[Vec<u16>]) {
    for chunk in rows.chunks(200) {
        let body: Vec<String> = chunk
            .iter()
            .map(|r| {
                let syms: Vec<String> = r.iter().map(|s| s.to_string()).collect();
                format!("[{}]", syms.join(","))
            })
            .collect();
        let line = format!(r#"{{"op":"ingest","rows":[{}]}}"#, body.join(","));
        let r = client.request_line(&line).expect("ingest");
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "ingest failed: {r}");
    }
}

fn requests() -> Vec<String> {
    vec![
        r#"{"op":"f0","cols":[0,1,2,3]}"#.to_string(),
        r#"{"op":"frequency","cols":[0,1],"pattern":[1,1]}"#.to_string(),
        r#"{"op":"heavy_hitters","cols":[0,1,2],"phi":0.05}"#.to_string(),
        r#"{"op":"l1_sample","cols":[0,1,2],"k":4,"seed":7}"#.to_string(),
    ]
}

/// Strip only the cache metadata — `epoch` stays, because replica parity
/// is claimed *at the same epoch*.
fn strip_cost(json: &Json) -> Json {
    match json {
        Json::Obj(map) => Json::Obj(
            map.iter()
                .filter(|(k, _)| !matches!(k.as_str(), "cached" | "group_size" | "trace_id"))
                .map(|(k, v)| (k.clone(), strip_cost(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(strip_cost).collect()),
        other => other.clone(),
    }
}

fn answers(client: &mut Client) -> Vec<Json> {
    requests()
        .iter()
        .map(|req| strip_cost(&client.request_line(req).expect("query")))
        .collect()
}

fn spawn(cfg: ServerConfig) -> (ServerHandle, JoinHandle<ShutdownReport>) {
    let server = Server::bind(cfg).expect("bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("run"));
    (handle, join)
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pfe-replica-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir
}

/// Poll until `cond` holds or panic with `what` after 15 s.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(15);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

struct Pair {
    dir: PathBuf,
    writer: (ServerHandle, JoinHandle<ShutdownReport>),
    replica: (ServerHandle, JoinHandle<ShutdownReport>),
    writer_client: Client,
    replica_client: Client,
}

/// A writer shipping every 50 ms, fed with the test stream, and a
/// replica that has fully caught up to it.
fn converged_pair(name: &str) -> Pair {
    let dir = fresh_dir(name);
    let writer = spawn(ServerConfig {
        poll_interval: Duration::from_millis(5),
        ship: Some(ShipSpec {
            dir: dir.clone(),
            interval: Duration::from_millis(50),
        }),
        ..Default::default()
    });
    let mut writer_client = Client::connect(writer.0.addr()).expect("connect writer");
    writer_client.request_line(&start_line()).expect("start");
    ingest(&mut writer_client, &dense_rows(ROWS, 11));

    let replica = spawn(ServerConfig {
        poll_interval: Duration::from_millis(5),
        replica: Some(ReplicaSpec {
            dirs: vec![dir.clone()],
            poll: Duration::from_millis(50),
            engine: test_cfg(),
        }),
        ..Default::default()
    });
    let mut replica_client = Client::connect(replica.0.addr()).expect("connect replica");

    // Converged = the replica answers the first probe bit-identically
    // (same values AND same epoch); the shipper stops moving the epoch
    // once ingest is done, so this settles.
    let probe = &requests()[0];
    wait_for("replica catch-up", || {
        let w = writer_client.request_line(probe).expect("writer probe");
        let r = replica_client.request_line(probe).expect("replica probe");
        r.get("ok") == Some(&Json::Bool(true)) && strip_cost(&w) == strip_cost(&r)
    });
    Pair {
        dir,
        writer,
        replica,
        writer_client,
        replica_client,
    }
}

fn shutdown(pair: Pair) {
    pair.writer.0.shutdown();
    pair.replica.0.shutdown();
    pair.writer.1.join().expect("writer");
    pair.replica.1.join().expect("replica");
    let _ = std::fs::remove_dir_all(&pair.dir);
}

/// Newest shipped epoch in the snapshot directory, by filename.
fn newest_epoch(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            let hex = name.strip_prefix("snap-")?.strip_suffix(".pfes")?;
            u64::from_str_radix(hex, 16).ok()
        })
        .max()
        .expect("at least one shipped snapshot")
}

#[test]
fn replica_is_bit_identical_to_writer_at_the_same_epoch() {
    let mut pair = converged_pair("parity");

    // Every statistic, bit-for-bit including the epoch field.
    let from_writer = answers(&mut pair.writer_client);
    let from_replica = answers(&mut pair.replica_client);
    assert_eq!(
        from_writer, from_replica,
        "replica diverges from writer at the same epoch"
    );

    // replica_stats tells the whole story on the replica...
    let stats = pair
        .replica_client
        .request_line(r#"{"op":"replica_stats"}"#)
        .expect("replica_stats");
    assert_eq!(stats.get("replica"), Some(&Json::Bool(true)));
    assert!(
        stats.get("applies").and_then(Json::as_f64) >= Some(1.0),
        "no applies recorded: {stats}"
    );
    assert_eq!(stats.get("failures").and_then(Json::as_f64), Some(0.0));
    assert_eq!(
        stats.get("epoch").and_then(Json::as_f64),
        Some(newest_epoch(&pair.dir) as f64),
        "applied epoch is not the newest shipped one"
    );
    assert!(
        stats.get("lag_ms").and_then(Json::as_f64).is_some(),
        "lag should be measurable after an apply: {stats}"
    );
    // ...and a writer reports it is not a replica.
    let stats = pair
        .writer_client
        .request_line(r#"{"op":"replica_stats"}"#)
        .expect("replica_stats");
    assert_eq!(stats.get("replica"), Some(&Json::Bool(false)));

    // Mutations against the replica are the typed read-only rejection.
    for req in [
        start_line(),
        r#"{"op":"ingest","rows":[[0,1,0,1,0,1,0,1]]}"#.to_string(),
        r#"{"op":"snapshot"}"#.to_string(),
        r#"{"op":"checkpoint"}"#.to_string(),
    ] {
        let reply = pair.replica_client.request_line(&req).expect("request");
        assert_eq!(reply.get("ok"), Some(&Json::Bool(false)), "accepted: {req}");
        assert_eq!(
            reply.get("code").and_then(Json::as_str),
            Some("read_only"),
            "rejection must be machine-matchable: {reply}"
        );
    }
    shutdown(pair);
}

#[test]
fn corrupt_snapshot_keeps_previous_epoch_and_logs_typed_failure() {
    let mut pair = converged_pair("corrupt");
    let baseline = answers(&mut pair.replica_client);
    let good_epoch = newest_epoch(&pair.dir);

    // An attractive lie: a higher epoch than anything real, garbage
    // inside. The watcher must try it, fail, and pin it as failed.
    let corrupt = pair.dir.join(format!("snap-{:016x}.pfes", good_epoch + 50));
    std::fs::write(&corrupt, b"not a snapshot at all").expect("write corrupt");

    let mut replica_stats = Json::Bool(false);
    wait_for("apply failure to be counted", || {
        replica_stats = pair
            .replica_client
            .request_line(r#"{"op":"replica_stats"}"#)
            .expect("replica_stats");
        replica_stats.get("failures").and_then(Json::as_f64) >= Some(1.0)
    });

    // Still serving, still the good epoch, bit-identical answers.
    assert_eq!(
        replica_stats.get("epoch").and_then(Json::as_f64),
        Some(good_epoch as f64),
        "corrupt snapshot moved the epoch: {replica_stats}"
    );
    assert!(
        replica_stats
            .get("last_error")
            .and_then(Json::as_str)
            .is_some(),
        "failure should be surfaced: {replica_stats}"
    );
    assert_eq!(
        answers(&mut pair.replica_client),
        baseline,
        "replica answers changed after a failed apply"
    );

    // The failure landed in the slow log as a typed entry.
    let log = pair
        .replica_client
        .request_line(r#"{"op":"slow_log"}"#)
        .expect("slow_log");
    let found = log
        .get("entries")
        .and_then(Json::as_arr)
        .map(|entries| {
            entries.iter().any(|e| {
                e.get("what").and_then(Json::as_str) == Some("replica")
                    && e.get("detail")
                        .and_then(|d| d.get("code"))
                        .and_then(Json::as_str)
                        == Some("replica_apply_failed")
            })
        })
        .unwrap_or(false);
    assert!(found, "no typed replica failure in the slow log: {log}");

    // Operator deletes the bad file, the writer moves on: the replica
    // recovers onto the next good epoch without a restart.
    std::fs::remove_file(&corrupt).expect("remove corrupt");
    ingest(&mut pair.writer_client, &dense_rows(200, 23));
    let probe = &requests()[0];
    wait_for("recovery onto the next good epoch", || {
        let w = pair
            .writer_client
            .request_line(probe)
            .expect("writer probe");
        let r = pair
            .replica_client
            .request_line(probe)
            .expect("replica probe");
        strip_cost(&w) == strip_cost(&r)
    });
    assert_eq!(
        answers(&mut pair.writer_client),
        answers(&mut pair.replica_client),
        "replica diverges from writer after recovery"
    );
    shutdown(pair);
}
