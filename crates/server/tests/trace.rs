//! End-to-end tracing over real TCP: client-supplied trace contexts
//! must be echoed, the `trace` op must return complete well-formed span
//! trees, the Chrome export must be structurally valid, `set_slow_ms`
//! must tune the slow log live, and the metrics responder must speak
//! enough HTTP (404, HEAD) to survive a real scraper.

use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use pfe_engine::Json;
use pfe_server::{Client, Server, ServerConfig, ServerHandle, ShutdownReport};
use proptest::prelude::*;

const D: u32 = 8;

fn spawn_server(cfg: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<ShutdownReport>) {
    let server = Server::bind(cfg).expect("bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("run"));
    (handle, join)
}

fn quick_poll() -> ServerConfig {
    ServerConfig {
        poll_interval: Duration::from_millis(5),
        ..Default::default()
    }
}

/// Start an engine and ingest a deterministic handful of rows so every
/// statistic has something to answer over.
fn prime(client: &mut Client) {
    let r = client
        .request_line(&format!(r#"{{"op":"start","d":{D},"q":2,"shards":2}}"#))
        .expect("start");
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r}");
    let rows: Vec<String> = (0..200u64)
        .map(|i| {
            let bits: Vec<String> = (0..D)
                .map(|b| (((i * 7 + 3) >> b) & 1).to_string())
                .collect();
            format!("[{}]", bits.join(","))
        })
        .collect();
    let r = client
        .request_line(&format!(r#"{{"op":"ingest","rows":[{}]}}"#, rows.join(",")))
        .expect("ingest");
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r}");
    let r = client
        .request_line(r#"{"op":"snapshot"}"#)
        .expect("snapshot");
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r}");
}

/// Collect every span name in a trace's tree, depth-first.
fn span_names(trace: &Json, out: &mut Vec<String>) {
    fn walk(span: &Json, out: &mut Vec<String>) {
        if let Some(name) = span.get("name").and_then(Json::as_str) {
            out.push(name.to_string());
        }
        for child in span.get("children").and_then(Json::as_arr).unwrap_or(&[]) {
            walk(child, out);
        }
    }
    for root in trace.get("spans").and_then(Json::as_arr).unwrap_or(&[]) {
        walk(root, out);
    }
}

/// Check the structural invariants of one rendered span tree: ids are
/// unique within the trace, and every child nests inside its parent's
/// `[start_ns, end_ns]` interval.
fn assert_well_formed(trace: &Json) {
    fn walk(span: &Json, ids: &mut BTreeSet<u64>, parent: Option<(f64, f64)>) {
        let id = span.get("span").and_then(Json::as_f64).expect("span id") as u64;
        assert!(ids.insert(id), "span id {id} collides within its trace");
        let start = span.get("start_ns").and_then(Json::as_f64).expect("start");
        let end = span.get("end_ns").and_then(Json::as_f64).expect("end");
        assert!(start <= end, "span {id} ends before it starts");
        if let Some((ps, pe)) = parent {
            assert!(
                start >= ps && end <= pe,
                "span {id} [{start}, {end}] escapes its parent [{ps}, {pe}]"
            );
        }
        for child in span.get("children").and_then(Json::as_arr).unwrap_or(&[]) {
            walk(child, ids, Some((start, end)));
        }
    }
    let mut ids = BTreeSet::new();
    for root in trace.get("spans").and_then(Json::as_arr).unwrap_or(&[]) {
        walk(root, &mut ids, None);
    }
    assert!(!ids.is_empty(), "trace has no spans: {trace}");
}

#[test]
fn client_supplied_trace_id_is_echoed_and_retained() {
    let (handle, join) = spawn_server(quick_poll());
    let mut client = Client::connect(handle.addr()).expect("connect");
    prime(&mut client);

    let id = "00000000000000000000000000abcdef";
    let r = client
        .request_line(&format!(r#"{{"op":"f0","cols":[0,1,2],"trace":"{id}"}}"#))
        .expect("query");
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r}");
    assert_eq!(
        r.get("trace_id").and_then(Json::as_str),
        Some(id),
        "client-supplied trace id must be echoed: {r}"
    );

    // The same id must now be fetchable from the retained store.
    let r = client
        .request_line(&format!(r#"{{"op":"trace","id":"{id}"}}"#))
        .expect("trace");
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r}");
    let traces = r.get("traces").and_then(Json::as_arr).expect("traces");
    assert_eq!(traces.len(), 1);
    assert_eq!(traces[0].get("trace_id").and_then(Json::as_str), Some(id));
    assert_well_formed(&traces[0]);

    handle.shutdown();
    join.join().expect("join");
}

#[test]
fn trace_op_returns_the_complete_query_span_tree() {
    let (handle, join) = spawn_server(quick_poll());
    let mut client = Client::connect(handle.addr()).expect("connect");
    prime(&mut client);

    // An uncached query (fresh mask) exercises every execution stage. A
    // client-supplied trace id keeps the reply echo deterministic.
    let r = client
        .request_line(r#"{"op":"f0","cols":[0,1,2,3],"trace":"00000000000000000000000000c0ffee"}"#)
        .expect("query");
    let id = r
        .get("trace_id")
        .and_then(Json::as_str)
        .expect("client-supplied trace id echoed")
        .to_string();

    let r = client
        .request_line(&format!(r#"{{"op":"trace","id":"{id}"}}"#))
        .expect("trace");
    let traces = r.get("traces").and_then(Json::as_arr).expect("traces");
    let mut names = Vec::new();
    span_names(&traces[0], &mut names);
    for want in [
        "session",
        "dispatch",
        "plan",
        "cache_probe",
        "compute",
        "materialize",
    ] {
        assert!(
            names.iter().any(|n| n == want),
            "span {want:?} missing from trace: {names:?}"
        );
    }
    // The tree is rooted at the session span, dispatch directly below.
    let root = &traces[0]
        .get("spans")
        .and_then(Json::as_arr)
        .expect("spans")[0];
    assert_eq!(root.get("name").and_then(Json::as_str), Some("session"));
    let dispatch = &root
        .get("children")
        .and_then(Json::as_arr)
        .expect("children")[0];
    assert_eq!(
        dispatch.get("name").and_then(Json::as_str),
        Some("dispatch")
    );
    assert_well_formed(&traces[0]);

    handle.shutdown();
    join.join().expect("join");
}

#[test]
fn chrome_export_is_structurally_valid() {
    let (handle, join) = spawn_server(quick_poll());
    let mut client = Client::connect(handle.addr()).expect("connect");
    prime(&mut client);
    client
        .request_line(r#"{"op":"f0","cols":[0,1]}"#)
        .expect("query");

    let r = client
        .request_line(r#"{"op":"trace","last":8,"format":"chrome"}"#)
        .expect("trace");
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r}");
    assert_eq!(r.get("format").and_then(Json::as_str), Some("chrome"));
    let events = r.get("events").and_then(Json::as_arr).expect("events");
    assert!(!events.is_empty());
    for ev in events {
        // The chrome trace-event contract: complete ("X") events with
        // microsecond timestamps and a pid/tid pair.
        assert_eq!(ev.get("ph").and_then(Json::as_str), Some("X"), "{ev}");
        assert_eq!(ev.get("cat").and_then(Json::as_str), Some("pfe"), "{ev}");
        for key in ["name", "ts", "dur", "pid", "tid"] {
            assert!(ev.get(key).is_some(), "event missing {key:?}: {ev}");
        }
        assert!(
            ev.get("args").and_then(|a| a.get("trace_id")).is_some(),
            "event args must carry the trace id: {ev}"
        );
    }

    handle.shutdown();
    join.join().expect("join");
}

#[test]
fn set_slow_ms_tunes_live_and_slow_entries_carry_trace_ids() {
    let (handle, join) = spawn_server(quick_poll());
    let mut client = Client::connect(handle.addr()).expect("connect");
    prime(&mut client);

    // Tune the threshold down to 1 ms live, then issue a request heavy
    // enough (50k-row ingest) that it reliably qualifies.
    let r = client
        .request_line(r#"{"op":"set_slow_ms","ms":1}"#)
        .expect("set_slow_ms");
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r}");
    assert_eq!(r.get("threshold_ms").and_then(Json::as_f64), Some(1.0));

    let rows: Vec<String> = (0..50_000u64)
        .map(|i| {
            let bits: Vec<String> = (0..D)
                .map(|b| (((i * 11 + 5) >> b) & 1).to_string())
                .collect();
            format!("[{}]", bits.join(","))
        })
        .collect();
    let r = client
        .request_line(&format!(r#"{{"op":"ingest","rows":[{}]}}"#, rows.join(",")))
        .expect("ingest");
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r}");
    let id = r
        .get("trace_id")
        .and_then(Json::as_str)
        .expect("trace id")
        .to_string();

    let r = client
        .request_line(r#"{"op":"slow_log"}"#)
        .expect("slow_log");
    let entries = r.get("entries").and_then(Json::as_arr).expect("entries");
    let logged: Vec<&str> = entries
        .iter()
        .filter_map(|e| e.get("detail")?.get("trace_id")?.as_str())
        .collect();
    assert!(
        logged.contains(&id.as_str()),
        "slow-log entries must carry the trace id {id}: {r}"
    );

    // Missing ms is a usage error.
    let r = client
        .request_line(r#"{"op":"set_slow_ms"}"#)
        .expect("send");
    assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "{r}");

    handle.shutdown();
    join.join().expect("join");
}

#[test]
fn metrics_json_includes_build_info_and_uptime() {
    let (handle, join) = spawn_server(quick_poll());
    let mut client = Client::connect(handle.addr()).expect("connect");
    prime(&mut client);

    let r = client.request_line(r#"{"op":"metrics"}"#).expect("metrics");
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r}");
    let info = r.get("info").expect("info section");
    let build = info.get("build_info").expect("build_info");
    assert_eq!(
        build.get("version").and_then(Json::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert!(build
        .get("statistics")
        .and_then(Json::as_str)
        .is_some_and(|s| s.contains("f0")));
    assert!(r
        .get("gauges")
        .and_then(|g| g.get("process_uptime_seconds"))
        .is_some());

    handle.shutdown();
    join.join().expect("join");
}

fn http_exchange(addr: std::net::SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect metrics");
    stream.write_all(request.as_bytes()).expect("send");
    stream.flush().expect("flush");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    response
}

#[test]
fn metrics_endpoint_404s_unknown_paths_and_answers_head() {
    let server = Server::bind(ServerConfig {
        metrics_addr: Some("127.0.0.1:0".to_string()),
        workers: 1,
        queue: 1,
        poll_interval: Duration::from_millis(5),
        ..Default::default()
    })
    .expect("bind");
    let maddr = server.metrics_addr().expect("metrics bound");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("run"));

    let resp = http_exchange(maddr, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 404 Not Found\r\n"), "{resp}");
    assert!(resp.contains("not found: try /metrics"), "{resp}");

    let resp = http_exchange(maddr, "HEAD /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
    let (head, body) = resp.split_once("\r\n\r\n").expect("header/body split");
    assert!(body.is_empty(), "HEAD must not carry a body: {body:?}");
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .trim()
        .parse()
        .expect("numeric length");
    assert!(len > 0, "HEAD must advertise the GET body length");

    // Query strings on the scrape path still serve.
    let resp = http_exchange(
        maddr,
        "GET /metrics?format=text HTTP/1.1\r\nHost: x\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");

    handle.shutdown();
    join.join().expect("join");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Under concurrent clients the retained span trees stay well-formed:
    /// every span's parent resolves inside its own trace (rendered trees
    /// have no orphans), ids never collide within a trace, and children
    /// nest inside their parents' intervals.
    #[test]
    fn prop_concurrent_span_trees_stay_well_formed(
        rounds in 1usize..4,
        masks in proptest::collection::vec(1u64..(1 << D), 4),
    ) {
        let (handle, join) = spawn_server(quick_poll());
        let addr = handle.addr();
        let mut client = Client::connect(addr).expect("connect");
        prime(&mut client);

        // 4 concurrent clients, each hammering its own column subset.
        let threads: Vec<_> = masks
            .iter()
            .enumerate()
            .map(|(i, &mask)| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    for round in 0..rounds {
                        let cols: Vec<String> = (0..D)
                            .filter(|b| (mask >> b) & 1 == 1)
                            .map(|b| b.to_string())
                            .collect();
                        // Client-supplied ids are echoed and survive ring
                        // eviction dedup; unique per (thread, round).
                        let tid =
                            format!("{:032x}", ((i as u128) << 64) | (round as u128 + 1));
                        let r = c
                            .request_line(&format!(
                                r#"{{"op":"f0","cols":[{}],"trace":"{tid}"}}"#,
                                cols.join(",")
                            ))
                            .expect("query");
                        assert_eq!(
                            r.get("trace_id").and_then(Json::as_str),
                            Some(tid.as_str()),
                            "{r}"
                        );
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("thread");
        }

        let r = client
            .request_line(r#"{"op":"trace","last":64}"#)
            .expect("trace");
        let traces = r.get("traces").and_then(Json::as_arr).expect("traces");
        prop_assert!(!traces.is_empty());
        for trace in traces {
            assert_well_formed(trace);
        }

        handle.shutdown();
        join.join().expect("join");
    }
}
