//! End-to-end TCP integration: a real server on an ephemeral port, real
//! sockets, concurrent clients — answers must be bit-identical to direct
//! library calls, saturation must be the typed rejection, and the
//! shutdown checkpoint must resume bit-exactly.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use pfe_engine::{wire, Engine, EngineConfig, Json, Query};
use pfe_server::{Client, ClientError, Server, ServerConfig, ServerHandle, ShutdownReport};
use pfe_stream::gen::uniform_binary;
use pfe_window::{WindowConfig, WindowedEngine};

const D: u32 = 10;
const ROWS: usize = 1500;

/// The engine shape used on both sides of every parity check; the JSON
/// `start` request and the direct engine must agree on every parameter.
fn test_cfg() -> EngineConfig {
    EngineConfig {
        shards: 2,
        sample_t: 512,
        kmv_k: 64,
        seed: 3,
        fp: Some(pfe_engine::FpConfig {
            orders: vec![2.0, 1.5],
            stable_t: 4,
            ams_groups: 3,
            ams_per_group: 4,
        }),
        ..Default::default()
    }
}

fn start_request(window: Option<&str>) -> String {
    let cfg = test_cfg();
    let window = window
        .map(|w| format!(r#","window":{w}"#))
        .unwrap_or_default();
    let fp = cfg.fp.expect("test config enables fp");
    format!(
        concat!(
            r#"{{"op":"start","d":{d},"q":2,"shards":{shards},"sample_t":{sample_t},"#,
            r#""kmv_k":{kmv_k},"seed":{seed},"fp":{{"orders":[2.0,1.5],"stable_t":{stable_t},"#,
            r#""ams_groups":{ams_groups},"ams_per_group":{ams_per_group}}}{window}}}"#
        ),
        d = D,
        shards = cfg.shards,
        sample_t = cfg.sample_t,
        kmv_k = cfg.kmv_k,
        seed = cfg.seed,
        stable_t = fp.stable_t,
        ams_groups = fp.ams_groups,
        ams_per_group = fp.ams_per_group,
        window = window
    )
}

fn test_wcfg() -> WindowConfig {
    WindowConfig {
        bucket_rows: 128,
        tier_cap: 3,
        max_tiers: 4,
        merged_cache: 4,
    }
}

/// Dense rows of the deterministic test stream, in ingest order.
fn dense_rows(seed: u64) -> Vec<Vec<u16>> {
    let data = uniform_binary(D, ROWS, seed);
    let packed = match data {
        pfe_row::Dataset::Binary(m) => m.rows().to_vec(),
        pfe_row::Dataset::Qary(_) => unreachable!("generator yields binary data"),
    };
    packed
        .iter()
        .map(|row| (0..D).map(|i| ((row >> i) & 1) as u16).collect())
        .collect()
}

/// Serialize dense rows as `ingest` request lines (chunked).
fn ingest_lines(rows: &[Vec<u16>]) -> Vec<String> {
    rows.chunks(500)
        .map(|chunk| {
            let body: Vec<String> = chunk
                .iter()
                .map(|r| {
                    let syms: Vec<String> = r.iter().map(|s| s.to_string()).collect();
                    format!("[{}]", syms.join(","))
                })
                .collect();
            format!(r#"{{"op":"ingest","rows":[{}]}}"#, body.join(","))
        })
        .collect()
}

/// Remove the fields that legitimately differ between a shared-cache
/// concurrent server and a fresh direct engine (`cached`, `group_size`,
/// and the per-request `trace_id` echo), recursively — batch responses
/// nest answers.
fn strip_cost(json: &Json) -> Json {
    match json {
        Json::Obj(map) => Json::Obj(
            map.iter()
                .filter(|(k, _)| !matches!(k.as_str(), "cached" | "group_size" | "trace_id"))
                .map(|(k, v)| (k.clone(), strip_cost(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(strip_cost).collect()),
        other => other.clone(),
    }
}

/// `strip_cost` plus `epoch` (recursively — batch responses nest
/// answers): checkpointing bumps the plain engine's epoch, so resume
/// parity compares values/guarantees/provenance only.
fn strip_cost_and_epoch(json: &Json) -> Json {
    match json {
        Json::Obj(map) => Json::Obj(
            map.iter()
                .filter(|(k, _)| {
                    !matches!(k.as_str(), "cached" | "group_size" | "epoch" | "trace_id")
                })
                .map(|(k, v)| (k.clone(), strip_cost_and_epoch(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(strip_cost_and_epoch).collect()),
        other => other.clone(),
    }
}

fn spawn_server(cfg: ServerConfig) -> (ServerHandle, JoinHandle<ShutdownReport>) {
    let server = Server::bind(cfg).expect("bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("run"));
    (handle, join)
}

fn quick_poll() -> ServerConfig {
    ServerConfig {
        poll_interval: Duration::from_millis(5),
        ..Default::default()
    }
}

/// The statistic requests every parity check issues: all five statistics
/// (`F_p` at both plug-in families) plus a mask-colliding batch,
/// optionally windowed.
fn statistic_requests(window: Option<u64>) -> Vec<String> {
    let w = window
        .map(|n| format!(r#","window":{n}"#))
        .unwrap_or_default();
    vec![
        format!(r#"{{"op":"f0","cols":[0,1,2,3,4,5]{w}}}"#),
        format!(r#"{{"op":"f0","cols":[0,1]{w}}}"#),
        format!(r#"{{"op":"frequency","cols":[0,1],"pattern":[1,1]{w}}}"#),
        format!(r#"{{"op":"heavy_hitters","cols":[0,1,2],"phi":0.05{w}}}"#),
        format!(r#"{{"op":"l1_sample","cols":[0,1,2],"k":8,"seed":7{w}}}"#),
        format!(r#"{{"op":"fp","cols":[0,1,2,3,4,5],"p":2.0{w}}}"#),
        format!(r#"{{"op":"fp","cols":[0,1],"p":1.5{w}}}"#),
        format!(
            r#"{{"op":"batch","queries":[{{"op":"f0","cols":[0,1,2,3,4,5]{w}}},{{"op":"fp","cols":[0,1,2,3,4,5],"p":2.0{w}}},{{"op":"heavy_hitters","cols":[0,1,2],"phi":0.05{w}}}]}}"#
        ),
    ]
}

#[test]
fn concurrent_clients_match_direct_engine_bit_for_bit() {
    let rows = dense_rows(1);

    // The direct side: same config, same rows, same order.
    let direct = Engine::start(D, 2, test_cfg()).expect("start");
    for row in &rows {
        direct.push_dense(row).expect("push");
    }
    direct.refresh().expect("refresh");
    let expected: Vec<Json> = statistic_requests(None)
        .iter()
        .map(|req_line| {
            let req = Json::parse(req_line).expect("valid request");
            match req.get("op").and_then(Json::as_str) {
                Some("batch") => {
                    let queries: Vec<Query> = req
                        .get("queries")
                        .and_then(Json::as_arr)
                        .expect("queries")
                        .iter()
                        .map(|q| wire::query_from_json(q).expect("parse"))
                        .collect();
                    let answers: Vec<Json> = direct
                        .query_batch(&queries)
                        .into_iter()
                        .map(|a| wire::answer_to_json(&a.expect("ok"), 2))
                        .collect();
                    Json::obj([("ok", Json::Bool(true)), ("answers", Json::Arr(answers))])
                }
                _ => {
                    let q = wire::query_from_json(&req).expect("parse");
                    wire::answer_to_json(&direct.query(&q).expect("ok"), 2)
                }
            }
        })
        .map(|j| strip_cost(&j))
        .collect();
    let expected = Arc::new(expected);

    // The served side: one engine, started and fed over the wire.
    let (handle, join) = spawn_server(quick_poll());
    let addr = handle.addr();
    let mut feeder = Client::connect(addr).expect("connect");
    feeder.request_line(&start_request(None)).expect("start");
    for line in ingest_lines(&rows) {
        let r = feeder.request_line(&line).expect("ingest");
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "ingest failed: {r}");
    }
    let r = feeder
        .request_line(r#"{"op":"snapshot"}"#)
        .expect("snapshot");
    assert_eq!(r.get("epoch").and_then(Json::as_f64), Some(1.0));

    // N concurrent clients, interleaved statistics, several rounds each.
    let mut clients = Vec::new();
    for t in 0..4u64 {
        let expected = Arc::clone(&expected);
        clients.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            for round in 0..3 {
                for step in 0..statistic_requests(None).len() {
                    // Interleave: each thread walks the list from its own
                    // offset so different statistics overlap in flight.
                    let i = (step + t as usize + round) % expected.len();
                    let req = &statistic_requests(None)[i];
                    let resp = client.request_line(req).expect("query");
                    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "failed: {resp}");
                    assert_eq!(
                        strip_cost(&resp),
                        expected[i],
                        "served answer diverges from direct call for {req}"
                    );
                }
            }
            // quit closes this session; the server keeps running.
            let bye = client.request_line(r#"{"op":"quit"}"#).expect("quit");
            assert_eq!(bye.get("bye"), Some(&Json::Bool(true)));
        }));
    }
    for c in clients {
        c.join().expect("client thread");
    }

    // The feeder session survived its neighbors quitting.
    let stats = feeder
        .request_line(r#"{"op":"server_stats"}"#)
        .expect("stats");
    assert_eq!(
        stats.get("connections_accepted").and_then(Json::as_f64),
        Some(5.0)
    );
    assert_eq!(
        stats
            .get("engine")
            .and_then(|e| e.get("rows_ingested"))
            .and_then(Json::as_f64),
        Some(ROWS as f64)
    );

    handle.shutdown();
    let report = join.join().expect("server thread");
    assert_eq!(report.connections_accepted, 5);
    assert_eq!(report.rejected_saturated, 0);
}

#[test]
fn windowed_backend_matches_direct_windowed_engine() {
    let rows = dense_rows(2);

    let direct = WindowedEngine::start(D, 2, test_cfg(), test_wcfg()).expect("start");
    for row in &rows {
        direct.push_dense(row).expect("push");
    }

    let (handle, join) = spawn_server(quick_poll());
    let mut client = Client::connect(handle.addr()).expect("connect");
    let wcfg = test_wcfg();
    let win = format!(
        r#"{{"bucket_rows":{},"tier_cap":{},"max_tiers":{},"merged_cache":{}}}"#,
        wcfg.bucket_rows, wcfg.tier_cap, wcfg.max_tiers, wcfg.merged_cache
    );
    let r = client
        .request_line(&start_request(Some(&win)))
        .expect("start");
    assert_eq!(r.get("windowed"), Some(&Json::Bool(true)));
    for line in ingest_lines(&rows) {
        client.request_line(&line).expect("ingest");
    }

    // Windowed and whole-retention answers, including the fingerprint
    // epoch and the reported coverage, must be bit-identical: the ring
    // states are equal, so nothing may differ but cache metadata.
    for window in [Some(300u64), Some(1000), None] {
        for req_line in statistic_requests(window) {
            let req = Json::parse(&req_line).expect("valid");
            let served = client.request_line(&req_line).expect("query");
            assert_eq!(
                served.get("ok"),
                Some(&Json::Bool(true)),
                "failed: {served}"
            );
            let expect = match req.get("op").and_then(Json::as_str) {
                Some("batch") => {
                    let queries: Vec<Query> = req
                        .get("queries")
                        .and_then(Json::as_arr)
                        .expect("queries")
                        .iter()
                        .map(|q| wire::query_from_json(q).expect("parse"))
                        .collect();
                    let answers: Vec<Json> = direct
                        .query_batch(&queries)
                        .into_iter()
                        .map(|a| wire::answer_to_json(&a.expect("ok"), 2))
                        .collect();
                    Json::obj([("ok", Json::Bool(true)), ("answers", Json::Arr(answers))])
                }
                _ => {
                    let q = wire::query_from_json(&req).expect("parse");
                    wire::answer_to_json(&direct.query(&q).expect("ok"), 2)
                }
            };
            assert_eq!(
                strip_cost(&served),
                strip_cost(&expect),
                "diverges for {req_line}"
            );
        }
    }

    let ws = client.request_line(r#"{"op":"window_stats"}"#).expect("ws");
    assert_eq!(
        ws.get("retained_rows").and_then(Json::as_f64),
        Some(direct.retained_rows() as f64)
    );

    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn metrics_counters_account_for_every_concurrent_request_exactly() {
    // N clients each issue a known op mix; afterwards the `metrics` op
    // must account for every request exactly — counter totals and
    // latency-histogram counts both — with no loss under concurrency.
    const CLIENTS: u64 = 4;
    const MIX: &[(&str, usize)] = &[
        ("f0", 5),
        ("frequency", 3),
        ("heavy_hitters", 2),
        ("l1_sample", 1),
        ("fp", 2),
        ("stats", 1),
    ];
    fn req_for(op: &str) -> String {
        match op {
            "f0" => r#"{"op":"f0","cols":[0,1,2,3]}"#.to_string(),
            "frequency" => r#"{"op":"frequency","cols":[0,1],"pattern":[1,1]}"#.to_string(),
            "heavy_hitters" => r#"{"op":"heavy_hitters","cols":[0,1,2],"phi":0.05}"#.to_string(),
            "l1_sample" => r#"{"op":"l1_sample","cols":[0,1],"k":4,"seed":7}"#.to_string(),
            "fp" => r#"{"op":"fp","cols":[0,1,2],"p":1.5}"#.to_string(),
            other => format!(r#"{{"op":"{other}"}}"#),
        }
    }

    let rows = dense_rows(5);
    let (handle, join) = spawn_server(quick_poll());
    let addr = handle.addr();
    let mut feeder = Client::connect(addr).expect("connect");
    feeder.request_line(&start_request(None)).expect("start");
    let ingest_requests = ingest_lines(&rows);
    for line in &ingest_requests {
        feeder.request_line(line).expect("ingest");
    }
    feeder
        .request_line(r#"{"op":"snapshot"}"#)
        .expect("snapshot");

    let workers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for &(op, n) in MIX {
                    for _ in 0..n {
                        let r = client.request_line(&req_for(op)).expect("request");
                        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "failed: {r}");
                    }
                }
                client.request_line(r#"{"op":"quit"}"#).expect("quit");
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }

    let m = feeder.request_line(r#"{"op":"metrics"}"#).expect("metrics");
    let counters = m.get("counters").expect("counters");
    let histograms = m.get("histograms").expect("histograms");
    let counter = |name: &str| counters.get(name).and_then(Json::as_f64).unwrap_or(0.0);
    let hist_count = |name: &str| {
        histograms
            .get(name)
            .and_then(|h| h.get("count"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };

    // Per-op request counters and latency histograms agree with each
    // other and with what the clients actually sent.
    let mut total = 0.0;
    for &(op, n) in MIX {
        let sent = (CLIENTS as usize * n) as f64;
        assert_eq!(counter(&format!("server_op_requests_{op}")), sent, "{op}");
        assert_eq!(
            hist_count(&format!("server_op_latency_ns_{op}")),
            sent,
            "latency count for {op}"
        );
        total += sent;
    }
    assert_eq!(counter("server_op_requests_quit"), CLIENTS as f64);
    assert_eq!(counter("server_op_requests_start"), 1.0);
    assert_eq!(counter("server_op_requests_snapshot"), 1.0);
    assert_eq!(
        counter("server_op_requests_ingest"),
        ingest_requests.len() as f64
    );
    // Everything the feeder + clients sent before this metrics request.
    total += (CLIENTS + 2) as f64 + ingest_requests.len() as f64;
    assert_eq!(counter("server_requests_handled"), total);
    assert_eq!(counter("server_connections_accepted"), (CLIENTS + 1) as f64);

    // The engine saw exactly one query per statistic request, and its
    // per-statistic latency histograms counted every one — `fp` included.
    for &(op, n) in &MIX[..5] {
        let sent = (CLIENTS as usize * n) as f64;
        assert_eq!(counter(&format!("engine_queries_{op}")), sent, "{op}");
        assert_eq!(
            hist_count(&format!("engine_query_latency_ns_{op}")),
            sent,
            "engine latency count for {op}"
        );
    }

    handle.shutdown();
    let report = join.join().expect("server thread");
    assert_eq!(report.requests_handled, total as u64 + 1); // + the metrics op
}

#[test]
fn saturation_is_a_typed_rejection_not_a_queue() {
    // One worker, rendezvous queue: the first connection owns the worker
    // for its whole session, so the second must bounce.
    let (handle, join) = spawn_server(ServerConfig {
        workers: 1,
        queue: 0,
        ..quick_poll()
    });
    let mut first = Client::connect(handle.addr()).expect("connect");
    // A round trip proves the worker has picked this session up.
    first.request_line(&start_request(None)).expect("start");

    let mut second = Client::connect(handle.addr()).expect("connect");
    let rejection = second.read_response().expect("rejection line");
    assert_eq!(rejection.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(
        rejection.get("code").and_then(Json::as_str),
        Some("saturated"),
        "rejection must be machine-matchable: {rejection}"
    );
    // The rejected connection is closed, not queued.
    assert!(matches!(
        second.request_line(r#"{"op":"stats"}"#),
        Err(ClientError::ServerClosed) | Err(ClientError::Io(_))
    ));

    // The server told the first session about the rejection…
    let stats = first
        .request_line(r#"{"op":"server_stats"}"#)
        .expect("stats");
    assert_eq!(
        stats.get("rejected_saturated").and_then(Json::as_f64),
        Some(1.0)
    );
    // …and once the worker frees up, new connections are served again.
    let bye = first.request_line(r#"{"op":"quit"}"#).expect("quit");
    assert_eq!(bye.get("bye"), Some(&Json::Bool(true)));
    let mut third = loop {
        // The worker needs a poll tick to return to the queue.
        let mut c = Client::connect(handle.addr()).expect("connect");
        match c.request_line(r#"{"op":"server_stats"}"#) {
            Ok(_) => break c,
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    };
    third.request_line(r#"{"op":"quit"}"#).expect("quit");

    handle.shutdown();
    let report = join.join().expect("server thread");
    assert_eq!(report.rejected_saturated, 1);
}

#[test]
fn shutdown_op_checkpoints_and_resume_is_bit_exact() {
    let dir = std::env::temp_dir().join("pfe-server-tcp-shutdown");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join("engine.pfes");
    std::fs::remove_file(&path).ok();

    let rows = dense_rows(3);
    let (handle, join) = spawn_server(ServerConfig {
        checkpoint_path: Some(path.clone()),
        ..quick_poll()
    });
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.request_line(&start_request(None)).expect("start");
    for line in ingest_lines(&rows) {
        client.request_line(&line).expect("ingest");
    }
    client
        .request_line(r#"{"op":"snapshot"}"#)
        .expect("snapshot");
    let before: Vec<Json> = statistic_requests(None)
        .iter()
        .map(|req| strip_cost_and_epoch(&client.request_line(req).expect("query")))
        .collect();

    // The wire shutdown: the reply announces the configured path, then
    // the server drains every session and writes the checkpoint — so
    // requests acknowledged during the drain are always included.
    let r = client
        .request_line(r#"{"op":"shutdown"}"#)
        .expect("shutdown");
    assert_eq!(
        r.get("checkpoint").and_then(Json::as_str),
        Some(path.display().to_string().as_str())
    );
    let report = join.join().expect("server thread");
    assert_eq!(report.checkpointed, Some(path.clone()));
    assert!(path.exists());

    // Resume the checkpoint directly: every statistic answers
    // bit-identically (modulo the snapshot epoch, which the checkpoint's
    // refresh advanced).
    let resumed = Engine::resume(&path, test_cfg()).expect("resume");
    for (req_line, before) in statistic_requests(None).iter().zip(&before) {
        let req = Json::parse(req_line).expect("valid");
        let after = match req.get("op").and_then(Json::as_str) {
            Some("batch") => {
                let queries: Vec<Query> = req
                    .get("queries")
                    .and_then(Json::as_arr)
                    .expect("queries")
                    .iter()
                    .map(|q| wire::query_from_json(q).expect("parse"))
                    .collect();
                let answers: Vec<Json> = resumed
                    .query_batch(&queries)
                    .into_iter()
                    .map(|a| wire::answer_to_json(&a.expect("ok"), 2))
                    .collect();
                Json::obj([("ok", Json::Bool(true)), ("answers", Json::Arr(answers))])
            }
            _ => {
                let q = wire::query_from_json(&req).expect("parse");
                wire::answer_to_json(&resumed.query(&q).expect("ok"), 2)
            }
        };
        assert_eq!(
            &strip_cost_and_epoch(&after),
            before,
            "resumed answer diverges for {req_line}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn windowed_shutdown_checkpoint_resumes_bit_exact() {
    let dir = std::env::temp_dir().join("pfe-server-tcp-shutdown-window");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join("ring.pfew");
    std::fs::remove_file(&path).ok();

    let rows = dense_rows(4);
    let (handle, join) = spawn_server(ServerConfig {
        checkpoint_path: Some(path.clone()),
        ..quick_poll()
    });
    let mut client = Client::connect(handle.addr()).expect("connect");
    let wcfg = test_wcfg();
    let win = format!(
        r#"{{"bucket_rows":{},"tier_cap":{},"max_tiers":{},"merged_cache":{}}}"#,
        wcfg.bucket_rows, wcfg.tier_cap, wcfg.max_tiers, wcfg.merged_cache
    );
    client
        .request_line(&start_request(Some(&win)))
        .expect("start");
    for line in ingest_lines(&rows) {
        client.request_line(&line).expect("ingest");
    }
    let before: Vec<Json> = statistic_requests(Some(400))
        .iter()
        .map(|req| strip_cost(&client.request_line(req).expect("query")))
        .collect();

    // Signal-style shutdown (the handle, not the op): the server itself
    // writes the checkpoint during drain.
    handle.shutdown();
    let report = join.join().expect("server thread");
    assert_eq!(report.checkpointed, Some(path.clone()));

    // The ring resumes bit-exactly — fingerprint epochs included.
    let resumed = WindowedEngine::resume(&path, test_cfg()).expect("resume");
    for (req_line, before) in statistic_requests(Some(400)).iter().zip(&before) {
        let req = Json::parse(req_line).expect("valid");
        let after = match req.get("op").and_then(Json::as_str) {
            Some("batch") => {
                let queries: Vec<Query> = req
                    .get("queries")
                    .and_then(Json::as_arr)
                    .expect("queries")
                    .iter()
                    .map(|q| wire::query_from_json(q).expect("parse"))
                    .collect();
                let answers: Vec<Json> = resumed
                    .query_batch(&queries)
                    .into_iter()
                    .map(|a| wire::answer_to_json(&a.expect("ok"), 2))
                    .collect();
                Json::obj([("ok", Json::Bool(true)), ("answers", Json::Arr(answers))])
            }
            _ => {
                let q = wire::query_from_json(&req).expect("parse");
                wire::answer_to_json(&resumed.query(&q).expect("ok"), 2)
            }
        };
        assert_eq!(
            &strip_cost(&after),
            before,
            "resumed windowed answer diverges for {req_line}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn checkpoint_file_conventions() {
    // The saved files are regular pfe-persist frames: resuming the plain
    // checkpoint as a window ring (and vice versa) is a typed error, not
    // a panic — exercised here through the public resume APIs.
    let dir = std::env::temp_dir().join("pfe-server-tcp-kind");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join("kind.pfes");
    std::fs::remove_file(&path).ok();

    let (handle, join) = spawn_server(quick_poll());
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.request_line(&start_request(None)).expect("start");
    client
        .request_line(r#"{"op":"ingest","rows":[[0,1,0,0,1,0,1,1,0,0]]}"#)
        .expect("ingest");
    let r = client
        .request_line(&format!(
            r#"{{"op":"checkpoint","path":"{}"}}"#,
            path.display()
        ))
        .expect("checkpoint");
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
    assert!(matches!(
        WindowedEngine::resume(&path, test_cfg()),
        Err(pfe_engine::EngineError::Persist(_))
    ));
    handle.shutdown();
    join.join().expect("server thread");
    std::fs::remove_file(&path).ok();
}
