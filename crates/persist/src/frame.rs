//! The file frame: magic, version, record kind, payload length, CRC-32.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"PFES"
//! 4       2     format version (currently 1)
//! 6       2     record kind (caller-chosen tag, checked on read)
//! 8       8     payload length in bytes
//! 16      len   payload
//! 16+len  4     CRC-32 over bytes [0, 16+len)
//! ```
//!
//! The CRC covers the header too, so version/kind/length corruption is
//! caught even when the payload happens to survive. Reads are fully
//! defensive: every failure is a typed [`PersistError`], never a panic.

use std::path::Path;

use crate::codec::{Decoder, Encoder};
use crate::crc32::crc32;
use crate::error::PersistError;
use crate::Persist;

/// The four magic bytes opening every pfe-persist file.
pub const MAGIC: [u8; 4] = *b"PFES";

/// The format version this build writes and reads.
pub const VERSION: u16 = 1;

/// Frame header length (magic + version + kind + payload length).
const HEADER_LEN: usize = 16;

/// Well-known record kinds. Kinds partition the namespace of frame
/// contents so a file of one type handed to another type's loader fails
/// with [`PersistError::WrongKind`] instead of a confusing `Malformed`.
pub mod kind {
    /// A merged engine snapshot (`pfe-engine`'s `Snapshot`).
    pub const SNAPSHOT: u16 = 1;
    /// A `SummarySuite` (exact + sample + α-net bundle).
    pub const SUMMARY_SUITE: u16 = 2;
    /// A standalone sketch or summary (tests, tooling).
    pub const SKETCH: u16 = 3;
    /// A sliding-window bucket ring (`pfe-window`'s `BucketRing`).
    pub const WINDOW: u16 = 4;
}

/// Wrap `payload` in a framed byte vector with the given record kind.
pub fn frame(record_kind: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&record_kind.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Validate a framed byte vector and return its payload.
///
/// # Errors
/// `BadMagic`, `UnsupportedVersion`, `WrongKind`, `Truncated`, or
/// `ChecksumMismatch` — each naming exactly what disagreed.
pub fn unframe(bytes: &[u8], expected_kind: u16) -> Result<&[u8], PersistError> {
    let mut d = Decoder::new(bytes);
    let magic: [u8; 4] = d
        .take_bytes(4)?
        .try_into()
        .expect("take_bytes returned 4 bytes");
    if magic != MAGIC {
        return Err(PersistError::BadMagic { found: magic });
    }
    let version = d.take_u16()?;
    if version != VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    let found_kind = d.take_u16()?;
    if found_kind != expected_kind {
        return Err(PersistError::WrongKind {
            found: found_kind,
            expected: expected_kind,
        });
    }
    let len = d.take_u64()?;
    let len: usize = len
        .try_into()
        .map_err(|_| PersistError::Malformed(format!("payload length {len} exceeds usize")))?;
    let payload = d.take_bytes(len)?;
    let stored = d.take_u32()?;
    d.expect_end()?;
    let computed = crc32(&bytes[..HEADER_LEN + len]);
    if stored != computed {
        return Err(PersistError::ChecksumMismatch { stored, computed });
    }
    Ok(payload)
}

/// Encode `value` into a complete framed byte vector.
///
/// The header is reserved up front and patched in place, so the payload
/// is produced directly into the output buffer — no second copy on the
/// checkpoint hot path.
pub fn to_bytes<T: Persist>(record_kind: u16, value: &T) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_bytes(&[0u8; HEADER_LEN]);
    value.encode(&mut enc);
    let mut out = enc.into_bytes();
    let payload_len = (out.len() - HEADER_LEN) as u64;
    out[0..4].copy_from_slice(&MAGIC);
    out[4..6].copy_from_slice(&VERSION.to_le_bytes());
    out[6..8].copy_from_slice(&record_kind.to_le_bytes());
    out[8..16].copy_from_slice(&payload_len.to_le_bytes());
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decode a `T` from a framed byte vector, requiring the payload to be
/// fully consumed.
///
/// # Errors
/// Frame errors (see [`unframe`]) plus any decode error of `T`.
pub fn from_bytes<T: Persist>(record_kind: u16, bytes: &[u8]) -> Result<T, PersistError> {
    let payload = unframe(bytes, record_kind)?;
    let mut dec = Decoder::new(payload);
    let value = T::decode(&mut dec)?;
    dec.expect_end()?;
    Ok(value)
}

/// Write `value` to `path` as a framed file, atomically: the bytes go to
/// a temporary sibling file which is fsynced and then renamed over the
/// target, so a crash mid-write can never destroy a previous good file
/// at `path` — the checkpoint either fully replaces it or leaves it
/// untouched.
///
/// # Errors
/// I/O errors, stringified into [`PersistError::Io`].
pub fn save<T: Persist, P: AsRef<Path>>(
    path: P,
    record_kind: u16,
    value: &T,
) -> Result<(), PersistError> {
    use std::io::Write;
    use std::sync::atomic::{AtomicU64, Ordering};
    // Unique per process *and* per call: two threads or two processes
    // checkpointing to one path must not interleave writes in a shared
    // temporary file (each rename then stays all-or-nothing).
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(
        ".{}.{}.tmp",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&to_bytes(record_kind, value))?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result?;
    Ok(())
}

/// Read a framed file from `path` and decode a `T`.
///
/// # Errors
/// I/O errors plus every decode error of [`from_bytes`].
pub fn load<T: Persist, P: AsRef<Path>>(path: P, record_kind: u16) -> Result<T, PersistError> {
    let bytes = std::fs::read(path)?;
    from_bytes(record_kind, &bytes)
}

/// Read just the record kind from a framed file without loading the
/// payload — the first 8 header bytes (magic, version, kind) are enough.
/// This lets tooling dispatch on file type (engine snapshot vs window
/// ring) before committing to a full decode; the CRC is *not* checked
/// here, so the subsequent kind-specific `load` remains the integrity
/// gate.
///
/// # Errors
/// `Io`, `Truncated`, `BadMagic`, or `UnsupportedVersion`.
pub fn peek_kind<P: AsRef<Path>>(path: P) -> Result<u16, PersistError> {
    use std::io::Read;
    let mut file = std::fs::File::open(path)?;
    let mut header = [0u8; 8];
    let mut got = 0;
    while got < header.len() {
        let n = file.read(&mut header[got..])?;
        if n == 0 {
            return Err(PersistError::Truncated {
                needed: header.len(),
                available: got,
            });
        }
        got += n;
    }
    let magic: [u8; 4] = header[0..4].try_into().expect("slice of 4");
    if magic != MAGIC {
        return Err(PersistError::BadMagic { found: magic });
    }
    let version = u16::from_le_bytes(header[4..6].try_into().expect("slice of 2"));
    if version != VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    Ok(u16::from_le_bytes(
        header[6..8].try_into().expect("slice of 2"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let payload = b"hello, summaries";
        let framed = frame(kind::SKETCH, payload);
        assert_eq!(unframe(&framed, kind::SKETCH).unwrap(), payload);
    }

    #[test]
    fn wrong_kind_is_typed() {
        let framed = frame(kind::SKETCH, b"x");
        assert_eq!(
            unframe(&framed, kind::SNAPSHOT),
            Err(PersistError::WrongKind {
                found: kind::SKETCH,
                expected: kind::SNAPSHOT
            })
        );
    }

    #[test]
    fn bad_magic_and_version() {
        let mut framed = frame(kind::SKETCH, b"x");
        framed[0] = b'Q';
        assert!(matches!(
            unframe(&framed, kind::SKETCH),
            Err(PersistError::BadMagic { .. })
        ));
        let mut framed = frame(kind::SKETCH, b"x");
        framed[4] = 99; // version low byte
        assert_eq!(
            unframe(&framed, kind::SKETCH),
            Err(PersistError::UnsupportedVersion {
                found: 99,
                supported: VERSION
            })
        );
    }

    #[test]
    fn every_single_bit_flip_detected() {
        let framed = frame(kind::SKETCH, b"some payload worth protecting");
        for byte in 0..framed.len() {
            for bit in 0..8 {
                let mut corrupt = framed.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    unframe(&corrupt, kind::SKETCH).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_detected() {
        let framed = frame(kind::SKETCH, b"payload");
        for cut in 0..framed.len() {
            assert!(
                unframe(&framed[..cut], kind::SKETCH).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut framed = frame(kind::SKETCH, b"x");
        framed.push(0);
        assert!(matches!(
            unframe(&framed, kind::SKETCH),
            Err(PersistError::Malformed(_))
        ));
    }

    #[test]
    fn to_bytes_matches_frame_of_payload() {
        let value = vec![1u64, 2, 3];
        let mut enc = Encoder::new();
        value.encode(&mut enc);
        assert_eq!(
            to_bytes(kind::SKETCH, &value),
            frame(kind::SKETCH, enc.as_slice()),
            "in-place header patching must produce the canonical frame"
        );
    }

    #[test]
    fn peek_kind_reads_header_only() {
        let dir = std::env::temp_dir().join("pfe-persist-peek-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("peek.pfes");
        save(&path, kind::WINDOW, &7u64).unwrap();
        assert_eq!(peek_kind(&path).unwrap(), kind::WINDOW);
        // Bad magic, bad version, and short files are typed errors.
        let framed = frame(kind::SNAPSHOT, b"x");
        let mut bad = framed.clone();
        bad[0] = b'Q';
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            peek_kind(&path),
            Err(PersistError::BadMagic { .. })
        ));
        let mut bad = framed.clone();
        bad[4] = 9;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            peek_kind(&path),
            Err(PersistError::UnsupportedVersion { found: 9, .. })
        ));
        std::fs::write(&path, &framed[..5]).unwrap();
        assert!(matches!(
            peek_kind(&path),
            Err(PersistError::Truncated { .. })
        ));
        assert!(matches!(
            peek_kind(dir.join("absent.pfes")),
            Err(PersistError::Io(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_load_roundtrip_via_path() {
        let dir = std::env::temp_dir().join("pfe-persist-frame-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("value.pfes");
        save(&path, kind::SKETCH, &0xdead_beefu64).unwrap();
        let back: u64 = load(&path, kind::SKETCH).unwrap();
        assert_eq!(back, 0xdead_beef);
        // Atomic write: no temporary sibling left behind, and re-saving
        // over an existing file works.
        let leftovers = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .count();
        assert_eq!(leftovers, 0, "temporary file left behind");
        save(&path, kind::SKETCH, &1u64).unwrap();
        assert_eq!(load::<u64, _>(&path, kind::SKETCH).unwrap(), 1);
        let missing: Result<u64, _> = load(dir.join("absent.pfes"), kind::SKETCH);
        assert!(matches!(missing, Err(PersistError::Io(_))));
        std::fs::remove_file(&path).ok();
    }
}
