//! CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
//!
//! The frame layer stores a CRC over every byte it writes so that
//! bit-flips, truncations that happen to preserve the declared length, and
//! partial writes are all detected before a payload reaches a decoder.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xedb8_8320;

/// The 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (IEEE, as used by gzip/zip/PNG).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(&[0u8; 64]);
        let mut flipped = [0u8; 64];
        flipped[40] ^= 1;
        assert_ne!(a, crc32(&flipped));
    }
}
