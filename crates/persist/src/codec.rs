//! The byte-level encoder/decoder pair.
//!
//! All integers are fixed-width little-endian; `f64` travels as its IEEE
//! bit pattern (bit-exact round trips, NaN included); lengths are `u64`
//! validated against the bytes actually remaining, so a corrupted length
//! field cannot trigger a huge allocation or a panic.

use crate::error::PersistError;

/// Append-only byte sink used by [`Persist::encode`](crate::Persist::encode).
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Fresh, empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the encoder, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u128`.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (bit-exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a collection length as `u64`.
    pub fn put_len(&mut self, n: usize) {
        self.put_u64(n as u64);
    }

    /// Append raw bytes (no length prefix; pair with [`put_len`](Self::put_len)).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Bounds-checked reader over an untrusted byte slice.
///
/// Every `take_*` returns a typed error instead of panicking; lengths are
/// validated against the remaining input before any allocation.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take `n` raw bytes.
    ///
    /// # Errors
    /// `Truncated` if fewer than `n` bytes remain.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], PersistError> {
        Ok(self
            .take_bytes(N)?
            .try_into()
            .expect("take_bytes returned N bytes"))
    }

    /// Take one byte.
    ///
    /// # Errors
    /// `Truncated` at end of input.
    pub fn take_u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take_array::<1>()?[0])
    }

    /// Take a `bool` (one byte; anything but 0/1 is `Malformed`).
    ///
    /// # Errors
    /// `Truncated` or `Malformed`.
    pub fn take_bool(&mut self) -> Result<bool, PersistError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(PersistError::Malformed(format!(
                "bool byte must be 0 or 1, got {other}"
            ))),
        }
    }

    /// Take a little-endian `u16`.
    ///
    /// # Errors
    /// `Truncated`.
    pub fn take_u16(&mut self) -> Result<u16, PersistError> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    /// Take a little-endian `u32`.
    ///
    /// # Errors
    /// `Truncated`.
    pub fn take_u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Take a little-endian `u64`.
    ///
    /// # Errors
    /// `Truncated`.
    pub fn take_u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Take a little-endian `u128`.
    ///
    /// # Errors
    /// `Truncated`.
    pub fn take_u128(&mut self) -> Result<u128, PersistError> {
        Ok(u128::from_le_bytes(self.take_array()?))
    }

    /// Take a little-endian `i64`.
    ///
    /// # Errors
    /// `Truncated`.
    pub fn take_i64(&mut self) -> Result<i64, PersistError> {
        Ok(i64::from_le_bytes(self.take_array()?))
    }

    /// Take an `f64` from its IEEE bit pattern.
    ///
    /// # Errors
    /// `Truncated`.
    pub fn take_f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Take a collection length written by [`Encoder::put_len`], validated
    /// so that `n` elements of at least `min_elem_bytes` each could
    /// actually still be present. This is the defence against corrupted
    /// length fields: `Vec::with_capacity` is only ever called with a
    /// value the input can back.
    ///
    /// # Errors
    /// `Truncated` if the length field itself is missing, `Malformed` if
    /// the declared length cannot fit in the remaining input (or in
    /// `usize`).
    pub fn take_len(&mut self, min_elem_bytes: usize) -> Result<usize, PersistError> {
        let n = self.take_u64()?;
        let n: usize = n
            .try_into()
            .map_err(|_| PersistError::Malformed(format!("length {n} exceeds usize")))?;
        let needed = n
            .checked_mul(min_elem_bytes.max(1))
            .ok_or_else(|| PersistError::Malformed(format!("length {n} overflows byte budget")))?;
        if needed > self.remaining() {
            return Err(PersistError::Malformed(format!(
                "declared length {n} needs {needed} byte(s) but only {} remain",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Assert that the input was fully consumed (frame payloads must not
    /// carry trailing garbage).
    ///
    /// # Errors
    /// `Malformed` if bytes remain.
    pub fn expect_end(&self) -> Result<(), PersistError> {
        if self.remaining() != 0 {
            return Err(PersistError::Malformed(format!(
                "{} trailing byte(s) after the last field",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut e = Encoder::new();
        e.put_u8(7);
        e.put_bool(true);
        e.put_u16(65_000);
        e.put_u32(4_000_000_000);
        e.put_u64(u64::MAX - 1);
        e.put_u128(u128::MAX / 3);
        e.put_i64(-42);
        e.put_f64(-0.1);
        e.put_f64(f64::NAN);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.take_u8().unwrap(), 7);
        assert!(d.take_bool().unwrap());
        assert_eq!(d.take_u16().unwrap(), 65_000);
        assert_eq!(d.take_u32().unwrap(), 4_000_000_000);
        assert_eq!(d.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.take_u128().unwrap(), u128::MAX / 3);
        assert_eq!(d.take_i64().unwrap(), -42);
        assert_eq!(d.take_f64().unwrap().to_bits(), (-0.1f64).to_bits());
        assert!(d.take_f64().unwrap().is_nan());
        d.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_typed() {
        let mut e = Encoder::new();
        e.put_u32(5);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes[..2]);
        assert_eq!(
            d.take_u32(),
            Err(PersistError::Truncated {
                needed: 4,
                available: 2
            })
        );
    }

    #[test]
    fn hostile_length_rejected_before_allocation() {
        let mut e = Encoder::new();
        e.put_len(usize::MAX); // claims ~2^64 elements, provides none
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.take_len(8), Err(PersistError::Malformed(_))));
    }

    #[test]
    fn length_within_input_accepted() {
        let mut e = Encoder::new();
        e.put_len(3);
        for v in [1u64, 2, 3] {
            e.put_u64(v);
        }
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.take_len(8).unwrap(), 3);
    }

    #[test]
    fn bad_bool_and_trailing_bytes_rejected() {
        let mut d = Decoder::new(&[2u8]);
        assert!(matches!(d.take_bool(), Err(PersistError::Malformed(_))));
        let d = Decoder::new(&[0u8]);
        assert!(matches!(d.expect_end(), Err(PersistError::Malformed(_))));
    }
}
