//! Typed decode/IO errors.
//!
//! Decoding untrusted bytes must never panic: every failure mode of the
//! codec and the frame layer is a variant here, so callers can distinguish
//! "file from a newer version" from "file got corrupted in transit" from
//! "this is not one of our files at all".

/// Errors surfaced by encoding, decoding, and the file frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// An I/O error, stringified (std::io::Error is neither `Clone` nor
    /// `PartialEq`, which the error consumers here rely on).
    Io(String),
    /// The first four bytes are not the expected magic.
    BadMagic {
        /// The bytes actually found.
        found: [u8; 4],
    },
    /// The frame was written by an unsupported format version.
    UnsupportedVersion {
        /// Version found in the frame header.
        found: u16,
        /// The version this build reads and writes.
        supported: u16,
    },
    /// The frame holds a different record kind than the caller expected
    /// (e.g. a sketch file passed to the snapshot loader).
    WrongKind {
        /// Kind tag found in the frame header.
        found: u16,
        /// Kind tag the caller asked for.
        expected: u16,
    },
    /// The input ended before the declared content did.
    Truncated {
        /// Bytes the decoder needed for the next field.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The CRC-32 over the frame does not match the stored checksum.
    ChecksumMismatch {
        /// Checksum stored in the frame trailer.
        stored: u32,
        /// Checksum computed over the received bytes.
        computed: u32,
    },
    /// The bytes decoded, but the resulting values violate an invariant of
    /// the target type (lengths disagree, parameters out of range, ...).
    Malformed(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(msg) => write!(f, "io error: {msg}"),
            Self::BadMagic { found } => {
                write!(f, "bad magic {found:02x?}: not a pfe-persist file")
            }
            Self::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported format version {found} (this build supports {supported})"
            ),
            Self::WrongKind { found, expected } => {
                write!(f, "wrong record kind {found} (expected {expected})")
            }
            Self::Truncated { needed, available } => write!(
                f,
                "truncated input: needed {needed} more byte(s), {available} available"
            ),
            Self::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            Self::Malformed(msg) => write!(f, "malformed payload: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        assert!(PersistError::BadMagic { found: *b"ABCD" }
            .to_string()
            .contains("magic"));
        assert!(PersistError::UnsupportedVersion {
            found: 9,
            supported: 1
        }
        .to_string()
        .contains("version 9"));
        assert!(PersistError::Truncated {
            needed: 8,
            available: 3
        }
        .to_string()
        .contains("truncated"));
        assert!(PersistError::ChecksumMismatch {
            stored: 1,
            computed: 2
        }
        .to_string()
        .contains("checksum"));
    }

    #[test]
    fn io_errors_convert() {
        let e: PersistError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, PersistError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }
}
