#![deny(missing_docs)]
//! `pfe-persist` — versioned, checksummed binary serialization for the
//! paper's summaries.
//!
//! The whole point of a streaming summary is to outlive the stream: the
//! Theorem 5.1 uniform sample and the Section 6 α-net of β-approximate
//! sketches stand in for the matrix `A` after the data is gone. This crate
//! makes them outlive the *process* too. It has zero dependencies and
//! supplies three layers:
//!
//! 1. [`Encoder`]/[`Decoder`] — fixed-width little-endian primitives with
//!    fully defensive reads (typed errors, never panics, length fields
//!    validated before any allocation);
//! 2. the [`Persist`] trait — `encode`/`decode` implemented by every
//!    summary in the workspace (sketches in `pfe-sketch`, summaries in
//!    `pfe-core`, snapshots in `pfe-engine`), with impls for primitives,
//!    `Vec`, `Option`, and boxed slices provided here;
//! 3. the [`frame`] module — `magic + version + kind + length + CRC-32`
//!    file framing, so corrupted, truncated, version-skewed, or
//!    wrong-typed files are rejected with a precise [`PersistError`].
//!
//! Encoding is canonical: encoding equal values yields equal bytes (maps
//! are written in sorted key order by their owners), and decoding then
//! re-encoding is the identity. Seeded state (PRNG positions, hash
//! coefficients) is captured bit-exactly, so a decoded summary answers
//! every query — and merges with live summaries — exactly like the
//! original.
//!
//! ```
//! use pfe_persist::{frame, Persist};
//!
//! let value: Vec<u64> = vec![3, 1, 4, 1, 5];
//! let bytes = frame::to_bytes(frame::kind::SKETCH, &value);
//! let back: Vec<u64> = frame::from_bytes(frame::kind::SKETCH, &bytes).unwrap();
//! assert_eq!(back, value);
//! // A flipped bit is caught by the checksum, not by the decoder guessing:
//! let mut corrupt = bytes.clone();
//! corrupt[20] ^= 1;
//! assert!(frame::from_bytes::<Vec<u64>>(frame::kind::SKETCH, &corrupt).is_err());
//! ```

pub mod codec;
pub mod crc32;
pub mod error;
pub mod frame;

pub use codec::{Decoder, Encoder};
pub use error::PersistError;
pub use frame::{kind, load, peek_kind, save, MAGIC, VERSION};

/// A type with a stable binary wire format.
///
/// Implementations must guarantee that `decode(encode(x)) == x` in the
/// sense of observable behaviour: a decoded summary answers every query
/// with bit-identical results and merges exactly like the original.
/// `decode` must never panic on arbitrary bytes — all invariant
/// violations are [`PersistError::Malformed`].
pub trait Persist: Sized {
    /// A lower bound on the encoded size of one value, in bytes. Used by
    /// container decoders to validate a declared element count against
    /// the input actually remaining *before* pre-allocating — with the
    /// default of 1, a hostile length field could still force an
    /// allocation of `size_of::<T>()` times the input size, so
    /// fixed-width types override this with their exact wire size.
    const MIN_WIRE_BYTES: usize = 1;

    /// Append this value's wire representation to `enc`.
    fn encode(&self, enc: &mut Encoder);

    /// Decode a value from `dec`, validating every invariant.
    ///
    /// # Errors
    /// `Truncated` when the input ends early, `Malformed` when decoded
    /// values violate the target type's invariants.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError>;
}

macro_rules! persist_primitive {
    ($($t:ty => ($put:ident, $take:ident, $width:literal)),+ $(,)?) => {$(
        impl Persist for $t {
            const MIN_WIRE_BYTES: usize = $width;
            fn encode(&self, enc: &mut Encoder) {
                enc.$put(*self);
            }
            fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
                dec.$take()
            }
        }
    )+};
}

persist_primitive! {
    u8 => (put_u8, take_u8, 1),
    bool => (put_bool, take_bool, 1),
    u16 => (put_u16, take_u16, 2),
    u32 => (put_u32, take_u32, 4),
    u64 => (put_u64, take_u64, 8),
    u128 => (put_u128, take_u128, 16),
    i64 => (put_i64, take_i64, 8),
    f64 => (put_f64, take_f64, 8),
}

impl<T: Persist> Persist for Vec<T> {
    const MIN_WIRE_BYTES: usize = 8; // the length field

    fn encode(&self, enc: &mut Encoder) {
        enc.put_len(self.len());
        for item in self {
            item.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        // The element wire size caps the pre-allocation at what the
        // remaining input can actually back.
        let n = dec.take_len(T::MIN_WIRE_BYTES)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<T: Persist> Persist for Box<[T]> {
    const MIN_WIRE_BYTES: usize = 8; // the length field

    fn encode(&self, enc: &mut Encoder) {
        enc.put_len(self.len());
        for item in self.iter() {
            item.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        Ok(Vec::<T>::decode(dec)?.into_boxed_slice())
    }
}

impl<T: Persist> Persist for Option<T> {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            None => enc.put_u8(0),
            Some(v) => {
                enc.put_u8(1);
                v.encode(enc);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        match dec.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(dec)?)),
            other => Err(PersistError::Malformed(format!(
                "option tag must be 0 or 1, got {other}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Persist + PartialEq + std::fmt::Debug>(value: T) {
        let mut enc = Encoder::new();
        value.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(T::decode(&mut dec).unwrap(), value);
        dec.expect_end().unwrap();
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(true);
        roundtrip(u16::MAX);
        roundtrip(123_456u32);
        roundtrip(u64::MAX);
        roundtrip(u128::MAX);
        roundtrip(i64::MIN);
        roundtrip(-1.5f64);
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip::<Vec<u64>>(vec![]);
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(vec![vec![1u16], vec![], vec![2, 3]]);
        roundtrip::<Option<u32>>(None);
        roundtrip(Some(7u32));
        roundtrip(vec![0u16, 9, 2].into_boxed_slice());
    }

    #[test]
    fn vec_with_hostile_length_rejected() {
        let mut enc = Encoder::new();
        enc.put_len(1 << 60);
        let bytes = enc.into_bytes();
        assert!(matches!(
            Vec::<u64>::decode(&mut Decoder::new(&bytes)),
            Err(PersistError::Malformed(_))
        ));
    }

    #[test]
    fn option_with_bad_tag_rejected() {
        assert!(matches!(
            Option::<u64>::decode(&mut Decoder::new(&[7])),
            Err(PersistError::Malformed(_))
        ));
    }
}
