//! Row-stream adapters.
//!
//! The computational model of Section 2 presents `A` as a stream whose
//! order the algorithm cannot control ("our lower bounds are not strongly
//! dependent on the order in which the data is presented"); summaries must
//! therefore be order-insensitive. These adapters let tests and benches
//! feed the same dataset in different orders and verify that estimates are
//! unchanged (for order-oblivious summaries) or statistically equivalent
//! (for samplers).

use pfe_hash::rng::Xoshiro256pp;
use pfe_row::{BinaryMatrix, Dataset, QaryMatrix};

/// A dataset with its rows visited in a permuted order.
pub fn shuffled(data: &Dataset, seed: u64) -> Dataset {
    let mut order: Vec<usize> = (0..data.num_rows()).collect();
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    rng.shuffle(&mut order);
    reorder(data, &order)
}

/// A dataset with its rows in the given visiting order.
///
/// # Panics
/// Panics if `order` is not a permutation of `0..n`.
pub fn reorder(data: &Dataset, order: &[usize]) -> Dataset {
    assert_eq!(order.len(), data.num_rows(), "order length mismatch");
    let mut seen = vec![false; order.len()];
    for &i in order {
        assert!(!seen[i], "order repeats row {i}");
        seen[i] = true;
    }
    match data {
        Dataset::Binary(m) => {
            let rows = order.iter().map(|&i| m.row(i)).collect();
            Dataset::Binary(BinaryMatrix::from_rows(m.dimension(), rows))
        }
        Dataset::Qary(m) => {
            let mut out = QaryMatrix::new(m.alphabet(), m.dimension());
            for &i in order {
                out.push_row(m.row(i));
            }
            Dataset::Qary(out)
        }
    }
}

/// Interleave two datasets (same shape) round-robin — models two merged
/// stream sources.
///
/// # Panics
/// Panics on shape/alphabet mismatch.
pub fn interleave(a: &Dataset, b: &Dataset) -> Dataset {
    assert_eq!(a.dimension(), b.dimension(), "dimension mismatch");
    assert_eq!(a.alphabet(), b.alphabet(), "alphabet mismatch");
    match (a, b) {
        (Dataset::Binary(x), Dataset::Binary(y)) => {
            let mut rows = Vec::with_capacity(x.num_rows() + y.num_rows());
            let mut ix = x.rows().iter();
            let mut iy = y.rows().iter();
            loop {
                match (ix.next(), iy.next()) {
                    (None, None) => break,
                    (rx, ry) => {
                        if let Some(&r) = rx {
                            rows.push(r);
                        }
                        if let Some(&r) = ry {
                            rows.push(r);
                        }
                    }
                }
            }
            Dataset::Binary(BinaryMatrix::from_rows(x.dimension(), rows))
        }
        _ => {
            // General path through dense rows.
            let q = a.alphabet().max(2);
            let mut out = QaryMatrix::new(q, a.dimension());
            let (na, nb) = (a.num_rows(), b.num_rows());
            for i in 0..na.max(nb) {
                if i < na {
                    out.push_row(&a.row_dense(i));
                }
                if i < nb {
                    out.push_row(&b.row_dense(i));
                }
            }
            Dataset::Qary(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::uniform_binary;
    use pfe_row::{ColumnSet, FrequencyVector};

    #[test]
    fn shuffle_preserves_frequency_vector() {
        let ds = uniform_binary(12, 500, 1);
        let sh = shuffled(&ds, 42);
        assert_eq!(ds.num_rows(), sh.num_rows());
        let cols = ColumnSet::from_indices(12, &[0, 3, 7, 11]).expect("valid");
        let f1 = FrequencyVector::compute(&ds, &cols).expect("fits");
        let f2 = FrequencyVector::compute(&sh, &cols).expect("fits");
        assert_eq!(f1.sorted_counts(), f2.sorted_counts());
    }

    #[test]
    fn shuffle_actually_permutes() {
        let ds = uniform_binary(12, 500, 2);
        let sh = shuffled(&ds, 43);
        assert_ne!(ds, sh);
    }

    #[test]
    fn reorder_identity() {
        let ds = uniform_binary(8, 100, 3);
        let order: Vec<usize> = (0..100).collect();
        assert_eq!(reorder(&ds, &order), ds);
    }

    #[test]
    #[should_panic(expected = "order repeats")]
    fn reorder_rejects_duplicates() {
        let ds = uniform_binary(8, 3, 4);
        reorder(&ds, &[0, 0, 1]);
    }

    #[test]
    fn interleave_preserves_multiset() {
        let a = uniform_binary(10, 70, 5);
        let b = uniform_binary(10, 30, 6);
        let c = interleave(&a, &b);
        assert_eq!(c.num_rows(), 100);
        let cols = ColumnSet::full(10).expect("valid");
        let fa = FrequencyVector::compute(&a, &cols).expect("fits");
        let fb = FrequencyVector::compute(&b, &cols).expect("fits");
        let fc = FrequencyVector::compute(&c, &cols).expect("fits");
        assert_eq!(fa.total() + fb.total(), fc.total());
        // Every pattern count adds up.
        for (k, c_count) in fc.sorted_counts() {
            assert_eq!(fa.frequency(k) + fb.frequency(k), c_count);
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn interleave_rejects_shape_mismatch() {
        let a = uniform_binary(10, 5, 0);
        let b = uniform_binary(11, 5, 0);
        interleave(&a, &b);
    }
}
