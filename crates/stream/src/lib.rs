#![warn(missing_docs)]
//! Workload generators and adversarial instances for projected frequency
//! estimation.
//!
//! - [`gen`] — synthetic data matching the paper's motivating scenarios:
//!   uniform/diverse, Zipf heavy-hitter, planted subspace clusters,
//!   correlated and homogeneous columns, and a demographic bias-audit
//!   generator.
//! - [`adversarial`] — the exact instance constructions of the lower-bound
//!   proofs (Theorem 4.1 and its corollaries, Theorems 5.3–5.5), reusable
//!   both by the Index-reduction harness in `pfe-lowerbounds` and as
//!   worst-case workloads.
//! - [`stream`] — row-order adapters (shuffle, reorder, interleave) for
//!   order-insensitivity testing, reflecting the streaming model of
//!   Section 2.

pub mod adversarial;
pub mod gen;
pub mod stream;

pub use adversarial::{
    alphabet_reduce, digits_per_symbol, expand_columns, F0Instance, FpInstance, HeavyHitterInstance,
};
pub use gen::{
    bias_audit, bias_audit_planted, clustered_subspace, correlated_columns, homogeneous_columns,
    uniform_binary, uniform_qary, zipf_patterns, ClusteredConfig, ClusteredData,
};
pub use stream::{interleave, reorder, shuffled};
