//! Synthetic workload generators.
//!
//! The paper's introduction motivates three scenario families — bias &
//! diversity auditing, privacy/linkability, and subspace clustering — and
//! its analysis distinguishes diverse data (projected `F_0` up to `2^d`)
//! from homogeneous/correlated data (projected `F_0` as small as 1–2).
//! These generators produce all of those regimes deterministically from a
//! seed.

use pfe_hash::rng::{Xoshiro256pp, ZipfTable};
use pfe_row::{BinaryMatrix, Dataset, QaryMatrix};

/// Uniform binary rows: every cell i.i.d. Bernoulli(1/2). Maximally diverse
/// — projected `F_0` approaches `min(n, 2^{|C|})`.
pub fn uniform_binary(d: u32, n: usize, seed: u64) -> Dataset {
    assert!(d <= 63);
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mask = if d == 0 { 0 } else { (1u64 << d) - 1 };
    let rows = (0..n).map(|_| rng.next_u64() & mask).collect();
    Dataset::Binary(BinaryMatrix::from_rows(d, rows))
}

/// Uniform Q-ary rows: every cell i.i.d. uniform over `[Q]`.
pub fn uniform_qary(q: u32, d: u32, n: usize, seed: u64) -> Dataset {
    assert!(q >= 1 && d <= 63);
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut m = QaryMatrix::new(q, d);
    let mut row = vec![0u16; d as usize];
    for _ in 0..n {
        for cell in row.iter_mut() {
            *cell = rng.range_u64(q as u64) as u16;
        }
        m.push_row(&row);
    }
    Dataset::Qary(m)
}

/// Zipf-pattern rows: a dictionary of `num_patterns` distinct random rows is
/// sampled, then `n` rows are drawn from it with Zipf(`s`) rank weights —
/// heavy-hitter-rich data where rank-0's frequency dominates.
///
/// # Panics
/// Panics if `num_patterns == 0` or `num_patterns > 2^d` (can't be distinct).
pub fn zipf_patterns(d: u32, n: usize, num_patterns: usize, s: f64, seed: u64) -> Dataset {
    assert!(d <= 63);
    assert!(num_patterns > 0, "need at least one pattern");
    if d < 63 {
        assert!(
            (num_patterns as u128) <= (1u128 << d),
            "cannot draw {num_patterns} distinct patterns from 2^{d}"
        );
    }
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mask = if d == 0 { 0 } else { (1u64 << d) - 1 };
    let mut dict = std::collections::BTreeSet::new();
    while dict.len() < num_patterns {
        dict.insert(rng.next_u64() & mask);
    }
    let dict: Vec<u64> = dict.into_iter().collect();
    let zipf = ZipfTable::new(num_patterns, s);
    let rows = (0..n).map(|_| dict[zipf.sample(&mut rng)]).collect();
    Dataset::Binary(BinaryMatrix::from_rows(d, rows))
}

/// Planted subspace clusters: `clusters` centers, each with a random
/// relevant column subset of size `subspace_size`; every row copies its
/// cluster's center on the relevant columns (flipping each bit with
/// probability `noise`) and is uniform elsewhere. Projecting onto a
/// cluster's relevant columns shows low `F_0` / strong heavy hitters;
/// projecting onto irrelevant columns looks uniform — the paper's
/// clustering motivation.
pub struct ClusteredConfig {
    /// Dimension `d ≤ 63`.
    pub d: u32,
    /// Rows to generate.
    pub n: usize,
    /// Number of planted clusters.
    pub clusters: usize,
    /// Relevant columns per cluster.
    pub subspace_size: u32,
    /// Per-bit flip probability on relevant columns.
    pub noise: f64,
    /// PRNG seed.
    pub seed: u64,
}

/// Output of [`clustered_subspace`]: the data plus the planted ground truth.
pub struct ClusteredData {
    /// The generated dataset.
    pub data: Dataset,
    /// Per-cluster relevant column masks.
    pub relevant_columns: Vec<u64>,
    /// Per-cluster center rows (full `d`-bit patterns).
    pub centers: Vec<u64>,
    /// Row-to-cluster assignment.
    pub assignment: Vec<usize>,
}

/// Generate planted subspace-cluster data (see [`ClusteredConfig`]).
///
/// # Panics
/// Panics on invalid parameters (empty clusters, oversize subspace, etc.).
pub fn clustered_subspace(cfg: &ClusteredConfig) -> ClusteredData {
    assert!(cfg.d <= 63);
    assert!(cfg.clusters > 0, "need at least one cluster");
    assert!(cfg.subspace_size <= cfg.d, "subspace larger than d");
    assert!((0.0..=1.0).contains(&cfg.noise), "noise outside [0,1]");
    let mut rng = Xoshiro256pp::seed_from_u64(cfg.seed);
    let mask_all = if cfg.d == 0 { 0 } else { (1u64 << cfg.d) - 1 };
    let mut relevant = Vec::with_capacity(cfg.clusters);
    let mut centers = Vec::with_capacity(cfg.clusters);
    for _ in 0..cfg.clusters {
        let cols = rng
            .sample_indices(cfg.d as usize, cfg.subspace_size as usize)
            .into_iter()
            .fold(0u64, |acc, b| acc | (1 << b));
        relevant.push(cols);
        centers.push(rng.next_u64() & mask_all);
    }
    let mut rows = Vec::with_capacity(cfg.n);
    let mut assignment = Vec::with_capacity(cfg.n);
    for _ in 0..cfg.n {
        let c = rng.range_u64(cfg.clusters as u64) as usize;
        assignment.push(c);
        let mut row = rng.next_u64() & mask_all; // background: uniform
                                                 // On relevant columns, copy the center then apply noise flips.
        row = (row & !relevant[c]) | (centers[c] & relevant[c]);
        if cfg.noise > 0.0 {
            let mut m = relevant[c];
            while m != 0 {
                let b = m.trailing_zeros();
                if rng.bernoulli(cfg.noise) {
                    row ^= 1 << b;
                }
                m &= m - 1;
            }
        }
        rows.push(row);
    }
    ClusteredData {
        data: Dataset::Binary(BinaryMatrix::from_rows(cfg.d, rows)),
        relevant_columns: relevant,
        centers,
        assignment,
    }
}

/// Correlated columns: the first `independent` columns are i.i.d. uniform;
/// every remaining column is a copy of a random earlier column (possibly
/// negated). Projections inside a correlated group have `F_0 ≤ 2`.
pub fn correlated_columns(d: u32, n: usize, independent: u32, seed: u64) -> Dataset {
    assert!(d <= 63);
    assert!(
        independent >= 1 && independent <= d,
        "need 1..=d independent columns"
    );
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    // Wiring: column j >= independent copies source[j] xor flip[j].
    let wiring: Vec<(u32, bool)> = (independent..d)
        .map(|_| (rng.range_u64(independent as u64) as u32, rng.bernoulli(0.5)))
        .collect();
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let base = rng.next_u64() & ((1u64 << independent) - 1);
        let mut row = base;
        for (j, &(src, flip)) in wiring.iter().enumerate() {
            let bit = ((base >> src) & 1) ^ (flip as u64);
            row |= bit << (independent + j as u32);
        }
        rows.push(row);
    }
    Dataset::Binary(BinaryMatrix::from_rows(d, rows))
}

/// Homogeneous columns: the last `num_constant` columns are identically 0 —
/// the paper's example of a projection with `F_0 = 1`.
pub fn homogeneous_columns(d: u32, n: usize, num_constant: u32, seed: u64) -> Dataset {
    assert!(d <= 63);
    assert!(num_constant <= d);
    let live = d - num_constant;
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mask = if live == 0 { 0 } else { (1u64 << live) - 1 };
    let rows = (0..n).map(|_| rng.next_u64() & mask).collect();
    Dataset::Binary(BinaryMatrix::from_rows(d, rows))
}

/// Demographic-style categorical data for the bias-audit example: columns
/// (attribute, cardinality) = (gender, 3), (age band, 8), (region, 12),
/// (education, 6), (income band, 8), (occupation, 10), stored over the
/// common alphabet `Q = 12`. A planted fraction `bias` of rows is forced to
/// a fixed intersectional combination on (gender, age, region) so the
/// combination becomes an over-represented heavy hitter under that
/// projection.
pub fn bias_audit(n: usize, bias: f64, seed: u64) -> Dataset {
    assert!((0.0..=1.0).contains(&bias), "bias outside [0,1]");
    const CARDS: [u64; 6] = [3, 8, 12, 6, 8, 10];
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut m = QaryMatrix::new(12, CARDS.len() as u32);
    let planted: [u16; 3] = [1, 2, 7]; // (gender=1, age=2, region=7)
    let mut row = [0u16; 6];
    for _ in 0..n {
        for (j, &card) in CARDS.iter().enumerate() {
            row[j] = rng.range_u64(card) as u16;
        }
        if rng.bernoulli(bias) {
            row[0] = planted[0];
            row[1] = planted[1];
            row[2] = planted[2];
        }
        m.push_row(&row);
    }
    Dataset::Qary(m)
}

/// The planted heavy-hitter combination of [`bias_audit`], as
/// `(column, value)` pairs.
pub fn bias_audit_planted() -> [(u32, u16); 3] {
    [(0, 1), (1, 2), (2, 7)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfe_row::{ColumnSet, FrequencyVector};

    #[test]
    fn uniform_binary_shape_and_diversity() {
        let ds = uniform_binary(16, 2000, 1);
        assert_eq!(ds.num_rows(), 2000);
        assert_eq!(ds.dimension(), 16);
        let cols = ColumnSet::full(16).expect("valid");
        let f = FrequencyVector::compute(&ds, &cols).expect("fits");
        // 2000 rows over 65536 patterns: almost all distinct.
        assert!(f.f0() > 1900);
    }

    #[test]
    fn uniform_qary_alphabet_respected() {
        let ds = uniform_qary(5, 8, 500, 2);
        assert_eq!(ds.alphabet(), 5);
        for i in 0..ds.num_rows() {
            assert!(ds.row_dense(i).iter().all(|&s| s < 5));
        }
    }

    #[test]
    fn zipf_has_heavy_hitter() {
        let ds = zipf_patterns(20, 10_000, 200, 1.5, 3);
        let cols = ColumnSet::full(20).expect("valid");
        let f = FrequencyVector::compute(&ds, &cols).expect("fits");
        assert!(f.f0() <= 200);
        // Rank-0 of Zipf(1.5) over 200 ranks has ~38% of the mass.
        let max = f.iter().map(|(_, c)| c).max().expect("nonempty");
        assert!(max > 2000, "max frequency {max}");
    }

    #[test]
    fn clustered_low_f0_on_relevant_columns() {
        let cd = clustered_subspace(&ClusteredConfig {
            d: 24,
            n: 3000,
            clusters: 4,
            subspace_size: 10,
            noise: 0.0,
            seed: 4,
        });
        let cols = ColumnSet::from_mask(24, cd.relevant_columns[0]).expect("valid");
        let f = FrequencyVector::compute(&cd.data, &cols).expect("fits");
        // Noise-free: each cluster contributes its center pattern on these
        // columns, plus background rows from other clusters (uniform) —
        // the center pattern of cluster 0 must be a clear heavy hitter.
        let hh = f.heavy_hitters(0.1, 1.0);
        assert!(!hh.is_empty(), "no heavy hitter on relevant columns");
        // And F0 far below the uniform expectation min(n, 2^10).
        assert!(f.f0() < 900, "F0 {} not cluster-compressed", f.f0());
    }

    #[test]
    fn clustered_ground_truth_consistent() {
        let cd = clustered_subspace(&ClusteredConfig {
            d: 16,
            n: 100,
            clusters: 3,
            subspace_size: 6,
            noise: 0.0,
            seed: 5,
        });
        // Every row matches its cluster center on the relevant columns.
        if let Dataset::Binary(m) = &cd.data {
            for (i, &c) in cd.assignment.iter().enumerate() {
                let rel = cd.relevant_columns[c];
                assert_eq!(m.row(i) & rel, cd.centers[c] & rel, "row {i} off-center");
            }
        } else {
            panic!("expected binary dataset");
        }
    }

    #[test]
    fn correlated_projection_has_f0_at_most_2() {
        let ds = correlated_columns(12, 1000, 4, 6);
        // Columns 4.. are copies of columns <4; a pair (source, copy) has
        // at most 2 distinct joint patterns. Find the copy of column 0 by
        // checking all; at least one copy pair must exist with F0 <= 2.
        let mut found = false;
        for j in 4..12u32 {
            for src in 0..4u32 {
                let cols = ColumnSet::from_indices(12, &[src, j]).expect("valid");
                let f = FrequencyVector::compute(&ds, &cols).expect("fits");
                if f.f0() <= 2 {
                    found = true;
                }
            }
        }
        assert!(found, "no correlated pair detected");
    }

    #[test]
    fn homogeneous_columns_give_f0_one() {
        let ds = homogeneous_columns(10, 500, 4, 7);
        let cols = ColumnSet::from_indices(10, &[6, 7, 8, 9]).expect("valid");
        let f = FrequencyVector::compute(&ds, &cols).expect("fits");
        assert_eq!(f.f0(), 1);
    }

    #[test]
    fn bias_audit_planted_combination_is_heavy() {
        let ds = bias_audit(20_000, 0.15, 8);
        let cols = ColumnSet::from_indices(6, &[0, 1, 2]).expect("valid");
        let f = FrequencyVector::compute(&ds, &cols).expect("fits");
        let codec = ds.codec_for(&cols).expect("fits");
        // The planted pattern (1, 2, 7): little-endian base-12 key.
        let key = codec.encode_pattern(&[1, 2, 7]);
        let freq = f.frequency(key);
        // ~15% planted + ~n/288 background.
        assert!(
            freq as f64 > 0.14 * 20_000.0,
            "planted combination frequency {freq}"
        );
        let hh = f.heavy_hitters(0.1, 1.0);
        assert!(
            hh.iter().any(|&(k, _)| k == key),
            "planted combo not a heavy hitter"
        );
    }

    #[test]
    fn determinism_per_seed() {
        assert_eq!(uniform_binary(10, 50, 9), uniform_binary(10, 50, 9));
        assert_ne!(uniform_binary(10, 50, 9), uniform_binary(10, 50, 10));
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn zipf_rejects_impossible_dictionary() {
        zipf_patterns(3, 10, 100, 1.0, 0);
    }
}
