//! Adversarial instance builders — the exact constructions used by the
//! paper's lower-bound proofs, as generatable datasets.
//!
//! Each builder takes Alice's held set `T` (indices into a code's canonical
//! enumeration) and materializes the input array `A` the reduction feeds to
//! a candidate algorithm. The `pfe-lowerbounds` crate layers the Alice/Bob
//! Index protocol on top; these builders are also reused directly as "worst
//! case" workloads by the ablation experiments.

use pfe_codes::constant_weight::ConstantWeightCode;
use pfe_codes::random_code::RandomCode;
use pfe_codes::star::{star_count, star_union};
use pfe_row::{BinaryMatrix, Dataset, QaryMatrix};

/// Theorem 4.1 instance: `A = star_Q(T)` for `T ⊆ B(d, k)`, over `[Q]`.
///
/// If Bob's word `y ∈ T`, the projection onto `supp(y)` shows at least
/// `Q^k` distinct patterns; otherwise at most `k·Q^{k-1}` — the `Q/k`
/// separation.
#[derive(Debug)]
pub struct F0Instance {
    /// The generated input array.
    pub data: Dataset,
    /// The code the instance is built over.
    pub code: ConstantWeightCode,
    /// Alphabet size `Q`.
    pub q: u32,
    /// Alice's held codewords (masks).
    pub held: Vec<u64>,
}

impl F0Instance {
    /// Build from Alice's held codewords.
    ///
    /// # Panics
    /// Panics if a held word is not in `B(d, k)`, or the alphabet is `< 2`.
    pub fn build(code: ConstantWeightCode, q: u32, held: &[u64]) -> Self {
        assert!(q >= 2, "Theorem 4.1 needs Q >= 2");
        for &w in held {
            assert!(code.contains(w), "held word {w:#x} not in B(d,k)");
        }
        let rows = star_union(held, code.dimension(), q);
        let mut m = QaryMatrix::new(q, code.dimension());
        for r in &rows {
            m.push_row(r);
        }
        Self {
            data: Dataset::Qary(m),
            code,
            q,
            held: held.to_vec(),
        }
    }

    /// The separation's "yes" threshold: `Q^k` patterns.
    pub fn yes_threshold(&self) -> u128 {
        star_count(self.q, self.code.weight()).expect("fits")
    }

    /// The separation's "no" ceiling: `k·Q^{k-1}` patterns.
    pub fn no_ceiling(&self) -> u128 {
        self.code.weight() as u128
            * star_count(self.q, self.code.weight().saturating_sub(1)).expect("fits")
    }

    /// The provable approximation-factor separation `Δ = Q/k` (Equation 3).
    pub fn separation(&self) -> f64 {
        self.q as f64 / self.code.weight() as f64
    }

    /// Analytic instance size (rows × columns) if Alice held all of
    /// `B(d, k)` — the Table 1 "Instance" column: `(d/k)^k × d` over `[Q]`
    /// (lower bound form), exact form `C(d,k)·Q^k` rows before dedup.
    pub fn table1_rows_bound(&self) -> f64 {
        (self.code.dimension() as f64 / self.code.weight() as f64).powi(self.code.weight() as i32)
    }
}

/// Theorem 5.3 instance (`ℓ_p` heavy hitters, `p > 1`): `2^{εd}` copies of
/// the all-ones row plus `star_2(T)` for `T` drawn from a Lemma 3.2 random
/// code. Bob's query is the *complement* of `supp(y)`; the all-zero pattern
/// `0_S` is a heavy hitter iff `y ∈ T`.
#[derive(Debug)]
pub struct HeavyHitterInstance {
    /// The generated binary input array.
    pub data: Dataset,
    /// The random code.
    pub code: RandomCode,
    /// Alice's held codeword indices (into `code.words()`).
    pub held: Vec<usize>,
    /// Number of all-ones padding rows (`2^{εd}`).
    pub padding_rows: usize,
}

impl HeavyHitterInstance {
    /// Build from Alice's held indices into the code's enumeration.
    ///
    /// # Panics
    /// Panics if an index is out of range or `2^{εd}` overflows `usize`.
    pub fn build(code: RandomCode, held: &[usize]) -> Self {
        let d = code.params().d;
        let k = code.params().weight();
        for &i in held {
            assert!(i < code.len(), "held index {i} out of range");
        }
        let padding = 1usize
            .checked_shl(k)
            .expect("2^{epsilon d} padding rows overflow");
        let all_ones = if d == 0 { 0 } else { (1u64 << d) - 1 };
        let held_words: Vec<u64> = held.iter().map(|&i| code.words()[i]).collect();
        let mut rows: Vec<u64> = Vec::with_capacity(padding + (held.len() << k));
        rows.extend(std::iter::repeat_n(all_ones, padding));
        // star_2(T): children of each held word, deduplicated across parents
        // (set union semantics of Section 3.2).
        for child in star_union(&held_words, d, 2) {
            let mut packed = 0u64;
            for (bit, &s) in child.iter().enumerate() {
                packed |= (s as u64) << bit;
            }
            rows.push(packed);
        }
        Self {
            data: Dataset::Binary(BinaryMatrix::from_rows(d, rows)),
            code,
            held: held.to_vec(),
            padding_rows: padding,
        }
    }
}

/// Theorem 5.4 instance (`F_p` estimation, `0 < p < 1`): `A = star_2(T)`
/// only; Bob queries `S = supp(y)` and thresholds `F_p(A, S)` at `2^{εd}`.
#[derive(Debug)]
pub struct FpInstance {
    /// The generated binary input array.
    pub data: Dataset,
    /// The random code.
    pub code: RandomCode,
    /// Alice's held codeword indices.
    pub held: Vec<usize>,
}

impl FpInstance {
    /// Build from Alice's held indices into the code's enumeration.
    ///
    /// # Panics
    /// Panics if an index is out of range.
    pub fn build(code: RandomCode, held: &[usize]) -> Self {
        let d = code.params().d;
        for &i in held {
            assert!(i < code.len(), "held index {i} out of range");
        }
        let held_words: Vec<u64> = held.iter().map(|&i| code.words()[i]).collect();
        let mut rows = Vec::new();
        for child in star_union(&held_words, d, 2) {
            let mut packed = 0u64;
            for (bit, &s) in child.iter().enumerate() {
                packed |= (s as u64) << bit;
            }
            rows.push(packed);
        }
        Self {
            data: Dataset::Binary(BinaryMatrix::from_rows(d, rows)),
            code,
            held: held.to_vec(),
        }
    }

    /// The "yes" threshold of the reduction: `F_p ≥ 2^{εd}` when `y ∈ T`.
    pub fn yes_threshold(&self) -> f64 {
        2f64.powi(self.code.params().weight() as i32)
    }
}

/// Corollary 4.4's alphabet reduction: re-encode a `[Q]`-alphabet dataset
/// over a smaller alphabet `[q]` by expanding every symbol into
/// `⌈log_q Q⌉` base-`q` digits (most significant digit first). The
/// dimension grows from `d` to `d·⌈log_q Q⌉`; a column query `C` on the
/// original data corresponds to the union of each selected column's digit
/// block (see [`expand_columns`]), and the map is a bijection on rows, so
/// every projected frequency is preserved exactly.
///
/// # Panics
/// Panics if `q < 2` or the expanded dimension exceeds 63.
pub fn alphabet_reduce(data: &Dataset, q: u32) -> Dataset {
    assert!(q >= 2, "target alphabet must be >= 2");
    let big_q = data.alphabet();
    let digits = digits_per_symbol(big_q, q);
    let new_d = data.dimension() * digits;
    assert!(new_d <= 63, "expanded dimension {new_d} exceeds 63");
    let mut out = QaryMatrix::new(q, new_d);
    let mut row = vec![0u16; new_d as usize];
    for i in 0..data.num_rows() {
        let dense = data.row_dense(i);
        for (c, &sym) in dense.iter().enumerate() {
            let mut v = sym as u32;
            for j in (0..digits).rev() {
                row[c * digits as usize + j as usize] = (v % q) as u16;
                v /= q;
            }
        }
        out.push_row(&row);
    }
    Dataset::Qary(out)
}

/// Number of base-`q` digits per `[Q]` symbol: `⌈log_q Q⌉` (at least 1).
pub fn digits_per_symbol(big_q: u32, q: u32) -> u32 {
    assert!(q >= 2);
    let mut digits = 1u32;
    let mut reach = q as u64;
    while reach < big_q as u64 {
        reach *= q as u64;
        digits += 1;
    }
    digits
}

/// Map a column set on the original `[Q]` data to the corresponding digit
/// block columns of the reduced dataset.
///
/// # Panics
/// Panics if the expanded dimension exceeds 63.
pub fn expand_columns(cols: &pfe_row::ColumnSet, big_q: u32, q: u32) -> pfe_row::ColumnSet {
    let digits = digits_per_symbol(big_q, q);
    let new_d = cols.dimension() * digits;
    assert!(new_d <= 63, "expanded dimension {new_d} exceeds 63");
    let mut out = pfe_row::ColumnSet::empty(new_d).expect("<= 63");
    for c in cols.iter() {
        for j in 0..digits {
            out = out.with(c * digits + j);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfe_codes::random_code::RandomCodeParams;
    use pfe_row::{ColumnSet, FrequencyVector};

    fn small_random_code(seed: u64) -> RandomCode {
        RandomCode::generate(RandomCodeParams {
            d: 20,
            epsilon: 0.25,
            gamma: 0.15,
            target_size: 12,
            seed,
        })
        .expect("code generates")
    }

    #[test]
    fn f0_instance_yes_case_hits_threshold() {
        let code = ConstantWeightCode::new(12, 3);
        let q = 5;
        // Alice holds words 0, 10, 20 of the enumeration.
        let held: Vec<u64> = [0u128, 10, 20].iter().map(|&r| code.unrank(r)).collect();
        let inst = F0Instance::build(code, q, &held);
        // Query supp(held[0]) — a held word: F0 >= Q^k.
        let cols = ColumnSet::from_mask(12, held[0]).expect("valid");
        let f = FrequencyVector::compute(&inst.data, &cols).expect("fits");
        assert!(f.f0() as u128 >= inst.yes_threshold());
    }

    #[test]
    fn f0_instance_no_case_below_ceiling() {
        let code = ConstantWeightCode::new(12, 3);
        let q = 7;
        let held: Vec<u64> = [0u128, 10, 20].iter().map(|&r| code.unrank(r)).collect();
        let inst = F0Instance::build(code, q, &held);
        // Query the support of a word Alice does NOT hold.
        let absent = code.unrank(50);
        assert!(!held.contains(&absent));
        let cols = ColumnSet::from_mask(12, absent).expect("valid");
        let f = FrequencyVector::compute(&inst.data, &cols).expect("fits");
        assert!(
            (f.f0() as u128) <= inst.no_ceiling(),
            "no-case F0 {} exceeds ceiling {}",
            f.f0(),
            inst.no_ceiling()
        );
    }

    #[test]
    fn f0_separation_formula() {
        let code = ConstantWeightCode::new(16, 4);
        let inst = F0Instance::build(code, 16, &[code.unrank(0)]);
        assert!((inst.separation() - 4.0).abs() < 1e-12);
        assert_eq!(inst.yes_threshold(), 16u128.pow(4));
        assert_eq!(inst.no_ceiling(), 4 * 16u128.pow(3));
    }

    #[test]
    fn hh_instance_shape() {
        let code = small_random_code(1);
        let k = code.params().weight(); // 5
        let inst = HeavyHitterInstance::build(code, &[0, 1, 2]);
        assert_eq!(inst.padding_rows, 1 << k);
        // Rows: padding + |star_union(T)| <= padding + 3 * 2^k.
        let n = inst.data.num_rows();
        assert!(n > inst.padding_rows);
        assert!(n <= inst.padding_rows + 3 * (1 << k));
    }

    #[test]
    fn hh_instance_zero_pattern_heavy_iff_held() {
        let code = small_random_code(2);
        let d = code.params().d;
        let y_index = 0usize;
        // Case 1: Alice holds y.
        let inst_yes = HeavyHitterInstance::build(code.clone(), &[y_index, 1, 2]);
        let y = inst_yes.code.words()[y_index];
        let s = ColumnSet::from_mask(d, ((1u64 << d) - 1) & !y).expect("valid");
        let f_yes = FrequencyVector::compute(&inst_yes.data, &s).expect("fits");
        let zero_count_yes = f_yes.frequency(pfe_row::PatternKey::new(0));
        // star(y) has 2^k children all projecting to 0_S.
        assert!(zero_count_yes >= 1 << inst_yes.code.params().weight());

        // Case 2: Alice does not hold y.
        let inst_no = HeavyHitterInstance::build(code, &[1, 2, 3]);
        let f_no = FrequencyVector::compute(&inst_no.data, &s).expect("fits");
        let zero_count_no = f_no.frequency(pfe_row::PatternKey::new(0));
        assert!(
            zero_count_no < zero_count_yes,
            "no-case zero-pattern count {zero_count_no} not below yes-case {zero_count_yes}"
        );
    }

    #[test]
    fn fp_instance_yes_case_reaches_threshold() {
        let code = small_random_code(3);
        let d = code.params().d;
        let inst = FpInstance::build(code, &[0, 1]);
        let y = inst.code.words()[0];
        let s = ColumnSet::from_mask(d, y).expect("valid");
        let f = FrequencyVector::compute(&inst.data, &s).expect("fits");
        // Case 2 of Thm 5.4: each of the 2^{εd} strings in star(y) appears
        // at least once on S, so F_p >= 2^{εd} for any p (at p<1 each
        // count^p >= 1).
        let fp = f.fp(0.5);
        assert!(
            fp >= inst.yes_threshold(),
            "yes-case F_0.5 {fp} below threshold {}",
            inst.yes_threshold()
        );
    }

    #[test]
    fn fp_instance_no_case_below_yes_case() {
        let code = small_random_code(4);
        let d = code.params().d;
        // y = word 0; Alice holds everything else.
        let all_but_zero: Vec<usize> = (1..code.len()).collect();
        let inst_no = FpInstance::build(code.clone(), &all_but_zero);
        let y = code.words()[0];
        let s = ColumnSet::from_mask(d, y).expect("valid");
        let f_no = FrequencyVector::compute(&inst_no.data, &s).expect("fits");
        let fp_no = f_no.fp(0.5);

        let with_zero: Vec<usize> = (0..code.len()).collect();
        let inst_yes = FpInstance::build(code, &with_zero);
        let f_yes = FrequencyVector::compute(&inst_yes.data, &s).expect("fits");
        let fp_yes = f_yes.fp(0.5);
        assert!(
            fp_yes > fp_no,
            "yes-case F_p {fp_yes} not above no-case {fp_no}"
        );
    }

    #[test]
    fn digits_per_symbol_values() {
        assert_eq!(digits_per_symbol(16, 2), 4);
        assert_eq!(digits_per_symbol(16, 4), 2);
        assert_eq!(digits_per_symbol(16, 16), 1);
        assert_eq!(digits_per_symbol(10, 3), 3); // 3^2=9 < 10 <= 27
        assert_eq!(digits_per_symbol(2, 2), 1);
    }

    #[test]
    fn alphabet_reduction_preserves_projected_f0() {
        // Corollary 4.4's key property: the reduction is a bijection on
        // rows, so F0 on the expanded query equals F0 on the original.
        let code = ConstantWeightCode::new(8, 3);
        let held: Vec<u64> = [0u128, 5, 11].iter().map(|&r| code.unrank(r)).collect();
        let inst = F0Instance::build(code, 4, &held);
        let reduced = alphabet_reduce(&inst.data, 2);
        assert_eq!(reduced.dimension(), 16);
        assert_eq!(reduced.alphabet(), 2);
        assert_eq!(reduced.num_rows(), inst.data.num_rows());
        for &y in &held {
            let cols = ColumnSet::from_mask(8, y).expect("valid");
            let expanded = expand_columns(&cols, 4, 2);
            let f_orig = FrequencyVector::compute(&inst.data, &cols).expect("fits");
            let f_red = FrequencyVector::compute(&reduced, &expanded).expect("fits");
            assert_eq!(
                f_orig.f0(),
                f_red.f0(),
                "F0 changed under alphabet reduction"
            );
            // Full frequency multiset preserved, not just F0.
            let mut a: Vec<u64> = f_orig.iter().map(|(_, c)| c).collect();
            let mut b: Vec<u64> = f_red.iter().map(|(_, c)| c).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn expand_columns_block_structure() {
        let cols = ColumnSet::from_indices(4, &[1, 3]).expect("valid");
        let ex = expand_columns(&cols, 16, 4); // 2 digits per symbol
        assert_eq!(ex.dimension(), 8);
        assert_eq!(ex.to_indices(), vec![2, 3, 6, 7]);
    }

    #[test]
    #[should_panic(expected = "exceeds 63")]
    fn alphabet_reduce_rejects_oversized_expansion() {
        let m = QaryMatrix::from_rows(16, 20, &[vec![0u16; 20]]);
        alphabet_reduce(&Dataset::Qary(m), 2); // 20*4 = 80 > 63
    }

    #[test]
    #[should_panic(expected = "not in B(d,k)")]
    fn f0_rejects_non_codeword() {
        let code = ConstantWeightCode::new(8, 3);
        F0Instance::build(code, 4, &[0b1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hh_rejects_bad_index() {
        let code = small_random_code(5);
        let len = code.len();
        HeavyHitterInstance::build(code, &[len]);
    }
}
