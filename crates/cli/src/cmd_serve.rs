//! `pfe serve` — the wire protocol from the installed binary.
//!
//! The same dispatcher as `examples/serve.rs`, plus `--resume SNAP`:
//! the backend comes up pre-installed from a checkpoint (snapshot or
//! window ring, auto-detected) instead of waiting for a `start`
//! request, so a server can restart into its durable state in one
//! command.
//!
//! Replication roles (TCP mode only): `--ship DIR` makes this server a
//! writer that periodically checkpoints into the snapshot directory;
//! `--replica-of DIR` (repeatable) makes it a read-only replica that
//! watches those directories and swaps new snapshots in while serving.
//! `pfe replica ADDR` reports a replica's health.

use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use pfe_server::proto::{Control, Dispatcher};
use pfe_server::{install_signal_handlers, ReplicaSpec, Server, ServerConfig, ShipSpec};

use crate::args::{engine_config, Args};
use crate::backend::resume_backend;

/// Install the `--resume` checkpoint (if any) into `dispatcher`.
fn preinstall(args: &Args, dispatcher: &Dispatcher) -> Result<(), String> {
    let Some(snap) = args.value("--resume") else {
        return Ok(());
    };
    let ecfg = engine_config(args)?;
    let recorder = Arc::clone(dispatcher.recorder());
    let (backend, q) = resume_backend(snap, ecfg, recorder)?;
    dispatcher.install(backend, q);
    eprintln!("resumed {snap} (q={q})");
    Ok(())
}

fn serve_tcp(args: &Args, listen: String) -> Result<i32, String> {
    let mut cfg = ServerConfig {
        addr: listen,
        ..Default::default()
    };
    if let Some(w) = args.parse("--workers")? {
        cfg.workers = w;
    }
    if let Some(q) = args.parse("--queue")? {
        cfg.queue = q;
    }
    if let Some(p) = args.value("--checkpoint") {
        cfg.checkpoint_path = Some(PathBuf::from(p));
    }
    if let Some(m) = args.value("--metrics") {
        cfg.metrics_addr = Some(m.to_string());
    }
    if let Some(ms) = args.parse("--slow-ms")? {
        cfg.slow_ms = Some(ms);
    }
    if let Some(n) = args.parse("--trace-sample")? {
        cfg.trace_sample = Some(n);
    }
    if let Some(n) = args.parse("--max-line")? {
        cfg.max_line_bytes = n;
    }
    if let Some(dir) = args.value("--ship") {
        let interval = args.parse("--ship-ms")?.unwrap_or(1000u64);
        cfg.ship = Some(ShipSpec {
            dir: PathBuf::from(dir),
            interval: Duration::from_millis(interval),
        });
    }
    let replica_dirs = args.values("--replica-of");
    if !replica_dirs.is_empty() {
        if args.value("--resume").is_some() {
            return Err("--replica-of and --resume are mutually exclusive: \
                        a replica's state comes from the watched snapshots"
                .to_string());
        }
        let poll = args.parse("--replica-poll-ms")?.unwrap_or(200u64);
        // Engine flags (--alpha, --kmv-k, ...) must match the writer's:
        // every loaded snapshot is verified against them, exactly as
        // `--resume` verifies.
        cfg.replica = Some(ReplicaSpec {
            dirs: replica_dirs.iter().map(PathBuf::from).collect(),
            poll: Duration::from_millis(poll),
            engine: engine_config(args)?,
        });
    }
    let server = Server::bind(cfg).map_err(|e| e.to_string())?;
    preinstall(args, server.dispatcher())?;
    install_signal_handlers();
    eprintln!("listening on {}", server.local_addr());
    if let Some(maddr) = server.metrics_addr() {
        eprintln!("metrics on {maddr}");
    }
    let report = server.run().map_err(|e| e.to_string())?;
    if let Some(path) = &report.checkpointed {
        eprintln!("checkpointed to {}", path.display());
    }
    eprintln!(
        "served {} connections, {} requests ({} rejected saturated)",
        report.connections_accepted, report.requests_handled, report.rejected_saturated
    );
    Ok(0)
}

fn serve_pipe(args: &Args) -> Result<i32, String> {
    let dispatcher = Dispatcher::new(args.value("--checkpoint").map(PathBuf::from));
    if let Some(n) = args.parse("--trace-sample")? {
        dispatcher.recorder().trace_store().set_sample(n);
    }
    preinstall(args, &dispatcher)?;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = dispatcher.handle_line(&line);
        writeln!(out, "{}", reply.json).map_err(|e| format!("stdout: {e}"))?;
        if !matches!(reply.control, Control::Continue) {
            // In pipe mode the session IS the server: when `shutdown`
            // ends the loop, write the configured checkpoint.
            if matches!(reply.control, Control::ShutdownServer) {
                match dispatcher.shutdown_checkpoint() {
                    Ok(Some(path)) => eprintln!("checkpointed to {}", path.display()),
                    Ok(None) => {}
                    Err(e) => eprintln!("shutdown checkpoint failed: {e}"),
                }
            }
            break;
        }
    }
    Ok(0)
}

/// `pfe serve [--listen ADDR] [--resume SNAP] [--ship DIR |
/// --replica-of DIR...] [server flags]`.
pub fn serve(args: &Args) -> Result<i32, String> {
    match args.value("--listen") {
        Some(listen) => serve_tcp(args, listen.to_string()),
        None => {
            if args.value("--ship").is_some() || !args.values("--replica-of").is_empty() {
                return Err(
                    "--ship/--replica-of require --listen: replication is a TCP-server role"
                        .to_string(),
                );
            }
            serve_pipe(args)
        }
    }
}
