//! `pfe bench-ingest` — the columnar chunked path vs a naive
//! row-at-a-time loader, on a real file, end to end (parse + route +
//! drain). Prints one JSON object with MB/s for both and the speedup.

use std::io::BufRead;
use std::time::Instant;

use pfe_engine::{Engine, EngineConfig, Json};
use pfe_ingest::{FileIngester, IngestError, IngestOptions, Schema};

use crate::args::{engine_config, ingest_options, Args};

pub(crate) fn delim_for(opts: &IngestOptions, path: &str) -> char {
    match opts.delimiter {
        Some(d) => d as char,
        None => {
            let lower = path.to_ascii_lowercase();
            if lower.ends_with(".tsv") || lower.ends_with(".tab") {
                '\t'
            } else {
                ','
            }
        }
    }
}

/// The baseline every streaming system starts from: buffered lines,
/// `split`, `str::parse`, one `push_dense` per row. Returns rows read.
pub(crate) fn naive_load(path: &str, opts: &IngestOptions, engine: &Engine) -> Result<u64, String> {
    let delim = delim_for(opts, path);
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let reader = std::io::BufReader::new(file);
    let mut rows = 0u64;
    let mut skip_header = opts.has_header;
    for line in reader.lines() {
        let line = line.map_err(|e| format!("{path}: {e}"))?;
        if skip_header {
            skip_header = false;
            continue;
        }
        let line = line.strip_suffix('\r').unwrap_or(&line);
        let row: Result<Vec<u16>, String> = line
            .split(delim)
            .map(|f| {
                let f = f
                    .strip_prefix('"')
                    .and_then(|s| s.strip_suffix('"'))
                    .unwrap_or(f);
                let v: u16 = f.parse().map_err(|_| format!("bad field {f:?}"))?;
                if v as u32 >= opts.alphabet {
                    return Err(format!("{v} out of alphabet"));
                }
                Ok(v)
            })
            .collect();
        engine.push_dense(&row?).map_err(|e| e.to_string())?;
        rows += 1;
    }
    Ok(rows)
}

fn start_engine(schema: &Schema, ecfg: &EngineConfig) -> Result<Engine, IngestError> {
    Engine::start(schema.dimension(), schema.alphabet, ecfg.clone())
        .map_err(|e| IngestError::Sink(e.to_string()))
}

fn side_json(bytes: u64, rows: u64, secs: f64) -> Json {
    Json::obj([
        ("secs", Json::Num(secs)),
        (
            "mb_per_sec",
            Json::Num(bytes as f64 / (1024.0 * 1024.0) / secs.max(1e-12)),
        ),
        ("rows_per_sec", Json::Num(rows as f64 / secs.max(1e-12))),
    ])
}

/// `pfe bench-ingest FILE [--iters N]`: best-of-N wall time for each
/// path, engine drain included (`refresh` barriers the shard workers).
pub fn bench_ingest(args: &Args) -> Result<i32, String> {
    let pos = args.positionals();
    let [file] = pos[..] else {
        return Err(
            "usage: pfe bench-ingest FILE [--iters N] [file-shape flags] [engine flags]".into(),
        );
    };
    let iters: usize = args.parse("--iters")?.unwrap_or(3).max(1);
    let ecfg = engine_config(args)?;
    let opts = ingest_options(args)?;
    let bytes = std::fs::metadata(file)
        .map_err(|e| format!("{file}: {e}"))?
        .len();

    let mut columnar_best = f64::INFINITY;
    let mut schema: Option<Schema> = None;
    let mut rows = 0u64;
    for _ in 0..iters {
        let started = Instant::now();
        let ecfg = ecfg.clone();
        let (engine, report) = FileIngester::new(opts.clone())
            .ingest_path_with(file, move |s| start_engine(s, &ecfg))
            .map_err(|e| e.to_string())?;
        engine.refresh().map_err(|e| e.to_string())?;
        columnar_best = columnar_best.min(started.elapsed().as_secs_f64());
        rows = report.rows;
        schema = Some(report.schema.clone());
        engine.shutdown().ok();
    }
    let schema = schema.expect("at least one iteration ran");

    let mut naive_best = f64::INFINITY;
    for _ in 0..iters {
        let engine = Engine::start(schema.dimension(), schema.alphabet, ecfg.clone())
            .map_err(|e| e.to_string())?;
        let started = Instant::now();
        let naive_rows = naive_load(file, &opts, &engine)?;
        engine.refresh().map_err(|e| e.to_string())?;
        naive_best = naive_best.min(started.elapsed().as_secs_f64());
        if naive_rows != rows {
            return Err(format!(
                "row-count disagreement: columnar read {rows}, naive read {naive_rows}"
            ));
        }
        engine.shutdown().ok();
    }

    println!(
        "{}",
        Json::obj([
            ("ok", Json::Bool(true)),
            ("file", Json::Str(file.to_string())),
            ("bytes", Json::Num(bytes as f64)),
            ("rows", Json::Num(rows as f64)),
            ("iters", Json::Num(iters as f64)),
            ("columnar", side_json(bytes, rows, columnar_best)),
            ("row_at_a_time", side_json(bytes, rows, naive_best)),
            ("speedup", Json::Num(naive_best / columnar_best.max(1e-12))),
        ])
    );
    Ok(0)
}
