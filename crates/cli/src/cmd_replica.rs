//! `pfe replica` — replication health of a live server.
//!
//! A thin wire client for the `{"op":"replica_stats"}` endpoint: one
//! JSON object on stdout. `--watch` polls and reprints whenever the
//! applied epoch or the failure count changes — a terminal-friendly way
//! to watch a replica catch up to its writer.

use std::time::Duration;

use pfe_engine::Json;
use pfe_server::Client;

use crate::args::Args;

const USAGE: &str = "usage: pfe replica ADDR [--watch] [--interval-ms N]";

/// `pfe replica ADDR [--watch] [--interval-ms N]`: the server's
/// `replica_stats` object on stdout (once, or on every change).
pub fn replica(args: &Args) -> Result<i32, String> {
    let pos = args.positionals();
    let [addr] = pos[..] else {
        return Err(USAGE.into());
    };
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let fetch = |client: &mut Client| -> Result<Json, String> {
        let resp = client
            .request_line(r#"{"op":"replica_stats"}"#)
            .map_err(|e| e.to_string())?;
        if resp.get("ok") == Some(&Json::Bool(false)) {
            return Err(resp
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("request failed")
                .to_string());
        }
        Ok(resp)
    };
    if !args.present("--watch") {
        println!("{}", fetch(&mut client)?);
        return Ok(0);
    }
    let interval = args.parse("--interval-ms")?.unwrap_or(500u64);
    let mut last_key: Option<(String, String)> = None;
    loop {
        let resp = fetch(&mut client)?;
        // Reprint on apply/failure progress; lag alone changes every
        // tick and would just scroll the terminal.
        let key = (
            resp.get("epoch").map(Json::to_string).unwrap_or_default(),
            resp.get("failures")
                .map(Json::to_string)
                .unwrap_or_default(),
        );
        if last_key.as_ref() != Some(&key) {
            println!("{resp}");
            last_key = Some(key);
        }
        std::thread::sleep(Duration::from_millis(interval));
    }
}
