//! Thin entry point: all behavior (and all tests) live in `pfe_cli`.

fn main() {
    std::process::exit(pfe_cli::run(std::env::args().skip(1).collect()));
}
