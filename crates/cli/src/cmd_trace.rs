//! `pfe trace` — fetch request traces from a live server.
//!
//! A thin wire client for the `{"op":"trace"}` endpoint: fetch one
//! retained trace by id (the `trace_id` echoed on any traced answer, or
//! listed by `slow_log`), or the last N completed traces; `--follow`
//! polls and prints traces as they complete; `--chrome FILE` exports
//! Chrome trace-event JSON loadable in `chrome://tracing` and Perfetto.

use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use pfe_engine::Json;

use crate::args::Args;

const USAGE: &str = "usage: pfe trace ADDR [--id HEX] [--last N] [--follow] [--chrome FILE]";

/// One connected line-protocol client.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Result<Self, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        stream.set_nodelay(true).ok();
        let writer = stream
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?;
        Ok(Self {
            writer,
            reader: BufReader::new(stream),
        })
    }

    fn request(&mut self, req: &Json) -> Result<Json, String> {
        writeln!(self.writer, "{req}").map_err(|e| format!("send: {e}"))?;
        self.writer.flush().map_err(|e| format!("send: {e}"))?;
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".into());
        }
        Json::parse(line.trim()).map_err(|e| format!("bad response: {e}"))
    }
}

fn trace_request(args: &Args, chrome: bool) -> Result<Json, String> {
    let mut fields = vec![("op", Json::Str("trace".to_string()))];
    if let Some(id) = args.value("--id") {
        fields.push(("id", Json::Str(id.to_string())));
    } else if let Some(n) = args.parse::<u64>("--last")? {
        fields.push(("last", Json::Num(n as f64)));
    }
    if chrome {
        fields.push(("format", Json::Str("chrome".to_string())));
    }
    Ok(Json::obj(fields))
}

fn fail(resp: &Json) -> Result<(), String> {
    if resp.get("ok") == Some(&Json::Bool(false)) {
        return Err(resp
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("request failed")
            .to_string());
    }
    Ok(())
}

/// Write the server's Chrome trace-event export to `path`.
fn export_chrome(client: &mut Client, args: &Args, path: &str) -> Result<(), String> {
    let resp = client.request(&trace_request(args, true)?)?;
    fail(&resp)?;
    let events = resp.get("events").ok_or("no 'events' in response")?;
    std::fs::write(path, format!("{events}\n")).map_err(|e| format!("write {path}: {e}"))?;
    let n = events.as_arr().map(<[Json]>::len).unwrap_or(0);
    println!(
        "{}",
        Json::obj([
            ("ok", Json::Bool(true)),
            ("chrome", Json::Str(path.to_string())),
            ("events", Json::Num(n as f64)),
        ])
    );
    Ok(())
}

/// `pfe trace ADDR [--id HEX] [--last N] [--follow] [--chrome FILE]`:
/// span trees (one JSON object per trace, one per line) on stdout.
pub fn trace(args: &Args) -> Result<i32, String> {
    let pos = args.positionals();
    let [addr] = pos[..] else {
        return Err(USAGE.into());
    };
    let mut client = Client::connect(addr)?;
    if let Some(path) = args.value("--chrome") {
        export_chrome(&mut client, args, path)?;
        return Ok(0);
    }
    if !args.present("--follow") {
        let resp = client.request(&trace_request(args, false)?)?;
        fail(&resp)?;
        for t in resp.get("traces").and_then(Json::as_arr).unwrap_or(&[]) {
            println!("{t}");
        }
        return Ok(0);
    }
    // --follow: poll, printing each completed trace once (newest ids are
    // remembered so re-fetches stay silent). Runs until the server goes
    // away or the user interrupts.
    let mut seen: HashSet<String> = HashSet::new();
    let mut first_sweep = true;
    loop {
        let resp = client.request(&trace_request(args, false)?)?;
        fail(&resp)?;
        for t in resp.get("traces").and_then(Json::as_arr).unwrap_or(&[]) {
            let Some(id) = t.get("trace_id").and_then(Json::as_str) else {
                continue;
            };
            if seen.insert(id.to_string()) && !first_sweep {
                println!("{t}");
            }
        }
        first_sweep = false;
        std::thread::sleep(Duration::from_millis(500));
    }
}
