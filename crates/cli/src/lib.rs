#![deny(missing_docs)]
//! `pfe` — the operator command line for the projected-frequency engine.
//!
//! One binary covers the whole bulk-data workflow: load a CSV/TSV file
//! through the columnar ingest path ([`pfe-ingest`](pfe_ingest)), write
//! a durable checkpoint, answer any of the five projected statistics
//! against it, merge shard checkpoints, serve the wire protocol over
//! TCP or a pipe, and benchmark the ingest path against a naive
//! row-at-a-time baseline.
//!
//! ```text
//! pfe ingest rows.csv --out rows.pfes
//! pfe query rows.pfes --op f0 --cols 0,1,2
//! pfe stats rows.pfes
//! pfe serve --resume rows.pfes --listen 127.0.0.1:7070
//! ```
//!
//! Every subcommand prints one JSON object (or one per answer) on
//! stdout and human-readable progress on stderr, so output composes
//! with `jq` and shell pipelines. Exit status is 0 on success, 1 on
//! runtime failure, 2 on usage errors.

pub mod args;
pub mod backend;
mod cmd_bench;
mod cmd_checkpoint;
mod cmd_ingest;
mod cmd_query;
mod cmd_replica;
mod cmd_serve;
mod cmd_trace;
mod cmd_verify;

pub use args::Args;

const USAGE: &str = "\
pfe — projected frequency estimation over file data

USAGE: pfe <SUBCOMMAND> [ARGS]

SUBCOMMANDS
  ingest FILE --out SNAP     columnar-ingest a CSV/TSV file, checkpoint the engine
  query SNAP --op OP ...     answer a statistic against a checkpoint
  stats SNAP                 engine counters for a checkpoint
  checkpoint A B.. --out M   merge shard snapshots into one
  resume SNAP --ingest FILE  continue ingesting into an existing checkpoint
  serve [--listen ADDR]      wire protocol over TCP, or stdin/stdout pipe mode
  replica ADDR [--watch]     replication health of a live server
  trace ADDR [--last N]      fetch request traces from a live server
  bench-ingest FILE          columnar vs row-at-a-time ingest throughput
  verify FILE                prove file ingest matches the Rust API bit-for-bit
  help                       this text

FILE SHAPE (ingest / resume / bench-ingest / verify)
  --q Q               alphabet size (default 2; values must lie in [0,Q))
  --no-header         first line is data, not column names
  --columns a,b,c     declare/validate column names
  --delim CH|tab      field delimiter (default: by extension, .tsv => tab)
  --chunk-rows N      rows per engine batch (default 8192)
  --max-rejects N     tolerate up to N malformed rows (default 0 = strict)

ENGINE (must repeat the ingest-time values when querying/resuming)
  --shards N --alpha A --kmv-k K --sample-t T --seed S
  --max-subsets M --cache C --fp 2.0,1.5
  --window ROWS[,TIER_CAP[,MAX_TIERS]]   sliding-window engine (ingest/serve)

QUERY
  --op f0|frequency|heavy_hitters|l1_sample|fp
  --cols 0,1,2 [--pattern 1,0,1] [--phi 0.05] [--k 8] [--p 2.0]
  [--sample-seed S] [--window N] [--exact] [--bypass-cache]
  --json '{...}'      raw wire-protocol request instead of flags
  --batch FILE        one JSON request per line, answered in order

SERVE (TCP mode)
  --workers N --queue N      dispatch parallelism / extra session headroom
  --checkpoint SNAP          durable state written on graceful shutdown
  --metrics ADDR             Prometheus scrape endpoint
  --max-line BYTES           per-request line cap (default 1 MiB)
  --ship DIR [--ship-ms N]   writer role: ship snapshots for replicas
  --replica-of DIR           replica role: watch a writer's snapshot dir
                             (repeatable; engine flags must match writer)
  --replica-poll-ms N        replica directory poll interval (default 200)

Run 'pfe <SUBCOMMAND>' with no operands for that subcommand's usage.
";

/// Run the CLI against `argv` (everything after the program name);
/// returns the process exit code.
pub fn run(argv: Vec<String>) -> i32 {
    let Some((cmd, rest)) = argv.split_first() else {
        eprint!("{USAGE}");
        return 2;
    };
    let args = Args::new(rest.to_vec());
    let result = match cmd.as_str() {
        "ingest" => cmd_ingest::ingest(&args),
        "query" => cmd_query::query(&args),
        "stats" => cmd_query::stats(&args),
        "checkpoint" => cmd_checkpoint::merge(&args),
        "resume" => cmd_ingest::resume(&args),
        "serve" => cmd_serve::serve(&args),
        "replica" => cmd_replica::replica(&args),
        "trace" => cmd_trace::trace(&args),
        "bench-ingest" => cmd_bench::bench_ingest(&args),
        "verify" => cmd_verify::verify(&args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return 0;
        }
        other => {
            eprintln!("pfe: unknown subcommand {other:?}\n");
            eprint!("{USAGE}");
            return 2;
        }
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("pfe {cmd}: {msg}");
            if msg.starts_with("usage:") {
                2
            } else {
                1
            }
        }
    }
}
